#!/usr/bin/env python3
"""The partial-reconfiguration toolchain, step by step.

A low-level walkthrough of everything :class:`ReconfigManager` does in one
call — useful to understand the *implementation issues* the paper is
about:

1. component synthesis with bus-macro-pinned ports;
2. BitLinker assembly into a **complete** partial bitstream whose frames
   preserve the static rows above/below the region;
3. serialisation to a CRC-protected configuration word stream;
4. loading through the OPB HWICAP;
5. verification that nothing outside the dynamic area changed;
6. the differential alternative and its smaller-but-state-dependent size.
"""

import numpy as np

from repro import build_system32
from repro.bitstream import BitLinker, Placement, verify_preserves_static
from repro.core.floorplan import render_bus_macro
from repro.fabric import ConfigMemory
from repro.kernels import BrightnessKernel, JenkinsHashKernel


def main() -> None:
    system = build_system32()
    region = system.region
    print(f"dynamic region: {region}")
    print(f"  spans {region.frame_count} configuration frames "
          f"({'full' if region.full_height else 'partial'} device height)")
    print()

    # 1. components --------------------------------------------------------
    bright = BrightnessKernel(10).make_component(32, region.rect.height)
    hash_core = JenkinsHashKernel().make_component(32, region.rect.height)
    for component in (bright, hash_core):
        print(f"component {component}")
    write_port = bright.ports[0]
    print()
    print(render_bus_macro(write_port.macro))
    print()

    # 2. BitLinker assembly ---------------------------------------------------
    linker = system.bitlinker
    complete = linker.link([Placement(bright, col_offset=0)])
    report = linker.last_report
    print(f"linked {report.components}: {complete}")
    print(f"  connections: {report.connections}")
    print(f"  resources:   {report.resources_used} of {report.resources_available}")
    print()

    # 3. serialisation ----------------------------------------------------------
    words = complete.to_words()
    print(f"serialised stream: {len(words)} words "
          f"({len(words) * 4 / 1024:.1f} KiB incl. packet overhead)")

    # 4. load through the HWICAP --------------------------------------------------
    before = ConfigMemory(system.device)
    before.restore(system.baseline)
    start = system.cpu.now_ps
    system.hwicap.load_words(words)
    print(f"HWICAP applied {system.hwicap.frames_written} frames "
          "(timing handled by ReconfigManager in normal use)")

    # 5. verify static preservation ------------------------------------------------
    ok = verify_preserves_static(before, system.config_memory, region)
    print(f"static rows outside the region untouched: {ok}")
    assert ok

    # 6. the differential alternative ------------------------------------------------
    differential = linker.link_differential(
        [Placement(hash_core, col_offset=0)], current=system.config_memory
    )
    print()
    print(f"swap to {hash_core.name}:")
    print(f"  complete bitstream:     {complete.frame_count} frames")
    print(f"  differential bitstream: {differential.frame_count} frames "
          f"({100 * differential.frame_count / complete.frame_count:.0f}% of complete)")
    print("  -> smaller and faster to load, but only correct if the device")
    print("     really is in the assumed state (the hazard BitLinker's")
    print("     complete configurations avoid, at the cost of load time).")


if __name__ == "__main__":
    main()

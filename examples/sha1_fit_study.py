#!/usr/bin/env python3
"""SHA-1 fit study: when the kernel simply does not fit.

The paper's SHA-1 implementation "does not fit into the dynamic area of
the 32-bit system, so no comparison can be done" — the fit check is a
first-class citizen of the reconfiguration manager.  This example shows
the rejection on the 32-bit system, the successful load on the 64-bit one,
and the software-overhead effect for small messages.
"""

import hashlib

from repro import ReconfigManager, build_system32, build_system64
from repro.core.apps import HwSha1
from repro.errors import ResourceError
from repro.kernels import Sha1Kernel
from repro.reporting import format_table
from repro.sw import SwSha1
from repro.workloads import random_key


def main() -> None:
    system32 = build_system32()
    system64 = build_system64()

    kernel = Sha1Kernel()
    component32 = kernel.make_component(32, system32.region.rect.height)
    print("SHA-1 component for the 32-bit region:")
    print(f"  needs {component32.width} CLB columns x {component32.height} rows, "
          f"{component32.total_resources}")
    print(f"  region offers {system32.region.rect.width} columns, "
          f"{system32.region.resources}")
    try:
        ReconfigManager(system32).register(kernel)
        raise SystemExit("unexpectedly fit!")
    except ResourceError as err:
        print(f"  -> rejected: {err}")
    print()

    manager = ReconfigManager(system64)
    manager.register(Sha1Kernel())
    reconfig = manager.load("sha1")
    print(f"64-bit system: loaded in {reconfig.elapsed_ms:.2f} ms "
          f"({reconfig.byte_size} bytes of configuration)")
    print()

    rows = []
    for size in (64, 256, 1024, 8192, 65536):
        message = random_key(size, seed=size)
        hw = HwSha1().run(system64, message)
        sw = SwSha1().run(system64, message)
        assert hw.result == sw.result == hashlib.sha1(message).digest()
        rows.append([
            size,
            sw.elapsed_us,
            hw.elapsed_us,
            sw.elapsed_ps / hw.elapsed_ps,
            sw.elapsed_ps / size / 1000.0,
        ])
    print(format_table(
        "SHA-1 on the 64-bit system (32-bit CPU-controlled transfers)",
        ["message bytes", "software (us)", "hardware (us)", "speedup", "sw ns/byte"],
        rows,
    ))
    print()
    print("The software per-byte cost falls with size: the RFC 3174 code's")
    print("per-call overhead dominates small data sets, as the paper notes.")


if __name__ == "__main__":
    main()

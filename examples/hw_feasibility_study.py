#!/usr/bin/env python3
"""A hardware feasibility study, the way the paper prescribes it.

"The times reported in table 2 allow the developer to determine a lower
bound for the time required to use the dynamic area.  This lower bound can
be used to make a first assessment of the improvements that can be
obtained by moving a function from software to hardware."

This example runs that workflow for the paper's own workloads: measure
the transfer costs once, profile each task's I/O volume, compute the
lower-bound assessment — then check the prediction against the actual
hardware drivers.  The assessments correctly predict both the big
pattern-matching win and the marginal hash case *before any kernel
exists*.
"""

import numpy as np

from repro import ReconfigManager, build_system32
from repro.analysis import Method, TaskProfile, assess, measure_transfer_costs, profile_run
from repro.core.apps import HwJenkinsHash, HwPatternMatch
from repro.kernels import JenkinsHashKernel, PatternMatchKernel
from repro.reporting import format_table
from repro.sw import SwJenkinsHash, SwPatternMatch
from repro.workloads import binary_image, binary_pattern, random_key


def main() -> None:
    system = build_system32()
    costs = measure_transfer_costs(system)
    print(f"calibrated {costs.system_name}: write {costs.pio_write_ns:.0f} ns, "
          f"read {costs.pio_read_ns:.0f} ns per 32-bit transfer")
    print()

    pattern = binary_pattern(seed=5)
    image = binary_image(24, 96, seed=5)
    key = random_key(8192, seed=5)

    # --- step 1: software baselines -------------------------------------------
    sw_pm = SwPatternMatch(pattern).run(system, image)
    sw_hash = SwJenkinsHash().run(system, key)

    # --- step 2: paper-style lower-bound assessment ----------------------------
    positions = (image.shape[0] - 7) * (image.shape[1] - 7)
    profiles = {
        "pattern matching": (
            TaskProfile("patmatch", words_in=(positions + 3) // 4,
                        words_out=(positions + 3) // 4),
            sw_pm.elapsed_ps,
        ),
        "lookup2 hash": (
            TaskProfile("lookup2", words_in=(len(key) + 3) // 4, words_out=1),
            sw_hash.elapsed_ps,
        ),
    }
    assessments = {
        name: assess(system, profile, software_ps=sw_ps, method=Method.PIO, costs=costs)
        for name, (profile, sw_ps) in profiles.items()
    }
    for name, a in assessments.items():
        print(f"assessment  {name:18s}: {a}")
    print()

    # --- step 3: build the kernels and compare against the prediction -----------
    manager = ReconfigManager(system)
    manager.register(PatternMatchKernel(pattern))
    manager.register(JenkinsHashKernel())

    manager.load("patmatch")
    hw_pm = HwPatternMatch().run(system, image)
    assert np.array_equal(hw_pm.result, sw_pm.result)
    manager.load("lookup2")
    hw_hash = HwJenkinsHash().run(system, key)
    assert hw_hash.result == sw_hash.result

    rows = []
    for name, sw_ps, hw_ps in (
        ("pattern matching", sw_pm.elapsed_ps, hw_pm.elapsed_ps),
        ("lookup2 hash", sw_hash.elapsed_ps, hw_hash.elapsed_ps),
    ):
        a = assessments[name]
        rows.append([name, a.max_speedup, sw_ps / hw_ps,
                     "yes" if a.worthwhile else "no"])
    print(format_table(
        "Prediction vs reality (32-bit system)",
        ["task", "predicted max speedup", "achieved speedup", "worth building?"],
        rows,
    ))
    print()

    # --- step 4: where did the hardware time go? --------------------------------
    manager.load("lookup2")
    report = profile_run(system, lambda: HwJenkinsHash().run(system, random_key(2048)))
    print("bus utilization during the hardware hash run:")
    for line in report.summary_lines():
        print(" ", line)
    print("  (the memory-leg reads are batch-modelled and invisible to the")
    print("   tracer; the dock-side transactions above are the visible half)")
    print()
    print("Verdict: lookup2's achievable speedup was ~1x before a single LUT")
    print("was spent on it — exactly the 'first assessment' the paper's")
    print("transfer tables enable.")


if __name__ == "__main__":
    main()

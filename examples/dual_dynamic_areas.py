#!/usr/bin/env python3
"""Two dynamic areas, two resident accelerators, zero swap overhead.

The paper's closing observation about the XC2VP30: the slices left over
next to the second CPU core are hard to use, and "alternative approaches
(like having two separate dynamic areas) may be necessary to put them to
use."  This example builds that variant: a brightness pipeline stays
resident in the primary region while a hash core lives in the secondary
one — interleaved work needs no reconfiguration at all, versus one ~15 ms
swap per switch on the single-region system.

It also demonstrates the column-disjointness constraint the extension
must respect: Virtex-II Pro frames span the full device height, so two
independently reconfigurable regions may never share CLB columns.
"""

import numpy as np

from repro import ReconfigManager, build_system64, build_system64_dual
from repro.core.apps import HwBrightnessPio, HwJenkinsHash
from repro.kernels import BrightnessKernel, JenkinsHashKernel
from repro.workloads import grayscale_image, key_batch


def interleaved_workload(system, run_brightness, run_hash, swaps):
    """Alternate image frames and key batches ``swaps`` times."""
    total_start = system.cpu.now_ps
    for round_index in range(swaps):
        run_brightness(round_index)
        run_hash(round_index)
    return system.cpu.now_ps - total_start


def main() -> None:
    frames = [grayscale_image(64, 64, seed=s) for s in range(4)]
    keys = key_batch(4, 4096, seed=77)

    # --- single region: swap on every switch --------------------------------
    single = build_system64()
    manager = ReconfigManager(single)
    manager.register(BrightnessKernel(24))
    manager.register(JenkinsHashKernel())

    def single_brightness(i):
        manager.load("brightness")
        HwBrightnessPio().run(single, frames[i])

    def single_hash(i):
        manager.load("lookup2")
        HwJenkinsHash().run(single, keys[i])

    single_time = interleaved_workload(single, single_brightness, single_hash, len(frames))
    swap_time = sum(r.elapsed_ps for r in manager.history)

    # --- dual region: both kernels stay resident -------------------------------
    dual, slot = build_system64_dual()
    manager_a = ReconfigManager(dual)
    manager_b = ReconfigManager(dual, slot=slot)
    manager_a.register(BrightnessKernel(24))
    manager_b.register(JenkinsHashKernel())
    reconfig_a = manager_a.load("brightness")
    reconfig_b = manager_b.load("lookup2")

    hash_driver = HwJenkinsHash()

    def dual_brightness(i):
        HwBrightnessPio().run(dual, frames[i])

    def dual_hash(i):
        # Drive the secondary dock directly (same protocol, other window).
        from repro.kernels.jenkins_hash import LENGTH_OFFSET, key_to_words, lookup2

        key = keys[i]
        cpu = dual.cpu
        cpu.io_write(slot.dock.base + LENGTH_OFFSET, len(key))
        for word in key_to_words(key):
            cpu.io_write(slot.dock.base, word)
        digest = cpu.io_read(slot.dock.base)
        assert digest == lookup2(key)

    dual_time = interleaved_workload(dual, dual_brightness, dual_hash, len(frames))
    dual_setup = reconfig_a.elapsed_ps + reconfig_b.elapsed_ps

    print(f"primary region:   {dual.region}")
    print(f"secondary region: {slot.region}")
    shared = set(dual.region.rect.columns) & set(slot.region.rect.columns)
    print(f"shared configuration columns: {sorted(shared) or 'none (required!)'}")
    print()
    print(f"single region, {len(frames)} switches:")
    print(f"  total {single_time / 1e9:8.2f} ms (of which swaps {swap_time / 1e9:.2f} ms)")
    print(f"dual regions (one-time setup {dual_setup / 1e9:.2f} ms):")
    print(f"  total {dual_time / 1e9:8.2f} ms, no swaps during the workload")
    print()
    print(f"interleaved-workload speedup from the second region: "
          f"{single_time / dual_time:.1f}x")


if __name__ == "__main__":
    main()

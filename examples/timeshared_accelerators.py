#!/usr/bin/env python3
"""Time-sharing the dynamic area between mutually exclusive tasks.

The paper's stated intent: "time-share the available hardware to support
multiple (and mutually exclusive) tasks".  One dynamic region hosts, in
turn, a pattern matcher, a hash core and an image pipeline; the example
accounts the reconfiguration time of every swap and reports whether each
hardware episode beat staying in software.
"""

import numpy as np

from repro import ReconfigManager, build_system32
from repro.core.apps import HwBrightnessPio, HwJenkinsHash, HwPatternMatch
from repro.kernels import BrightnessKernel, JenkinsHashKernel, PatternMatchKernel
from repro.reporting import format_table
from repro.sw import SwBrightness, SwJenkinsHash, SwPatternMatch
from repro.workloads import binary_pattern, grayscale_image, key_batch, planted_pattern_image


def main() -> None:
    system = build_system32()
    pattern = binary_pattern(seed=42)

    manager = ReconfigManager(system)
    manager.register(PatternMatchKernel(pattern))
    manager.register(JenkinsHashKernel())
    manager.register(BrightnessKernel(32))

    rows = []

    # --- episode 1: scan a batch of images for the pattern -------------------
    reconfig = manager.load("patmatch")
    images = [planted_pattern_image(32, 128, pattern, plants=2, seed=s) for s in range(3)]
    hw_time = reconfig.elapsed_ps
    sw_time = 0
    best = 0
    for image in images:
        hw = HwPatternMatch().run(system, image)
        sw = SwPatternMatch(pattern).run(system, image)
        assert np.array_equal(hw.result, sw.result)
        hw_time += hw.elapsed_ps
        sw_time += sw.elapsed_ps
        best = max(best, int(hw.result.max()))
    rows.append(["pattern scan (3 images)", reconfig.elapsed_ps / 1e6,
                 hw_time / 1e6, sw_time / 1e6, sw_time / hw_time])
    print(f"best match count found: {best}/64")

    # --- episode 2: hash a batch of keys --------------------------------------
    reconfig = manager.load("lookup2")
    keys = key_batch(16, 2048, seed=3)
    hw_time = reconfig.elapsed_ps
    sw_time = 0
    for key in keys:
        hw = HwJenkinsHash().run(system, key)
        sw = SwJenkinsHash().run(system, key)
        assert hw.result == sw.result
        hw_time += hw.elapsed_ps
        sw_time += sw.elapsed_ps
    rows.append(["hash batch (16 x 2 KiB)", reconfig.elapsed_ps / 1e6,
                 hw_time / 1e6, sw_time / 1e6, sw_time / hw_time])

    # --- episode 3: brighten a burst of frames ---------------------------------
    reconfig = manager.load("brightness")
    frames = [grayscale_image(96, 96, seed=s) for s in range(18)]
    hw_time = reconfig.elapsed_ps
    sw_time = 0
    for frame in frames:
        hw = HwBrightnessPio().run(system, frame)
        sw = SwBrightness(32).run(system, frame)
        assert np.array_equal(hw.result, sw.result)
        hw_time += hw.elapsed_ps
        sw_time += sw.elapsed_ps
    rows.append(["brightness burst (18 frames)", reconfig.elapsed_ps / 1e6,
                 hw_time / 1e6, sw_time / 1e6, sw_time / hw_time])

    print()
    print(format_table(
        "Time-shared dynamic area (32-bit system; hw time includes reconfiguration)",
        ["episode", "reconfig (us)", "hw total (us)", "sw total (us)",
         "effective speedup"],
        rows,
    ))
    print()
    for name, reconfig_us, hw_us, sw_us, speedup in rows:
        verdict = "worth reconfiguring" if speedup > 1 else "stay in software"
        print(f"  {name:32s} -> {verdict} ({speedup:.2f}x)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The fade-in-fade-out effect (paper section 3.2, fade task).

"The fade-in-fade-out effect is obtained by processing the source images
successively for different values of f."  The fade kernel's 8.8
fixed-point factor lives in a control register, so a whole transition is
one configuration plus a register write per step — the cheap-parameter,
expensive-configuration split that makes run-time reconfiguration
practical.
"""

import numpy as np

from repro import ReconfigManager, build_system32
from repro.core.apps import HwFadeSequence
from repro.kernels import FadeKernel
from repro.sw import SwFade, fade_ref
from repro.workloads import gradient_image, grayscale_image


def main() -> None:
    system = build_system32()
    manager = ReconfigManager(system)
    manager.register(FadeKernel(0.0))
    reconfig = manager.load("fade")
    print(f"fade kernel configured once: {reconfig.elapsed_ms:.2f} ms")

    image_a = grayscale_image(64, 64, seed=3)  # scene
    image_b = gradient_image(64, 64)  # backdrop
    steps = [i / 8 for i in range(9)]  # f = 0.0 .. 1.0

    hw = HwFadeSequence(pio=True).run(system, image_a, image_b, steps)
    print(f"hardware: {len(steps)} frames in {hw.elapsed_ps / 1e6:.0f} us "
          f"({hw.elapsed_ps / len(steps) / 1e6:.0f} us per frame)")

    sw_total = 0
    for factor, frame in zip(steps, hw.result):
        sw = SwFade(factor).run(system, image_a, image_b)
        sw_total += sw.elapsed_ps
        assert np.array_equal(frame, sw.result), f"mismatch at f={factor}"
    print(f"software: same frames in {sw_total / 1e6:.0f} us")
    print(f"sequence speedup (configuration already amortised): "
          f"{sw_total / hw.elapsed_ps:.2f}x")

    # A tiny ASCII preview of the transition's mean brightness.
    means = [frame.mean() for frame in hw.result]
    scale = "  ".join(f"f={f:.2f}:{m:5.1f}" for f, m in zip(steps, means))
    print(f"mean brightness along the fade: {scale}")
    direction = "A" if image_a.mean() > image_b.mean() else "B"
    print(f"(f=1 reproduces image A; f=0 reproduces image {'B'})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Transfer-method study on the 64-bit system (the heart of section 4).

The PPC405 cannot issue 64-bit loads/stores, so programmed I/O never uses
the PLB's full width; only DMA through the PLB Dock's scatter-gather
engine and output FIFO does.  This example sweeps sequence lengths over
both methods and shows where each stands — including the block-interleaved
mode whose write stream pauses whenever the 2047-entry FIFO fills.
"""

from repro import TransferBench, build_system32, build_system64
from repro.reporting import format_table


def main() -> None:
    system32 = build_system32()
    system64 = build_system64()
    bench32 = TransferBench(system32)
    bench64 = TransferBench(system64)

    rows = []
    for n in (512, 2048, 8192):
        rows.append([
            n,
            bench32.pio_write_sequence(n).per_transfer_ns,
            bench64.pio_write_sequence(n).per_transfer_ns,
            bench64.dma_write_sequence(n).per_transfer_ns,
        ])
    print(format_table(
        "Write sequences: memory -> dynamic region (ns per transfer)",
        ["words", "32-bit PIO (32b words)", "64-bit PIO (32b words)", "64-bit DMA (64b words)"],
        rows,
    ))
    print()

    rows = []
    for n in (512, 2048, 8192):
        pio = bench64.pio_interleaved_sequence(n)
        dma = bench64.dma_interleaved_sequence(n)
        pio_bw = pio.bandwidth_mbps
        dma_bw = dma.bandwidth_mbps
        rows.append([n, pio.per_transfer_ns, pio_bw, dma.per_transfer_ns, dma_bw])
    print(format_table(
        "Interleaved write/read on the 64-bit system: PIO vs block-interleaved DMA",
        ["words", "PIO ns/pair", "PIO MB/s", "DMA ns/word", "DMA MB/s"],
        rows,
    ))
    print()
    print("Observations (cf. paper section 4.2):")
    print(" * CPU-controlled transfers improve 4-6x over the 32-bit system")
    print("   (bus clock x2, CPU clock x1.5, no PLB-OPB bridge in the path).")
    print(" * Only DMA exploits the 64-bit width - at the price of block-")
    print("   structured data and FIFO-sized interleaving restrictions.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build the 32-bit system, reconfigure it, accelerate a task.

Covers the whole public API surface in ~40 lines:

1. build the platform (figure 3 of the paper);
2. register a hardware kernel and load it into the dynamic area at
   run time (BitLinker -> HWICAP -> dock);
3. run the same task in software on the PPC405 and in hardware through
   the dock, and compare simulated times.
"""

import numpy as np

from repro import ReconfigManager, build_system32
from repro.core.apps import HwBrightnessPio
from repro.core.floorplan import render_system_floorplan
from repro.kernels import BrightnessKernel
from repro.sw import SwBrightness
from repro.workloads import grayscale_image


def main() -> None:
    system = build_system32()
    print(system)
    print(render_system_floorplan(system))
    print()

    manager = ReconfigManager(system)
    manager.register(BrightnessKernel(constant=48))
    reconfig = manager.load("brightness")
    print(
        f"reconfigured dynamic area with {reconfig.kernel_name!r}: "
        f"{reconfig.frame_count} frames, {reconfig.byte_size} bytes, "
        f"{reconfig.elapsed_ms:.2f} ms over the HWICAP"
    )

    image = grayscale_image(96, 96, seed=7)
    hw = HwBrightnessPio().run(system, image)
    sw = SwBrightness(48).run(system, image)
    assert np.array_equal(hw.result, sw.result), "hardware and software disagree!"

    print(f"software on the PPC405 : {sw.elapsed_us:10.1f} us")
    print(f"hardware in dynamic area: {hw.elapsed_us:10.1f} us")
    print(f"speedup                 : {sw.elapsed_ps / hw.elapsed_ps:10.2f} x")
    break_even = reconfig.elapsed_ps / (sw.elapsed_ps - hw.elapsed_ps)
    print(f"reconfiguration amortised after ~{break_even:.1f} images")


if __name__ == "__main__":
    main()

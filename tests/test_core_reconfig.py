"""Tests for the run-time reconfiguration manager."""

import numpy as np
import pytest

from repro.core.reconfig import ReconfigManager
from repro.errors import ReconfigurationError, ResourceError
from repro.fabric.config_memory import ConfigMemory
from repro.bitstream.generator import verify_preserves_static
from repro.kernels import BrightnessKernel, JenkinsHashKernel, Sha1Kernel, SinkKernel


def test_register_and_load(system32):
    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(10))
    result = manager.load("brightness")
    assert manager.active == "brightness"
    assert system32.dock.kernel is not None
    assert result.frame_count == system32.region.frame_count
    assert result.elapsed_ps > 0


def test_load_unregistered_raises(system32):
    manager = ReconfigManager(system32)
    with pytest.raises(ReconfigurationError, match="not registered"):
        manager.load("ghost")


def test_sha1_rejected_on_32bit_system(system32):
    # The paper's central fit example: SHA-1 does not fit the 32-bit
    # system's dynamic area.
    manager = ReconfigManager(system32)
    with pytest.raises(ResourceError):
        manager.register(Sha1Kernel())


def test_sha1_accepted_on_64bit_system(system64):
    manager = ReconfigManager(system64)
    manager.register(Sha1Kernel())
    result = manager.load("sha1")
    assert result.frame_count > 0


def test_fits_helper(system32, system64):
    assert not ReconfigManager(system32).fits(Sha1Kernel())
    assert ReconfigManager(system64).fits(Sha1Kernel())
    assert ReconfigManager(system32).fits(BrightnessKernel(0))


def test_load_charges_simulated_time(system32):
    manager = ReconfigManager(system32)
    manager.register(SinkKernel())
    before = system32.cpu.now_ps
    result = manager.load("sink")
    assert system32.cpu.now_ps - before == result.elapsed_ps
    # Feeding ~80k words through the OPB HWICAP takes milliseconds.
    assert result.elapsed_ps > 1_000_000_000


def test_swap_between_kernels(system32):
    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(5))
    manager.register(JenkinsHashKernel())
    manager.load("brightness")
    manager.load("lookup2")
    assert manager.active == "lookup2"
    assert system32.dock.kernel.name == "lookup2"
    assert len(manager.history) == 2


def test_load_preserves_static_configuration(system32):
    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(5))
    manager.load("brightness")
    before = ConfigMemory(system32.device)
    before.restore(system32.baseline)
    assert verify_preserves_static(before, system32.config_memory, system32.region)


def test_differential_reload_is_faster(system32):
    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(5))
    manager.register(JenkinsHashKernel())
    complete = manager.load("brightness")
    # Differential load of a different kernel relative to current state.
    differential = manager.load("lookup2", differential=True)
    assert differential.kind == "partial-differential"
    assert differential.word_count < complete.word_count
    assert differential.elapsed_ps < complete.elapsed_ps


def test_differential_reload_of_same_kernel_is_tiny(system32):
    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(5))
    manager.load("brightness")
    again = manager.load("brightness", differential=True)
    assert again.frame_count == 0


def test_clear_detaches_kernel(system32):
    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(5))
    manager.load("brightness")
    result = manager.clear()
    assert manager.active is None
    assert system32.dock.kernel is None
    assert result.kernel_name == "<clear>"


def test_hwicap_saw_the_frames(system32):
    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(5))
    manager.load("brightness")
    assert system32.hwicap.frames_written >= system32.region.frame_count


def test_reconfig_result_reports_size(system32):
    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(5))
    result = manager.load("brightness")
    assert result.byte_size == result.word_count * 4
    assert result.elapsed_ms > 0


def test_clear_detects_disturbed_static_configuration():
    # Regression: clear() used to trust the linker's clear stream blindly;
    # a stream that also touches another dynamic region must be rejected.
    from repro.bitstream.bitstream import Bitstream
    from repro.core.multiregion import build_system64_dual

    system, slot = build_system64_dual()
    manager_a = ReconfigManager(system)
    manager_b = ReconfigManager(system, slot=slot)
    for manager in (manager_a, manager_b):
        manager.register(BrightnessKernel(5))
        manager.load("brightness")

    class LeakyLinker:
        """Clear stream that also corrupts a frame of the other region."""

        def __init__(self, real, victim):
            self.real = real
            self.victim = victim

        def clear_bitstream(self, description="clear dynamic region"):
            stream = self.real.clear_bitstream(description)
            words = system.device.words_per_frame
            rogue = np.full(words, 0xDEADBEEF, dtype=np.uint32)
            return Bitstream(
                device_name=stream.device_name,
                kind=stream.kind,
                frames=list(stream.frames) + [(self.victim, rogue)],
                description=stream.description,
            )

    manager_a.bitlinker = LeakyLinker(
        manager_a.bitlinker, slot.region.frame_addresses[0]
    )
    with pytest.raises(ReconfigurationError, match="disturbed configuration"):
        manager_a.clear()


def test_clear_of_one_region_preserves_the_other():
    from repro.core.multiregion import build_system64_dual

    system, slot = build_system64_dual()
    manager_a = ReconfigManager(system)
    manager_b = ReconfigManager(system, slot=slot)
    for manager in (manager_a, manager_b):
        manager.register(BrightnessKernel(5))
        manager.load("brightness")
    frames_b = {
        address: system.config_memory.read_frame(address)
        for address in slot.region.frame_addresses
    }
    manager_a.clear()
    for address, expected in frames_b.items():
        assert np.array_equal(system.config_memory.read_frame(address), expected)

"""Tests for the device catalog — the paper's headline numbers must hold."""

import pytest

from repro.errors import FabricError
from repro.fabric.device import DEVICES, XC2VP7, XC2VP30, get_device, list_devices
from repro.fabric.geometry import Coord, Rect


def test_xc2vp7_slice_count_matches_paper():
    # "This FPGA has 4928 slices and 44 RAM blocks"
    assert XC2VP7.slice_count == 4928
    assert XC2VP7.bram_count == 44


def test_xc2vp30_slice_count_matches_paper():
    # "The FPGA has 13696 slices ... and 136 internal RAM blocks"
    assert XC2VP30.slice_count == 13696
    assert XC2VP30.bram_count == 136


def test_xc2vp30_has_two_cpus():
    assert XC2VP30.cpu_count == 2
    assert XC2VP7.cpu_count == 1


def test_slice_ratio_about_2_7():
    # "about 2.7 times more slices than the previously used device"
    ratio = XC2VP30.slice_count / XC2VP7.slice_count
    assert 2.6 < ratio < 2.9


def test_speed_grades():
    assert XC2VP7.speed_grade == 6
    assert XC2VP30.speed_grade == 7


def test_get_device_case_insensitive():
    assert get_device("xc2vp7") is XC2VP7


def test_get_device_unknown_raises():
    with pytest.raises(FabricError, match="known devices"):
        get_device("XC9999")


def test_list_devices():
    assert set(list_devices()) == set(DEVICES)
    assert "XC2VP7" in list_devices()


def test_cpu_site_detection():
    block = XC2VP7.cpu_blocks[0]
    inside = Coord(block.col, block.row)
    assert XC2VP7.is_cpu_site(inside)
    assert not XC2VP7.is_cpu_site(Coord(block.col_end, block.row))


def test_clbs_in_excludes_cpu_carve():
    full = XC2VP7.clbs_in(XC2VP7.grid)
    assert full == XC2VP7.clb_count
    cpu = XC2VP7.cpu_blocks[0]
    assert XC2VP7.clbs_in(cpu) == 0


def test_clbs_in_rejects_out_of_grid():
    with pytest.raises(FabricError):
        XC2VP7.clbs_in(Rect(0, 0, XC2VP7.clb_cols + 1, 1))


def test_bram_blocks_in_full_grid():
    assert XC2VP7.bram_blocks_in(XC2VP7.grid) == 44
    assert XC2VP30.bram_blocks_in(XC2VP30.grid) == 136


def test_bram_blocks_in_partial_window():
    column = XC2VP7.bram_columns[1]
    window = Rect(column.col, 0, 1, XC2VP7.clb_rows)
    assert XC2VP7.bram_blocks_in(window) == column.block_count


def test_bram_columns_in_range():
    cols = XC2VP7.bram_columns_in(0, XC2VP7.clb_cols)
    assert len(cols) == 4


def test_bram_rows_strictly_increasing():
    for device in DEVICES.values():
        for column in device.bram_columns:
            rows = column.rows
            assert all(a < b for a, b in zip(rows, rows[1:]))
            assert rows[-1] < device.clb_rows


def test_resources_in_window():
    window = Rect(10, 0, 4, 8)
    res = XC2VP7.resources_in(window)
    assert res.slices == XC2VP7.clbs_in(window) * 4


def test_capacity_totals():
    cap = XC2VP7.capacity
    assert cap.slices == 4928
    assert cap.bram_blocks == 44


def test_frame_geometry_totals():
    # 22 frames per CLB column + (64+22) per BRAM column.
    expected = XC2VP7.clb_cols * 22 + 4 * (64 + 22)
    assert XC2VP7.total_frames == expected


def test_words_per_frame_covers_height():
    bits = XC2VP7.clb_rows * XC2VP7.bits_per_frame_row
    assert XC2VP7.words_per_frame * 32 >= bits


def test_configuration_bits_positive():
    assert XC2VP30.configuration_bits > XC2VP7.configuration_bits > 0


def test_catalog_extended_devices():
    from repro.fabric.device import XC2VP20, XC2VP50

    # Datasheet headline numbers for the extra catalog entries.
    assert XC2VP20.slice_count == 9280
    assert XC2VP20.bram_count == 88
    assert XC2VP20.cpu_count == 2
    assert XC2VP50.slice_count == 23616
    assert XC2VP50.bram_count == 232
    assert XC2VP50.cpu_count == 2


def test_catalog_monotone_by_size():
    from repro.fabric.device import XC2VP4, XC2VP7, XC2VP20, XC2VP30, XC2VP50

    sizes = [d.slice_count for d in (XC2VP4, XC2VP7, XC2VP20, XC2VP30, XC2VP50)]
    assert sizes == sorted(sizes)


def test_paper_regions_fit_on_larger_devices():
    from repro.fabric.device import XC2VP50
    from repro.fabric.region import find_region

    # The 64-bit system's region would also place on the bigger sibling.
    region = find_region(XC2VP50, 32, 24)
    assert region.resources.slices >= 3072

"""Tests for the fade-in-fade-out sequence driver."""

import numpy as np
import pytest

from repro.core.apps import HwFadeSequence
from repro.errors import KernelError
from repro.sw import fade_ref
from repro.workloads import gradient_image, grayscale_image


@pytest.fixture
def fade_rig(system32, manager32):
    manager32.load("fade")
    a = grayscale_image(16, 16, seed=80)
    b = gradient_image(16, 16)
    return system32, a, b


def test_each_step_matches_reference(fade_rig):
    system, a, b = fade_rig
    steps = [0.0, 0.25, 0.5, 0.75, 1.0]
    result = HwFadeSequence().run(system, a, b, steps)
    assert len(result.result) == len(steps)
    for factor, frame in zip(steps, result.result):
        assert np.array_equal(frame, fade_ref(a, b, factor)), factor


def test_endpoints_reproduce_sources(fade_rig):
    system, a, b = fade_rig
    result = HwFadeSequence().run(system, a, b, [0.0, 1.0])
    assert np.array_equal(result.result[0], b)
    assert np.array_equal(result.result[1], a)


def test_sequence_time_scales_with_steps(fade_rig):
    system, a, b = fade_rig
    two = HwFadeSequence().run(system, a, b, [0.2, 0.8]).elapsed_ps
    four = HwFadeSequence().run(system, a, b, [0.2, 0.4, 0.6, 0.8]).elapsed_ps
    assert four == pytest.approx(2 * two, rel=0.05)


def test_invalid_factor_rejected(fade_rig):
    system, a, b = fade_rig
    with pytest.raises(KernelError):
        HwFadeSequence().run(system, a, b, [0.5, 1.5])


def test_breakdown_accumulates_preparation(fade_rig):
    system, a, b = fade_rig
    result = HwFadeSequence().run(system, a, b, [0.3, 0.6])
    assert result.breakdown["data_preparation_ps"] > 0


def test_requires_fade_kernel(system32, manager32):
    manager32.load("brightness")
    from repro.errors import ReconfigurationError

    with pytest.raises(ReconfigurationError):
        HwFadeSequence().run(system32, grayscale_image(8, 8), grayscale_image(8, 8), [0.5])

"""Tests for ICAP readback and verified reconfiguration."""

import numpy as np
import pytest

from repro.bus.transaction import Op, Transaction
from repro.core.reconfig import ReconfigManager
from repro.errors import ReconfigurationError
from repro.fabric.frames import BlockType, FrameAddress
from repro.kernels import BrightnessKernel
from repro.periph.hwicap import CTRL_READBACK, REG_CONTROL, REG_FAR, REG_RDATA


def test_mmio_readback_returns_frame(system32):
    address = system32.region.frame_addresses[0]
    expected = system32.config_memory.read_frame(address)
    hwicap = system32.hwicap
    base = hwicap.base
    hwicap.access(Transaction(Op.WRITE, base + REG_FAR, data=address.packed()), 0)
    hwicap.access(Transaction(Op.WRITE, base + REG_CONTROL, data=CTRL_READBACK), 0)
    words = []
    for _ in range(len(expected)):
        _, value = hwicap.access(Transaction(Op.READ, base + REG_RDATA), 0)
        words.append(value)
    assert words == [int(w) for w in expected]
    assert hwicap.frames_read_back == 1


def test_readback_empty_fifo_raises(system32):
    hwicap = system32.hwicap
    with pytest.raises(ReconfigurationError, match="empty"):
        hwicap.access(Transaction(Op.READ, hwicap.base + REG_RDATA), 0)


def test_readback_burst(system32):
    address = system32.region.frame_addresses[3]
    expected = system32.config_memory.read_frame(address)
    hwicap = system32.hwicap
    base = hwicap.base
    hwicap.access(Transaction(Op.WRITE, base + REG_FAR, data=address.packed()), 0)
    hwicap.access(Transaction(Op.WRITE, base + REG_CONTROL, data=CTRL_READBACK), 0)
    _, values = hwicap.access(Transaction(Op.READ, base + REG_RDATA, beats=4), 0)
    assert values == [int(w) for w in expected[:4]]


def test_verified_load_passes_and_costs_time(system32):
    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(5))
    plain = manager.load("brightness")
    verified = manager.load("brightness", verify=True)
    assert verified.verify_ps > 0
    assert verified.frames_verified > 0
    assert plain.verify_ps == 0


def test_verified_load_detects_corruption(system32, monkeypatch):
    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(5))

    # Corrupt configuration memory between write and readback.
    original = system32.hwicap.load_words

    def corrupting(words):
        original(words)
        addresses = list(system32.config_memory.written_addresses())
        victim = system32.region.frame_addresses[0]
        frame = system32.config_memory.read_frame(victim)
        frame[0] ^= 0xFFFFFFFF
        system32.config_memory.write_frame(victim, frame)

    monkeypatch.setattr(system32.hwicap, "load_words", corrupting)
    with pytest.raises(ReconfigurationError, match="mismatch"):
        manager.load("brightness", verify=True)


def test_functional_readback_helper(system32):
    address = FrameAddress(BlockType.CLB, 0, 0)
    frame = system32.hwicap.readback_frame(address)
    assert np.array_equal(frame, system32.config_memory.read_frame(address))


def test_verify_samples_zero_is_rejected(system32):
    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(5))
    with pytest.raises(ValueError, match="verify_samples"):
        manager.load("brightness", verify=True, verify_samples=0)


def test_verify_samples_are_clamped_and_exact(system32):
    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(5))
    # Requesting more samples than frames checks every frame exactly once.
    result = manager.load("brightness", verify=True, verify_samples=10**6)
    assert result.frames_verified == result.frame_count
    # A small sample count checks exactly that many distinct frames —
    # never more (the old stride-based sampling could double the count).
    sampled = manager.load("brightness", verify=True, verify_samples=3)
    assert sampled.frames_verified == 3


def test_verify_charges_readback_not_status_reads(system32):
    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(5))
    icap = system32.hwicap
    status_before = icap.stats.get("status_reads")
    readback_before = icap.stats.get("readback_reads")
    result = manager.load("brightness", verify=True, verify_samples=4)
    # Readback verification polls RDATA, never STATUS; the batched tail of
    # each frame must land on the readback counter like the word loop would.
    assert icap.stats.get("status_reads") == status_before
    words_per_frame = system32.device.words_per_frame
    assert (
        icap.stats.get("readback_reads") - readback_before
        == result.frames_verified * words_per_frame
    )

"""Tests for the pattern-matching kernel vs the NumPy reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import KernelError
from repro.kernels.pattern_match import (
    FLUSH_OFFSET,
    PATTERN_HI_OFFSET,
    PATTERN_LO_OFFSET,
    REG_BEST,
    REG_POSITIONS,
    PatternMatchKernel,
    pattern_to_columns,
)
from repro.sw.pattern_match import match_counts


def feed_strip(kernel: PatternMatchKernel, image: np.ndarray, row0: int, width_bits=32):
    cols = PatternMatchKernel.strip_columns(image, row0)
    per_word = width_bits // 8
    for i in range(0, len(cols), per_word):
        word = sum(cols[i + j] << (8 * j) for j in range(per_word) if i + j < len(cols))
        kernel.consume(word, width_bits, 0)
    kernel.consume(0, width_bits, FLUSH_OFFSET)
    counts = []
    for word in kernel.produce():
        counts.extend((word >> (8 * j)) & 0xFF for j in range(per_word))
    return counts[: image.shape[1] - 7]


def test_pattern_to_columns_bit_layout():
    pattern = np.zeros((8, 8), dtype=bool)
    pattern[2, 0] = True  # row 2 of column 0 -> bit 2 of byte 0
    assert pattern_to_columns(pattern)[0] == 0b100


def test_pattern_to_columns_shape_check():
    with pytest.raises(KernelError):
        pattern_to_columns(np.zeros((4, 4), dtype=bool))


def test_counts_match_reference_random():
    rng = np.random.default_rng(3)
    image = rng.integers(0, 2, size=(8, 48)).astype(bool)
    pattern = rng.integers(0, 2, size=(8, 8)).astype(bool)
    kernel = PatternMatchKernel(pattern)
    counts = feed_strip(kernel, image, 0)
    assert counts == list(match_counts(image, pattern)[0])


def test_counts_match_reference_64bit_path():
    rng = np.random.default_rng(4)
    image = rng.integers(0, 2, size=(8, 64)).astype(bool)
    pattern = rng.integers(0, 2, size=(8, 8)).astype(bool)
    kernel = PatternMatchKernel(pattern)
    counts = feed_strip(kernel, image, 0, width_bits=64)
    assert counts == list(match_counts(image, pattern)[0])


def test_exact_match_scores_64():
    pattern = np.random.default_rng(5).integers(0, 2, size=(8, 8)).astype(bool)
    image = np.zeros((8, 24), dtype=bool)
    image[:, 10:18] = pattern
    kernel = PatternMatchKernel(pattern)
    counts = feed_strip(kernel, image, 0)
    assert counts[10] == 64
    assert kernel.read_register(REG_BEST) == 64


def test_inverted_window_scores_zero():
    pattern = np.ones((8, 8), dtype=bool)
    image = np.zeros((8, 16), dtype=bool)
    kernel = PatternMatchKernel(pattern)
    counts = feed_strip(kernel, image, 0)
    assert all(c == 0 for c in counts)


def test_positions_register():
    image = np.zeros((8, 20), dtype=bool)
    kernel = PatternMatchKernel(np.zeros((8, 8), dtype=bool))
    feed_strip(kernel, image, 0)
    assert kernel.read_register(REG_POSITIONS) == 13


def test_pipeline_fill_produces_no_output():
    kernel = PatternMatchKernel(np.zeros((8, 8), dtype=bool))
    kernel.consume(0, 32, 0)  # only 4 columns
    assert kernel.produce() == []


def test_pattern_loadable_via_control_registers():
    pattern = np.random.default_rng(6).integers(0, 2, size=(8, 8)).astype(bool)
    cols = pattern_to_columns(pattern)
    kernel = PatternMatchKernel()
    kernel.consume(sum(cols[j] << (8 * j) for j in range(4)), 32, PATTERN_LO_OFFSET)
    kernel.consume(sum(cols[4 + j] << (8 * j) for j in range(4)), 32, PATTERN_HI_OFFSET)
    image = np.zeros((8, 16), dtype=bool)
    image[:, 4:12] = pattern
    counts = feed_strip(kernel, image, 0)
    assert counts[4] == 64


def test_reset_clears_state():
    kernel = PatternMatchKernel(np.ones((8, 8), dtype=bool))
    image = np.ones((8, 16), dtype=bool)
    feed_strip(kernel, image, 0)
    kernel.reset()
    assert kernel.read_register(REG_POSITIONS) == 0
    assert kernel.read_register(REG_BEST) == 0


def test_unknown_offset_rejected():
    kernel = PatternMatchKernel()
    with pytest.raises(KernelError):
        kernel.consume(0, 32, 0x99)


def test_strip_columns_bounds():
    with pytest.raises(KernelError):
        PatternMatchKernel.strip_columns(np.zeros((8, 8), dtype=bool), 1)


def test_multi_strip_image_matches_reference():
    rng = np.random.default_rng(7)
    image = rng.integers(0, 2, size=(12, 32)).astype(bool)
    pattern = rng.integers(0, 2, size=(8, 8)).astype(bool)
    expected = match_counts(image, pattern)
    kernel = PatternMatchKernel(pattern)
    for strip in range(image.shape[0] - 7):
        kernel.reset()
        counts = feed_strip(kernel, image, strip)
        assert counts == list(expected[strip])


@settings(max_examples=25, deadline=None)
@given(
    arrays(bool, (8, 24), elements=st.booleans()),
    arrays(bool, (8, 8), elements=st.booleans()),
)
def test_counts_match_reference_property(image, pattern):
    kernel = PatternMatchKernel(pattern)
    counts = feed_strip(kernel, image, 0)
    assert counts == list(match_counts(image, pattern)[0])

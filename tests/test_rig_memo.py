"""Rig-level static-configuration memoization contract.

`initialize_static_configuration` may restore a memoized frame image
instead of regenerating it, but the resulting :class:`ConfigMemory` must
be indistinguishable — same data, same written mask, same ``writes``
accounting — and the memo must actually hit when scenarios share a rig.
The optional disk level (`repro.sweep.rigcache.RigCache`) must round-trip
entries and treat corruption as a miss.
"""

import numpy as np
import pytest

from repro.bitstream import generator
from repro.bitstream.generator import (
    reset_rig_memo,
    rig_memo_telemetry,
    set_rig_cache,
    static_configuration_key,
)
from repro.core import build_system32, build_system64
from repro.engine import fastpath
from repro.sweep.rigcache import RigCache


@pytest.fixture(autouse=True)
def _fresh_memo():
    reset_rig_memo()
    set_rig_cache(None)
    yield
    reset_rig_memo()
    set_rig_cache(None)


def _memory_state(system):
    memory = system.config_memory
    return memory._data.copy(), memory._written.copy(), memory.writes, memory.reads


@pytest.mark.parametrize("builder", [build_system32, build_system64], ids=["32", "64"])
def test_memo_hit_restores_identical_memory(builder):
    with fastpath.forced_on():
        cold = _memory_state(builder())  # miss: generates and stores
        warm = _memory_state(builder())  # hit: restores
    with fastpath.disabled():
        reference = _memory_state(builder())
    for label, state in (("warm", warm), ("reference", reference)):
        data, written, writes, reads = state
        assert np.array_equal(cold[0], data), label
        assert np.array_equal(cold[1], written), label
        assert cold[2] == writes, f"{label} writes accounting diverged"
        assert cold[3] == reads, f"{label} reads accounting diverged"
    assert rig_memo_telemetry().misses == 1
    assert rig_memo_telemetry().memory_hits == 1


def test_fastpath_off_bypasses_the_memo():
    with fastpath.disabled():
        build_system32()
        build_system32()
    assert rig_memo_telemetry().hits == 0
    assert rig_memo_telemetry().misses == 0


def test_key_separates_devices_and_seeds():
    with fastpath.forced_on():
        s32 = build_system32()
        s64 = build_system64()
    k32 = static_configuration_key(s32.config_memory, s32.region, "static-32")
    k64 = static_configuration_key(s64.config_memory, s64.region, "static-64")
    assert k32 != k64
    assert static_configuration_key(
        s32.config_memory, s32.region, "other-seed"
    ) != k32
    # Two same-shape builds share a key (that is the whole point).
    assert rig_memo_telemetry().misses == 2


def test_hits_across_scenarios_sharing_a_rig():
    """Two registry scenarios that build the same rig share one miss."""
    import repro.scenarios as sc

    with fastpath.forced_on():
        first = sc.get_scenario("table04_hash32").run(smoke=True)
        before = rig_memo_telemetry().as_dict()
        second = sc.get_scenario("table05_image32").run(smoke=True)
        after = rig_memo_telemetry().as_dict()
    assert first.rows and second.rows
    assert after["memory_hits"] > before["memory_hits"]
    assert after["misses"] == before["misses"]


def test_disk_cache_round_trip(tmp_path):
    cache = RigCache(tmp_path / "rigs")
    set_rig_cache(cache)
    with fastpath.forced_on():
        cold = _memory_state(build_system32())
    assert cache.stores == 1
    # New process simulated by dropping the in-memory level only.
    generator._STATIC_MEMO.clear()
    rig_memo_telemetry().reset()
    with fastpath.forced_on():
        warm = _memory_state(build_system32())
    assert rig_memo_telemetry().disk_hits == 1
    assert np.array_equal(cold[0], warm[0])
    assert np.array_equal(cold[1], warm[1])
    assert cold[2] == warm[2]


def test_disk_cache_corruption_is_a_miss(tmp_path):
    cache = RigCache(tmp_path / "rigs")
    set_rig_cache(cache)
    with fastpath.forced_on():
        cold = _memory_state(build_system32())
    entries = list((tmp_path / "rigs").glob("*.npz"))
    assert len(entries) == 1
    entries[0].write_bytes(b"not an npz file")
    generator._STATIC_MEMO.clear()
    rig_memo_telemetry().reset()
    with fastpath.forced_on():
        regenerated = _memory_state(build_system32())
    assert cache.invalidations == 1
    assert rig_memo_telemetry().disk_hits == 0
    assert rig_memo_telemetry().misses == 1
    assert np.array_equal(cold[0], regenerated[0])
    assert cold[2] == regenerated[2]
    # The corrupt entry was replaced by a fresh store.
    assert cache.stores == 2

"""CLI contract of the static-analysis subsystem, plus the regression tests
for the invariants that used to be bare ``assert`` statements.

Covers: ``python -m repro.checks`` (via its ``main``), the ``repro check``
subcommand, machine-readable JSON output that round-trips ``json.loads``,
stable rule IDs, the on-by-default pre-simulation DRC with ``--no-drc``
opt-out, and the InvariantError/CheckError raises that replaced asserts.
"""

import json
import textwrap
import types

import numpy as np
import pytest

from repro.checks import all_rules
from repro.checks.cli import main as checks_main
from repro.cli import main as repro_main
from repro.core import build_system32, build_system64
from repro.dock.dma import Descriptor
from repro.errors import CheckError, InvariantError

#: The published rule-ID contract (docs/CHECKS.md); IDs are never reused.
EXPECTED_RULES = {
    *(f"BITS00{i}" for i in range(1, 9)),
    *(f"BUS00{i}" for i in range(1, 6)),
    *(f"DMA00{i}" for i in range(1, 7)),
    *(f"SYS00{i}" for i in range(1, 4)),
    *(f"LINT00{i}" for i in range(0, 10)),
    *(f"CKEY00{i}" for i in range(1, 6)),
}


def test_rule_ids_are_stable():
    assert {rule.id for rule in all_rules()} == EXPECTED_RULES


def test_every_rule_has_title_and_rationale():
    for rule in all_rules():
        assert rule.title and rule.rationale, rule.id


# -- python -m repro.checks ---------------------------------------------------

def test_checks_exit_zero_on_shipped_tree(capsys):
    assert checks_main([]) == 0
    out = capsys.readouterr().out
    assert "self-lint(repro)" in out
    assert "drc(system32)" in out
    assert "no findings" in out


def test_checks_json_round_trips(capsys):
    assert checks_main(["--json", "--drc-only", "--system", "32"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["summary"] == {"error": 0, "warning": 0, "info": 0}
    assert payload["diagnostics"] == []


def test_checks_json_reports_known_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        textwrap.dedent(
            """
            import time

            def f(x):
                assert x
                return time.time()
            """
        )
    )
    assert checks_main(["--lint-only", "--path", str(bad), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    rules = {d["rule"] for d in payload["diagnostics"]}
    assert rules == {"LINT001", "LINT003"}
    for diag in payload["diagnostics"]:
        assert diag["severity"] == "error"
        assert diag["line"] >= 1
        assert diag["message"]


def test_checks_list_rules(capsys):
    assert checks_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in EXPECTED_RULES:
        assert rule_id in out


# -- repro check subcommand ---------------------------------------------------

def test_repro_check_subcommand(capsys):
    assert repro_main(["check", "--drc-only", "--system", "64"]) == 0
    out = capsys.readouterr().out
    assert "drc(system64)" in out
    assert "no findings" in out


def test_repro_check_lint_only(capsys):
    assert repro_main(["check", "--lint-only"]) == 0
    assert "self-lint(repro)" in capsys.readouterr().out


# -- pre-simulation DRC gate --------------------------------------------------

def test_transfers_accepts_no_drc(capsys):
    assert repro_main(["transfers", "--system", "32", "--words", "16", "--no-drc"]) == 0
    assert "PIO write" in capsys.readouterr().out


def test_demo_accepts_no_drc(capsys):
    assert repro_main(["demo", "--no-drc"]) == 0
    assert "speedup" in capsys.readouterr().out


def test_predrc_aborts_on_miswired_system(monkeypatch, capsys):
    def broken_system():
        system = build_system64()
        system.dock.dma.bus = system.opb  # BUS005: master on the wrong bus
        return system

    monkeypatch.setattr("repro.cli.build_system64", broken_system)
    with pytest.raises(SystemExit) as exc:
        repro_main(["transfers", "--system", "64", "--words", "16"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "BUS005" in err


def test_predrc_skipped_with_no_drc_flag(monkeypatch, capsys):
    def broken_system():
        system = build_system64()
        system.bitlinker.dock_ports = system.bitlinker.dock_ports[:-1]  # SYS003
        return system

    monkeypatch.setattr("repro.cli.build_system64", broken_system)
    with pytest.raises(SystemExit):
        repro_main(["transfers", "--system", "64", "--words", "16"])
    capsys.readouterr()
    # Same broken system, DRC opted out: the simulation itself still works.
    assert repro_main(["transfers", "--system", "64", "--words", "16", "--no-drc"]) == 0


# -- regressions for the replaced asserts ------------------------------------

def _raw_descriptor(src, dst):
    """Build a Descriptor bypassing its constructor validation, the way a
    corrupted in-memory program would look to the engine."""
    d = object.__new__(Descriptor)
    object.__setattr__(d, "src", src)
    object.__setattr__(d, "dst", dst)
    object.__setattr__(d, "word_count", 4)
    object.__setattr__(d, "size_bytes", 8)
    return d


@pytest.fixture()
def slow_dma(monkeypatch):
    system = build_system64()
    # Force the reference per-chunk path so the invariant guards execute.
    monkeypatch.setattr(system.plb, "fast_path_active", lambda: False)
    return system.dock.dma


def test_memory_to_dock_without_source_raises(slow_dma):
    with pytest.raises(InvariantError, match="without a source"):
        slow_dma._memory_to_dock(0, _raw_descriptor(src=None, dst=None))


def test_fifo_to_memory_without_destination_raises(slow_dma):
    with pytest.raises(InvariantError, match="without a destination"):
        slow_dma._fifo_to_memory(0, _raw_descriptor(src=None, dst=None))


def test_memory_to_memory_missing_address_raises(slow_dma):
    with pytest.raises(InvariantError, match="missing an address"):
        slow_dma._memory_to_memory(0, _raw_descriptor(src=0x10_0000, dst=None))


def test_demo_divergence_raises_check_error(monkeypatch):
    class LyingSoftware:
        def __init__(self, offset):
            pass

        def run(self, system, image):
            return types.SimpleNamespace(
                result=np.zeros(1, dtype=np.uint8), elapsed_us=1.0, elapsed_ps=1
            )

    monkeypatch.setattr("repro.sw.SwBrightness", LyingSoftware)
    with pytest.raises(CheckError, match="diverges"):
        repro_main(["demo", "--no-drc"])


# -- dependency pass (--deps) -------------------------------------------------

def test_checks_deps_single_scenario(capsys):
    assert checks_main(["--deps", "table01_resources32"]) == 0
    out = capsys.readouterr().out
    assert "table01_resources32  [depfp]" in out
    assert "fingerprint" in out


def test_checks_deps_all_json(capsys):
    assert checks_main(["--deps", "all", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    closures = payload["closures"]
    assert len(closures) >= 30
    labels = {c["label"] for c in closures}
    assert "rig" in labels
    for closure in closures:
        assert closure["fallback"] is False
        assert len(closure["fingerprint"]) == 64
        assert closure["modules"]


def test_checks_deps_rig(capsys):
    assert checks_main(["--deps", "rig"]) == 0
    out = capsys.readouterr().out
    assert "rig  [depfp]" in out

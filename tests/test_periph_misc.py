"""Tests for UART, GPIO, interrupt controller, JTAGPPC and reset block."""

import pytest

from repro.bus.transaction import Op, Transaction
from repro.errors import BusError
from repro.mem.memory import MemoryArray
from repro.periph.gpio import REG_IN, REG_OUT, Gpio
from repro.periph.intc import REG_ACK, REG_ENABLE, REG_PENDING, InterruptController
from repro.periph.jtagppc import JtagPpc
from repro.periph.reset import ResetBlock
from repro.periph.uart import (
    REG_RX,
    REG_STATUS,
    REG_TX,
    STATUS_RX_AVAIL,
    STATUS_TX_READY,
    Uart,
)

BASE = 0xA000_0000


# -- UART ---------------------------------------------------------------------

def test_uart_tx_logs_bytes():
    uart = Uart(BASE)
    for ch in b"hi":
        uart.access(Transaction(Op.WRITE, BASE + REG_TX, data=ch), 0)
    assert bytes(uart.tx_log) == b"hi"


def test_uart_byte_time_at_115200():
    uart = Uart(BASE, baud=115200)
    assert uart.byte_time_ps == pytest.approx(86_805_556, rel=0.01)


def test_uart_tx_busy_then_ready():
    uart = Uart(BASE)
    uart.access(Transaction(Op.WRITE, BASE + REG_TX, data=0x41), 0)
    _, status = uart.access(Transaction(Op.READ, BASE + REG_STATUS), 0)
    assert not (status & STATUS_TX_READY)
    _, status = uart.access(
        Transaction(Op.READ, BASE + REG_STATUS), uart.tx_busy_until_ps
    )
    assert status & STATUS_TX_READY


def test_uart_rx_path():
    uart = Uart(BASE)
    uart.feed_rx(b"ok")
    _, status = uart.access(Transaction(Op.READ, BASE + REG_STATUS), 0)
    assert status & STATUS_RX_AVAIL
    _, first = uart.access(Transaction(Op.READ, BASE + REG_RX), 0)
    assert first == ord("o")


def test_uart_rx_empty_returns_zero():
    uart = Uart(BASE)
    _, value = uart.access(Transaction(Op.READ, BASE + REG_RX), 0)
    assert value == 0


def test_uart_bad_baud():
    with pytest.raises(BusError):
        Uart(BASE, baud=0)


# -- GPIO ---------------------------------------------------------------------

def test_gpio_led_write_read():
    gpio = Gpio(BASE)
    gpio.access(Transaction(Op.WRITE, BASE + REG_OUT, data=0x5), 0)
    assert gpio.leds == 0x5
    _, value = gpio.access(Transaction(Op.READ, BASE + REG_OUT), 0)
    assert value == 0x5


def test_gpio_buttons():
    gpio = Gpio(BASE)
    gpio.press(0x3)
    _, value = gpio.access(Transaction(Op.READ, BASE + REG_IN), 0)
    assert value == 0x3


def test_gpio_write_to_input_rejected():
    gpio = Gpio(BASE)
    with pytest.raises(BusError):
        gpio.access(Transaction(Op.WRITE, BASE + REG_IN, data=1), 0)


# -- interrupt controller ------------------------------------------------------

def test_intc_latch_and_ack():
    intc = InterruptController(BASE)
    intc.enabled = 0x1
    intc.raise_irq(0, when_ps=100)
    _, pending = intc.access(Transaction(Op.READ, BASE + REG_PENDING), 0)
    assert pending == 0x1
    intc.access(Transaction(Op.WRITE, BASE + REG_ACK, data=0x1), 0)
    _, pending = intc.access(Transaction(Op.READ, BASE + REG_PENDING), 0)
    assert pending == 0


def test_intc_masked_source_invisible():
    intc = InterruptController(BASE)
    intc.raise_irq(3, when_ps=0)
    _, pending = intc.access(Transaction(Op.READ, BASE + REG_PENDING), 0)
    assert pending == 0  # not enabled


def test_intc_handler_called_when_enabled():
    intc = InterruptController(BASE)
    calls = []
    intc.on_irq(2, lambda src, when: calls.append((src, when)))
    intc.access(Transaction(Op.WRITE, BASE + REG_ENABLE, data=0x4), 0)
    intc.raise_irq(2, when_ps=500)
    assert calls == [(2, 500)]


def test_intc_source_range_checked():
    intc = InterruptController(BASE)
    with pytest.raises(BusError):
        intc.raise_irq(32, 0)


def test_intc_raised_log():
    intc = InterruptController(BASE)
    intc.raise_irq(1, 10)
    intc.raise_irq(1, 20)
    assert intc.raised_log == [(1, 10), (1, 20)]


# -- JTAGPPC --------------------------------------------------------------------

def test_jtag_download_readback():
    jtag = JtagPpc()
    memory = MemoryArray(1024)
    jtag.download(memory, 0x10, b"program")
    assert jtag.readback(memory, 0x10, 7) == b"program"


def test_jtag_transfer_estimate_slow():
    jtag = JtagPpc()
    # JTAG should be orders of magnitude slower than the buses.
    one_kb = jtag.estimate_transfer_ps(1024)
    assert one_kb > 1_000_000_000  # > 1 ms


# -- reset block ------------------------------------------------------------------

def test_reset_block_fires_callbacks():
    block = ResetBlock()
    hits = []
    block.register(lambda: hits.append("cpu"))
    block.register(lambda: hits.append("uart"))
    assert block.assert_reset() == 2
    assert hits == ["cpu", "uart"]


def test_reset_does_not_touch_config_memory(system32):
    # The paper: reset "can be used to externally reset the CPU and
    # peripherals without affecting the fabric configuration".
    snapshot = system32.config_memory.snapshot()
    system32.reset_block.assert_reset()
    for address, data in snapshot.items():
        assert (system32.config_memory.read_frame(address) == data).all()

"""Pareto machinery: dominance, fast sort, crowding, slopes, rendering."""

import pytest

from repro.analysis.pareto import (
    MAXIMIZE,
    MINIMIZE,
    Objective,
    crowding_distance,
    dominates,
    non_dominated_sort,
    pareto_front,
    pareto_rank,
    regression_slopes,
    render_front,
)
from repro.errors import InvariantError

MAXMAX = (Objective("a"), Objective("b"))
MAXMIN = (Objective("a"), Objective("b", MINIMIZE))


# -- dominance ----------------------------------------------------------------

def test_dominates_requires_strict_improvement_somewhere():
    assert dominates([2, 2], [1, 2], MAXMAX)
    assert not dominates([2, 2], [2, 2], MAXMAX)
    assert not dominates([2, 1], [1, 2], MAXMAX)  # trade-off: incomparable


def test_minimized_objectives_flip_orientation():
    # b is minimized: (5, 1) beats (5, 3).
    assert dominates([5, 1], [5, 3], MAXMIN)
    assert not dominates([5, 3], [5, 1], MAXMIN)


def test_bad_sense_rejected():
    with pytest.raises(InvariantError, match="sense"):
        Objective("x", "maximize")


def test_row_arity_mismatch_rejected():
    with pytest.raises(InvariantError, match="objective value"):
        dominates([1], [1, 2], MAXMAX)


# -- non-dominated sort --------------------------------------------------------

def test_sort_partitions_into_ranked_fronts():
    rows = [[3, 3], [1, 1], [2, 2], [3, 1], [1, 3]]
    fronts = non_dominated_sort(rows, MAXMAX)
    assert fronts[0] == [0]          # (3,3) dominates everything
    assert fronts[1] == [2, 3, 4]    # mutually incomparable second shell
    assert fronts[2] == [1]
    assert sorted(i for front in fronts for i in front) == list(range(5))


def test_front_of_pure_tradeoff_is_everything():
    rows = [[1, 4], [2, 3], [3, 2], [4, 1]]
    assert pareto_front(rows, MAXMAX) == [0, 1, 2, 3]


def test_front_is_empty_for_no_candidates():
    assert pareto_front([], MAXMAX) == []


def test_duplicate_points_share_a_front():
    rows = [[2, 2], [2, 2], [1, 1]]
    assert pareto_front(rows, MAXMAX) == [0, 1]


# -- crowding distance ---------------------------------------------------------

def test_boundary_candidates_get_infinite_distance():
    rows = [[1, 4], [2, 3], [3, 2], [4, 1]]
    dist = crowding_distance(rows, [0, 1, 2, 3], MAXMAX)
    assert dist[0] == float("inf") and dist[3] == float("inf")
    assert 0 < dist[1] < float("inf")
    assert dist[1] == pytest.approx(dist[2])  # symmetric spacing


def test_tiny_fronts_are_all_boundary():
    assert crowding_distance([[1, 1], [2, 2]], [0, 1], MAXMAX) == {
        0: float("inf"),
        1: float("inf"),
    }


def test_rank_and_crowd_align_with_fronts():
    rows = [[3, 3], [1, 1], [2, 2]]
    ranks, crowd = pareto_rank(rows, MAXMAX)
    assert ranks == [0, 2, 1]
    assert len(crowd) == 3


# -- regression slopes ---------------------------------------------------------

def test_slopes_recover_a_linear_effect():
    points = [{"x": 0, "y": 5}, {"x": 1, "y": 5}, {"x": 2, "y": 5}]
    values = [0.0, 10.0, 20.0]
    slopes = regression_slopes(points, values)
    # x normalized to [0,1] over 0..2 -> slope 20 across the full range.
    assert slopes["x"] == pytest.approx(20.0)
    assert slopes["y"] == 0.0  # never varies


def test_slopes_length_mismatch_rejected():
    with pytest.raises(InvariantError):
        regression_slopes([{"x": 1}], [1.0, 2.0])


def test_slopes_of_empty_input_is_empty():
    assert regression_slopes([], []) == {}


# -- rendering -----------------------------------------------------------------

def test_render_front_marks_members_and_axes():
    rows = [[1, 4], [2, 3], [4, 1], [1, 1]]
    text = render_front(rows, MAXMAX, width=20, height=8)
    assert "#" in text and "." in text
    assert "3 front member(s) '#' of 4 candidate(s)" in text
    assert "a (x, max)" in text and "b (y, max)" in text


def test_render_front_empty_is_graceful():
    assert "no evaluated candidates" in render_front([], MAXMAX)

"""Dependency fingerprints and the CKEY rule family (repro.checks.depfp)."""

import json
import textwrap

import pytest

from repro.checks import depfp
from repro.checks.callgraph import CallGraph
from repro.checks.diagnostics import CheckReport, Severity

from tests.test_checks_callgraph import write_package


def graph_for(tmp_path, modules):
    root = write_package(tmp_path, modules)
    return CallGraph.build(root, package="fakepkg", exclude=())


def fingerprint(tmp_path, body, extra=None):
    """Fingerprint ``fakepkg.scn.root`` whose body is ``body``."""
    modules = {"scn.py": body}
    if extra:
        modules.update(extra)
    graph = graph_for(tmp_path, modules)
    fp = depfp.fingerprint_root("fakepkg.scn", "root", graph=graph)
    assert fp is not None
    return fp


def rules(fp):
    return sorted({d.rule for d in fp.findings})


# -- per-rule known-bad fixtures ----------------------------------------------

def test_ckey001_importlib(tmp_path):
    fp = fingerprint(
        tmp_path,
        """
        import importlib

        def root(name):
            return importlib.import_module(name)
        """,
    )
    assert rules(fp) == ["CKEY001"]
    assert fp.fallback


def test_ckey001_dunder_import_and_eval(tmp_path):
    fp = fingerprint(
        tmp_path,
        """
        def root(name):
            mod = __import__(name)
            return eval("mod.x")
        """,
    )
    assert rules(fp) == ["CKEY001"]
    assert len([d for d in fp.findings if d.rule == "CKEY001"]) == 2


def test_ckey001_called_getattr_result(tmp_path):
    fp = fingerprint(
        tmp_path,
        """
        def root(obj, name):
            return getattr(obj, name)()
        """,
    )
    assert "CKEY001" in rules(fp)


def test_ckey001_uncalled_getattr_is_fine(tmp_path):
    fp = fingerprint(
        tmp_path,
        """
        def root(obj):
            return getattr(obj, "width", 32)
        """,
    )
    assert "CKEY001" not in rules(fp)


def test_ckey002_environ(tmp_path):
    fp = fingerprint(
        tmp_path,
        """
        import os

        def root():
            return os.environ["REPRO_MODE"], os.getenv("REPRO_FAST")
        """,
    )
    assert rules(fp) == ["CKEY002"]
    assert len([d for d in fp.findings if d.rule == "CKEY002"]) == 2
    assert fp.fallback


def test_ckey003_file_reads(tmp_path):
    fp = fingerprint(
        tmp_path,
        """
        import numpy as np
        from pathlib import Path

        def root(path):
            with open(path) as fh:
                text = fh.read()
            blob = Path(path).read_bytes()
            arr = np.load(path)
            return text, blob, arr
        """,
    )
    assert rules(fp) == ["CKEY003"]
    assert len([d for d in fp.findings if d.rule == "CKEY003"]) == 3


def test_ckey004_unresolved_budget(tmp_path, monkeypatch):
    monkeypatch.setattr(depfp, "UNRESOLVED_BUDGET", 1)
    fp = fingerprint(
        tmp_path,
        """
        def root(a, b):
            return a() + b()
        """,
    )
    assert rules(fp) == ["CKEY004"]
    assert fp.fallback
    assert "budget" in fp.findings[0].message


def test_ckey005_untrusted_import(tmp_path):
    fp = fingerprint(
        tmp_path,
        """
        import scipy.linalg

        def root(m):
            return scipy.linalg.det(m)
        """,
    )
    assert rules(fp) == ["CKEY005"]
    assert "scipy" in fp.findings[0].message
    assert fp.fallback


def test_trusted_and_stdlib_imports_are_clean(tmp_path):
    fp = fingerprint(
        tmp_path,
        """
        import hashlib
        import numpy as np

        def root(data):
            return hashlib.sha256(np.asarray(data).tobytes()).hexdigest()
        """,
    )
    assert fp.findings == ()
    assert not fp.fallback


# -- suppression + scope ------------------------------------------------------

def test_noqa_suppresses_single_rule(tmp_path):
    fp = fingerprint(
        tmp_path,
        """
        def root(obj, name):
            return getattr(obj, name)()  # repro: noqa CKEY001
        """,
    )
    assert fp.findings == ()
    assert not fp.fallback


def test_noqa_for_other_rule_does_not_suppress(tmp_path):
    fp = fingerprint(
        tmp_path,
        """
        def root(obj, name):
            return getattr(obj, name)()  # repro: noqa CKEY002
        """,
    )
    assert rules(fp) == ["CKEY001"]


def test_findings_only_from_reached_functions(tmp_path):
    # The env read lives in an *unreached* sibling: the closure stays clean.
    fp = fingerprint(
        tmp_path,
        """
        import os

        def root(x):
            return x + 1

        def unreached():
            return os.environ["HOME"]
        """,
    )
    assert fp.findings == ()
    assert not fp.fallback


def test_finding_in_reached_helper_propagates(tmp_path):
    fp = fingerprint(
        tmp_path,
        """
        from .helper import peek

        def root():
            return peek()
        """,
        extra={
            "helper.py": """
                import os

                def peek():
                    return os.getenv("REPRO_MODE")
            """,
        },
    )
    assert rules(fp) == ["CKEY002"]
    assert fp.fallback


def test_unanalyzable_root_returns_none(tmp_path):
    graph = graph_for(tmp_path, {"scn.py": "def root():\n    return 1\n"})
    assert depfp.fingerprint_root("fakepkg.scn", "missing", graph=graph) is None
    assert depfp.fingerprint_root("fakepkg.nope", "root", graph=graph) is None


# -- JSON round-trip ----------------------------------------------------------

def test_ckey_diagnostics_round_trip_through_report(tmp_path):
    fp = fingerprint(
        tmp_path,
        """
        import os

        def root():
            return os.getenv("REPRO_MODE")
        """,
    )
    report = CheckReport()
    report.diagnostics.extend(fp.findings)
    payload = json.loads(report.to_json())
    assert payload["summary"]["error"] >= 1
    ckey = [d for d in payload["diagnostics"] if d["rule"] == "CKEY002"]
    assert ckey and ckey[0]["severity"] == "error"
    assert fp.as_dict()["findings"][0]["rule"] == "CKEY002"


# -- the shipped tree ---------------------------------------------------------

def test_shipped_tree_has_no_ckey_findings():
    import repro.scenarios  # registration side effects

    report = CheckReport()
    fps = depfp.check_dependencies(report=report)
    assert not report.has_errors, report.format_text()
    assert all(not fp.fallback for fp in fps)


def test_check_dependencies_covers_scenarios_and_rig():
    import repro.scenarios
    from repro.scenarios import all_scenarios

    fps = depfp.check_dependencies()
    labels = {fp.label for fp in fps}
    assert "rig" in labels
    assert {sc.name for sc in all_scenarios()} <= labels


def test_rig_fingerprint_is_sound():
    fp = depfp.rig_fingerprint()
    assert fp is not None
    assert not fp.fallback
    assert "repro.bitstream.generator" in fp.modules


def test_check_dependencies_names_selects_subset():
    import repro.scenarios

    fps = depfp.check_dependencies(names=["rig", "table01_resources32"])
    assert [fp.label for fp in fps] == ["rig", "table01_resources32"]


def test_closure_table_mentions_mode_and_fingerprint():
    import repro.scenarios

    fps = depfp.check_dependencies(names=["table01_resources32"])
    text = depfp.closure_table(fps)
    assert "table01_resources32" in text
    assert "[depfp]" in text
    assert fps[0].fingerprint in text

"""Seeded arrival-trace generators (repro.workloads.traces)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.workloads.traces import (
    ARRIVAL_MODELS,
    TRACE_DTYPE,
    bursty_trace,
    derive_trace_seed,
    diurnal_trace,
    make_trace,
    poisson_trace,
    trace_summary,
    validate_trace,
)


def test_dtype_and_shape():
    trace = poisson_trace(500, 1_000_000, seed=7)
    assert trace.dtype == TRACE_DTYPE
    assert trace.shape == (500,)
    validate_trace(trace)


def test_arrivals_strictly_increasing():
    for model in ARRIVAL_MODELS:
        trace = make_trace(model, 2_000, 500_000, seed=3)
        arrivals = trace["arrival_ps"]
        assert np.all(np.diff(arrivals) >= 1), model
        assert arrivals[0] >= 1


def test_deadlines_after_arrivals():
    trace = poisson_trace(1_000, 1_000_000, seed=5)
    assert np.all(trace["deadline_ps"] > trace["arrival_ps"])


def test_field_ranges():
    trace = poisson_trace(
        2_000, 1_000_000, seed=9, kernels=4, tenants=8, size_classes=3,
        priority_levels=4,
    )
    assert trace["kernel"].min() >= 0 and trace["kernel"].max() < 4
    assert trace["tenant"].min() >= 0 and trace["tenant"].max() < 8
    assert trace["size"].min() >= 0 and trace["size"].max() < 3
    assert trace["priority"].min() >= 0 and trace["priority"].max() < 4


def test_same_seed_is_bit_identical():
    a = poisson_trace(3_000, 750_000, seed=11)
    b = poisson_trace(3_000, 750_000, seed=11)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = poisson_trace(3_000, 750_000, seed=11)
    b = poisson_trace(3_000, 750_000, seed=12)
    assert not np.array_equal(a, b)


def test_models_differ_at_same_seed():
    traces = {m: make_trace(m, 2_000, 500_000, seed=4) for m in ARRIVAL_MODELS}
    arr = [traces[m]["arrival_ps"] for m in ARRIVAL_MODELS]
    assert not np.array_equal(arr[0], arr[1])
    assert not np.array_equal(arr[0], arr[2])


def test_burstiness_increases_gap_variance():
    smooth = poisson_trace(20_000, 1_000_000, seed=6)
    bursty = bursty_trace(20_000, 1_000_000, seed=6)
    cv = lambda t: np.diff(t["arrival_ps"]).std() / np.diff(t["arrival_ps"]).mean()  # noqa: E731
    assert cv(bursty) > cv(smooth)


def test_diurnal_mean_gap_tracks_requested_mean():
    trace = diurnal_trace(50_000, 2_000_000, seed=8)
    mean_gap = np.diff(trace["arrival_ps"]).mean()
    assert 0.5 * 2_000_000 < mean_gap < 1.5 * 2_000_000


def test_sticky_kernels_form_runs():
    sticky = poisson_trace(10_000, 1_000_000, seed=2, stickiness=0.95)
    loose = poisson_trace(10_000, 1_000_000, seed=2, stickiness=0.0)
    switches = lambda t: int(np.count_nonzero(np.diff(t["kernel"]) != 0))  # noqa: E731
    assert switches(sticky) < switches(loose)


def test_derive_trace_seed_is_stable_and_label_sensitive():
    assert derive_trace_seed(7, "a") == derive_trace_seed(7, "a")
    assert derive_trace_seed(7, "a") != derive_trace_seed(7, "b")
    assert derive_trace_seed(7, "a") != derive_trace_seed(8, "a")


def test_unknown_model_rejected():
    with pytest.raises(KernelError):
        make_trace("fractal", 100, 1_000_000, seed=1)


def test_nonpositive_count_rejected():
    with pytest.raises(KernelError):
        poisson_trace(0, 1_000_000, seed=1)
    with pytest.raises(KernelError):
        poisson_trace(-5, 1_000_000, seed=1)


def test_nonpositive_gap_rejected():
    with pytest.raises(KernelError):
        poisson_trace(100, 0, seed=1)


def test_validate_rejects_unsorted():
    trace = poisson_trace(100, 1_000_000, seed=1)
    trace["arrival_ps"][10] = trace["arrival_ps"][50]
    with pytest.raises(KernelError):
        validate_trace(trace)


def test_validate_rejects_kernel_out_of_range():
    trace = poisson_trace(100, 1_000_000, seed=1, kernels=4)
    with pytest.raises(KernelError):
        validate_trace(trace, kernels=2)


def test_trace_summary_fields():
    trace = poisson_trace(1_000, 1_000_000, seed=1)
    summary = trace_summary(trace)
    assert summary["requests"] == 1_000
    assert summary["span_ps"] > 0
    assert summary["mean_gap_ps"] > 0


@settings(max_examples=20, deadline=None)
@given(
    model=st.sampled_from(list(ARRIVAL_MODELS)),
    count=st.integers(min_value=1, max_value=400),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_every_model_always_yields_a_valid_trace(model, count, seed):
    trace = make_trace(model, count, 250_000, seed)
    validate_trace(trace, kernels=4)
    assert trace.shape == (count,)

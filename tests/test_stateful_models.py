"""Model-based (stateful) property tests.

Hypothesis drives random operation sequences against a component and a
trivially correct reference model in lockstep; any divergence is a bug in
the component.  Covered: the output FIFO vs a deque, the cache's tag state
vs an explicit LRU dictionary, and the configuration memory vs a dict of
frames.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.cpu.cache import Cache
from repro.dock.fifo import OutputFifo
from repro.errors import TransferError
from repro.fabric.config_memory import ConfigMemory
from repro.fabric.device import XC2VP4
from repro.fabric.frames import BlockType, FrameAddress


class FifoMachine(RuleBasedStateMachine):
    """OutputFifo vs collections.deque."""

    def __init__(self):
        super().__init__()
        self.fifo = OutputFifo(depth=8, width_bits=32)
        self.model = []

    @rule(value=st.integers(0, 2**32 - 1))
    def push(self, value):
        if len(self.model) >= 8:
            try:
                self.fifo.push(value)
                raise AssertionError("push should have overflowed")
            except TransferError:
                return
        self.fifo.push(value)
        self.model.append(value)

    @precondition(lambda self: self.model)
    @rule()
    def pop(self):
        assert self.fifo.pop() == self.model.pop(0)

    @rule()
    def clear(self):
        self.fifo.clear()
        self.model.clear()

    @invariant()
    def sizes_agree(self):
        assert len(self.fifo) == len(self.model)
        assert self.fifo.empty == (not self.model)
        assert self.fifo.full == (len(self.model) >= 8)


class CacheMachine(RuleBasedStateMachine):
    """Cache tags vs an explicit per-set LRU list."""

    SETS = 4
    WAYS = 2
    LINE = 32

    def __init__(self):
        super().__init__()
        self.cache = Cache(size_bytes=self.SETS * self.WAYS * self.LINE,
                           line_bytes=self.LINE, ways=self.WAYS)
        # Per-set list of (tag, dirty), most recent first.
        self.model = {s: [] for s in range(self.SETS)}

    def _locate(self, address):
        line = address // self.LINE
        return line % self.SETS, line // self.SETS

    @rule(address=st.integers(0, 4095), write=st.booleans())
    def access(self, address, write):
        index, tag = self._locate(address)
        lines = self.model[index]
        expected_hit = any(t == tag for t, _ in lines)
        expected_evict = None
        if expected_hit:
            pos = next(i for i, (t, _) in enumerate(lines) if t == tag)
            entry = lines.pop(pos)
            lines.insert(0, (tag, entry[1] or write))
        else:
            if len(lines) >= self.WAYS:
                victim_tag, victim_dirty = lines.pop()
                if victim_dirty:
                    victim_line = victim_tag * self.SETS + index
                    expected_evict = victim_line * self.LINE
            lines.insert(0, (tag, write))
        hit, evicted = self.cache.access(address, write=write)
        assert hit == expected_hit
        assert evicted == expected_evict

    @rule()
    def invalidate(self):
        self.cache.invalidate()
        self.model = {s: [] for s in range(self.SETS)}

    @invariant()
    def residency_agrees(self):
        for index, lines in self.model.items():
            for tag, _ in lines:
                line = tag * self.SETS + index
                assert self.cache.contains(line * self.LINE)

    @invariant()
    def dirty_counts_agree(self):
        expected = sum(1 for lines in self.model.values() for _, d in lines if d)
        assert self.cache.dirty_line_count() == expected


class ConfigMemoryMachine(RuleBasedStateMachine):
    """ConfigMemory vs a plain dict of frames."""

    def __init__(self):
        super().__init__()
        self.memory = ConfigMemory(XC2VP4)
        self.words = self.memory.geometry.words_per_frame
        self.model = {}

    def _addr(self, major, minor):
        return FrameAddress(BlockType.CLB, major % 4, minor % 4)

    @rule(major=st.integers(0, 3), minor=st.integers(0, 3), fill=st.integers(0, 2**32 - 1))
    def write(self, major, minor, fill):
        address = self._addr(major, minor)
        data = np.full(self.words, fill, dtype=np.uint32)
        self.memory.write_frame(address, data)
        self.model[address] = data

    @rule(major=st.integers(0, 3), minor=st.integers(0, 3),
          fill=st.integers(0, 2**32 - 1), mask=st.integers(0, 2**32 - 1))
    def merge(self, major, minor, fill, mask):
        address = self._addr(major, minor)
        data = np.full(self.words, fill, dtype=np.uint32)
        mask_arr = np.full(self.words, mask, dtype=np.uint32)
        self.memory.merge_frame(address, data, mask_arr)
        current = self.model.get(address, np.zeros(self.words, dtype=np.uint32))
        self.model[address] = (current & ~mask_arr) | (data & mask_arr)

    @rule(major=st.integers(0, 3), minor=st.integers(0, 3))
    def read(self, major, minor):
        address = self._addr(major, minor)
        expected = self.model.get(address, np.zeros(self.words, dtype=np.uint32))
        assert np.array_equal(self.memory.read_frame(address), expected)

    @rule()
    def snapshot_restore_roundtrip(self):
        snapshot = self.memory.snapshot()
        self.memory.write_frame(self._addr(0, 0), np.full(self.words, 0xAA, dtype=np.uint32))
        self.memory.restore(snapshot)
        for address, data in self.model.items():
            assert np.array_equal(self.memory.read_frame(address), data)


FifoMachine.TestCase.settings = settings(max_examples=40, stateful_step_count=30, deadline=None)
CacheMachine.TestCase.settings = settings(max_examples=40, stateful_step_count=40, deadline=None)
ConfigMemoryMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=15, deadline=None
)

TestFifoModel = FifoMachine.TestCase
TestCacheModel = CacheMachine.TestCase
TestConfigMemoryModel = ConfigMemoryMachine.TestCase

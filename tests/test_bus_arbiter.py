"""Tests for bus masters and arbitration."""

import pytest

from repro.bus.arbiter import (
    CPU_DATA,
    DMA_ENGINE,
    FixedPriorityArbiter,
    Master,
    RoundRobinArbiter,
)
from repro.bus.opb import make_opb
from repro.bus.plb import make_plb
from repro.bus.transaction import Op, Transaction
from repro.engine.clock import ClockDomain, mhz
from repro.errors import BusError
from repro.mem.controllers import DdrController
from repro.mem.memory import MemoryArray


@pytest.fixture
def plb():
    bus = make_plb(ClockDomain("bus", mhz(100)))
    memory = MemoryArray(1 << 16, "m")
    bus.attach(DdrController(memory, 0, "mem"), 0, 1 << 16, name="mem")
    return bus


def txn(address=0):
    return Transaction(Op.READ, address)


def test_master_priority_range_checked():
    with pytest.raises(BusError):
        Master("bad", priority=4)


def test_fixed_priority_orders_by_priority():
    arbiter = FixedPriorityArbiter()
    requests = [(DMA_ENGINE, txn()), (CPU_DATA, txn(8))]
    assert arbiter.order(requests) == [1, 0]  # CPU (prio 0) first


def test_fixed_priority_ties_broken_by_position():
    arbiter = FixedPriorityArbiter()
    a = Master("a", priority=2)
    b = Master("b", priority=2)
    assert arbiter.order([(a, txn()), (b, txn(8))]) == [0, 1]


def test_round_robin_rotates_within_priority():
    arbiter = RoundRobinArbiter()
    a = Master("a", priority=2)
    b = Master("b", priority=2)
    requests = [(a, txn()), (b, txn(8))]
    first = arbiter.order(requests)
    second = arbiter.order(requests)
    assert first[0] != second[0]  # last winner demoted


def test_round_robin_respects_priority_classes():
    arbiter = RoundRobinArbiter()
    requests = [(DMA_ENGINE, txn()), (CPU_DATA, txn(8))]
    assert arbiter.order(requests)[0] == 1
    assert arbiter.order(requests)[0] == 1  # priority always beats rotation


def test_request_concurrent_loser_waits(plb):
    completions = plb.request_concurrent(
        0, [(DMA_ENGINE, txn(0)), (CPU_DATA, txn(8))], FixedPriorityArbiter()
    )
    dma_done, cpu_done = completions[0].done_ps, completions[1].done_ps
    assert cpu_done < dma_done  # the CPU won arbitration; the DMA queued


def test_request_concurrent_returns_input_order(plb):
    completions = plb.request_concurrent(
        0,
        [(DMA_ENGINE, Transaction(Op.WRITE, 0, data=7)), (CPU_DATA, txn(8))],
        FixedPriorityArbiter(),
    )
    assert completions[0].value is None  # write
    assert completions[1].value == 0  # read result


def test_per_master_stats_recorded(plb):
    plb.request(0, txn(0), master=CPU_DATA)
    plb.request(0, txn(8), master=DMA_ENGINE)
    assert plb.stats.get("master[cpu-data].reads") == 1
    assert plb.stats.get("master[dma].reads") == 1
    assert plb.stats.get("master[cpu-data].busy_ps") > 0


def test_contention_time_attributed_to_loser(plb):
    plb.request_concurrent(
        0, [(DMA_ENGINE, txn(0)), (CPU_DATA, txn(8))], FixedPriorityArbiter()
    )
    assert plb.stats.get("master[dma].contention_ps") > 0
    assert plb.stats.get("master[cpu-data].contention_ps") == 0


def test_master_threads_through_split_bursts(plb):
    plb.request(
        0,
        Transaction(Op.READ, 0, size_bytes=8, beats=40),
        master=DMA_ENGINE,
    )
    assert plb.stats.get("master[dma].reads") >= 3  # 40 beats -> 3 sub-bursts


def test_invalid_arbiter_order_rejected(plb):
    class BrokenArbiter:
        def order(self, requests):
            return [0, 0]

    with pytest.raises(BusError, match="invalid grant order"):
        plb.request_concurrent(
            0, [(CPU_DATA, txn(0)), (DMA_ENGINE, txn(8))], BrokenArbiter()
        )

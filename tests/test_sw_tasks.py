"""Tests for the software task implementations and their cost models."""

import numpy as np
import pytest

from repro.sw import (
    SwBlend,
    SwBrightness,
    SwFade,
    SwJenkinsHash,
    SwPatternMatch,
    SwSha1,
    blend_ref,
    brightness_ref,
    fade_ref,
    match_counts,
)
from repro.kernels import lookup2, sha1
from repro.workloads import binary_image, binary_pattern, grayscale_image, random_key


# -- functional correctness -----------------------------------------------------

def test_match_counts_reference_simple():
    image = np.zeros((8, 8), dtype=bool)
    pattern = np.zeros((8, 8), dtype=bool)
    assert match_counts(image, pattern)[0, 0] == 64


def test_match_counts_shape():
    counts = match_counts(binary_image(20, 30), binary_pattern())
    assert counts.shape == (13, 23)


def test_match_counts_rejects_small_image():
    with pytest.raises(Exception):
        match_counts(np.zeros((4, 4), dtype=bool), binary_pattern())


def test_brightness_ref_saturation():
    img = np.array([250, 5], dtype=np.uint8)
    assert list(brightness_ref(img, 10)) == [255, 15]
    assert list(brightness_ref(img, -10)) == [240, 0]


def test_blend_ref_saturation():
    a = np.array([200], dtype=np.uint8)
    b = np.array([100], dtype=np.uint8)
    assert blend_ref(a, b)[0] == 255


def test_fade_ref_endpoints():
    a = np.array([200], dtype=np.uint8)
    b = np.array([50], dtype=np.uint8)
    assert fade_ref(a, b, 0.0)[0] == 50
    assert fade_ref(a, b, 1.0)[0] == 200


# -- run() result plumbing ---------------------------------------------------------

def test_pattern_match_run_returns_counts(system32, pattern):
    image = binary_image(10, 20, seed=40)
    result = SwPatternMatch(pattern).run(system32, image)
    assert np.array_equal(result.result, match_counts(image, pattern))
    assert result.elapsed_ps > 0
    assert result.elapsed_us == result.elapsed_ps / 1e6


def test_hash_run_returns_digest(system32):
    key = random_key(50, seed=41)
    result = SwJenkinsHash().run(system32, key)
    assert result.result == lookup2(key)


def test_sha1_run_returns_digest(system64):
    message = random_key(100, seed=42)
    result = SwSha1().run(system64, message)
    assert result.result == sha1(message)


def test_image_tasks_return_arrays(system32):
    img = grayscale_image(8, 8, seed=43)
    img2 = grayscale_image(8, 8, seed=44)
    assert np.array_equal(SwBrightness(20).run(system32, img).result, brightness_ref(img, 20))
    assert np.array_equal(SwBlend().run(system32, img, img2).result, blend_ref(img, img2))
    assert np.array_equal(SwFade(0.5).run(system32, img, img2).result, fade_ref(img, img2, 0.5))


# -- cost-model behaviour -----------------------------------------------------------

def test_sw_time_scales_with_input(system32):
    short = SwJenkinsHash().run(system32, random_key(120)).elapsed_ps
    long = SwJenkinsHash().run(system32, random_key(1200)).elapsed_ps
    assert 8 < long / short < 12


def test_sw_pattern_time_scales_with_positions(system32, pattern):
    small = SwPatternMatch(pattern).run(system32, binary_image(8, 20)).elapsed_ps
    big = SwPatternMatch(pattern).run(system32, binary_image(8, 33)).elapsed_ps
    assert big > small * 1.5


def test_sw_faster_on_64bit_system(system32, system64, pattern):
    """Both clock and memory system favour the 64-bit platform."""
    image = binary_image(9, 24, seed=45)
    t32 = SwPatternMatch(pattern).run(system32, image).elapsed_ps
    t64 = SwPatternMatch(pattern).run(system64, image).elapsed_ps
    assert t64 < t32 / 2


def test_sha1_call_overhead_visible_for_small_inputs(system64):
    # "The software implementation has a large overhead for smaller data
    #  sets" — per-byte cost must drop sharply as inputs grow.
    small = SwSha1().run(system64, random_key(64)).elapsed_ps / 64
    large = SwSha1().run(system64, random_key(4096)).elapsed_ps / 4096
    assert small > 1.5 * large


def test_image_tasks_pay_for_extra_source(system32):
    img = grayscale_image(16, 16, seed=46)
    img2 = grayscale_image(16, 16, seed=47)
    one_src = SwBrightness(10).run(system32, img).elapsed_ps
    two_src = SwBlend().run(system32, img, img2).elapsed_ps
    assert two_src > one_src


def test_fade_costs_more_than_blend(system32):
    img = grayscale_image(16, 16, seed=48)
    img2 = grayscale_image(16, 16, seed=49)
    blend = SwBlend().run(system32, img, img2).elapsed_ps
    fade = SwFade(0.5).run(system32, img, img2).elapsed_ps
    assert fade > blend  # the 8.8 multiply is not free


def test_invalid_parameters_rejected():
    with pytest.raises(Exception):
        SwBrightness(999)
    with pytest.raises(Exception):
        SwFade(2.0)


# -- cost-model count validation ---------------------------------------------

def test_costmodel_negative_counts_raise(system64):
    from repro.errors import TransferError
    from repro.sw.costmodel import (
        charge_byte_reads,
        charge_byte_writes,
        charge_repeated_word_reads,
        charge_word_reads,
        charge_word_writes,
    )

    base = system64.ext_mem_base
    with pytest.raises(TransferError):
        charge_word_reads(system64, base, -1)
    with pytest.raises(TransferError):
        charge_word_writes(system64, base, -1)
    with pytest.raises(TransferError):
        charge_byte_reads(system64, base, -1)
    with pytest.raises(TransferError):
        charge_byte_writes(system64, base, -8)
    with pytest.raises(TransferError):
        charge_repeated_word_reads(system64, base, -4, 16)
    with pytest.raises(TransferError):
        charge_repeated_word_reads(system64, base, 64, -1)


def test_costmodel_zero_counts_are_free_noops(system64):
    from repro.sw.costmodel import (
        charge_byte_reads,
        charge_byte_writes,
        charge_word_reads,
        charge_word_writes,
    )

    before = system64.cpu.now_ps
    base = system64.ext_mem_base
    charge_word_reads(system64, base, 0)
    charge_word_writes(system64, base, 0)
    charge_byte_reads(system64, base, 0)
    charge_byte_writes(system64, base, 0)
    assert system64.cpu.now_ps == before

"""Serve scenarios: registration, smoke runs, sweep-orchestration equality."""

import json

import pytest

from repro.scenarios import all_scenarios, get_scenario
from repro.scenarios.registry import run_scenario
from repro.sweep import ResultCache, run_sweep

SERVE_SCENARIOS = ["serve_policy_matrix", "serve_headline", "serve_fragmentation"]


def _wire(outcome):
    return [
        json.dumps(o.result.to_dict(), sort_keys=True) if o.result else None
        for o in outcome.outcomes
    ]


def test_serve_scenarios_registered_with_tag():
    tagged = {s.name for s in all_scenarios(tags=["serve"])}
    assert tagged == set(SERVE_SCENARIOS)
    for name in SERVE_SCENARIOS:
        entry = get_scenario(name)
        assert "serve" in entry.tags
        assert "system64" in entry.tags
        assert entry.smoke_params  # every serve scenario has a cheap mode


@pytest.mark.parametrize("name", SERVE_SCENARIOS)
def test_serve_scenarios_smoke(name):
    result = run_scenario(name, smoke=True)
    assert result.rows, name
    assert result.headline, name


def test_headline_smoke_reports_percentiles_and_utilization():
    result = run_scenario("serve_headline", smoke=True)
    headline = result.headline
    assert headline["p50_ps"] <= headline["p99_ps"] <= headline["p999_ps"]
    assert 0.0 < headline["utilization"] <= 1.0
    assert headline["throughput_rps"] > 0
    assert result.rows  # the amortization curve is never empty


def test_policy_matrix_smoke_covers_all_combos():
    result = run_scenario("serve_policy_matrix", smoke=True)
    combos = {(row[0], row[1]) for row in result.rows}
    assert len(combos) == 6


def test_fragmentation_smoke_has_both_modes():
    result = run_scenario("serve_fragmentation", smoke=True)
    modes = [row[0] for row in result.rows]
    assert modes == ["compact", "evict-only"]
    assert result.headline["compact_defrag_events"] >= 1
    assert result.headline["evict-only_defrag_events"] == 0


# -- orchestration equality (parallel == serial == cached) -------------------

def test_serve_sweep_parallel_equals_serial_equals_cached(tmp_path):
    scenarios = all_scenarios(tags=["serve"])
    serial = run_sweep(scenarios, jobs=1, cache=None, smoke=True)
    parallel = run_sweep(scenarios, jobs=2, cache=None, smoke=True)
    assert serial.ok and parallel.ok
    assert _wire(serial) == _wire(parallel)

    cache = ResultCache(str(tmp_path / "cache"))
    cold = run_sweep(scenarios, jobs=1, cache=cache, smoke=True)
    warm = run_sweep(scenarios, jobs=1, cache=cache, smoke=True)
    assert cold.ok and warm.ok
    assert _wire(serial) == _wire(cold) == _wire(warm)
    assert all(o.cache == "hit" for o in warm.outcomes)

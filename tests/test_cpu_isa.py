"""Tests for the PPC405 instruction-cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.isa import (
    CALL_OVERHEAD,
    CPI_BRANCH_NOT_TAKEN,
    CPI_BRANCH_TAKEN,
    CPI_MUL,
    LOOP_OVERHEAD,
    InstructionMix,
)


def test_alu_is_single_cycle():
    assert InstructionMix(alu=10).cycles() == 10


def test_mul_is_multi_cycle():
    assert InstructionMix(mul=2).cycles() == 2 * CPI_MUL


def test_taken_branch_costs_refill():
    taken = InstructionMix(branches=1, taken_fraction=1.0).cycles()
    not_taken = InstructionMix(branches=1, taken_fraction=0.0).cycles()
    assert taken == CPI_BRANCH_TAKEN
    assert not_taken == CPI_BRANCH_NOT_TAKEN
    assert taken > not_taken


def test_mixed_branch_fraction():
    mix = InstructionMix(branches=10, taken_fraction=0.5)
    assert mix.cycles() == 5 * CPI_BRANCH_TAKEN + 5 * CPI_BRANCH_NOT_TAKEN


def test_instruction_count():
    mix = InstructionMix(alu=2, mul=1, load=3, store=1, branches=2)
    assert mix.instructions == 9


def test_negative_counts_rejected():
    with pytest.raises(ValueError):
        InstructionMix(alu=-1)


def test_bad_fraction_rejected():
    with pytest.raises(ValueError):
        InstructionMix(branches=1, taken_fraction=1.5)


def test_addition_merges_counts():
    total = InstructionMix(alu=2, branches=2, taken_fraction=1.0) + InstructionMix(
        alu=3, branches=2, taken_fraction=0.0
    )
    assert total.alu == 5
    assert total.branches == 4
    assert total.taken_fraction == 0.5


def test_addition_without_branches_keeps_default_fraction():
    total = InstructionMix(alu=1) + InstructionMix(load=1)
    assert total.taken_fraction == 1.0


def test_scaling():
    mix = InstructionMix(alu=2, load=1) * 3
    assert mix.alu == 6
    assert mix.load == 3


def test_scaling_negative_rejected():
    with pytest.raises(ValueError):
        InstructionMix(alu=1) * -2


def test_loop_overhead_shape():
    assert LOOP_OVERHEAD.branches == 1
    assert LOOP_OVERHEAD.taken_fraction == 1.0


def test_call_overhead_includes_memory_ops():
    assert CALL_OVERHEAD.load > 0 and CALL_OVERHEAD.store > 0


mixes = st.builds(
    InstructionMix,
    alu=st.floats(0, 100),
    mul=st.floats(0, 20),
    load=st.floats(0, 50),
    store=st.floats(0, 50),
    branches=st.floats(0, 30),
    taken_fraction=st.floats(0, 1),
)


@given(mixes, mixes)
def test_cycles_additive(a, b):
    assert (a + b).cycles() == pytest.approx(a.cycles() + b.cycles())


@given(mixes, st.floats(0, 10))
def test_cycles_scale_linearly(mix, factor):
    assert (mix * factor).cycles() == pytest.approx(mix.cycles() * factor)

"""Tests for the PLB Dock's output FIFO."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dock.fifo import PAPER_FIFO_DEPTH, OutputFifo
from repro.errors import TransferError


def test_paper_depth_is_2047():
    # "The current output FIFO stores up to 2047 64-bit values."
    assert PAPER_FIFO_DEPTH == 2047
    assert OutputFifo().depth == 2047


def test_push_pop_fifo_order():
    fifo = OutputFifo(depth=4)
    fifo.push_many([1, 2, 3])
    assert fifo.pop_many(3) == [1, 2, 3]


def test_len_free_full_empty():
    fifo = OutputFifo(depth=2)
    assert fifo.empty and fifo.free == 2
    fifo.push(1)
    assert len(fifo) == 1 and fifo.free == 1
    fifo.push(2)
    assert fifo.full


def test_overflow_raises_and_counts():
    fifo = OutputFifo(depth=1)
    fifo.push(1)
    with pytest.raises(TransferError):
        fifo.push(2)
    assert fifo.overflows == 1


def test_pop_empty_raises():
    with pytest.raises(TransferError):
        OutputFifo(depth=1).pop()


def test_pop_many_bounds_checked():
    fifo = OutputFifo(depth=4)
    fifo.push(1)
    with pytest.raises(TransferError):
        fifo.pop_many(2)


def test_values_masked_to_width():
    fifo = OutputFifo(depth=2, width_bits=32)
    fifo.push(0x1_FFFF_FFFF)
    assert fifo.pop() == 0xFFFFFFFF


def test_invalid_geometry():
    with pytest.raises(TransferError):
        OutputFifo(depth=0)
    with pytest.raises(TransferError):
        OutputFifo(width_bits=16)


def test_clear():
    fifo = OutputFifo(depth=4)
    fifo.push_many([1, 2])
    fifo.clear()
    assert fifo.empty


@given(st.lists(st.integers(0, 2**64 - 1), max_size=50))
def test_fifo_preserves_order_and_values(values):
    fifo = OutputFifo(depth=64)
    fifo.push_many(values)
    assert fifo.pop_many(len(values)) == [v & (2**64 - 1) for v in values]

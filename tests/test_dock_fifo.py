"""Tests for the PLB Dock's output FIFO."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dock.fifo import PAPER_FIFO_DEPTH, OutputFifo
from repro.errors import TransferError


def test_paper_depth_is_2047():
    # "The current output FIFO stores up to 2047 64-bit values."
    assert PAPER_FIFO_DEPTH == 2047
    assert OutputFifo().depth == 2047


def test_push_pop_fifo_order():
    fifo = OutputFifo(depth=4)
    fifo.push_many([1, 2, 3])
    assert fifo.pop_many(3) == [1, 2, 3]


def test_len_free_full_empty():
    fifo = OutputFifo(depth=2)
    assert fifo.empty and fifo.free == 2
    fifo.push(1)
    assert len(fifo) == 1 and fifo.free == 1
    fifo.push(2)
    assert fifo.full


def test_overflow_raises_and_counts():
    fifo = OutputFifo(depth=1)
    fifo.push(1)
    with pytest.raises(TransferError):
        fifo.push(2)
    assert fifo.overflows == 1


def test_pop_empty_raises():
    with pytest.raises(TransferError):
        OutputFifo(depth=1).pop()


def test_pop_many_bounds_checked():
    fifo = OutputFifo(depth=4)
    fifo.push(1)
    with pytest.raises(TransferError):
        fifo.pop_many(2)


def test_values_masked_to_width():
    fifo = OutputFifo(depth=2, width_bits=32)
    fifo.push(0x1_FFFF_FFFF)
    assert fifo.pop() == 0xFFFFFFFF


def test_invalid_geometry():
    with pytest.raises(TransferError):
        OutputFifo(depth=0)
    with pytest.raises(TransferError):
        OutputFifo(width_bits=16)


def test_clear():
    fifo = OutputFifo(depth=4)
    fifo.push_many([1, 2])
    fifo.clear()
    assert fifo.empty


@given(st.lists(st.integers(0, 2**64 - 1), max_size=50))
def test_fifo_preserves_order_and_values(values):
    fifo = OutputFifo(depth=64)
    fifo.push_many(values)
    assert fifo.pop_many(len(values)) == [v & (2**64 - 1) for v in values]

# -- ring-buffer edge cases (vectorized fast path) --------------------------


def test_wraparound_block_push_pop():
    """Blocks that straddle the ring boundary stay in order."""
    fifo = OutputFifo(depth=8)
    fifo.push_many(range(6))
    assert fifo.pop_many(5) == [0, 1, 2, 3, 4]  # head now at 5
    fifo.push_many(range(100, 106))  # wraps past index 7
    assert fifo.pop_many(7) == [5, 100, 101, 102, 103, 104, 105]
    assert fifo.empty


def test_drain_while_full_then_refill():
    fifo = OutputFifo(depth=4)
    fifo.push_many([1, 2, 3, 4])
    assert fifo.full
    assert [int(v) for v in fifo.pop_array(4)] == [1, 2, 3, 4]
    assert fifo.empty
    fifo.push_many([5, 6, 7, 8])
    assert fifo.full
    assert fifo.pop_many(4) == [5, 6, 7, 8]


def test_underflow_raises_for_scalar_and_block():
    fifo = OutputFifo(depth=4)
    fifo.push(1)
    with pytest.raises(TransferError):
        fifo.pop_array(2)
    fifo.pop()
    with pytest.raises(TransferError):
        fifo.pop()


def test_push_many_overflow_keeps_what_fits_and_counts_once():
    """Matches the scalar loop: fill to depth, then raise with one overflow."""
    fifo = OutputFifo(depth=3)
    with pytest.raises(TransferError):
        fifo.push_many([1, 2, 3, 4, 5])
    assert fifo.overflows == 1
    assert len(fifo) == 3
    assert fifo.pop_many(3) == [1, 2, 3]


def test_push_many_accepts_numpy_arrays():
    import numpy as np

    fifo = OutputFifo(depth=8, width_bits=32)
    fifo.push_many(np.array([0x1_0000_0001, 2], dtype=np.uint64))
    assert fifo.pop_many(2) == [1, 2]


@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(1, 7)),
        min_size=1,
        max_size=40,
    )
)
def test_ring_buffer_matches_reference_deque(ops):
    """Interleaved block pushes/pops behave like a plain deque."""
    from collections import deque

    fifo = OutputFifo(depth=16)
    model = deque()
    counter = 0
    for is_push, amount in ops:
        if is_push:
            amount = min(amount, fifo.free)
            if amount == 0:
                continue
            values = list(range(counter, counter + amount))
            counter += amount
            fifo.push_many(values)
            model.extend(values)
        else:
            amount = min(amount, len(fifo))
            assert fifo.pop_many(amount) == [model.popleft() for _ in range(amount)]
        assert len(fifo) == len(model)
    assert fifo.pop_many(len(fifo)) == list(model)

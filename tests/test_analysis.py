"""Tests for the lower-bound assessment tools."""

import numpy as np
import pytest

from repro.analysis import (
    Method,
    TaskProfile,
    assess,
    best_method,
    hardware_lower_bound_ps,
    measure_transfer_costs,
)
from repro.core.apps import HwJenkinsHash
from repro.errors import TransferError
from repro.sw import SwJenkinsHash
from repro.workloads import random_key


def test_costs_measured_for_both_systems(system32, system64):
    costs32 = measure_transfer_costs(system32)
    costs64 = measure_transfer_costs(system64)
    assert not costs32.supports_dma
    assert costs64.supports_dma
    assert costs32.pio_write_ns > costs64.pio_write_ns


def test_profile_validation():
    with pytest.raises(TransferError):
        TaskProfile("bad", words_in=-1, words_out=0)


def test_lower_bound_scales_with_volume(system32):
    costs = measure_transfer_costs(system32)
    small = hardware_lower_bound_ps(costs, TaskProfile("s", 100, 100), Method.PIO, 5000)
    large = hardware_lower_bound_ps(costs, TaskProfile("l", 200, 200), Method.PIO, 5000)
    assert large == pytest.approx(2 * small, rel=0.01)


def test_dma_rejected_on_32bit(system32):
    costs = measure_transfer_costs(system32)
    with pytest.raises(TransferError):
        hardware_lower_bound_ps(costs, TaskProfile("x", 1, 1), Method.DMA, 5000)


def test_lower_bound_below_actual_hw_time(system32, manager32):
    """The bound must be optimistic: no real driver can beat it."""
    manager32.load("lookup2")
    key = random_key(2048, seed=70)
    hw = HwJenkinsHash().run(system32, key)
    profile = TaskProfile("lookup2", words_in=len(key) // 4, words_out=1)
    result = assess(system32, profile, software_ps=10**9, method=Method.PIO)
    assert result.lower_bound_ps < hw.elapsed_ps


def test_assessment_predicts_hash_is_marginal(system32):
    """The paper's own conclusion for lookup2: transfer-bound, little to win."""
    key = random_key(4096, seed=71)
    sw = SwJenkinsHash().run(system32, key)
    profile = TaskProfile("lookup2", words_in=len(key) // 4, words_out=1)
    result = assess(system32, profile, software_ps=sw.elapsed_ps)
    assert result.max_speedup < 3  # no hash kernel can blow past software here


def test_assessment_predicts_patmatch_can_win(system32, pattern):
    """Pattern matching moves few words per position: huge headroom."""
    from repro.sw import SwPatternMatch
    from repro.workloads import binary_image

    image = binary_image(16, 40, seed=72)
    sw = SwPatternMatch(pattern).run(system32, image)
    positions = (16 - 7) * (40 - 7)
    profile = TaskProfile("patmatch", words_in=positions // 4, words_out=positions // 4)
    result = assess(system32, profile, software_ps=sw.elapsed_ps)
    assert result.worthwhile
    assert result.max_speedup > 26


def test_best_method_prefers_dma_on_64bit(system64):
    profile = TaskProfile("stream", words_in=4096, words_out=4096, prep_cycles=0)
    result = best_method(system64, profile, software_ps=10**10)
    assert result.method is Method.DMA


def test_prep_cycles_shrink_the_headroom(system64):
    base = TaskProfile("t", 1024, 1024)
    heavy = TaskProfile("t", 1024, 1024, prep_cycles=1_000_000)
    sw = 10**9
    light_result = best_method(system64, base, sw)
    heavy_result = best_method(system64, heavy, sw)
    assert heavy_result.max_speedup < light_result.max_speedup


def test_assessment_str_mentions_verdict(system32):
    result = assess(system32, TaskProfile("demo", 10, 10), software_ps=10**9)
    assert "demo" in str(result)
    assert "max speedup" in str(result)

"""Tests for the configuration packet protocol."""

import numpy as np
import pytest

from repro.bitstream.packets import (
    SYNC_WORD,
    TYPE1_MAX_WORDS,
    Command,
    PacketReader,
    PacketWriter,
    Register,
)
from repro.errors import BitstreamError, CRCError


def roundtrip(writer: PacketWriter):
    return list(PacketReader(writer.finish()).packets())


def test_simple_register_write_roundtrip():
    w = PacketWriter()
    w.write_command(Command.RCRC)
    w.write_register(Register.FAR, [0x1234])
    packets = roundtrip(w)
    far = [p for p in packets if p.register is Register.FAR]
    assert far and far[0].payload == (0x1234,)


def test_long_write_uses_type2():
    w = PacketWriter()
    w.write_command(Command.RCRC)
    payload = list(range(TYPE1_MAX_WORDS + 10))
    w.write_register(Register.FDRI, payload)
    packets = roundtrip(w)
    fdri = [p for p in packets if p.register is Register.FDRI and p.payload]
    assert fdri[0].payload == tuple(v & 0xFFFFFFFF for v in payload)


def test_stream_begins_with_sync():
    words = PacketWriter().finish()
    assert SYNC_WORD in (int(w) for w in words[:2])


def test_crc_checked_on_read():
    w = PacketWriter()
    w.write_command(Command.RCRC)
    w.write_register(Register.FAR, [7])
    words = w.finish().copy()
    # Corrupt the FAR payload: CRC check must fail.
    idx = int(np.where(words == 7)[0][0])
    words[idx] = 8
    with pytest.raises(CRCError):
        list(PacketReader(words).packets())


def test_rcrc_resets_running_crc():
    w = PacketWriter()
    w.write_register(Register.FAR, [1])
    w.write_command(Command.RCRC)
    w.write_register(Register.FAR, [2])
    packets = roundtrip(w)  # must not raise
    assert sum(1 for p in packets if p.register is Register.FAR) == 2


def test_desync_present_at_end():
    packets = roundtrip(PacketWriter())
    cmd_values = [p.payload[0] for p in packets if p.register is Register.CMD and p.payload]
    assert Command.DESYNC in cmd_values


def test_reader_rejects_garbage_before_sync():
    with pytest.raises(BitstreamError):
        list(PacketReader(np.array([0x123, SYNC_WORD], dtype=np.uint32)).packets())


def test_reader_requires_sync():
    with pytest.raises(BitstreamError):
        list(PacketReader(np.array([0xFFFFFFFF], dtype=np.uint32)).packets())


def test_truncated_packet_detected():
    w = PacketWriter()
    w.write_command(Command.RCRC)
    w.write_register(Register.FDRI, [1, 2, 3, 4])
    words = w.finish()[:-6]  # chop the tail mid-payload is messy; chop CRC
    # removing words mid-stream must raise either truncation or CRC error
    with pytest.raises(BitstreamError):
        list(PacketReader(words[:5]).packets())


def test_payload_word_masking():
    w = PacketWriter()
    w.write_command(Command.RCRC)
    w.write_register(Register.FAR, [0x1_FFFF_FFFF])
    packets = roundtrip(w)
    far = [p for p in packets if p.register is Register.FAR][0]
    assert far.payload == (0xFFFFFFFF,)

"""Tests for the boot-configuration study."""

import pytest

from repro.bitstream.bitstream import BitstreamKind
from repro.core.boot import (
    BOOT_OVERHEAD_PS,
    boot_time_report,
    compare_reconfiguration,
    full_bitstream,
)


def test_full_bitstream_covers_every_frame(system32):
    stream = full_bitstream(system32)
    assert stream.kind is BitstreamKind.FULL
    assert stream.frame_count == system32.device.total_frames
    assert not stream.is_partial


def test_full_bitstream_matches_boot_state(system32):
    """The boot image reproduces the static design the system booted with
    (outside the dynamic region, which boots cleared)."""
    import numpy as np

    stream = full_bitstream(system32)
    region_addresses = set(system32.region.frame_addresses)
    sampled = 0
    for address, data in stream.frames:
        if address in region_addresses:
            continue
        assert np.array_equal(system32.config_memory.read_frame(address), data)
        sampled += 1
        if sampled >= 20:
            break
    assert sampled == 20


def test_boot_report_sizes(system32, system64):
    report32 = boot_time_report(system32)
    report64 = boot_time_report(system64)
    assert report32.byte_size > 300_000  # ~half a MB class device
    assert report64.byte_size > report32.byte_size  # bigger device
    assert report32.load_ps > BOOT_OVERHEAD_PS
    assert report32.destroys_system_state


def test_comparison_shape(system32, manager32):
    comparison = compare_reconfiguration(system32, manager32, "brightness")
    assert comparison.bandwidth_ratio > 1  # external port is faster per byte
    assert comparison.partial_byte_size < comparison.boot.byte_size
    assert comparison.partial_keeps_system_alive
    assert "keeps running" in comparison.summary()


def test_partial_slower_despite_smaller(system32, manager32):
    """The paper-era irony: the internal path is slower per byte, and the
    partial load can take longer than a full external reload — its value
    is not speed, it is that the system stays up."""
    comparison = compare_reconfiguration(system32, manager32, "brightness")
    partial_bw = comparison.partial_byte_size / comparison.partial_load_ps
    full_bw = comparison.boot.byte_size / (comparison.boot.load_ps - BOOT_OVERHEAD_PS)
    assert full_bw > partial_bw

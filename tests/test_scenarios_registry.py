"""Scenario registry: registration, parameter resolution, result transport.

The registry is the contract between the pytest benches, the sweep
orchestrator and the result cache — these tests pin down the parts the
other two rely on (stable names, deterministic seeds, JSON-safe results).
"""

import json

import pytest

from repro.errors import CheckError
from repro.scenarios import (
    ScenarioError,
    ScenarioResult,
    all_scenarios,
    derive_seed,
    get_scenario,
    run_scenario,
)
from repro.scenarios.registry import _REGISTRY, register_scenario


@pytest.fixture
def scratch():
    """Register throwaway scenarios and unregister them afterwards."""
    added = []

    def _register(name, fn, **kwargs):
        entry = register_scenario(name, fn, **kwargs)
        added.append(name)
        return entry

    yield _register
    for name in added:
        _REGISTRY.pop(name, None)


def _result(name, rows):
    return ScenarioResult(name=name, title=name, headers=["k", "v"], rows=rows)


# -- registration -------------------------------------------------------------

def test_register_and_get(scratch):
    entry = scratch("scratch_one", lambda: _result("scratch_one", [["a", 1]]))
    assert get_scenario("scratch_one") is entry
    assert entry.title == "scratch_one"  # name is the default title


def test_duplicate_name_rejected(scratch):
    scratch("scratch_dup", lambda: _result("scratch_dup", []))
    with pytest.raises(ScenarioError, match="already registered"):
        register_scenario("scratch_dup", lambda: _result("scratch_dup", []))


def test_unknown_name_lists_known():
    with pytest.raises(ScenarioError, match="unknown scenario"):
        get_scenario("no_such_scenario")


def test_shipped_registry_is_populated():
    names = {entry.name for entry in all_scenarios()}
    # One scenario per paper table, ablation and figure.
    assert {f"table{n:02d}" for n in range(1, 13)} <= {n[:7] for n in names}
    assert "ablation_boot" in names
    assert "fig1_generic_architecture" in names
    assert len(names) >= 27


def test_tag_filtering():
    tables = all_scenarios(tags=["table"])
    assert tables and all("table" in s.tags for s in tables)
    assert [s.name for s in tables] == sorted(s.name for s in tables)


# -- parameter resolution -----------------------------------------------------

def test_resolve_params_defaults_smoke_overrides(scratch):
    entry = scratch(
        "scratch_params",
        lambda n, seed: _result("scratch_params", [[n, seed]]),
        params={"n": 10, "seed": 1},
        smoke_params={"n": 2},
    )
    assert entry.resolve_params() == {"n": 10, "seed": 1}
    assert entry.resolve_params(smoke=True) == {"n": 2, "seed": 1}
    assert entry.resolve_params({"seed": 7}, smoke=True) == {"n": 2, "seed": 7}


def test_resolve_params_rejects_unknown_keys(scratch):
    entry = scratch(
        "scratch_unknown", lambda n: _result("scratch_unknown", [[n, n]]), params={"n": 1}
    )
    with pytest.raises(ScenarioError, match="no parameter"):
        entry.resolve_params({"m": 3})


def test_run_scenario_passes_params(scratch):
    scratch(
        "scratch_run",
        lambda n: _result("scratch_run", [["n", n]]),
        params={"n": 4},
        smoke_params={"n": 2},
    )
    assert run_scenario("scratch_run").rows == [["n", 4]]
    assert run_scenario("scratch_run", smoke=True).rows == [["n", 2]]
    assert run_scenario("scratch_run", {"n": 9}).rows == [["n", 9]]


def test_run_rejects_non_result(scratch):
    entry = scratch("scratch_bad", lambda: {"not": "a result"})
    with pytest.raises(ScenarioError, match="expected ScenarioResult"):
        entry.run()


# -- deterministic seeding ----------------------------------------------------

def test_derive_seed_is_stable_and_distinct():
    a = derive_seed(42, "table03_patmatch32:pattern_seed")
    assert a == derive_seed(42, "table03_patmatch32:pattern_seed")
    assert a != derive_seed(43, "table03_patmatch32:pattern_seed")
    assert a != derive_seed(42, "table09_patmatch64:pattern_seed")
    assert 0 <= a < 2**32


# -- source fingerprints ------------------------------------------------------

def test_source_fingerprint_tracks_the_body():
    one = get_scenario("table03_patmatch32")
    other = get_scenario("table04_hash32")
    assert one.source_fingerprint() == one.source_fingerprint()
    assert one.source_fingerprint() != other.source_fingerprint()


# -- result transport ---------------------------------------------------------

def test_result_round_trips_through_json():
    original = ScenarioResult(
        name="rt",
        title="Round trip",
        headers=["k", "v"],
        rows=[["a", 1], ["b", 2.5]],
        headline={"total": 3.5, "flag": True},
        text="art",
        appendix="notes",
    )
    wire = json.dumps(original.to_dict(), sort_keys=True)
    rebuilt = ScenarioResult.from_dict(json.loads(wire))
    assert rebuilt == original
    assert json.dumps(rebuilt.to_dict(), sort_keys=True) == wire


def test_result_schema_mismatch_rejected():
    data = _result("schema", []).to_dict()
    data["schema"] = 999
    with pytest.raises(CheckError, match="schema"):
        ScenarioResult.from_dict(data)


def test_result_canonicalises_numpy_cells():
    import numpy as np

    result = ScenarioResult(
        name="np",
        headers=["v"],
        rows=[[np.int64(7), np.float64(2.5)]],
        headline={"mean": np.float64(1.25)},
    )
    cell_types = {type(cell) for cell in result.rows[0]}
    assert cell_types == {int, float}
    assert type(result.headline["mean"]) is float
    json.dumps(result.to_dict())  # must be plain-JSON serialisable


def test_table_text_appends_appendix():
    result = ScenarioResult(
        name="ap", title="T", headers=["a"], rows=[[1]], appendix="the appendix"
    )
    assert result.table_text().endswith("\n\nthe appendix")


# -- fallback fingerprint determinism ----------------------------------------
#
# Bodies that inspect.getsource cannot see (exec-compiled, REPL-defined)
# fall back to hashing module + qualname + code-object material.  That
# material must be stable across interpreter processes — the old repr(fn)
# fallback leaked memory addresses and broke warm caches between runs.

_DYNAMIC_SNIPPET = r"""
import sys

from repro.scenarios import ScenarioResult
from repro.scenarios.registry import Scenario

code = compile(
    "def dyn(n):\n"
    "    return ScenarioResult(name='dyn', headers=['n'], rows=[[n {op} 1]])\n",
    "<dynamic>",
    "exec",
)
ns = {"ScenarioResult": ScenarioResult}
exec(code, ns)
entry = Scenario(name="dyn", fn=ns["dyn"], title="dyn", params={"n": 1})
sys.stdout.write(entry.source_fingerprint())
"""


def _dynamic_fingerprint(op):
    import subprocess
    import sys
    from pathlib import Path

    src = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _DYNAMIC_SNIPPET.replace("{op}", op)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": src, "PYTHONHASHSEED": "random"},
    )
    assert proc.returncode == 0, proc.stderr
    fingerprint = proc.stdout.strip()
    assert len(fingerprint) == 64
    return fingerprint


def test_fallback_fingerprint_stable_across_processes():
    assert _dynamic_fingerprint("+") == _dynamic_fingerprint("+")


def test_fallback_fingerprint_tracks_the_body():
    assert _dynamic_fingerprint("+") != _dynamic_fingerprint("-")

"""Content-addressed result cache: hits, invalidation, recovery.

The cache key is (scenario source fingerprint, canonical params, repro
version, schema) — these tests pin down each invalidation axis plus the
corrupted-entry recovery path (a bad entry must become a miss, never an
exception).
"""

import json

from repro.scenarios import ScenarioResult
from repro.scenarios.registry import Scenario
from repro.sweep import ResultCache, cache_key, canonical_params


# Module-level so inspect.getsource works: two versions of "the same"
# scenario body, as if the function had been edited between runs.
def _body_v1(n):
    return ScenarioResult(name="edited", headers=["n"], rows=[[n]])


def _body_v2(n):
    return ScenarioResult(name="edited", headers=["n"], rows=[[n * 2]])


def _scenario(fn=_body_v1, name="cached"):
    return Scenario(name=name, fn=fn, title=name, params={"n": 3})


def _result(rows):
    return ScenarioResult(name="cached", title="Cached", headers=["n"], rows=rows)


def test_miss_then_store_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    entry = _scenario()
    params = {"n": 3}

    assert cache.load(entry, params) is None
    cache.store(entry, params, _result([[3]]), host_seconds=1.25)
    found = cache.load(entry, params)
    assert found is not None
    result, cold_seconds = found
    assert result == _result([[3]])
    assert cold_seconds == 1.25
    stats = cache.telemetry.as_dict()
    assert stats == {"hits": 1, "misses": 1, "stores": 1, "invalidated": 0}


def test_params_change_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    entry = _scenario()
    cache.store(entry, {"n": 3}, _result([[3]]), host_seconds=0.1)
    assert cache.load(entry, {"n": 4}) is None
    assert cache.load(entry, {"n": 3}) is not None
    assert cache_key(entry, {"n": 3}) != cache_key(entry, {"n": 4})


def test_source_edit_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    before = _scenario(_body_v1)
    after = _scenario(_body_v2)
    assert before.source_fingerprint() != after.source_fingerprint()
    cache.store(before, {"n": 3}, _result([[3]]), host_seconds=0.1)
    assert cache.load(after, {"n": 3}) is None
    # The stale entry for the old source is untouched (GC is `clear()`).
    assert cache.load(before, {"n": 3}) is not None


def test_corrupted_entry_recovers_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    entry = _scenario()
    params = {"n": 3}
    path = cache.store(entry, params, _result([[3]]), host_seconds=0.1)

    path.write_text("{ not json", encoding="utf-8")
    assert cache.load(entry, params) is None
    assert not path.exists()  # dropped so the next run regenerates
    assert cache.telemetry.invalidated == 1

    # The cache still works after recovery.
    cache.store(entry, params, _result([[3]]), host_seconds=0.1)
    assert cache.load(entry, params) is not None


def test_stale_schema_is_invalidated(tmp_path):
    cache = ResultCache(tmp_path)
    entry = _scenario()
    params = {"n": 3}
    path = cache.store(entry, params, _result([[3]]), host_seconds=0.1)

    envelope = json.loads(path.read_text(encoding="utf-8"))
    envelope["schema"] = 999
    path.write_text(json.dumps(envelope), encoding="utf-8")
    assert cache.load(entry, params) is None
    assert cache.telemetry.invalidated == 1


def test_clear_removes_entries(tmp_path):
    cache = ResultCache(tmp_path)
    cache.store(_scenario(), {"n": 3}, _result([[3]]), host_seconds=0.1)
    cache.store(_scenario(name="other"), {"n": 3}, _result([[3]]), host_seconds=0.1)
    assert cache.clear() == 2
    assert cache.load(_scenario(), {"n": 3}) is None


def test_canonical_params_is_order_independent():
    assert canonical_params({"b": 2, "a": (1, 2)}) == canonical_params(
        {"a": [1, 2], "b": 2}
    )


def test_entry_path_is_human_navigable(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.entry_path(_scenario(), {"n": 3})
    assert path.name.startswith("cached-")
    assert path.suffix == ".json"


# -- dependency-fence keying --------------------------------------------------
#
# Scenarios registered from real package modules key on their call-graph
# dependency fingerprint; dynamic test scenarios (like the ones above, whose
# bodies live outside src/repro) fall back to the blanket version fence.

def _registered(name="table01_resources32"):
    import repro.scenarios  # registration side effects
    from repro.scenarios import get_scenario

    return get_scenario(name)


def test_dynamic_scenario_uses_version_fence():
    from repro.sweep.cache import dependency_fence

    fence = dependency_fence(_scenario())
    assert fence["key_mode"] == "version"
    import repro

    assert fence["repro_version"] == repro.__version__


def test_registered_scenario_uses_depfp_fence():
    from repro.sweep.cache import dependency_fence

    fence = dependency_fence(_registered())
    assert fence["key_mode"] == "depfp"
    assert len(fence["dep_fingerprint"]) == 64


def test_version_bump_keeps_key_when_sources_unchanged(monkeypatch):
    """The tentpole property: a release that does not touch a scenario's
    closure must keep the warm cache."""
    entry = _registered()
    params = dict(entry.params)
    before = cache_key(entry, params)
    monkeypatch.setattr("repro.__version__", "99.0.0")
    assert cache_key(entry, params) == before


def test_version_bump_invalidates_version_fenced_scenario(monkeypatch):
    entry = _scenario()
    before = cache_key(entry, {"n": 3})
    monkeypatch.setattr("repro.__version__", "99.0.0")
    assert cache_key(entry, {"n": 3}) != before


def test_helper_edit_invalidates_exactly_dependents():
    """Simulate editing one helper module by tampering with its hash in the
    memoized graph: every scenario whose closure contains it must change
    key, every other scenario must not."""
    from repro.checks import depfp

    fig = _registered("fig1_generic_architecture")
    table = _registered("table01_resources32")
    fig_params, table_params = dict(fig.params), dict(table.params)
    try:
        graph = depfp.package_graph()
        helper = "repro.bus.plb"  # reached by the table rig, not the figure
        assert helper in depfp.scenario_fingerprint(table, graph=graph).modules
        assert helper not in depfp.scenario_fingerprint(fig, graph=graph).modules
        fig_before = cache_key(fig, fig_params)
        table_before = cache_key(table, table_params)

        graph.modules[helper].source_hash = "0" * 64
        graph.memo.clear()

        assert cache_key(table, table_params) != table_before
        assert cache_key(fig, fig_params) == fig_before
    finally:
        depfp.reset_graph()


def test_stored_envelope_records_key_components(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.store(_scenario(), {"n": 3}, _result([[3]]), host_seconds=0.1)
    envelope = json.loads(path.read_text(encoding="utf-8"))
    components = envelope["key_components"]
    assert components["key_mode"] == "version"
    assert components["params"] == {"n": 3}


# -- miss attribution ---------------------------------------------------------

def test_explain_cold_cache(tmp_path):
    cache = ResultCache(tmp_path)
    lines = cache.explain(_scenario(), {"n": 3})
    assert len(lines) == 1
    assert "no cached entry" in lines[0]


def test_explain_attributes_params_change(tmp_path):
    cache = ResultCache(tmp_path)
    cache.store(_scenario(), {"n": 3}, _result([[3]]), host_seconds=0.1)
    lines = cache.explain(_scenario(), {"n": 4})
    assert any("params" in line for line in lines)


def test_explain_attributes_version_fence(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    cache.store(_scenario(), {"n": 3}, _result([[3]]), host_seconds=0.1)
    monkeypatch.setattr("repro.__version__", "99.0.0")
    lines = cache.explain(_scenario(), {"n": 3})
    assert any("repro_version" in line for line in lines)


def test_explain_reports_hit(tmp_path):
    cache = ResultCache(tmp_path)
    cache.store(_scenario(), {"n": 3}, _result([[3]]), host_seconds=0.1)
    lines = cache.explain(_scenario(), {"n": 3})
    assert any("identical" in line for line in lines)

"""Content-addressed result cache: hits, invalidation, recovery.

The cache key is (scenario source fingerprint, canonical params, repro
version, schema) — these tests pin down each invalidation axis plus the
corrupted-entry recovery path (a bad entry must become a miss, never an
exception).
"""

import json

from repro.scenarios import ScenarioResult
from repro.scenarios.registry import Scenario
from repro.sweep import ResultCache, cache_key, canonical_params


# Module-level so inspect.getsource works: two versions of "the same"
# scenario body, as if the function had been edited between runs.
def _body_v1(n):
    return ScenarioResult(name="edited", headers=["n"], rows=[[n]])


def _body_v2(n):
    return ScenarioResult(name="edited", headers=["n"], rows=[[n * 2]])


def _scenario(fn=_body_v1, name="cached"):
    return Scenario(name=name, fn=fn, title=name, params={"n": 3})


def _result(rows):
    return ScenarioResult(name="cached", title="Cached", headers=["n"], rows=rows)


def test_miss_then_store_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    entry = _scenario()
    params = {"n": 3}

    assert cache.load(entry, params) is None
    cache.store(entry, params, _result([[3]]), host_seconds=1.25)
    found = cache.load(entry, params)
    assert found is not None
    result, cold_seconds = found
    assert result == _result([[3]])
    assert cold_seconds == 1.25
    stats = cache.telemetry.as_dict()
    assert stats == {"hits": 1, "misses": 1, "stores": 1, "invalidated": 0}


def test_params_change_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    entry = _scenario()
    cache.store(entry, {"n": 3}, _result([[3]]), host_seconds=0.1)
    assert cache.load(entry, {"n": 4}) is None
    assert cache.load(entry, {"n": 3}) is not None
    assert cache_key(entry, {"n": 3}) != cache_key(entry, {"n": 4})


def test_source_edit_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    before = _scenario(_body_v1)
    after = _scenario(_body_v2)
    assert before.source_fingerprint() != after.source_fingerprint()
    cache.store(before, {"n": 3}, _result([[3]]), host_seconds=0.1)
    assert cache.load(after, {"n": 3}) is None
    # The stale entry for the old source is untouched (GC is `clear()`).
    assert cache.load(before, {"n": 3}) is not None


def test_corrupted_entry_recovers_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    entry = _scenario()
    params = {"n": 3}
    path = cache.store(entry, params, _result([[3]]), host_seconds=0.1)

    path.write_text("{ not json", encoding="utf-8")
    assert cache.load(entry, params) is None
    assert not path.exists()  # dropped so the next run regenerates
    assert cache.telemetry.invalidated == 1

    # The cache still works after recovery.
    cache.store(entry, params, _result([[3]]), host_seconds=0.1)
    assert cache.load(entry, params) is not None


def test_stale_schema_is_invalidated(tmp_path):
    cache = ResultCache(tmp_path)
    entry = _scenario()
    params = {"n": 3}
    path = cache.store(entry, params, _result([[3]]), host_seconds=0.1)

    envelope = json.loads(path.read_text(encoding="utf-8"))
    envelope["schema"] = 999
    path.write_text(json.dumps(envelope), encoding="utf-8")
    assert cache.load(entry, params) is None
    assert cache.telemetry.invalidated == 1


def test_clear_removes_entries(tmp_path):
    cache = ResultCache(tmp_path)
    cache.store(_scenario(), {"n": 3}, _result([[3]]), host_seconds=0.1)
    cache.store(_scenario(name="other"), {"n": 3}, _result([[3]]), host_seconds=0.1)
    assert cache.clear() == 2
    assert cache.load(_scenario(), {"n": 3}) is None


def test_canonical_params_is_order_independent():
    assert canonical_params({"b": 2, "a": (1, 2)}) == canonical_params(
        {"a": [1, 2], "b": 2}
    )


def test_entry_path_is_human_navigable(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.entry_path(_scenario(), {"n": 3})
    assert path.name.startswith("cached-")
    assert path.suffix == ".json"

"""Tests for the stream-utility kernels and the BaseKernel machinery."""

import pytest

from repro.errors import KernelError
from repro.kernels.base import BaseKernel
from repro.kernels.streams import CounterSourceKernel, LoopbackKernel, SinkKernel


# -- sink ------------------------------------------------------------------------

def test_sink_counts_words():
    sink = SinkKernel()
    sink.consume(1, 32)
    sink.consume(2, 32)
    assert sink.words == 2
    assert sink.last == 2
    assert sink.produce() == []


def test_sink_register_interface():
    sink = SinkKernel()
    sink.consume(0xAB, 32)
    assert sink.read_register(0x0) == 1
    assert sink.read_register(0x4) == 0xAB


def test_sink_reset():
    sink = SinkKernel()
    sink.consume(1, 32)
    sink.reset()
    assert sink.words == 0


# -- source ----------------------------------------------------------------------

def test_source_generates_sequence():
    source = CounterSourceKernel(seed=100)
    source.generate(3)
    assert source.produce() == [100, 101, 102]


def test_source_register_reads_advance():
    source = CounterSourceKernel(seed=5)
    assert source.read_register(0) == 5
    assert source.read_register(0) == 6


def test_source_rejects_writes():
    with pytest.raises(KernelError):
        CounterSourceKernel().consume(1, 32)


def test_source_width_masking():
    source = CounterSourceKernel(seed=(1 << 40))
    source.generate(1, width_bits=32)
    assert source.produce() == [0]


# -- loopback ---------------------------------------------------------------------

def test_loopback_echoes():
    loop = LoopbackKernel()
    loop.consume(42, 32)
    assert loop.produce() == [42]


def test_loopback_pipeline_delay():
    loop = LoopbackKernel(pipeline_depth=3)
    loop.consume(1, 32)
    loop.consume(2, 32)
    assert loop.produce() == []
    loop.consume(3, 32)
    assert loop.produce() == [1]
    loop.flush()
    assert loop.produce() == [2, 3]


def test_loopback_depth_validated():
    with pytest.raises(KernelError):
        LoopbackKernel(pipeline_depth=0)


# -- BaseKernel component synthesis --------------------------------------------------

def test_component_width_scales_with_slices():
    small = SinkKernel().make_component(32, 11)
    big = LoopbackKernel().make_component(32, 11)
    assert small.width >= 2
    assert big.width >= small.width


def test_component_64bit_needs_more_slices():
    sink = SinkKernel()
    assert sink.slice_demand(64) > sink.slice_demand(32)


def test_unsupported_width_rejected():
    with pytest.raises(KernelError):
        SinkKernel().slice_demand(16)


def test_component_rejects_too_short_region():
    with pytest.raises(KernelError):
        SinkKernel().make_component(64, 4)


def test_split_pack_roundtrip():
    value = 0x0807060504030201
    chunks = BaseKernel._split_words(value, 64, 8)
    assert chunks == [1, 2, 3, 4, 5, 6, 7, 8]
    assert BaseKernel._pack_words(chunks, 8) == value


def test_split_requires_divisible_width():
    with pytest.raises(KernelError):
        BaseKernel._split_words(0, 32, 12)

"""Batched fast paths must match real per-word loops.

The long sequences in the benchmarks use calibrate-and-multiply shortcuts
(`io_read_batch`, `io_write_batch`, stream charges).  These tests pin the
shortcut against the ground truth on both systems, within a tight
tolerance — if a timing model change breaks the equivalence, this is the
suite that catches it.
"""

import pytest

from repro.core import build_system32, build_system64, memmap
from repro.kernels.streams import SinkKernel

N = 64
TOLERANCE = 0.12


def pair(builder):
    return builder(), builder()


@pytest.mark.parametrize("builder", [build_system32, build_system64], ids=["32", "64"])
def test_io_read_batch_equals_loop(builder):
    batch_system, loop_system = pair(builder)
    batch_system.cpu.io_read_batch(memmap.STAGE_INPUT, N)
    for _ in range(N):
        loop_system.cpu.io_read(memmap.STAGE_INPUT)
    batch = batch_system.cpu.now_ps
    loop = loop_system.cpu.now_ps
    assert batch == pytest.approx(loop, rel=TOLERANCE)


@pytest.mark.parametrize("builder", [build_system32, build_system64], ids=["32", "64"])
def test_io_write_batch_equals_loop_to_dock(builder):
    batch_system, loop_system = pair(builder)
    batch_system.dock.attach_kernel(SinkKernel())
    loop_system.dock.attach_kernel(SinkKernel())
    batch_system.cpu.io_write_batch(memmap.DOCK_BASE, N)
    for i in range(N):
        loop_system.cpu.io_write(memmap.DOCK_BASE, i)
    # Posted writes: the loop's CPU-visible time can be below bus occupancy;
    # compare against when the loop's bus actually drained.
    batch = batch_system.cpu.now_ps
    loop = max(loop_system.cpu.now_ps, loop_system.plb.busy_until)
    assert batch == pytest.approx(loop, rel=TOLERANCE)


def test_stream_read_charge_equals_loop_on_cached_system():
    batch_system, loop_system = pair(build_system64)
    nbytes = 4096
    batch_system.cpu.charge_stream_read(memmap.STAGE_INPUT, nbytes)
    for offset in range(0, nbytes, 4):
        loop_system.cpu.load_word(memmap.STAGE_INPUT + offset)
    batch = batch_system.cpu.now_ps
    loop = loop_system.cpu.now_ps
    # The stream charge excludes the per-load pipeline slot (task models
    # charge it in their instruction mixes), so add it back for comparison.
    loop_minus_slots = loop - (nbytes // 4) * loop_system.cpu.clock.period_ps
    assert batch == pytest.approx(loop_minus_slots, rel=TOLERANCE)


def test_stream_write_charge_equals_loop_on_cached_system():
    batch_system, loop_system = pair(build_system64)
    nbytes = 4096
    batch_system.cpu.charge_stream_write(memmap.STAGE_OUTPUT, nbytes)
    for offset in range(0, nbytes, 4):
        loop_system.cpu.store_word(memmap.STAGE_OUTPUT + offset, offset)
    batch = batch_system.cpu.now_ps
    loop = loop_system.cpu.now_ps - (nbytes // 4) * loop_system.cpu.clock.period_ps
    # Write-back timing differs slightly (the loop's evictions happen on
    # later misses); allow a wider band but demand the same magnitude.
    assert batch == pytest.approx(loop, rel=0.35)


def test_pio_sequences_scale_linearly():
    """Doubling the sequence doubles the time (the multiply is honest)."""
    from repro.core import TransferBench

    system = build_system32()
    bench = TransferBench(system)
    t1 = bench.pio_write_sequence(512).total_ps
    t2 = bench.pio_write_sequence(1024).total_ps
    assert t2 == pytest.approx(2 * t1, rel=0.02)

"""Tests for the PLB Dock: PIO, register map, DMA engine, FIFO, interrupts."""

import pytest

from repro.bus.plb import make_plb
from repro.bus.transaction import Op, Transaction
from repro.dock.dma import Descriptor, SgDmaEngine
from repro.dock.plb_dock import (
    CTRL_FIFO_TO_MEM,
    CTRL_MEM_TO_DOCK,
    REG_DMA_CTRL,
    REG_DMA_DST,
    REG_DMA_LEN,
    REG_DMA_SRC,
    REG_FIFO_COUNT,
    REG_STATUS,
    STATUS_DMA_BUSY,
    PlbDock,
)
from repro.engine.clock import ClockDomain, mhz
from repro.errors import TransferError
from repro.kernels.streams import CounterSourceKernel, LoopbackKernel, SinkKernel
from repro.mem.controllers import DdrController
from repro.mem.memory import MemoryArray
from repro.periph.intc import InterruptController

DOCK_BASE = 0x8000_0000
MEM_SIZE = 1 << 20


@pytest.fixture
def rig():
    plb = make_plb(ClockDomain("bus", mhz(100)))
    memory = MemoryArray(MEM_SIZE, "ddr")
    plb.attach(DdrController(memory, 0, "ddr"), 0, MEM_SIZE, name="ddr")
    dock = PlbDock(DOCK_BASE)
    plb.attach(dock, DOCK_BASE, 0x1_0000, name="dock", posted_writes=True)
    dock.connect_bus(plb)
    intc = InterruptController(0xA002_0000)
    intc.enabled = 1
    dock.connect_interrupts(intc, 0)
    return plb, memory, dock, intc


def test_pio_loopback(rig):
    plb, memory, dock, intc = rig
    dock.attach_kernel(LoopbackKernel())
    plb.request(0, Transaction(Op.WRITE, DOCK_BASE, data=0x77))
    completion = plb.request(plb.busy_until, Transaction(Op.READ, DOCK_BASE))
    assert completion.value == 0x77


def test_kernel_outputs_go_to_fifo(rig):
    plb, memory, dock, intc = rig
    dock.attach_kernel(LoopbackKernel())
    plb.request(0, Transaction(Op.WRITE, DOCK_BASE, data=5))
    assert len(dock.fifo) == 1


def test_fifo_count_register(rig):
    plb, memory, dock, intc = rig
    dock.attach_kernel(LoopbackKernel())
    plb.request(0, Transaction(Op.WRITE, DOCK_BASE, data=5))
    completion = plb.request(
        plb.busy_until, Transaction(Op.READ, DOCK_BASE + REG_FIFO_COUNT)
    )
    assert completion.value == 1


def test_dma_write_block_moves_memory_to_kernel(rig):
    plb, memory, dock, intc = rig
    sink = SinkKernel()
    dock.attach_kernel(sink)
    memory.write_words(0x1000, [11, 22, 33], size_bytes=8)
    done = dock.dma_write_block(0, 0x1000, 3)
    assert done > 0
    assert sink.words == 3
    assert sink.last == 33


def test_dma_drain_fifo_moves_results_to_memory(rig):
    plb, memory, dock, intc = rig
    source = CounterSourceKernel(seed=100)
    dock.attach_kernel(source)
    source.generate(4, width_bits=64)
    dock.collect_outputs()
    done, drained = dock.dma_drain_fifo(0, 0x2000)
    assert drained == 4
    assert memory.read_words(0x2000, 4, size_bytes=8) == [100, 101, 102, 103]
    assert dock.fifo.empty


def test_dma_drain_empty_fifo_is_noop(rig):
    plb, memory, dock, intc = rig
    dock.attach_kernel(SinkKernel())
    done, drained = dock.dma_drain_fifo(123, 0x2000)
    assert (done, drained) == (123, 0)


def test_dma_completion_raises_interrupt(rig):
    plb, memory, dock, intc = rig
    dock.attach_kernel(SinkKernel())
    memory.write_words(0x1000, [1], size_bytes=8)
    done = dock.dma_write_block(0, 0x1000, 1)
    assert intc.raised_log and intc.raised_log[-1] == (0, done)


def test_register_programmed_dma(rig):
    plb, memory, dock, intc = rig
    sink = SinkKernel()
    dock.attach_kernel(sink)
    memory.write_words(0x3000, [7, 8], size_bytes=8)
    cursor = 0
    for reg, value in [
        (REG_DMA_SRC, 0x3000),
        (REG_DMA_LEN, 2),
        (REG_DMA_CTRL, CTRL_MEM_TO_DOCK),
    ]:
        completion = plb.request(cursor, Transaction(Op.WRITE, DOCK_BASE + reg, data=value))
        cursor = completion.done_ps
    assert sink.words == 2


def test_register_programmed_fifo_drain(rig):
    plb, memory, dock, intc = rig
    source = CounterSourceKernel(seed=5)
    dock.attach_kernel(source)
    source.generate(2, width_bits=64)
    dock.collect_outputs()
    cursor = 0
    for reg, value in [
        (REG_DMA_DST, 0x4000),
        (REG_DMA_LEN, 2),
        (REG_DMA_CTRL, CTRL_FIFO_TO_MEM),
    ]:
        completion = plb.request(cursor, Transaction(Op.WRITE, DOCK_BASE + reg, data=value))
        cursor = completion.done_ps
    assert memory.read_words(0x4000, 2, size_bytes=8) == [5, 6]


def test_status_register_reports_dma_busy(rig):
    plb, memory, dock, intc = rig
    dock.attach_kernel(SinkKernel())
    memory.write_words(0x1000, list(range(64)), size_bytes=8)
    done = dock.dma_write_block(0, 0x1000, 64)
    _, status = dock.access(Transaction(Op.READ, DOCK_BASE + REG_STATUS), when_ps=done // 2)
    assert status & STATUS_DMA_BUSY
    _, status = dock.access(Transaction(Op.READ, DOCK_BASE + REG_STATUS), when_ps=done)
    assert not (status & STATUS_DMA_BUSY)


def test_dma_zero_length_rejected(rig):
    plb, memory, dock, intc = rig
    with pytest.raises(TransferError):
        dock.access(Transaction(Op.WRITE, DOCK_BASE + REG_DMA_CTRL, data=CTRL_MEM_TO_DOCK), 0)


def test_ctrl_without_direction_rejected(rig):
    plb, memory, dock, intc = rig
    dock.access(Transaction(Op.WRITE, DOCK_BASE + REG_DMA_LEN, data=4), 0)
    with pytest.raises(TransferError):
        dock.access(Transaction(Op.WRITE, DOCK_BASE + REG_DMA_CTRL, data=0), 0)


def test_dma_requires_connected_bus():
    dock = PlbDock(DOCK_BASE)
    with pytest.raises(TransferError):
        dock.dma_write_block(0, 0, 1)


def test_descriptor_validation():
    with pytest.raises(TransferError):
        Descriptor(src=None, dst=None, word_count=1)
    with pytest.raises(TransferError):
        Descriptor(src=0, dst=None, word_count=0)
    with pytest.raises(TransferError):
        Descriptor(src=4, dst=4, word_count=1)


def test_memory_to_memory_copy(rig):
    plb, memory, dock, intc = rig
    memory.write_words(0x5000, [1, 2, 3, 4, 5], size_bytes=8)
    engine = dock.dma
    engine.run_chain(0, [Descriptor(src=0x5000, dst=0x6000, word_count=5)])
    assert memory.read_words(0x6000, 5, size_bytes=8) == [1, 2, 3, 4, 5]


def test_dma_burst_faster_than_pio(rig):
    plb, memory, dock, intc = rig
    dock.attach_kernel(SinkKernel())
    memory.write_words(0x1000, list(range(128)), size_bytes=8)
    done = dock.dma_write_block(0, 0x1000, 128)
    per_word_dma = done / 128
    # Compare against a single 32-bit PIO write round trip.
    single = plb.request(done, Transaction(Op.WRITE, DOCK_BASE, data=1))
    pio_time = single.done_ps - done
    assert per_word_dma < pio_time


def test_64bit_values_preserved_through_dma(rig):
    plb, memory, dock, intc = rig
    dock.attach_kernel(LoopbackKernel())
    values = [0x1122334455667788, 0xFFFFFFFFFFFFFFFF]
    memory.write_words(0x1000, values, size_bytes=8)
    done = dock.dma_write_block(0, 0x1000, 2)
    done, drained = dock.dma_drain_fifo(done, 0x2000)
    assert memory.read_words(0x2000, 2, size_bytes=8) == values

"""Tests for CLB-grid geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RegionError
from repro.fabric.geometry import Coord, Rect


def test_rect_bounds():
    r = Rect(2, 3, 4, 5)
    assert r.col_end == 6
    assert r.row_end == 8
    assert r.area == 20


def test_rect_rejects_zero_size():
    with pytest.raises(RegionError):
        Rect(0, 0, 0, 1)


def test_rect_rejects_negative_origin():
    with pytest.raises(RegionError):
        Rect(-1, 0, 1, 1)


def test_contains_coord():
    r = Rect(1, 1, 2, 2)
    assert r.contains(Coord(1, 1))
    assert r.contains(Coord(2, 2))
    assert not r.contains(Coord(3, 1))
    assert not r.contains(Coord(1, 3))


def test_contains_rect():
    outer = Rect(0, 0, 10, 10)
    assert outer.contains_rect(Rect(2, 2, 3, 3))
    assert outer.contains_rect(outer)
    assert not outer.contains_rect(Rect(8, 8, 3, 3))


def test_overlaps_symmetry():
    a = Rect(0, 0, 4, 4)
    b = Rect(3, 3, 4, 4)
    c = Rect(4, 0, 2, 2)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c) and not c.overlaps(a)


def test_intersection():
    a = Rect(0, 0, 4, 4)
    b = Rect(2, 1, 4, 4)
    inter = a.intersection(b)
    assert inter == Rect(2, 1, 2, 3)


def test_intersection_disjoint_is_none():
    assert Rect(0, 0, 2, 2).intersection(Rect(5, 5, 2, 2)) is None


def test_translated():
    assert Rect(1, 1, 2, 2).translated(3, 4) == Rect(4, 5, 2, 2)


def test_sites_enumeration():
    sites = list(Rect(0, 0, 2, 3).sites())
    assert len(sites) == 6
    assert Coord(1, 2) in sites


def test_coord_offset():
    assert Coord(1, 2).offset(3, 4) == Coord(4, 6)


def test_coord_ordering():
    assert Coord(0, 5) < Coord(1, 0)


@given(
    st.integers(0, 20), st.integers(0, 20), st.integers(1, 10), st.integers(1, 10),
    st.integers(0, 20), st.integers(0, 20), st.integers(1, 10), st.integers(1, 10),
)
def test_overlap_iff_intersection(c1, r1, w1, h1, c2, r2, w2, h2):
    a = Rect(c1, r1, w1, h1)
    b = Rect(c2, r2, w2, h2)
    assert a.overlaps(b) == (a.intersection(b) is not None)


@given(st.integers(0, 20), st.integers(0, 20), st.integers(1, 10), st.integers(1, 10))
def test_intersection_with_self_is_self(col, row, w, h):
    r = Rect(col, row, w, h)
    assert r.intersection(r) == r

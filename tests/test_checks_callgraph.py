"""Whole-program call-graph analyzer (repro.checks.callgraph).

A fake package is written to ``tmp_path`` and analyzed from source, so the
tests pin the resolution semantics (imports, re-exports, CHA, classes,
module bodies) and the closure/fingerprint behaviour the cache keys rely
on — including the load-bearing property that editing a helper changes
exactly the fingerprints of the roots that reach it.
"""

import textwrap

import pytest

from repro.checks.callgraph import MODULE_BODY, CallGraph


def write_package(tmp_path, modules, package="fakepkg"):
    """Materialise ``{relpath: source}`` under ``tmp_path/<package>``."""
    root = tmp_path / package
    for rel, source in modules.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    if not (root / "__init__.py").exists():
        (root / "__init__.py").write_text("", encoding="utf-8")
    return root


def build(tmp_path, modules, package="fakepkg"):
    root = write_package(tmp_path, modules, package)
    return CallGraph.build(root, package=package, exclude=())


BASIC = {
    "__init__.py": """
        from .api import entry
    """,
    "helper.py": """
        HELPER_CONST = 7

        def helper_fn(x):
            return x + HELPER_CONST

        def unused_helper():
            return 0
    """,
    "api.py": """
        from .helper import helper_fn

        def entry(x):
            return helper_fn(x)

        def standalone(x):
            return x * 2
    """,
    "lonely.py": """
        def lonely():
            return 42
    """,
}


# -- resolution ---------------------------------------------------------------

def test_plain_from_import_call_resolves(tmp_path):
    graph = build(tmp_path, BASIC)
    closure = graph.closure([("fakepkg.api", "entry")])
    assert ("fakepkg.helper", "helper_fn") in closure.functions
    assert "fakepkg.helper" in closure.modules


def test_unreached_modules_stay_out(tmp_path):
    graph = build(tmp_path, BASIC)
    closure = graph.closure([("fakepkg.api", "entry")])
    assert "fakepkg.lonely" not in closure.modules
    # Unreached functions of reached modules stay out of the function set.
    assert ("fakepkg.helper", "unused_helper") not in closure.functions


def test_module_attribute_call_resolves(tmp_path):
    graph = build(
        tmp_path,
        {
            **BASIC,
            "attrcall.py": """
                from . import helper

                def go(x):
                    return helper.helper_fn(x)
            """,
        },
    )
    closure = graph.closure([("fakepkg.attrcall", "go")])
    assert ("fakepkg.helper", "helper_fn") in closure.functions


def test_reexport_through_init_resolves(tmp_path):
    graph = build(
        tmp_path,
        {
            **BASIC,
            "consumer.py": """
                from fakepkg import entry

                def use(x):
                    return entry(x)
            """,
        },
    )
    closure = graph.closure([("fakepkg.consumer", "use")])
    assert ("fakepkg.api", "entry") in closure.functions
    assert ("fakepkg.helper", "helper_fn") in closure.functions


def test_function_local_import_resolves(tmp_path):
    graph = build(
        tmp_path,
        {
            **BASIC,
            "lazy.py": """
                def go(x):
                    from .helper import helper_fn

                    return helper_fn(x)
            """,
        },
    )
    closure = graph.closure([("fakepkg.lazy", "go")])
    assert ("fakepkg.helper", "helper_fn") in closure.functions
    assert not closure.unresolved


def test_external_calls_recorded_not_unresolved(tmp_path):
    graph = build(
        tmp_path,
        {
            "ext.py": """
                import hashlib

                def digest(data):
                    return hashlib.sha256(data).hexdigest()
            """,
        },
    )
    closure = graph.closure([("fakepkg.ext", "digest")])
    assert not closure.unresolved
    assert any(name.startswith("hashlib") for name in closure.externals)


# -- classes ------------------------------------------------------------------

CLASSY = {
    "klass.py": """
        class Base:
            def __init__(self):
                self.ready = True

            def shared(self):
                return 1

        class Child(Base):
            def child_only(self):
                return 2
    """,
    "use.py": """
        from .klass import Child

        def make():
            return Child()

        def poke(obj):
            return obj.shared()
    """,
}


def test_instantiation_reaches_base_constructor(tmp_path):
    graph = build(tmp_path, CLASSY)
    closure = graph.closure([("fakepkg.use", "make")])
    assert ("fakepkg.klass", "Base.__init__") in closure.functions


def test_attribute_call_resolves_cha(tmp_path):
    graph = build(tmp_path, CLASSY)
    closure = graph.closure([("fakepkg.use", "poke")])
    # Conservative CHA: every package method named ``shared`` is reached.
    assert ("fakepkg.klass", "Base.shared") in closure.functions


def test_super_call_resolves_through_static_bases(tmp_path):
    graph = build(
        tmp_path,
        {
            "klass.py": """
                class Base:
                    def setup(self):
                        return 1

                class Child(Base):
                    def setup(self):
                        return super().setup() + 1
            """,
        },
    )
    graph_module = graph.modules["fakepkg.klass"]
    fn = graph_module.functions["Child.setup"]
    sites = [s for s in fn.calls if s.chain and s.chain[0] == "super"]
    assert sites
    resolution = graph.resolve_call(graph_module, sites[0], fn)
    assert ("fakepkg.klass", "Base.setup") in resolution.functions


# -- module bodies ------------------------------------------------------------

def test_reached_module_body_is_traversed(tmp_path):
    graph = build(
        tmp_path,
        {
            "registry.py": """
                def register(fn):
                    return fn
            """,
            "plugin.py": """
                from .registry import register

                @register
                def hook():
                    return 1
            """,
            "use.py": """
                from . import plugin

                def go():
                    return plugin.hook()
            """,
        },
    )
    closure = graph.closure([("fakepkg.use", "go")])
    # Import-time side effects (the decorator call) are part of the closure.
    assert ("fakepkg.plugin", MODULE_BODY) in closure.functions
    assert ("fakepkg.registry", "register") in closure.functions


def test_constant_reference_reaches_module_only(tmp_path):
    graph = build(tmp_path, BASIC)
    closure = graph.closure([("fakepkg.api", "entry")])
    # HELPER_CONST has no call edge, but helper's module hash covers it.
    assert "fakepkg.helper" in closure.modules


# -- unresolved accounting ----------------------------------------------------

def test_nested_def_call_is_covered_not_unresolved(tmp_path):
    graph = build(
        tmp_path,
        {
            **BASIC,
            "nested.py": """
                from .helper import helper_fn

                def outer(x):
                    def inner(y):
                        return helper_fn(y)

                    return inner(x)
            """,
        },
    )
    closure = graph.closure([("fakepkg.nested", "outer")])
    assert not closure.unresolved
    assert ("fakepkg.helper", "helper_fn") in closure.functions


def test_local_variable_call_counts_unresolved(tmp_path):
    graph = build(
        tmp_path,
        {
            "dyn.py": """
                def run(callback):
                    return callback()
            """,
        },
    )
    closure = graph.closure([("fakepkg.dyn", "run")])
    assert len(closure.unresolved) == 1


def test_excluded_subpackages_are_not_parsed(tmp_path):
    root = write_package(
        tmp_path,
        {
            "core.py": "def f():\n    return 1\n",
            "sweep/__init__.py": "def g():\n    return 2\n",
        },
    )
    graph = CallGraph.build(root, package="fakepkg", exclude=("fakepkg.sweep",))
    assert "fakepkg.core" in graph.modules
    assert "fakepkg.sweep" not in graph.modules


# -- fingerprints: the cache-soundness property -------------------------------

TWO_ROOTS = {
    "helper.py": """
        def helper_fn(x):
            return x + 1
    """,
    "roots.py": """
        from .helper import helper_fn

        def uses_helper(x):
            return helper_fn(x)

        def self_contained(x):
            return x * 3
    """,
}


def fingerprint(graph, module, qualname):
    import hashlib

    closure = graph.closure([(module, qualname)])
    material = graph.fingerprint_material(closure)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def test_helper_edit_invalidates_exactly_dependents(tmp_path):
    root = write_package(tmp_path, TWO_ROOTS)
    graph = CallGraph.build(root, package="fakepkg", exclude=())
    before_dep = fingerprint(graph, "fakepkg.roots", "uses_helper")
    before_free = fingerprint(graph, "fakepkg.roots", "self_contained")

    helper = root / "helper.py"
    helper.write_text(helper.read_text() + "\n# tweak\n", encoding="utf-8")
    graph2 = CallGraph.build(root, package="fakepkg", exclude=())

    assert fingerprint(graph2, "fakepkg.roots", "uses_helper") != before_dep
    assert fingerprint(graph2, "fakepkg.roots", "self_contained") == before_free


def test_identical_sources_identical_fingerprints(tmp_path):
    root = write_package(tmp_path, TWO_ROOTS)
    graph_a = CallGraph.build(root, package="fakepkg", exclude=())
    graph_b = CallGraph.build(root, package="fakepkg", exclude=())
    assert fingerprint(graph_a, "fakepkg.roots", "uses_helper") == fingerprint(
        graph_b, "fakepkg.roots", "uses_helper"
    )


# -- the real package ---------------------------------------------------------

def test_repro_graph_builds_and_parses_every_module():
    from repro.checks import depfp

    graph = depfp.package_graph()
    assert graph.modules, "graph is empty"
    broken = [m.name for m in graph.modules.values() if m.parse_error]
    assert broken == []
    # Orchestration layers are excluded by default.
    assert not any(name.startswith("repro.sweep") for name in graph.modules)
    assert not any(name.startswith("repro.checks") for name in graph.modules)


def test_repro_scenario_closures_contain_their_own_module():
    import repro.scenarios  # registration side effects
    from repro.checks import depfp
    from repro.scenarios import all_scenarios

    graph = depfp.package_graph()
    for entry in all_scenarios():
        fp = depfp.scenario_fingerprint(entry, graph=graph)
        assert fp is not None, entry.name
        assert entry.fn.__module__ in fp.modules, entry.name


def test_repro_closure_precision_figures_vs_tables():
    import repro.scenarios
    from repro.checks import depfp
    from repro.scenarios import get_scenario

    graph = depfp.package_graph()
    fig = depfp.scenario_fingerprint(get_scenario("fig1_generic_architecture"), graph=graph)
    table = depfp.scenario_fingerprint(get_scenario("table01_resources32"), graph=graph)
    # The figure renders a floorplan without building a system; the table
    # builds the full transfer rig.  Their closures must be visibly
    # different, and the bus model must be reachable only from the table.
    assert set(fig.modules) != set(table.modules)
    assert len(fig.modules) < len(table.modules)
    assert "repro.bus.plb" not in fig.modules
    assert "repro.bus.plb" in table.modules

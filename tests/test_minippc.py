"""Tests for the MiniPPC interpreter — and cost-model cross-validation."""

import numpy as np
import pytest

from repro.core import memmap
from repro.cpu.minippc import AssemblyError, MiniPpc, Program
from repro.errors import SimulationError
from repro.sw.image_ops import BRIGHTNESS_MIX, brightness_ref


# -- assembler -----------------------------------------------------------------

def test_assemble_labels_and_comments():
    program = Program.assemble(
        """
        # a comment
        start:
            li r1, 5
            b start
        """
    )
    assert program.labels == {"start": 0}
    assert len(program.instructions) == 2


def test_assemble_duplicate_label_rejected():
    with pytest.raises(AssemblyError, match="duplicate"):
        Program.assemble("x:\nx:\n li r1, 0")


def test_assemble_bad_label_rejected():
    with pytest.raises(AssemblyError, match="bad label"):
        Program.assemble("1bad:\n li r1, 0")


# -- interpreter semantics -------------------------------------------------------

def run_program(system, source, registers=None):
    machine = MiniPpc(system.cpu)
    stats = machine.run(Program.assemble(source), registers=registers)
    return machine, stats


def test_arithmetic_ops(system32):
    machine, _ = run_program(
        system32,
        """
        li r1, 7
        li r2, 5
        add r3, r1, r2
        sub r4, r1, r2
        mullw r5, r1, r2
        xor r6, r1, r2
        slwi r7, r1, 2
        srwi r8, r7, 1
        halt
        """,
    )
    regs = machine.registers
    assert regs[3] == 12 and regs[4] == 2 and regs[5] == 35
    assert regs[6] == 2 and regs[7] == 28 and regs[8] == 14


def test_negative_arithmetic_wraps(system32):
    machine, _ = run_program(
        system32,
        """
        li r1, 0
        addi r1, r1, -1
        halt
        """,
    )
    assert machine.registers[1] == 0xFFFFFFFF


def test_memory_ops_hit_real_memory(system32):
    base = memmap.STAGE_INPUT
    machine, stats = run_program(
        system32,
        f"""
        li r1, {base}
        li r2, 0x1234
        stw r2, 0(r1)
        lwz r3, 0(r1)
        stb r3, 8(r1)
        lbz r4, 8(r1)
        halt
        """,
    )
    assert machine.registers[3] == 0x1234
    assert machine.registers[4] == 0x34
    assert system32.ext_mem.read_word(0, 4) == 0 or True  # memory untouched elsewhere
    assert system32.ext_mem.read_word(base, 4) == 0x1234
    assert stats.loads == 2 and stats.stores == 2


def test_branches_and_loop(system32):
    machine, stats = run_program(
        system32,
        """
            li r1, 0      # sum
            li r2, 10     # counter
        loop:
            add r1, r1, r2
            addi r2, r2, -1
            cmpwi r2, 0
            bne loop
            halt
        """,
    )
    assert machine.registers[1] == 55
    assert stats.branches_taken == 9
    assert stats.branches_not_taken == 1


def test_runaway_loop_guarded(system32):
    machine = MiniPpc(system32.cpu, max_steps=100)
    with pytest.raises(SimulationError, match="runaway"):
        machine.run(Program.assemble("spin:\n b spin"))


def test_unknown_instruction(system32):
    with pytest.raises(AssemblyError, match="unknown instruction"):
        run_program(system32, "frobnicate r1, r2")


def test_unknown_branch_target(system32):
    with pytest.raises(AssemblyError, match="unknown label"):
        run_program(system32, "b nowhere")


def test_time_advances_with_execution(system32):
    before = system32.cpu.now_ps
    run_program(system32, "li r1, 1\nmullw r2, r1, r1\nhalt")
    assert system32.cpu.now_ps > before


# -- cost-model cross-validation ---------------------------------------------------

BRIGHTNESS_ASM = """
    # r1 = src, r2 = dst, r3 = count, r4 = constant
loop:
    lbz   r5, 0(r1)
    add   r5, r5, r4
    cmpwi r5, 255
    ble   no_clamp
    li    r5, 255
no_clamp:
    stb   r5, 0(r2)
    addi  r1, r1, 1
    addi  r2, r2, 1
    addi  r3, r3, -1
    cmpwi r3, 0
    bne   loop
    halt
"""


def test_brightness_loop_functional(system32):
    """The assembly loop computes the same pixels as the reference."""
    pixels = np.array([0, 100, 200, 250, 255, 17], dtype=np.uint8)
    src = memmap.STAGE_INPUT
    dst = memmap.STAGE_OUTPUT
    system32.ext_mem.load(src, pixels)
    machine, stats = run_program(
        system32, BRIGHTNESS_ASM, registers={1: src, 2: dst, 3: len(pixels), 4: 30}
    )
    out = system32.ext_mem.dump(dst, len(pixels))
    assert np.array_equal(out, brightness_ref(pixels, 30))
    assert stats.loads == len(pixels)
    assert stats.stores == len(pixels)


def test_brightness_loop_validates_mix(system64):
    """Executed cycles per pixel must agree with BRIGHTNESS_MIX.

    Run on the 64-bit system (cached memory) so the pipeline cycles
    dominate; memory-system time is excluded by subtracting the measured
    load/store bus time via a pure-compute control run.
    """
    pixels = np.arange(64, dtype=np.uint8)
    src = memmap.STAGE_INPUT
    dst = memmap.STAGE_OUTPUT
    system64.ext_mem.load(src, pixels)
    # Warm the cache so load/store are hits (mix assumes hit timing).
    system64.cpu.charge_stream_read(src, len(pixels))
    system64.cpu.charge_stream_write(dst, len(pixels))

    machine = MiniPpc(system64.cpu)
    start = system64.cpu.now_ps
    stats = machine.run(
        Program.assemble(BRIGHTNESS_ASM), registers={1: src, 2: dst, 3: len(pixels), 4: 30}
    )
    cycles_per_pixel = stats.cycles / len(pixels)
    predicted = BRIGHTNESS_MIX.cycles()
    # The abstract mix must sit within ~35% of the executable loop.
    assert cycles_per_pixel == pytest.approx(predicted, rel=0.35)

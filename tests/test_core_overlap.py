"""Tests for event-driven DMA concurrency and polled completion."""

import pytest

from repro.core.transfer import TransferBench
from repro.dock.dma import Descriptor
from repro.errors import TransferError
from repro.kernels.streams import SinkKernel

N = 1024


def test_overlap_total_is_max_of_parts(system64):
    bench = TransferBench(system64)
    result = bench.dma_write_overlapped(N, compute_cycles=1_000)
    assert result.total_ps >= max(result.dma_ps, result.compute_ps)
    assert result.total_ps < result.dma_ps + result.compute_ps


def test_overlap_efficiency_high_when_compute_fits(system64):
    bench = TransferBench(system64)
    result = bench.dma_write_overlapped(N, compute_cycles=500)
    assert result.compute_ps < result.dma_ps
    assert result.overlap_efficiency > 0.9


def test_overlap_with_compute_longer_than_dma(system64):
    bench = TransferBench(system64)
    result = bench.dma_write_overlapped(N, compute_cycles=10_000_000)
    assert result.compute_ps > result.dma_ps
    assert result.total_ps == pytest.approx(result.compute_ps, rel=0.01)


def test_overlapped_data_actually_arrives(system64):
    bench = TransferBench(system64)
    bench.dma_write_overlapped(N, compute_cycles=100)
    kernel = system64.dock.kernel
    assert kernel.words == N


def test_process_chain_matches_analytic_time(system64):
    dock = system64.dock
    dock.attach_kernel(SinkKernel())
    descriptors = [Descriptor(src=0x1000, dst=None, word_count=500)]
    analytic_done = dock.dma.run_chain(0, descriptors)

    # Fresh rig for the process variant (bus busy state must match).
    from repro.core import build_system64

    fresh = build_system64()
    fresh.dock.attach_kernel(SinkKernel())
    proc = fresh.dock.dma.run_chain_process(fresh.sim, 0, descriptors)
    process_done = fresh.sim.run(proc)
    assert process_done == analytic_done


def test_polled_completion_detects_done(system64):
    bench = TransferBench(system64)
    result = bench.dma_write_polled(N)
    assert result.polls >= 1
    assert result.total_ps >= result.dma_ps
    assert result.compute_ps == 0


def test_overlap_requires_plb_dock(system32):
    bench = TransferBench(system32)
    with pytest.raises(TransferError):
        bench.dma_write_overlapped(N, compute_cycles=10)
    with pytest.raises(TransferError):
        bench.dma_write_polled(N)


def test_consecutive_overlaps_accumulate_time(system64):
    bench = TransferBench(system64)
    first = bench.dma_write_overlapped(N, compute_cycles=100)
    t_after_first = system64.cpu.now_ps
    bench.dma_write_overlapped(N, compute_cycles=100)
    assert system64.cpu.now_ps > t_after_first


def test_cpu_pio_contends_with_active_dma(system64):
    """A CPU access issued mid-DMA queues behind the burst tenures."""
    from repro.core import memmap
    from repro.kernels.streams import SinkKernel

    dock = system64.dock
    dock.attach_kernel(SinkKernel())
    cpu = system64.cpu

    # Idle-bus baseline.
    idle_start = cpu.now_ps
    cpu.io_read(memmap.STAGE_INPUT)
    idle_latency = cpu.now_ps - idle_start

    # Saturate the PLB with a DMA chain, then read mid-transfer.
    done = dock.dma.run_chain(cpu.now_ps, [Descriptor(src=0x2000, dst=None, word_count=512)])
    assert system64.plb.busy_until == done
    contended_start = cpu.now_ps
    cpu.io_read(memmap.STAGE_INPUT)
    contended_latency = cpu.now_ps - contended_start
    assert contended_latency > 5 * idle_latency  # queued behind the DMA


def test_per_master_stats_in_real_system(system64):
    """System-level traffic is attributed to the right masters."""
    from repro.core import memmap
    from repro.kernels.streams import SinkKernel

    dock = system64.dock
    dock.attach_kernel(SinkKernel())
    system64.cpu.io_write(memmap.STAGE_INPUT, 1)
    dock.dma.run_chain(system64.cpu.now_ps, [Descriptor(src=0x3000, dst=None, word_count=32)])
    stats = system64.plb.stats
    assert stats.get("master[cpu-data].writes") >= 1
    assert stats.get("master[dma].reads") >= 1
    assert stats.get("master[dma].writes") >= 1

"""Tests for components, frame generation and BitLinker assembly."""

import numpy as np
import pytest

from repro.bitstream.bitlinker import BitLinker, Placement
from repro.bitstream.bitstream import BitstreamKind
from repro.bitstream.component import ComponentConfig
from repro.bitstream.generator import (
    initialize_static_configuration,
    verify_preserves_static,
)
from repro.dock.interface import dock_ports, kernel_ports
from repro.errors import LinkError, PortMismatchError, ResourceError
from repro.fabric.config_memory import ConfigMemory
from repro.fabric.device import XC2VP7
from repro.fabric.region import find_region
from repro.fabric.resources import ResourceVector


@pytest.fixture(scope="module")
def region():
    return find_region(XC2VP7, 28, 11, bram_blocks=6)


@pytest.fixture()
def booted(region):
    memory = ConfigMemory(XC2VP7)
    initialize_static_configuration(memory, region, seed="test-static")
    return memory


def component(name="comp", width=6, height=11, slices=150, ports=None):
    return ComponentConfig(
        name=name,
        width=width,
        height=height,
        resources=ResourceVector(slices=slices),
        ports=tuple(ports or kernel_ports(32)),
    )


@pytest.fixture()
def linker(region, booted):
    return BitLinker(region, booted, dock_ports=dock_ports(32))


# -- component validation ----------------------------------------------------

def test_component_footprint_must_hold_resources():
    with pytest.raises(ResourceError):
        ComponentConfig(name="x", width=1, height=1, resources=ResourceVector(slices=5))


def test_component_ports_must_fit_height():
    with pytest.raises(LinkError):
        component(height=3, slices=40)  # 32-bit interface needs more rows


def test_component_content_deterministic():
    a = component()
    assert a.column_bits(0, 0, 80) == component().column_bits(0, 0, 80)


def test_component_content_varies_by_column_and_minor():
    a = component()
    assert a.column_bits(0, 0, 80) != a.column_bits(1, 0, 80)
    assert a.column_bits(0, 0, 80) != a.column_bits(0, 1, 80)


def test_component_version_changes_content():
    a = component()
    assert a.column_bits(0, 0, 80) != a.with_version(2).column_bits(0, 0, 80)


def test_component_column_out_of_range():
    with pytest.raises(LinkError):
        component(width=2, slices=60).column_bits(2, 0, 80)


def test_total_resources_include_macros():
    comp = component(slices=100)
    assert comp.total_resources.slices > 100


# -- linking -----------------------------------------------------------------

def test_link_produces_complete_bitstream(linker, region):
    stream = linker.link([Placement(component(), 0, 0)])
    assert stream.kind is BitstreamKind.PARTIAL_COMPLETE
    assert stream.frame_count == region.frame_count


def test_link_requires_placements(linker):
    with pytest.raises(LinkError):
        linker.link([])


def test_link_rejects_out_of_region(linker):
    with pytest.raises(LinkError, match="does not fit"):
        linker.link([Placement(component(width=30), 0, 0)])


def test_link_rejects_overlap(linker):
    comp = component()
    with pytest.raises(LinkError, match="overlap"):
        linker.link([Placement(comp, 0, 0), Placement(component("other"), 2, 0)])


def test_link_rejects_overcommit(linker):
    big = ComponentConfig(
        name="big",
        width=20,
        height=11,
        resources=ResourceVector(slices=850),
        ports=tuple(kernel_ports(32)),
    )
    with pytest.raises(ResourceError):
        linker.link([Placement(big, 0, 0), Placement(component(slices=500, name="b2"), 21, 0)])


def test_link_rejects_port_mismatch(region, booted):
    no_dock = BitLinker(region, booted, dock_ports=())
    with pytest.raises(PortMismatchError):
        no_dock.link([Placement(component(), 0, 0)])


def test_link_report(linker):
    linker.link([Placement(component(), 0, 0)])
    report = linker.last_report
    assert report.components == ["comp"]
    assert report.frame_count > 0
    assert any(a == "dock" for a, _ in report.connections)


def test_link_preserves_static_rows(linker, region, booted):
    stream = linker.link([Placement(component(), 0, 0)])
    before = ConfigMemory(XC2VP7)
    before.restore(booted.snapshot())
    after = ConfigMemory(XC2VP7)
    after.restore(booted.snapshot())
    for address, data in stream.frames:
        after.write_frame(address, data)
    assert verify_preserves_static(before, after, region)


def test_link_component_content_lands_in_region(linker, region, booted):
    stream = linker.link([Placement(component(), 0, 0)])
    # The region rows of the first component column must differ from the
    # (cleared) boot state.
    geo = booted.geometry
    addr = [a for a in stream.addresses() if a.major == region.rect.col][0]
    mask = geo.row_mask(region.rect.row, region.rect.row_end)
    assert (stream.frame_data(addr) & mask).any()


def test_differential_empty_after_apply(linker, booted, region):
    placements = [Placement(component(), 0, 0)]
    stream = linker.link(placements)
    current = ConfigMemory(XC2VP7)
    current.restore(booted.snapshot())
    for address, data in stream.frames:
        current.write_frame(address, data)
    diff = linker.link_differential(placements, current)
    assert diff.kind is BitstreamKind.PARTIAL_DIFFERENTIAL
    assert diff.frame_count == 0


def test_differential_smaller_than_complete(linker, booted):
    placements = [Placement(component(width=4), 0, 0)]
    complete = linker.link(placements)
    current = ConfigMemory(XC2VP7)
    current.restore(booted.snapshot())
    diff = linker.link_differential(placements, current)
    assert 0 < diff.frame_count < complete.frame_count


def test_two_abutting_components_port_check(region, booted):
    """Right ports of the left component must mate left ports of the right."""
    from repro.bitstream.busmacro import BusMacro, Direction, MacroKind, Port, Side

    macro = BusMacro("chain", MacroKind.LUT, width=8)
    left = ComponentConfig(
        name="left",
        width=6,
        height=11,
        resources=ResourceVector(slices=64),
        ports=tuple(kernel_ports(32)) + (Port(macro, Side.RIGHT, Direction.OUT),),
    )
    right = ComponentConfig(
        name="right",
        width=6,
        height=11,
        resources=ResourceVector(slices=64),
        ports=(Port(macro, Side.LEFT, Direction.IN),),
    )
    linker = BitLinker(region, booted, dock_ports=dock_ports(32))
    stream = linker.link([Placement(left, 0, 0), Placement(right, 6, 0)])
    assert stream.frame_count == region.frame_count
    chained = [c for c in linker.last_report.connections if "chain" in c[0] or "chain" in c[1]]
    assert chained


def test_gap_with_left_ports_rejected(region, booted):
    from repro.bitstream.busmacro import BusMacro, Direction, MacroKind, Port, Side

    macro = BusMacro("chain", MacroKind.LUT, width=8)
    left = component("left", width=6)
    right = ComponentConfig(
        name="right",
        width=6,
        height=11,
        resources=ResourceVector(slices=64),
        ports=(Port(macro, Side.LEFT, Direction.IN),),
    )
    linker = BitLinker(region, booted, dock_ports=dock_ports(32))
    with pytest.raises(PortMismatchError, match="abut"):
        linker.link([Placement(left, 0, 0), Placement(right, 8, 0)])


def test_clear_bitstream_restores_boot_state(linker, region, booted):
    stream = linker.link([Placement(component(), 0, 0)])
    current = ConfigMemory(XC2VP7)
    current.restore(booted.snapshot())
    for address, data in stream.frames:
        current.write_frame(address, data)
    clear = linker.clear_bitstream()
    for address, data in clear.frames:
        current.write_frame(address, data)
    for address in clear.addresses():
        assert current.frames_equal(address, booted)

"""Tests for bit-level frame helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitstream.bits import (
    deterministic_bits,
    extract_bits,
    int_to_words,
    place_bits,
    words_to_int,
)


def test_words_to_int_bit_numbering():
    words = np.array([0x1, 0x2], dtype=np.uint32)
    value = words_to_int(words)
    assert value & 1 == 1  # bit 0 of word 0
    assert (value >> 33) & 1 == 1  # bit 1 of word 1 -> frame bit 33


def test_int_to_words_roundtrip():
    words = np.array([0xDEADBEEF, 0x12345678, 0], dtype=np.uint32)
    assert np.array_equal(int_to_words(words_to_int(words), 3), words)


def test_int_to_words_truncates_overflow():
    out = int_to_words(1 << 64, 2)
    assert not out.any()


def test_int_to_words_rejects_negative():
    with pytest.raises(ValueError):
        int_to_words(-1, 2)


def test_place_bits_preserves_outside():
    frame = np.full(4, 0xFFFFFFFF, dtype=np.uint32)
    out = place_bits(frame, 8, 0, 16)
    assert extract_bits(out, 8, 16) == 0
    assert extract_bits(out, 0, 8) == 0xFF
    assert extract_bits(out, 24, 8) == 0xFF


def test_place_bits_crossing_word_boundary():
    frame = np.zeros(2, dtype=np.uint32)
    out = place_bits(frame, 28, 0xFF, 8)
    assert extract_bits(out, 28, 8) == 0xFF
    assert out[0] == 0xF0000000
    assert out[1] == 0x0000000F


def test_place_bits_masks_content():
    frame = np.zeros(1, dtype=np.uint32)
    out = place_bits(frame, 0, 0xFFFF, 4)  # only 4 bits should land
    assert out[0] == 0xF


def test_place_bits_out_of_range():
    with pytest.raises(ValueError):
        place_bits(np.zeros(1, dtype=np.uint32), 30, 0, 8)


def test_extract_bits_matches_place():
    frame = np.zeros(3, dtype=np.uint32)
    out = place_bits(frame, 17, 0x5A5A, 16)
    assert extract_bits(out, 17, 16) == 0x5A5A


def test_deterministic_bits_stable():
    assert deterministic_bits("seed", 100) == deterministic_bits("seed", 100)


def test_deterministic_bits_seed_sensitivity():
    assert deterministic_bits("a", 256) != deterministic_bits("b", 256)


def test_deterministic_bits_length():
    value = deterministic_bits("x", 13)
    assert value < (1 << 13)


def test_deterministic_bits_zero_length():
    assert deterministic_bits("x", 0) == 0


def test_deterministic_bits_negative_rejected():
    with pytest.raises(ValueError):
        deterministic_bits("x", -1)


@given(st.integers(0, 95), st.integers(0, 95), st.integers(min_value=0))
def test_place_extract_roundtrip(offset, length, content):
    if offset + length > 96:
        length = 96 - offset
    frame = np.zeros(3, dtype=np.uint32)
    out = place_bits(frame, offset, content, length)
    assert extract_bits(out, offset, length) == content & ((1 << length) - 1)


@given(st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=8))
def test_words_int_roundtrip_property(raw):
    words = np.array(raw, dtype=np.uint32)
    assert np.array_equal(int_to_words(words_to_int(words), len(words)), words)

"""Tests for the discrete-event kernel."""

import pytest

from repro.engine.events import Simulator
from repro.errors import ScheduleInPastError, SimulationError


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(1_000)
    sim.run()
    assert sim.now == 1_000


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.timeout(2_000).callbacks.append(lambda ev: order.append("b"))
    sim.timeout(1_000).callbacks.append(lambda ev: order.append("a"))
    sim.run()
    assert order == ["a", "b"]


def test_same_time_events_fifo_order():
    sim = Simulator()
    order = []
    for name in "abc":
        sim.timeout(500, name).callbacks.append(lambda ev: order.append(ev.value))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_value():
    sim = Simulator()
    ev = sim.timeout(10, value=42)
    sim.run()
    assert ev.value == 42
    assert ev.ok


def test_event_fail_propagates_to_value():
    sim = Simulator()
    ev = sim.event("boom")
    ev.fail(ValueError("boom"))
    sim.run()
    with pytest.raises(ValueError):
        _ = ev.value


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ScheduleInPastError):
        sim.timeout(-1)


def test_process_returns_value():
    sim = Simulator()

    def worker():
        yield 1_000
        return 7

    proc = sim.process(worker())
    assert sim.run(proc) == 7
    assert sim.now == 1_000


def test_process_waits_on_event():
    sim = Simulator()
    gate = sim.event("gate")

    def opener():
        yield 500
        gate.succeed("open")

    def waiter():
        value = yield gate
        return value

    sim.process(opener())
    proc = sim.process(waiter())
    assert sim.run(proc) == "open"
    assert sim.now == 500


def test_process_chains_sub_process():
    sim = Simulator()

    def inner():
        yield 100
        return 5

    def outer():
        value = yield sim.process(inner())
        yield 100
        return value * 2

    assert sim.run(sim.process(outer())) == 10
    assert sim.now == 200


def test_process_exception_propagates():
    sim = Simulator()

    def broken():
        yield 10
        raise RuntimeError("broken process")

    proc = sim.process(broken())
    with pytest.raises(RuntimeError):
        sim.run(proc)


def test_process_bad_yield_fails():
    sim = Simulator()

    def bad():
        yield "not an event"

    proc = sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run(proc)


def test_all_of_collects_values():
    sim = Simulator()
    events = [sim.timeout(100 * (i + 1), value=i) for i in range(3)]
    combo = sim.all_of(events)
    assert sim.run(combo) == [0, 1, 2]
    assert sim.now == 300


def test_all_of_empty_is_immediate():
    sim = Simulator()
    combo = sim.all_of([])
    sim.run()
    assert combo.value == []


def test_any_of_returns_first():
    sim = Simulator()
    slow = sim.timeout(1_000, value="slow")
    fast = sim.timeout(100, value="fast")
    combo = sim.any_of([slow, fast])
    assert sim.run(combo) == (1, "fast")


def test_any_of_requires_events():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.any_of([])


def test_run_until_time():
    sim = Simulator()
    fired = []
    sim.timeout(100).callbacks.append(lambda ev: fired.append(1))
    sim.timeout(10_000).callbacks.append(lambda ev: fired.append(2))
    sim.run(until=5_000)
    assert fired == [1]
    assert sim.now == 5_000


def test_run_until_unfired_event_raises():
    sim = Simulator()
    ev = sim.event("never")
    sim.timeout(10)
    with pytest.raises(SimulationError):
        sim.run(ev)


def test_processed_events_counter():
    sim = Simulator()
    for _ in range(5):
        sim.timeout(1)
    sim.run()
    assert sim.processed_events == 5


def test_deferred_resumes_count_as_processed_events():
    """Process kick-off and already-processed waits run off the deferral
    ring but still count one-for-one with the zero-delay Timeouts they
    replaced."""
    sim = Simulator()

    def worker():
        yield 100
        done = sim.timeout(0, value="x")
        yield done          # processed before the wait starts? no — normal
        value = yield done  # already processed: deferred resume
        return value

    proc = sim.process(worker())
    assert sim.run(proc) == "x"
    # kick-off deferral + timeout(100) + timeout(0) + deferred re-wait +
    # the process's own completion event.
    assert sim.deferred_events == 2
    assert sim.heap_events == 3
    assert sim.processed_events == sim.deferred_events + sim.heap_events


def test_deferred_kickoff_preserves_creation_order():
    """Two processes created back-to-back start in creation order, and
    interleave with a heap event scheduled between them at t=0."""
    sim = Simulator()
    order = []

    def worker(name):
        order.append(name)
        yield 10

    sim.process(worker("p1"))
    sim.timeout(0).callbacks.append(lambda ev: order.append("t"))
    sim.process(worker("p2"))
    sim.run()
    assert order == ["p1", "t", "p2"]


def test_deferred_wait_on_processed_event_orders_after_pending_siblings():
    """A process waiting on an already-processed event resumes after events
    that were queued earlier at the same timestamp (the old zero-delay
    Timeout ordering)."""
    sim = Simulator()
    order = []
    done = sim.timeout(0, value="early")

    def waiter():
        yield 50
        sim.timeout(0).callbacks.append(lambda ev: order.append("sibling"))
        value = yield done  # already processed at t=0
        order.append(f"resumed:{value}")

    sim.run(sim.process(waiter()))
    assert order == ["sibling", "resumed:early"]


def test_step_drains_deferrals_then_heap():
    sim = Simulator()
    order = []

    def worker():
        order.append("start")
        yield 1

    sim.process(worker())
    sim.timeout(0).callbacks.append(lambda ev: order.append("t0"))
    sim.step()  # the kick-off deferral (counter 0) precedes the heap event
    assert order == ["start"]
    sim.step()
    assert order == ["start", "t0"]


def test_concurrent_processes_interleave():
    sim = Simulator()
    log = []

    def worker(name, delay):
        for step in range(3):
            yield delay
            log.append((name, sim.now))

    sim.process(worker("a", 100))
    sim.process(worker("b", 150))
    sim.run()
    # At t=300 both fire; b's timeout was scheduled first (at t=150), so
    # FIFO insertion order puts b ahead of a.
    assert log == [
        ("a", 100), ("b", 150), ("a", 200), ("b", 300), ("a", 300), ("b", 450),
    ]

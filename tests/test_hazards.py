"""Failure-injection tests: the hazards the paper's design choices avoid.

Each test demonstrates a failure mode *happening* when the guard is
removed — differential bitstreams applied in the wrong state, FIFO
overflow from an unthrottled kernel, bitstream corruption, undecoded
DMA addresses — and that the guarded path catches or avoids it.
"""

import numpy as np
import pytest

from repro.bitstream.bitlinker import Placement
from repro.bitstream.generator import verify_preserves_static
from repro.dock.dma import Descriptor
from repro.errors import (
    AddressDecodeError,
    ReconfigurationError,
    TransferError,
)
from repro.fabric.config_memory import ConfigMemory
from repro.kernels import BrightnessKernel, JenkinsHashKernel, LoopbackKernel


def test_differential_bitstream_wrong_state_hazard(system32):
    """The paper's central correctness argument, demonstrated.

    A differential bitstream computed against state A ("brightness is
    loaded") is applied when the device is actually in state B ("hash is
    loaded").  The result is neither configuration — the exact hazard
    BitLinker's complete configurations exist to avoid.
    """
    bright = BrightnessKernel(5).make_component(32, system32.region.rect.height)
    hash_core = JenkinsHashKernel().make_component(32, system32.region.rect.height)
    linker = system32.bitlinker

    complete_bright = linker.link([Placement(bright, 0, 0)])
    complete_hash = linker.link([Placement(hash_core, 0, 0)])
    # The hash core is wider than the brightness core — the hazard needs
    # stale content outside the delta's coverage.
    assert hash_core.width > bright.width

    # Differential for "brightness, assuming the region is clear": it only
    # writes the columns the brightness core touches.
    boot = ConfigMemory(system32.device)
    boot.restore(system32.baseline)
    differential = linker.link_differential([Placement(bright, 0, 0)], current=boot)
    assert 0 < differential.frame_count < complete_bright.frame_count

    # But the device is actually in another state: the hash core is loaded.
    state = ConfigMemory(system32.device)
    state.restore(system32.baseline)
    for address, data in complete_hash.frames:
        state.write_frame(address, data)
    for address, data in differential.frames:
        state.write_frame(address, data)

    # The outcome is NOT the brightness configuration: stale hash columns
    # survive beyond the delta's coverage...
    mismatch = sum(
        0 if np.array_equal(state.read_frame(a), complete_bright.frame_data(a)) else 1
        for a in complete_bright.addresses()
    )
    assert mismatch > 0

    # ...whereas the complete bitstream lands correctly from any state.
    for address, data in complete_bright.frames:
        state.write_frame(address, data)
    for address in complete_bright.addresses():
        assert np.array_equal(state.read_frame(address), complete_bright.frame_data(address))


def test_differential_correct_in_right_state(system32):
    """Applied in the state it was computed for, the delta is exact."""
    bright = BrightnessKernel(5).make_component(32, system32.region.rect.height)
    hash_core = JenkinsHashKernel().make_component(32, system32.region.rect.height)
    linker = system32.bitlinker

    state = ConfigMemory(system32.device)
    state.restore(system32.baseline)
    for address, data in linker.link([Placement(bright, 0, 0)]).frames:
        state.write_frame(address, data)

    complete_hash = linker.link([Placement(hash_core, 0, 0)])
    differential = linker.link_differential([Placement(hash_core, 0, 0)], current=state)
    for address, data in differential.frames:
        state.write_frame(address, data)
    for address in complete_hash.addresses():
        assert np.array_equal(state.read_frame(address), complete_hash.frame_data(address))


def test_fifo_overflow_surfaces_as_error(system64):
    """A kernel producing more than the FIFO holds must fail loudly."""
    from repro.kernels.streams import CounterSourceKernel

    dock = system64.dock
    source = CounterSourceKernel()
    dock.attach_kernel(source)
    source.generate(dock.fifo.depth + 1, width_bits=64)
    with pytest.raises(TransferError, match="overflow"):
        dock.collect_outputs()


def test_dma_to_undecoded_address_fails(system64):
    system64.dock.attach_kernel(LoopbackKernel())
    with pytest.raises(AddressDecodeError):
        system64.dock.dma.run_chain(
            0, [Descriptor(src=0xDEAD_0000, dst=None, word_count=4)]
        )


def test_corrupted_bitstream_rejected_before_fabric_update(system32):
    """A CRC hit must leave configuration memory untouched."""
    bright = BrightnessKernel(5).make_component(32, system32.region.rect.height)
    stream = system32.bitlinker.link([Placement(bright, 0, 0)])
    words = stream.to_words().copy()
    words[20] ^= 0x1  # flip one bit mid-stream
    before = system32.config_memory.snapshot()
    with pytest.raises(ReconfigurationError):
        system32.hwicap.load_words(words)
    after = system32.config_memory.snapshot()
    assert set(before) == set(after)
    for address in before:
        assert np.array_equal(before[address], after[address])


def test_partial_load_preservation_check_fires(system32):
    """A bitstream writing outside the region trips the manager's check."""
    from repro.bitstream.bitstream import Bitstream, BitstreamKind
    from repro.fabric.frames import BlockType, FrameAddress

    # Forge a "partial" stream touching a static column.
    static_col = 0
    assert static_col not in set(system32.region.rect.columns)
    address = FrameAddress(BlockType.CLB, static_col, 0)
    rogue_frame = np.full(system32.device.words_per_frame, 0x666, dtype=np.uint32)
    rogue = Bitstream(
        system32.device.name,
        BitstreamKind.PARTIAL_COMPLETE,
        frames=[(address, rogue_frame)],
    )
    before = ConfigMemory(system32.device)
    before.restore(system32.config_memory.snapshot())
    system32.hwicap.load_words(rogue.to_words())
    assert not verify_preserves_static(before, system32.config_memory, system32.region)

"""Tests for the PPC405 core timing model."""

import pytest

from repro.bus.plb import make_plb
from repro.bus.transaction import Op
from repro.cpu.isa import InstructionMix
from repro.cpu.ppc405 import Ppc405
from repro.engine.clock import ClockDomain, mhz
from repro.errors import BusWidthError, SimulationError
from repro.mem.controllers import DdrController
from repro.mem.memory import MemoryArray


@pytest.fixture
def setup():
    clock = ClockDomain("cpu", mhz(200))
    bus_clock = ClockDomain("bus", mhz(100))
    plb = make_plb(bus_clock)
    memory = MemoryArray(1 << 20, "ddr")
    plb.attach(DdrController(memory, 0, "ddr"), 0, 1 << 20, name="ddr")
    cpu = Ppc405(clock, plb)
    cpu.add_cacheable(0, 1 << 20, memory)
    return cpu, memory, plb


def test_execute_advances_time(setup):
    cpu, memory, plb = setup
    cpu.execute(InstructionMix(alu=100))
    assert cpu.now_ps == 100 * cpu.clock.period_ps


def test_execute_iterations(setup):
    cpu, memory, plb = setup
    cpu.execute(InstructionMix(alu=10), iterations=5)
    assert cpu.now_ps == 50 * cpu.clock.period_ps


def test_elapse_negative_rejected(setup):
    cpu, _, _ = setup
    with pytest.raises(SimulationError):
        cpu.elapse_ps(-1)


def test_io_rejects_64bit(setup):
    # "load and store instructions handle items of size up to 32 bits"
    cpu, _, _ = setup
    with pytest.raises(BusWidthError):
        cpu.io_write(0, 0, size=8)
    with pytest.raises(BusWidthError):
        cpu.io_read(0, size=8)


def test_io_write_read_functional(setup):
    cpu, memory, plb = setup
    cpu.io_write(0x100, 0xABCD)
    assert cpu.io_read(0x100) == 0xABCD
    assert memory.read_word(0x100, 4) == 0xABCD


def test_io_advances_time(setup):
    cpu, _, _ = setup
    before = cpu.now_ps
    cpu.io_read(0)
    assert cpu.now_ps > before


def test_cached_load_hit_is_cheap(setup):
    cpu, memory, plb = setup
    memory.write_word(0x200, 4, 7)
    cpu.load_word(0x200)  # miss + fill
    t0 = cpu.now_ps
    value = cpu.load_word(0x204)  # same line: hit
    hit_time = cpu.now_ps - t0
    assert value == 0
    assert hit_time == cpu.clock.period_ps  # one pipeline cycle


def test_cached_load_miss_costs_line_fill(setup):
    cpu, memory, plb = setup
    t0 = cpu.now_ps
    cpu.load_word(0x400)
    miss_time = cpu.now_ps - t0
    assert miss_time > 10 * cpu.clock.period_ps


def test_store_word_functional(setup):
    cpu, memory, plb = setup
    cpu.store_word(0x300, 0x55)
    assert memory.read_word(0x300, 4) == 0x55


def test_dirty_eviction_does_not_corrupt_memory(setup):
    cpu, memory, plb = setup
    cpu.store_word(0x0, 0x11)
    # Evict line 0 by filling its set with conflicting lines.
    stride = cpu.dcache.set_count * cpu.dcache.line_bytes
    cpu.load_word(stride)
    cpu.load_word(2 * stride)
    assert memory.read_word(0x0, 4) == 0x11


def test_uncached_fallback_for_unknown_window(setup):
    cpu, memory, plb = setup
    # Address beyond the cacheable window would not decode; restrict the
    # cacheable list instead and verify io path used for a cached-range miss.
    cpu._windows.clear()
    before = cpu.stats.get("io_reads")
    cpu.load_word(0x100)
    assert cpu.stats.get("io_reads") == before + 1


def test_io_read_batch_matches_loop(setup):
    cpu, memory, plb = setup
    t0 = cpu.now_ps
    cpu.io_read_batch(0x500, 16)
    batch_time = cpu.now_ps - t0
    cpu2, memory2, plb2 = setup[0], setup[1], setup[2]
    # Fresh setup for the loop version.
    clock = ClockDomain("cpu", mhz(200))
    bus_clock = ClockDomain("bus", mhz(100))
    plb_l = make_plb(bus_clock)
    mem_l = MemoryArray(1 << 20, "ddr")
    plb_l.attach(DdrController(mem_l, 0, "ddr"), 0, 1 << 20, name="ddr")
    cpu_l = Ppc405(clock, plb_l)
    for _ in range(16):
        cpu_l.io_read(0x500)
    loop_time = cpu_l.now_ps
    assert abs(batch_time - loop_time) / loop_time < 0.15


def test_charge_stream_read_scales_with_misses(setup):
    cpu, memory, plb = setup
    t0 = cpu.now_ps
    cpu.charge_stream_read(0, 32 * 1024)
    first = cpu.now_ps - t0
    t1 = cpu.now_ps
    cpu.charge_stream_read(0x40000, 64 * 1024)
    second = cpu.now_ps - t1
    assert second == pytest.approx(2 * first, rel=0.1)


def test_charge_stream_requires_cacheable(setup):
    cpu, _, _ = setup
    with pytest.raises(SimulationError):
        cpu.charge_stream_read(0x9000_0000, 64)


def test_stream_write_dcbz_cheaper(setup):
    cpu, _, _ = setup
    t0 = cpu.now_ps
    cpu.charge_stream_write(0, 64 * 1024, allocate=True)
    allocate_time = cpu.now_ps - t0
    cpu.dcache.invalidate()
    t1 = cpu.now_ps
    cpu.charge_stream_write(0x40000, 64 * 1024, allocate=False)
    dcbz_time = cpu.now_ps - t1
    assert dcbz_time < allocate_time


def test_interrupt_entry_and_exit(setup):
    cpu, _, _ = setup
    cpu.take_interrupt(when_ps=1_000_000)
    assert cpu.now_ps >= 1_000_000
    assert cpu.interrupts_taken == 1
    t = cpu.now_ps
    cpu.return_from_interrupt()
    assert cpu.now_ps > t


def test_reset_invalidates_caches(setup):
    cpu, memory, plb = setup
    cpu.load_word(0x100)
    assert cpu.dcache.contains(0x100)
    cpu.reset()
    assert not cpu.dcache.contains(0x100)

"""Tests for the assembled systems (figures 3/4, Tables 1/6 inventory)."""

import pytest

from repro.core import build_system32, build_system64, memmap
from repro.dock.opb_dock import OpbDock
from repro.dock.plb_dock import PlbDock


def test_system32_headline_numbers(system32):
    assert system32.device.name == "XC2VP7"
    assert system32.cpu_clock.freq_mhz == 200
    assert system32.plb.clock.freq_mhz == 50
    assert system32.opb.clock.freq_mhz == 50
    assert system32.bus_width == 32


def test_system64_headline_numbers(system64):
    assert system64.device.name == "XC2VP30"
    assert system64.cpu_clock.freq_mhz == 300
    assert system64.plb.clock.freq_mhz == 100
    assert system64.bus_width == 64


def test_system32_region_matches_paper(system32):
    res = system32.region.resources
    assert res.slices == 1232
    assert res.bram_blocks == 6
    assert system32.region.rect.width == 28
    assert system32.region.rect.height == 11


def test_system64_region_matches_paper(system64):
    res = system64.region.resources
    assert res.slices == 3072
    assert res.bram_blocks == 22


def test_dock_types(system32, system64):
    assert isinstance(system32.dock, OpbDock)
    assert isinstance(system64.dock, PlbDock)


def test_memory_characteristics(system32, system64):
    assert system32.ext_mem.size_bytes == 32 * 1024 * 1024  # 32 MB SRAM
    assert system64.ext_mem.size_bytes == 512 * 1024 * 1024  # 512 MB DDR
    assert not system32.ext_mem_cacheable
    assert system64.ext_mem_cacheable


def test_system32_has_gpio_system64_has_intc(system32, system64):
    # "Minor differences include the addition of an interrupt controller
    #  ... and the absence of the GPIO controller."
    assert "gpio" in system32.extras
    assert "intc" not in system32.extras
    assert "intc" in system64.extras
    assert "gpio" not in system64.extras


def test_module_inventories_cover_paper_tables(system32, system64):
    names32 = [m.name for m in system32.modules]
    assert any("Dock" in n for n in names32)
    assert any("HWICAP" in n for n in names32)
    assert any("bridge" in n.lower() for n in names32)
    assert any("GPIO" in n for n in names32)
    names64 = [m.name for m in system64.modules]
    assert any("DDR" in n for n in names64)
    assert any("INTC" in n for n in names64)
    assert not any("GPIO" in n for n in names64)


def test_static_design_fits_outside_region(system32, system64):
    for system in (system32, system64):
        static = system.static_resources()
        budget = system.device.capacity - system.region.resources
        assert static.fits_within(budget)


def test_plb_dock_larger_than_opb_dock():
    # "the permanent circuits ... are larger and more complex for the
    #  second design" — dock with DMA + FIFO + interrupts costs more.
    assert PlbDock.RESOURCES.slices > OpbDock.RESOURCES.slices


def test_resource_table_rows(system32):
    rows = system32.resource_table()
    assert len(rows) == len(system32.modules)
    assert all(len(row) == 3 for row in rows)


def test_cpu_reads_and_writes_external_memory(system32):
    cpu = system32.cpu
    cpu.io_write(memmap.STAGE_INPUT, 0x1234)
    assert cpu.io_read(memmap.STAGE_INPUT) == 0x1234
    assert system32.ext_mem.read_word(memmap.STAGE_INPUT, 4) == 0x1234


def test_cpu_reaches_dock_through_bridge(system32):
    from repro.kernels.streams import LoopbackKernel

    system32.dock.attach_kernel(LoopbackKernel())
    system32.cpu.io_write(memmap.DOCK_BASE, 0x55)
    assert system32.cpu.io_read(memmap.DOCK_BASE) == 0x55
    assert system32.opb.stats.get("writes") >= 1  # crossed onto the OPB


def test_cpu_reaches_dock_directly_on_plb(system64):
    from repro.kernels.streams import LoopbackKernel

    system64.dock.attach_kernel(LoopbackKernel())
    opb_writes_before = system64.opb.stats.get("writes")
    system64.cpu.io_write(memmap.DOCK_BASE, 0x66)
    assert system64.cpu.io_read(memmap.DOCK_BASE) == 0x66
    assert system64.opb.stats.get("writes") == opb_writes_before  # no bridge crossing


def test_config_memory_boots_with_static_design(system32):
    assert len(system32.config_memory) == system32.device.total_frames
    assert len(system32.baseline) == system32.device.total_frames


def test_region_summary_string(system32):
    summary = system32.region_summary()
    assert "1232 slices" in summary
    assert "25.0%" in summary


def test_validate_passes_on_fresh_builds():
    build_system32().validate()
    build_system64().validate()


def test_builds_are_independent():
    a = build_system32()
    b = build_system32()
    a.cpu.elapse_cycles(100)
    assert b.cpu.now_ps == 0

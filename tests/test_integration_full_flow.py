"""Grand integration test: one session covering the whole system story.

Boots the 64-bit platform, talks to it over the host link, makes a
lower-bound assessment, reconfigures with readback verification, runs the
workload in hardware and software, cross-checks bit-exactness, swaps
kernels (paying the reconfiguration), and audits the run with the bus
profiler and the floorplan/trace facilities — every public subsystem in
one realistic flow.
"""

import numpy as np
import pytest

from repro import ReconfigManager, build_system64
from repro.analysis import (
    Episode,
    EpisodePlanner,
    Method,
    TaskProfile,
    assess,
    break_even_runs,
    profile_run,
)
from repro.core import memmap
from repro.core.apps import HwBrightnessDma, HwJenkinsHash
from repro.core.floorplan import render_system_floorplan
from repro.core.hostlink import HostLink
from repro.engine.trace import TraceRecorder
from repro.kernels import BrightnessKernel, JenkinsHashKernel
from repro.sw import SwBrightness, SwJenkinsHash
from repro.workloads import grayscale_image, random_key


@pytest.mark.slow
def test_full_session_story():
    system = build_system64()
    timeline = []

    # 1. The host checks the board is alive.
    link = HostLink(system)
    assert link.ping(b"hello") == b"hello"
    assert link.active_kernel() == ""
    timeline.append(("ping", system.cpu.now_ps))

    # 2. First assessment: is a brightness kernel worth building?
    image = grayscale_image(64, 64, seed=100)
    sw_probe = SwBrightness(48).run(system, image)
    words = image.size // 4
    verdict = assess(
        system,
        TaskProfile("brightness", words_in=words, words_out=words),
        software_ps=sw_probe.elapsed_ps,
        method=Method.DMA,
    )
    assert verdict.worthwhile

    # 3. Reconfigure with readback verification.
    manager = ReconfigManager(system)
    manager.register(BrightnessKernel(48))
    manager.register(JenkinsHashKernel())
    load = manager.load("brightness", verify=True)
    assert load.frames_verified > 0
    assert link.active_kernel() == "brightness"
    timeline.append(("reconfig", system.cpu.now_ps))

    # 4. Run hardware vs software, bit-exact, with bus profiling.
    report = profile_run(system, lambda: HwBrightnessDma().run(system, image))
    hw = report.result
    sw = SwBrightness(48).run(system, image)
    assert np.array_equal(hw.result, sw.result)
    speedup = sw.elapsed_ps / hw.elapsed_ps
    assert speedup > 3
    assert "plb64" in report.buses

    # 5. Plan a mixed workload with measured economics.
    hash_load = manager.load("lookup2")
    key = random_key(2048, seed=101)
    hw_hash = HwJenkinsHash().run(system, key)
    sw_hash = SwJenkinsHash().run(system, key)
    assert hw_hash.result == sw_hash.result
    amortise = break_even_runs(load.elapsed_ps, sw.elapsed_ps, hw.elapsed_ps)
    big_batch = int(amortise * 2) + 1
    episodes = [
        Episode("brightness", big_batch, sw.elapsed_ps, hw.elapsed_ps, load.elapsed_ps),
        Episode("lookup2", 3, sw_hash.elapsed_ps, hw_hash.elapsed_ps, hash_load.elapsed_ps),
        Episode("brightness", big_batch, sw.elapsed_ps, hw.elapsed_ps, load.elapsed_ps),
    ]
    plan = EpisodePlanner(initial_resident="lookup2").plan(episodes)
    assert plan.steps[0].use_hardware  # 2x break-even amortises the swap
    assert not plan.steps[1].use_hardware  # 3 hash runs never do
    assert plan.speedup > 1

    # 6. The floorplan and trace facilities describe what just ran.
    plan_text = render_system_floorplan(system)
    assert "XC2VP30" in plan_text
    recorder = TraceRecorder()
    system.plb.tracer = recorder
    system.cpu.io_read(memmap.STAGE_INPUT)
    assert recorder.summary()

    # 7. Time flowed monotonically through the whole story.
    times = [t for _, t in timeline] + [system.cpu.now_ps]
    assert times == sorted(times)
    # A full session is tens of milliseconds of simulated time.
    assert system.cpu.now_ps > 10_000_000_000

"""Tests for the raw transfer measurements (Tables 2/7/8 machinery)."""

import pytest

from repro.core.transfer import TransferBench
from repro.errors import TransferError

N = 1024


@pytest.fixture
def bench32(system32):
    return TransferBench(system32)


@pytest.fixture
def bench64(system64):
    return TransferBench(system64)


def test_pio_write_reports_per_transfer(bench32):
    result = bench32.pio_write_sequence(N)
    assert result.transfers == N
    assert result.word_bits == 32
    assert result.per_transfer_ns > 0
    assert result.total_ps > 0


def test_pio_read_slower_or_equal_to_write_32(bench32):
    w = bench32.pio_write_sequence(N)
    r = bench32.pio_read_sequence(N)
    assert r.per_transfer_ns >= w.per_transfer_ns * 0.9


def test_pio_interleaved_costs_about_write_plus_read(bench32):
    w = bench32.pio_write_sequence(N).per_transfer_ns
    r = bench32.pio_read_sequence(N).per_transfer_ns
    wr = bench32.pio_interleaved_sequence(N).per_transfer_ns
    assert 0.7 * (w + r) <= wr <= 1.3 * (w + r)


def test_pio_per_transfer_stable_across_lengths(bench32):
    short = bench32.pio_write_sequence(256).per_transfer_ns
    long = bench32.pio_write_sequence(4096).per_transfer_ns
    assert abs(short - long) / long < 0.1


def test_64bit_pio_faster_4_to_6_times(bench32, bench64):
    # "A decrease in transfer time between 4 and 6 times, depending on the
    #  transfer type, can be observed."
    for name in ("pio_write_sequence", "pio_read_sequence", "pio_interleaved_sequence"):
        t32 = getattr(bench32, name)(N).per_transfer_ns
        t64 = getattr(bench64, name)(N).per_transfer_ns
        assert 4.0 <= t32 / t64 <= 6.0, name


def test_dma_methods_rejected_on_32bit(bench32):
    with pytest.raises(TransferError, match="CPU-controlled"):
        bench32.dma_write_sequence(N)


def test_dma_write_faster_than_pio(bench64):
    pio = bench64.pio_write_sequence(N).per_transfer_ns
    dma = bench64.dma_write_sequence(N).per_transfer_ns
    assert dma < pio / 2  # and each DMA transfer moves twice the data


def test_dma_read_uses_fifo(bench64, system64):
    result = bench64.dma_read_sequence(N)
    assert result.word_bits == 64
    assert system64.dock.fifo.empty  # fully drained


def test_dma_interleaved_block_structure(bench64, system64):
    # More words than the FIFO holds forces block interleaving.
    result = bench64.dma_interleaved_sequence(5000)
    assert result.transfers == 5000
    assert system64.dock.fifo.empty
    # Data really moved: output region holds the loopback of the input.
    from repro.core import memmap

    src = system64.ext_mem.read_words(memmap.STAGE_INPUT, 4, size_bytes=8)
    dst = system64.ext_mem.read_words(memmap.STAGE_OUTPUT, 4, size_bytes=8)
    assert src == dst


def test_dma_completion_interrupt_taken(bench64, system64):
    before = system64.cpu.interrupts_taken
    bench64.dma_write_sequence(N)
    assert system64.cpu.interrupts_taken == before + 1


def test_bandwidth_computation(bench64):
    result = bench64.dma_write_sequence(N)
    expected = (N * 8) / (result.total_ps / 1e12) / 1e6
    assert result.bandwidth_mbps == pytest.approx(expected)


def test_dma_sequences_report_64bit_words(bench64):
    assert bench64.dma_write_sequence(128).word_bits == 64
    assert bench64.dma_interleaved_sequence(128).word_bits == 64


def test_pio_interleaved_extrapolation_matches_full_simulation():
    """The probe-extrapolated interleaved sequence must track a fully
    simulated per-pair loop with no systematic truncation bias (the old
    ``total // probe`` formula dropped the remainder before multiplying,
    biasing long sequences fast)."""
    from repro.core import build_system32, build_system64, memmap
    from repro.core.transfer import PIO_LOOP_CYCLES
    from repro.kernels.streams import LoopbackKernel
    from repro.sw.costmodel import charge_word_reads, charge_word_writes

    def fully_simulated(builder, n):
        system = builder()
        bench = TransferBench(system)
        bench._fresh_caches()
        system.dock.attach_kernel(LoopbackKernel(pipeline_depth=1))
        cpu = system.cpu
        start = cpu.now_ps
        for i in range(n):
            cpu.io_write(system.dock.base, i)
            cpu.io_read(system.dock.base)
            cpu.execute_cycles(PIO_LOOP_CYCLES)
        charge_word_reads(system, memmap.STAGE_INPUT, n)
        charge_word_writes(system, memmap.STAGE_OUTPUT, n)
        return cpu.now_ps - start

    n = 512
    for builder in (build_system32, build_system64):
        extrapolated = TransferBench(builder()).pio_interleaved_sequence(n).total_ps
        full = fully_simulated(builder, n)
        # Any residual error is the probe's first-pair transient, bounded
        # and independent of n -- not an accumulating per-pair truncation.
        assert extrapolated == pytest.approx(full, rel=0.005)

"""Tests for the image-processing kernels vs the NumPy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import KernelError
from repro.kernels.image_ops import (
    FLUSH_OFFSET,
    PARAM_OFFSET,
    REG_PIXELS,
    BlendKernel,
    BrightnessKernel,
    FadeKernel,
    interleave_images,
    saturate_u8,
)
from repro.sw.image_ops import blend_ref, brightness_ref, fade_ref


def run_single_source(kernel, pixels, width_bits=32):
    per_word = width_bits // 8
    for i in range(0, len(pixels), per_word):
        chunk = pixels[i : i + per_word]
        word = sum(int(p) << (8 * j) for j, p in enumerate(chunk))
        kernel.consume(word, width_bits, 0)
    kernel.consume(0, width_bits, FLUSH_OFFSET)
    out = []
    for word in kernel.produce():
        out.extend((word >> (8 * j)) & 0xFF for j in range(per_word))
    return out[: len(pixels)]


def run_two_source(kernel, a_pixels, b_pixels, width_bits=32):
    lanes = interleave_images(list(a_pixels), list(b_pixels))
    per_word = width_bits // 8
    for i in range(0, len(lanes), per_word):
        chunk = lanes[i : i + per_word]
        word = sum(int(p) << (8 * j) for j, p in enumerate(chunk))
        kernel.consume(word, width_bits, 0)
    kernel.consume(0, width_bits, FLUSH_OFFSET)
    out = []
    for word in kernel.produce():
        out.extend((word >> (8 * j)) & 0xFF for j in range(per_word))
    return out[: len(a_pixels)]


# -- saturate helper -----------------------------------------------------------

def test_saturate_bounds():
    assert saturate_u8(-5) == 0
    assert saturate_u8(0) == 0
    assert saturate_u8(255) == 255
    assert saturate_u8(300) == 255
    assert saturate_u8(128) == 128


# -- brightness ------------------------------------------------------------------

def test_brightness_matches_reference():
    rng = np.random.default_rng(1)
    img = rng.integers(0, 256, size=64, dtype=np.uint8)
    out = run_single_source(BrightnessKernel(constant=40), img)
    assert out == list(brightness_ref(img, 40))


def test_brightness_negative_constant():
    img = np.array([0, 10, 200, 255], dtype=np.uint8)
    out = run_single_source(BrightnessKernel(constant=-50), img)
    assert out == [0, 0, 150, 205]


def test_brightness_constant_range_checked():
    with pytest.raises(KernelError):
        BrightnessKernel(constant=300)


def test_brightness_param_register_positive_and_negative():
    kernel = BrightnessKernel(0)
    kernel.consume(100, 32, PARAM_OFFSET)
    assert kernel.constant == 100
    kernel.consume((-60) & 0x1FF, 32, PARAM_OFFSET)
    assert kernel.constant == -60


def test_brightness_64bit_lane_count():
    img = np.arange(16, dtype=np.uint8)
    out = run_single_source(BrightnessKernel(constant=1), img, width_bits=64)
    assert out == list(brightness_ref(img, 1))


def test_brightness_pixels_register():
    kernel = BrightnessKernel(0)
    run_single_source(kernel, np.zeros(12, dtype=np.uint8))
    assert kernel.read_register(REG_PIXELS) == 12


# -- blend -----------------------------------------------------------------------

def test_blend_matches_reference():
    rng = np.random.default_rng(2)
    a = rng.integers(0, 256, size=32, dtype=np.uint8)
    b = rng.integers(0, 256, size=32, dtype=np.uint8)
    out = run_two_source(BlendKernel(), a, b)
    assert out == list(blend_ref(a, b))


def test_blend_saturates():
    out = run_two_source(BlendKernel(), [200, 255], [200, 255])
    assert out == [255, 255]


def test_blend_64bit():
    rng = np.random.default_rng(3)
    a = rng.integers(0, 256, size=16, dtype=np.uint8)
    b = rng.integers(0, 256, size=16, dtype=np.uint8)
    assert run_two_source(BlendKernel(), a, b, 64) == list(blend_ref(a, b))


def test_interleave_requires_equal_length():
    with pytest.raises(KernelError):
        interleave_images([1], [1, 2])


# -- fade ------------------------------------------------------------------------

def test_fade_matches_reference():
    rng = np.random.default_rng(4)
    a = rng.integers(0, 256, size=32, dtype=np.uint8)
    b = rng.integers(0, 256, size=32, dtype=np.uint8)
    out = run_two_source(FadeKernel(0.25), a, b)
    assert out == list(fade_ref(a, b, 0.25))


def test_fade_extremes():
    a = np.array([10, 200], dtype=np.uint8)
    b = np.array([90, 40], dtype=np.uint8)
    # f = 0 -> B ; f = 1 -> A (within fixed-point rounding)
    assert run_two_source(FadeKernel(0.0), a, b) == list(b)
    assert run_two_source(FadeKernel(1.0), a, b) == list(a)


def test_fade_factor_register():
    kernel = FadeKernel(0.5)
    kernel.consume(256, 32, PARAM_OFFSET)
    assert kernel.factor_fx == 256


def test_fade_factor_range_checked():
    with pytest.raises(KernelError):
        FadeKernel(1.5)


def test_fade_is_mult_block_user():
    assert FadeKernel(0.5).MULTS == 1
    assert BlendKernel().MULTS == 0


# -- shared packing behaviour -------------------------------------------------------

def test_flush_pads_partial_word():
    kernel = BrightnessKernel(0)
    kernel.consume(0x0302_01, 32, 0)  # 4 lanes anyway
    out = run_single_source(BrightnessKernel(0), np.array([9], dtype=np.uint8))
    assert out == [9]


def test_unknown_offset_rejected():
    for kernel in (BrightnessKernel(0), BlendKernel(), FadeKernel(0.5)):
        with pytest.raises(KernelError):
            kernel.consume(0, 32, 0x44)


def test_reset_clears_pending():
    kernel = BlendKernel()
    kernel.consume(0x01010101, 32, 0)
    kernel.reset()
    assert kernel.produce() == []
    assert kernel.read_register(REG_PIXELS) == 0


pixels8 = arrays(np.uint8, 16, elements=st.integers(0, 255))


@settings(max_examples=40, deadline=None)
@given(pixels8, st.integers(-255, 255))
def test_brightness_reference_property(img, constant):
    out = run_single_source(BrightnessKernel(constant), img)
    assert out == list(brightness_ref(img, constant))


@settings(max_examples=40, deadline=None)
@given(pixels8, pixels8)
def test_blend_reference_property(a, b):
    assert run_two_source(BlendKernel(), a, b) == list(blend_ref(a, b))


@settings(max_examples=40, deadline=None)
@given(pixels8, pixels8, st.floats(0, 1))
def test_fade_reference_property(a, b, factor):
    out = run_two_source(FadeKernel(factor), a, b)
    assert out == list(fade_ref(a, b, factor))

"""Smoke tests: the fast examples must run end to end.

The slower demos (full-size time-sharing, dual-region comparison) are
exercised by their underlying unit tests; here the two quickest examples
run verbatim so a broken import or API drift in any example-facing surface
fails CI.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
def test_quickstart_runs(capsys):
    out = run_example("quickstart.py", capsys)
    assert "speedup" in out
    assert "reconfigured dynamic area" in out


@pytest.mark.slow
def test_reconfiguration_flow_runs(capsys):
    out = run_example("reconfiguration_flow.py", capsys)
    assert "static rows outside the region untouched: True" in out
    assert "differential bitstream" in out


def test_all_examples_importable():
    """Every example must at least parse (catches API drift cheaply)."""
    import ast

    for path in sorted(EXAMPLES.glob("*.py")):
        ast.parse(path.read_text(), filename=str(path))


def test_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "timeshared_accelerators.py",
        "transfer_methods.py",
        "sha1_fit_study.py",
        "reconfiguration_flow.py",
        "dual_dynamic_areas.py",
        "fade_in_fade_out.py",
        "hw_feasibility_study.py",
    } <= names

"""Tests for reporting helpers, workload generators and floorplan renderers."""

import numpy as np
import pytest

from repro.bitstream.busmacro import BusMacro, MacroKind
from repro.core.floorplan import (
    render_bus_macro,
    render_generic_architecture,
    render_system_floorplan,
)
from repro.reporting import format_table, format_time_ns, speedup
from repro.workloads import (
    ascii_key,
    binary_image,
    binary_pattern,
    gradient_image,
    grayscale_image,
    key_batch,
    planted_pattern_image,
    random_key,
)


# -- reporting -------------------------------------------------------------------

def test_format_table_alignment():
    table = format_table("T", ["col_a", "b"], [["x", 1], ["longer", 2.5]])
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "col_a" in lines[2]
    assert "longer" in lines[-1]
    # All data lines equally wide.
    assert len(lines[-1]) == len(lines[-2])


def test_format_table_floats():
    table = format_table("T", ["v"], [[3.14159], [12345.6]])
    assert "3.14" in table
    assert "12,346" in table


def test_format_time_ns_units():
    assert format_time_ns(500) == "500.0 ns"
    assert format_time_ns(2_500) == "2.50 us"
    assert format_time_ns(3_000_000) == "3.00 ms"
    assert format_time_ns(4e9) == "4.000 s"


def test_speedup():
    assert speedup(1000, 100) == 10.0
    with pytest.raises(ValueError):
        speedup(1, 0)


# -- workloads --------------------------------------------------------------------

def test_binary_image_reproducible():
    assert np.array_equal(binary_image(8, 8, seed=1), binary_image(8, 8, seed=1))
    assert not np.array_equal(binary_image(8, 8, seed=1), binary_image(8, 8, seed=2))


def test_binary_image_density():
    dense = binary_image(64, 64, density=0.9).mean()
    sparse = binary_image(64, 64, density=0.1).mean()
    assert dense > 0.8 > 0.2 > sparse


def test_binary_image_invalid_density():
    with pytest.raises(Exception):
        binary_image(8, 8, density=1.5)


def test_binary_pattern_shape():
    assert binary_pattern().shape == (8, 8)


def test_planted_pattern_found():
    from repro.sw import match_counts

    pattern = binary_pattern(seed=5)
    image = planted_pattern_image(32, 32, pattern, plants=2, seed=6)
    assert match_counts(image, pattern).max() == 64


def test_grayscale_image_range():
    img = grayscale_image(16, 16)
    assert img.dtype == np.uint8
    assert img.min() >= 0 and img.max() <= 255


def test_gradient_image_monotone_rows():
    img = gradient_image(4, 64)
    assert img[0, 0] == 0
    assert img[0, -1] == 255
    assert (np.diff(img[0].astype(int)) >= 0).all()


def test_random_key_length_and_determinism():
    assert len(random_key(37)) == 37
    assert random_key(16, seed=1) == random_key(16, seed=1)


def test_key_batch_distinct():
    batch = key_batch(3, 16)
    assert len({bytes(k) for k in batch}) == 3


def test_ascii_key_printable():
    key = ascii_key(100)
    assert all(0x20 <= b < 0x7F for b in key)


# -- floorplans ---------------------------------------------------------------------

def test_generic_architecture_mentions_units():
    art = render_generic_architecture()
    for phrase in ("CPU", "memory interface", "configuration", "dynamic"):
        assert phrase in art


def test_bus_macro_rendering():
    macro = BusMacro("demo", MacroKind.LUT, width=2)
    art = render_bus_macro(macro)
    assert "In(0)" in art and "Out(1)" in art
    assert "LUT" in art


def test_bus_macro_rendering_wide():
    macro = BusMacro("wide", MacroKind.LUT, width=32)
    art = render_bus_macro(macro)
    assert "more signals" in art


def test_system_floorplans(system32, system64):
    plan32 = render_system_floorplan(system32)
    assert "XC2VP7" in plan32
    assert "OPB" in plan32
    assert "DYNAMIC AREA" in plan32
    plan64 = render_system_floorplan(system64)
    assert "XC2VP30" in plan64
    assert "PlbDock" in plan64


def test_zipf_key_batch_shape():
    from repro.workloads import zipf_key_batch

    keys = zipf_key_batch(300, max_length=128, seed=4)
    lengths = sorted(len(k) for k in keys)
    assert lengths[0] >= 4
    assert lengths[-1] <= 128
    # Zipf shape: median far below max, plenty of short keys.
    assert lengths[len(lengths) // 2] < 32


def test_zipf_key_batch_validates():
    import pytest

    from repro.workloads import zipf_key_batch

    with pytest.raises(Exception):
        zipf_key_batch(0)

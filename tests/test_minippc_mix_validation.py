"""Cross-validation of the software cost models against executable loops.

Each reference inner loop is written in MiniPPC assembly, executed against
the simulated memory system, checked for functional correctness, and its
measured cycles-per-iteration compared with the ``InstructionMix`` the
task models charge.  This pins the abstraction the whole evaluation rests
on.
"""

import numpy as np
import pytest

from repro.core import memmap
from repro.cpu.minippc import MiniPpc, Program
from repro.kernels.jenkins_hash import GOLDEN_RATIO
from repro.sw.jenkins_hash import BLOCK_MIX
from repro.sw.pattern_match import ROW_MIX

# The lookup2 mix() inner block: 3 word loads + the 27-op mixer + pointer
# bookkeeping, looping over the key.  Registers: r1=key ptr, r2=blocks,
# r10..r12 = a,b,c.
LOOKUP2_ASM = f"""
    li r10, {GOLDEN_RATIO}
    li r11, {GOLDEN_RATIO}
    li r12, 0
block:
    lwz r4, 0(r1)
    lwz r5, 4(r1)
    lwz r6, 8(r1)
    add r10, r10, r4
    add r11, r11, r5
    add r12, r12, r6
    # mix(a,b,c): 3 rounds of sub/sub/xor/shift x3 (27 ops modelled as 9x3)
    sub r10, r10, r11
    sub r10, r10, r12
    srwi r7, r12, 13
    xor r10, r10, r7
    sub r11, r11, r12
    sub r11, r11, r10
    slwi r7, r10, 8
    xor r11, r11, r7
    sub r12, r12, r10
    sub r12, r12, r11
    srwi r7, r11, 13
    xor r12, r12, r7
    sub r10, r10, r11
    sub r10, r10, r12
    srwi r7, r12, 12
    xor r10, r10, r7
    sub r11, r11, r12
    sub r11, r11, r10
    slwi r7, r10, 16
    xor r11, r11, r7
    sub r12, r12, r10
    sub r12, r12, r11
    srwi r7, r11, 5
    xor r12, r12, r7
    sub r10, r10, r11
    sub r10, r10, r12
    srwi r7, r12, 3
    xor r10, r10, r7
    sub r11, r11, r12
    sub r11, r11, r10
    slwi r7, r10, 10
    xor r11, r11, r7
    sub r12, r12, r10
    sub r12, r12, r11
    srwi r7, r11, 15
    xor r12, r12, r7
    addi r1, r1, 12
    addi r2, r2, -1
    cmpwi r2, 0
    bne block
    halt
"""


def test_lookup2_block_functional(system64):
    """The assembly mixer computes the real lookup2 state transitions."""
    from repro.kernels.jenkins_hash import _mix

    key = bytes(range(36))  # three 12-byte blocks
    base = memmap.STAGE_INPUT
    system64.ext_mem.load(base, key)
    machine = MiniPpc(system64.cpu)
    machine.run(Program.assemble(LOOKUP2_ASM), registers={1: base, 2: 3})

    a = b = GOLDEN_RATIO
    c = 0
    for pos in range(0, 36, 12):
        a = (a + int.from_bytes(key[pos : pos + 4], "little")) & 0xFFFFFFFF
        b = (b + int.from_bytes(key[pos + 4 : pos + 8], "little")) & 0xFFFFFFFF
        c = (c + int.from_bytes(key[pos + 8 : pos + 12], "little")) & 0xFFFFFFFF
        a, b, c = _mix(a, b, c)
    assert machine.registers[10] == a
    assert machine.registers[11] == b
    assert machine.registers[12] == c


def test_lookup2_block_mix_validated(system64):
    """Cycles per block of the executable loop ~= BLOCK_MIX + 3 loads."""
    blocks = 64
    key = bytes((i * 13) & 0xFF for i in range(12 * blocks))
    base = memmap.STAGE_INPUT
    system64.ext_mem.load(base, key)
    system64.cpu.charge_stream_read(base, len(key))  # warm cache: hit timing

    machine = MiniPpc(system64.cpu)
    stats = machine.run(Program.assemble(LOOKUP2_ASM), registers={1: base, 2: blocks})
    cycles_per_block = stats.cycles / blocks
    predicted = BLOCK_MIX.cycles() + 3  # mix + the three loads' hit slots
    assert cycles_per_block == pytest.approx(predicted, rel=0.3)


# One pattern-row step: extract the window byte straddling two words,
# xor with the pattern byte, invert, table popcount, accumulate.
# r1 = image word ptr, r3 = pattern byte, r8 = popcount table base,
# r9 = accumulator, r20 = bit offset within the word.
PATTERN_ROW_ASM = """
row:
    lwz  r4, 0(r1)      # current word
    lwz  r5, 4(r1)      # next word (straddle)
    srwi r4, r4, 3      # align window (fixed shift stands in for r20)
    slwi r5, r5, 29
    or   r4, r4, r5
    li   r6, 255
    and  r4, r4, r6
    xor  r4, r4, r3     # compare with pattern byte
    xor  r4, r4, r6     # invert -> matching bits
    add  r7, r8, r4
    lbz  r7, 0(r7)      # popcount table lookup
    add  r9, r9, r7
    addi r1, r1, 4
    addi r2, r2, -1
    cmpwi r2, 0
    bne  row
    halt
"""


def test_pattern_row_functional(system64):
    """The row step produces correct popcounts of matching pixels."""
    base = memmap.STAGE_INPUT
    table = memmap.STAGE_AUX
    popcount = bytes(bin(i).count("1") for i in range(256))
    system64.ext_mem.load(table, popcount)
    words = np.array([0x0000_07F8, 0x0, 0xFFFF_FFFF, 0xFFFF_FFFF], dtype="<u4")
    system64.ext_mem.load(base, words.view(np.uint8))

    machine = MiniPpc(system64.cpu)
    machine.run(
        Program.assemble(PATTERN_ROW_ASM),
        registers={1: base, 2: 2, 3: 0xFF, 8: table, 9: 0},
    )
    # Row 1: window byte = (0x7F8 >> 3) & 0xFF = 0xFF -> all 8 pixels match
    # the 0xFF pattern byte.  Row 2: window = ((0x0 >> 3) | (0xFFFFFFFF <<
    # 29)) & 0xFF = 0x00 -> zero matches.  Total: 8.
    assert machine.registers[9] == 8


def test_pattern_row_mix_validated(system64):
    """Cycles per row ~= ROW_MIX + the two external loads' hit slots."""
    rows = 64
    base = memmap.STAGE_INPUT
    table = memmap.STAGE_AUX
    system64.ext_mem.load(table, bytes(bin(i).count("1") for i in range(256)))
    system64.ext_mem.load(base, bytes(4 * (rows + 1)))
    system64.cpu.charge_stream_read(base, 4 * (rows + 1))
    system64.cpu.charge_stream_read(table, 256)

    machine = MiniPpc(system64.cpu)
    stats = machine.run(
        Program.assemble(PATTERN_ROW_ASM),
        registers={1: base, 2: rows, 3: 0x5A, 8: table, 9: 0},
    )
    cycles_per_row = stats.cycles / rows
    # ROW_MIX charges the compute + the (cached) table load; the two
    # external word loads are charged separately by the task model.
    predicted = ROW_MIX.cycles() + 2  # + the two loads' pipeline slots
    assert cycles_per_row == pytest.approx(predicted, rel=0.35)

"""Tests for the UART host link (external communication unit)."""

import pytest

from repro.core import memmap
from repro.core.hostlink import (
    Command,
    HostLink,
    decode_frame,
    encode_frame,
)
from repro.errors import TransferError


def test_frame_roundtrip():
    frame = encode_frame(Command.PING, b"abc")
    command, payload = decode_frame(frame)
    assert command is Command.PING
    assert payload == b"abc"


def test_frame_checksum_detects_corruption():
    frame = bytearray(encode_frame(Command.PING, b"abc"))
    frame[3] ^= 0xFF
    with pytest.raises(TransferError, match="checksum"):
        decode_frame(bytes(frame))


def test_frame_rejects_garbage():
    with pytest.raises(TransferError):
        decode_frame(b"\x00\x01")


def test_frame_payload_cap():
    with pytest.raises(TransferError):
        encode_frame(Command.PING, b"x" * 300)


def test_ping_echoes(system32):
    link = HostLink(system32)
    assert link.ping(b"token") == b"token"
    assert link.stats.frames == 1


def test_debug_read_write(system32):
    link = HostLink(system32)
    link.write_word(memmap.STAGE_INPUT, 0xCAFE)
    assert link.read_word(memmap.STAGE_INPUT) == 0xCAFE
    assert system32.ext_mem.read_word(memmap.STAGE_INPUT, 4) == 0xCAFE


def test_status_reports_active_kernel(system32, manager32):
    link = HostLink(system32)
    assert link.active_kernel() == ""
    manager32.load("brightness")
    assert link.active_kernel() == "brightness"


def test_wire_time_dominates(system32):
    """A ping costs hundreds of microseconds at 115200 baud."""
    link = HostLink(system32)
    before = system32.cpu.now_ps
    link.ping()
    elapsed = system32.cpu.now_ps - before
    wire = system32.uart.byte_time_ps * link.stats.bytes_wire
    assert elapsed >= wire
    assert elapsed > 500_000_000  # > 0.5 ms for ~20 bytes


def test_upload_is_hopeless_for_bulk_data(system32):
    """The paper's implicit point: serial is for control, docks for data."""
    from repro.core.transfer import TransferBench

    link = HostLink(system32)
    link_time = link.upload(memmap.STAGE_AUX, b"\xAA" * 64)
    dock_time = TransferBench(system32).pio_write_sequence(16).total_ps
    assert link_time > 100 * dock_time


def test_upload_data_lands(system32):
    link = HostLink(system32)
    link.upload(memmap.STAGE_AUX, b"ABCDEFGH")
    assert bytes(system32.ext_mem.dump(memmap.STAGE_AUX, 8)) == b"ABCDEFGH"


def test_upload_fastpath_roundtrip():
    """Vectorized word split: same bytes, same picoseconds, same stats."""
    from repro.core import build_system32
    from repro.engine import fastpath

    data = bytes(range(256)) + b"tail"  # length % 4 != 0 exercises padding
    results = {}
    for label, context in (("fast", fastpath.forced_on), ("slow", fastpath.disabled)):
        with context():
            system = build_system32()
            link = HostLink(system)
            elapsed = link.upload(memmap.STAGE_AUX, data)
            landed = bytes(system.ext_mem.dump(memmap.STAGE_AUX, len(data)))
            results[label] = (elapsed, landed, link.stats.frames, link.stats.bytes_wire)
    assert results["fast"] == results["slow"]
    assert results["fast"][1] == data

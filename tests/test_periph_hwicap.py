"""Tests for the OPB HWICAP configuration controller."""

import numpy as np
import pytest

from repro.bitstream.bitstream import Bitstream, BitstreamKind
from repro.bus.transaction import Op, Transaction
from repro.errors import ReconfigurationError
from repro.fabric.config_memory import ConfigMemory
from repro.fabric.device import XC2VP4, XC2VP7
from repro.fabric.frames import BlockType, FrameAddress
from repro.periph.hwicap import (
    REG_CONTROL,
    REG_DATA,
    REG_STATUS,
    STATUS_DONE,
    OpbHwIcap,
)


@pytest.fixture
def icap():
    memory = ConfigMemory(XC2VP4)
    return OpbHwIcap(memory, base=0x9000_0000), memory


def sample_bitstream(device=XC2VP4):
    words = device.words_per_frame
    frames = [
        (FrameAddress(BlockType.CLB, 0, 0), np.full(words, 0xA5, dtype=np.uint32)),
        (FrameAddress(BlockType.CLB, 0, 1), np.full(words, 0x5A, dtype=np.uint32)),
    ]
    return Bitstream(device.name, BitstreamKind.PARTIAL_COMPLETE, frames=frames)


def test_load_words_applies_frames(icap):
    controller, memory = icap
    stream = sample_bitstream()
    controller.load_words(stream.to_words())
    assert controller.frames_written == 2
    assert memory.read_frame(FrameAddress(BlockType.CLB, 0, 0))[0] == 0xA5


def test_mmio_data_then_commit(icap):
    controller, memory = icap
    words = sample_bitstream().to_words()
    for word in words:
        controller.access(Transaction(Op.WRITE, 0x9000_0000 + REG_DATA, data=int(word)), 0)
    controller.access(Transaction(Op.WRITE, 0x9000_0000 + REG_CONTROL, data=1), 0)
    assert controller.frames_written == 2
    assert controller.words_pending() == 0


def test_status_reflects_pending(icap):
    controller, memory = icap
    _, status = controller.access(Transaction(Op.READ, 0x9000_0000 + REG_STATUS), 0)
    assert status & STATUS_DONE
    controller.access(Transaction(Op.WRITE, 0x9000_0000 + REG_DATA, data=0xFFFFFFFF), 0)
    _, status = controller.access(Transaction(Op.READ, 0x9000_0000 + REG_STATUS), 0)
    assert not (status & STATUS_DONE)


def test_wrong_device_bitstream_rejected(icap):
    controller, memory = icap
    stream = sample_bitstream(XC2VP7)  # ICAP's memory is XC2VP4
    with pytest.raises(ReconfigurationError, match="targets"):
        controller.load_words(stream.to_words())


def test_corrupt_stream_sets_error(icap):
    controller, memory = icap
    words = sample_bitstream().to_words().copy()
    words[5] ^= 0xFFFF  # corrupt mid-stream
    with pytest.raises(ReconfigurationError):
        controller.load_words(words)
    assert controller.crc_failures == 1


def test_unknown_register_write(icap):
    controller, _ = icap
    with pytest.raises(ReconfigurationError):
        controller.access(Transaction(Op.WRITE, 0x9000_0000 + 0x40, data=0), 0)


def test_empty_commit_is_noop(icap):
    controller, _ = icap
    controller.access(Transaction(Op.WRITE, 0x9000_0000 + REG_CONTROL, data=0), 0)
    assert controller.frames_written == 0


def test_write_wait_states(icap):
    controller, _ = icap
    wait, _ = controller.access(
        Transaction(Op.WRITE, 0x9000_0000 + REG_DATA, data=0xAA995566), 0
    )
    assert wait == OpbHwIcap.WRITE_WAIT
    controller.reset()


def test_ndarray_burst_accepted_by_reference_path(icap):
    # Regression: with the fast path disabled, an ndarray burst payload to
    # REG_DATA used to hit the scalar int() coercion and raise TypeError.
    from repro.engine import fastpath

    controller, memory = icap
    words = sample_bitstream().to_words()
    with fastpath.disabled():
        controller.access(
            Transaction(Op.WRITE, 0x9000_0000 + REG_DATA, data=words, beats=len(words)),
            0,
        )
        controller.access(Transaction(Op.WRITE, 0x9000_0000 + REG_CONTROL, data=1), 0)
    assert controller.frames_written == 2
    assert memory.read_frame(FrameAddress(BlockType.CLB, 0, 0))[0] == 0xA5
    assert controller.stats.get("data_writes") == len(words)


def test_ndarray_burst_equivalent_across_paths():
    from repro.engine import fastpath

    def ingest():
        memory = ConfigMemory(XC2VP4)
        controller = OpbHwIcap(memory, base=0x9000_0000)
        words = sample_bitstream().to_words()
        wait, _ = controller.access(
            Transaction(Op.WRITE, 0x9000_0000 + REG_DATA, data=words, beats=len(words)),
            0,
        )
        controller.access(Transaction(Op.WRITE, 0x9000_0000 + REG_CONTROL, data=1), 0)
        return (
            wait,
            controller.frames_written,
            controller.stats.get("data_writes"),
            memory.read_frame(FrameAddress(BlockType.CLB, 0, 1)).tobytes(),
        )

    with fastpath.forced_on():
        fast = ingest()
    with fastpath.disabled():
        slow = ingest()
    assert fast == slow

"""Tests for the lookup2 kernel and reference."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernels.jenkins_hash import (
    GOLDEN_RATIO,
    INIT_OFFSET,
    LENGTH_OFFSET,
    REG_BYTES_SEEN,
    REG_RESULT,
    JenkinsHashKernel,
    key_to_words,
    lookup2,
)


def stream_key(kernel: JenkinsHashKernel, key: bytes, width_bits=32, initval=None):
    if initval is not None:
        kernel.consume(initval, width_bits, INIT_OFFSET)
    kernel.consume(len(key), width_bits, LENGTH_OFFSET)
    for word in key_to_words(key, width_bits // 8):
        kernel.consume(word, width_bits, 0)
    return kernel.read_register(REG_RESULT)


def test_reference_known_properties():
    # lookup2 of the empty key mixes only lengths/init constants.
    assert lookup2(b"") == lookup2(b"")
    assert lookup2(b"") != lookup2(b"", initval=1)


def test_reference_different_keys_differ():
    assert lookup2(b"hello") != lookup2(b"world")


def test_reference_length_sensitivity():
    # Appending a zero byte changes the hash (length is mixed in).
    assert lookup2(b"abc") != lookup2(b"abc\x00")


def test_streaming_matches_reference_exact_block():
    key = bytes(range(24))  # exactly two 12-byte blocks
    assert stream_key(JenkinsHashKernel(), key) == lookup2(key)


def test_streaming_matches_reference_with_tail():
    for n in (1, 5, 11, 13, 23, 37):
        key = bytes((i * 7) & 0xFF for i in range(n))
        assert stream_key(JenkinsHashKernel(), key) == lookup2(key), n


def test_streaming_zero_length():
    kernel = JenkinsHashKernel()
    kernel.consume(0, 32, LENGTH_OFFSET)
    assert kernel.read_register(REG_RESULT) == lookup2(b"")


def test_streaming_64bit_words():
    key = bytes(range(40))
    assert stream_key(JenkinsHashKernel(), key, width_bits=64) == lookup2(key)


def test_initval_respected():
    key = b"keyed hashing"
    assert stream_key(JenkinsHashKernel(), key, initval=0x1234) == lookup2(key, 0x1234)


def test_result_not_ready_raises():
    kernel = JenkinsHashKernel()
    kernel.consume(20, 32, LENGTH_OFFSET)
    kernel.consume(0x41414141, 32, 0)
    with pytest.raises(KernelError):
        kernel.read_register(REG_RESULT)
    assert not kernel.result_ready


def test_bytes_seen_register():
    kernel = JenkinsHashKernel()
    kernel.consume(6, 32, LENGTH_OFFSET)
    kernel.consume(0, 32, 0)
    assert kernel.read_register(REG_BYTES_SEEN) == 4


def test_excess_data_rejected():
    kernel = JenkinsHashKernel()
    kernel.consume(2, 32, LENGTH_OFFSET)
    kernel.consume(0, 32, 0)
    with pytest.raises(KernelError):
        kernel.consume(0, 32, 0)


def test_restart_via_length_write():
    kernel = JenkinsHashKernel()
    assert stream_key(kernel, b"first") == lookup2(b"first")
    kernel.consume(len(b"second"), 32, LENGTH_OFFSET)
    for word in key_to_words(b"second"):
        kernel.consume(word, 32, 0)
    assert kernel.read_register(REG_RESULT) == lookup2(b"second")


def test_key_to_words_padding():
    assert key_to_words(b"\x01\x02\x03\x04\x05") == [0x04030201, 0x00000005]


def test_golden_ratio_constant():
    assert GOLDEN_RATIO == 0x9E3779B9


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=100))
def test_streaming_matches_reference_property(key):
    assert stream_key(JenkinsHashKernel(), key) == lookup2(key)


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=64), st.integers(0, 2**32 - 1))
def test_streaming_with_initval_property(key, initval):
    assert stream_key(JenkinsHashKernel(), key, initval=initval) == lookup2(key, initval)


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=80))
def test_hash_stable_across_word_widths(key):
    assert stream_key(JenkinsHashKernel(), key, 32) == stream_key(
        JenkinsHashKernel(), key, 64
    )

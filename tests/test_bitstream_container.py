"""Tests for the Bitstream container and serialisation."""

import numpy as np
import pytest

from repro.bitstream.bitstream import Bitstream, BitstreamKind, concatenate, device_idcode
from repro.errors import BitstreamError
from repro.fabric.device import XC2VP4, XC2VP7
from repro.fabric.frames import BlockType, FrameAddress


def make_stream(device=XC2VP4, majors=(0, 1), value=0x11):
    frames = []
    words = device.words_per_frame
    for major in majors:
        frames.append(
            (FrameAddress(BlockType.CLB, major, 0), np.full(words, value + major, dtype=np.uint32))
        )
    return Bitstream(device_name=device.name, kind=BitstreamKind.PARTIAL_COMPLETE, frames=frames)


def test_idcodes_distinct():
    codes = {device_idcode(n) for n in ("XC2VP4", "XC2VP7", "XC2VP30")}
    assert len(codes) == 3


def test_idcode_unknown_device_is_stable():
    assert device_idcode("FOO") == device_idcode("foo")


def test_frame_size_validated():
    with pytest.raises(BitstreamError):
        Bitstream(
            device_name="XC2VP4",
            kind=BitstreamKind.FULL,
            frames=[(FrameAddress(BlockType.CLB, 0, 0), np.zeros(3, dtype=np.uint32))],
        )


def test_roundtrip_preserves_frames():
    stream = make_stream()
    out = Bitstream.from_words(stream.to_words())
    assert out.device_name == "XC2VP4"
    assert out.addresses() == stream.addresses()
    for (a1, d1), (a2, d2) in zip(stream.frames, out.frames):
        assert a1 == a2
        assert np.array_equal(d1, d2)


def test_word_count_larger_than_payload():
    stream = make_stream()
    assert stream.word_count > stream.payload_words
    assert stream.byte_size == stream.word_count * 4


def test_frame_data_lookup():
    stream = make_stream()
    addr = stream.addresses()[1]
    assert stream.frame_data(addr)[0] == 0x12


def test_frame_data_missing_raises():
    stream = make_stream()
    with pytest.raises(BitstreamError):
        stream.frame_data(FrameAddress(BlockType.CLB, 99, 0))


def test_kind_flags():
    stream = make_stream()
    assert stream.is_partial
    assert not stream.is_differential
    diff = Bitstream("XC2VP4", BitstreamKind.PARTIAL_DIFFERENTIAL, frames=list(stream.frames))
    assert diff.is_differential


def test_from_words_unknown_idcode():
    stream = make_stream()
    words = stream.to_words()
    # Replace the idcode payload with junk: parse must fail before CRC
    # (the CRC covers the idcode, so corrupting it raises either way).
    idcode = device_idcode("XC2VP4")
    idx = int(np.where(words == idcode)[0][0])
    words = words.copy()
    words[idx] = 0x9999
    with pytest.raises(BitstreamError):
        Bitstream.from_words(words)


def test_concatenate_last_write_wins():
    a = make_stream(value=0x10)
    b = make_stream(value=0x40)
    merged = concatenate([a, b])
    assert merged.frame_count == 2
    assert merged.frame_data(a.addresses()[0])[0] == 0x40


def test_concatenate_device_mismatch():
    a = make_stream(XC2VP4)
    b = make_stream(XC2VP7)
    with pytest.raises(BitstreamError):
        concatenate([a, b])


def test_concatenate_empty_rejected():
    with pytest.raises(BitstreamError):
        concatenate([])


def test_concatenate_differential_taints_kind():
    a = make_stream()
    d = Bitstream("XC2VP4", BitstreamKind.PARTIAL_DIFFERENTIAL, frames=list(a.frames))
    assert concatenate([a, d]).kind is BitstreamKind.PARTIAL_DIFFERENTIAL

"""Tests for the configuration memory."""

import numpy as np
import pytest

from repro.errors import BitstreamError
from repro.fabric.config_memory import ConfigMemory
from repro.fabric.device import XC2VP4
from repro.fabric.frames import BlockType, FrameAddress


@pytest.fixture
def mem():
    return ConfigMemory(XC2VP4)


def addr(major=0, minor=0):
    return FrameAddress(BlockType.CLB, major, minor)


def frame_of(mem, value):
    return np.full(mem.geometry.words_per_frame, value, dtype=np.uint32)


def test_unwritten_frame_reads_zero(mem):
    assert not mem.read_frame(addr()).any()


def test_write_then_read(mem):
    data = frame_of(mem, 0xABCD1234)
    mem.write_frame(addr(), data)
    assert np.array_equal(mem.read_frame(addr()), data)


def test_read_returns_copy(mem):
    mem.write_frame(addr(), frame_of(mem, 7))
    out = mem.read_frame(addr())
    out[:] = 0
    assert mem.read_frame(addr())[0] == 7


def test_write_wrong_size_rejected(mem):
    with pytest.raises(BitstreamError):
        mem.write_frame(addr(), np.zeros(3, dtype=np.uint32))


def test_merge_frame_respects_mask(mem):
    mem.write_frame(addr(), frame_of(mem, 0xFFFFFFFF))
    mask = frame_of(mem, 0x0000FFFF)
    mem.merge_frame(addr(), frame_of(mem, 0), mask)
    assert (mem.read_frame(addr()) == 0xFFFF0000).all()


def test_merge_on_empty_frame(mem):
    mask = frame_of(mem, 0xFF)
    mem.merge_frame(addr(), frame_of(mem, 0xAB), mask)
    assert (mem.read_frame(addr()) == 0xAB).all()


def test_snapshot_restore_roundtrip(mem):
    mem.write_frame(addr(0), frame_of(mem, 1))
    snap = mem.snapshot()
    mem.write_frame(addr(0), frame_of(mem, 2))
    mem.write_frame(addr(1), frame_of(mem, 3))
    mem.restore(snap)
    assert mem.read_frame(addr(0))[0] == 1
    assert not mem.read_frame(addr(1)).any()


def test_diff_lists_changed_frames(mem):
    mem.write_frame(addr(0), frame_of(mem, 1))
    baseline = mem.snapshot()
    mem.write_frame(addr(0), frame_of(mem, 2))
    mem.write_frame(addr(1), frame_of(mem, 9))
    changed = dict(mem.diff(baseline))
    assert set(changed) == {addr(0), addr(1)}


def test_diff_empty_when_identical(mem):
    mem.write_frame(addr(0), frame_of(mem, 4))
    assert list(mem.diff(mem.snapshot())) == []


def test_diff_detects_frame_cleared_vs_baseline(mem):
    mem.write_frame(addr(2), frame_of(mem, 5))
    baseline = mem.snapshot()
    mem.write_frame(addr(2), frame_of(mem, 0))
    changed = dict(mem.diff(baseline))
    assert addr(2) in changed


def test_frames_equal_across_memories():
    a = ConfigMemory(XC2VP4)
    b = ConfigMemory(XC2VP4)
    data = np.full(a.geometry.words_per_frame, 3, dtype=np.uint32)
    a.write_frame(addr(), data)
    assert not a.frames_equal(addr(), b)
    b.write_frame(addr(), data)
    assert a.frames_equal(addr(), b)


def test_write_counters(mem):
    mem.write_frame(addr(), frame_of(mem, 1))
    mem.read_frame(addr())
    assert mem.writes == 1
    assert mem.reads >= 1


def test_written_addresses_sorted(mem):
    mem.write_frame(addr(3), frame_of(mem, 1))
    mem.write_frame(addr(1), frame_of(mem, 1))
    assert list(mem.written_addresses()) == [addr(1), addr(3)]

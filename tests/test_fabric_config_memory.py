"""Tests for the configuration memory."""

import numpy as np
import pytest

from repro.errors import BitstreamError
from repro.fabric.config_memory import ConfigMemory
from repro.fabric.device import XC2VP4
from repro.fabric.frames import BlockType, FrameAddress


@pytest.fixture
def mem():
    return ConfigMemory(XC2VP4)


def addr(major=0, minor=0):
    return FrameAddress(BlockType.CLB, major, minor)


def frame_of(mem, value):
    return np.full(mem.geometry.words_per_frame, value, dtype=np.uint32)


def test_unwritten_frame_reads_zero(mem):
    assert not mem.read_frame(addr()).any()


def test_write_then_read(mem):
    data = frame_of(mem, 0xABCD1234)
    mem.write_frame(addr(), data)
    assert np.array_equal(mem.read_frame(addr()), data)


def test_read_returns_copy(mem):
    mem.write_frame(addr(), frame_of(mem, 7))
    out = mem.read_frame(addr())
    out[:] = 0
    assert mem.read_frame(addr())[0] == 7


def test_write_wrong_size_rejected(mem):
    with pytest.raises(BitstreamError):
        mem.write_frame(addr(), np.zeros(3, dtype=np.uint32))


def test_merge_frame_respects_mask(mem):
    mem.write_frame(addr(), frame_of(mem, 0xFFFFFFFF))
    mask = frame_of(mem, 0x0000FFFF)
    mem.merge_frame(addr(), frame_of(mem, 0), mask)
    assert (mem.read_frame(addr()) == 0xFFFF0000).all()


def test_merge_on_empty_frame(mem):
    mask = frame_of(mem, 0xFF)
    mem.merge_frame(addr(), frame_of(mem, 0xAB), mask)
    assert (mem.read_frame(addr()) == 0xAB).all()


def test_snapshot_restore_roundtrip(mem):
    mem.write_frame(addr(0), frame_of(mem, 1))
    snap = mem.snapshot()
    mem.write_frame(addr(0), frame_of(mem, 2))
    mem.write_frame(addr(1), frame_of(mem, 3))
    mem.restore(snap)
    assert mem.read_frame(addr(0))[0] == 1
    assert not mem.read_frame(addr(1)).any()


def test_diff_lists_changed_frames(mem):
    mem.write_frame(addr(0), frame_of(mem, 1))
    baseline = mem.snapshot()
    mem.write_frame(addr(0), frame_of(mem, 2))
    mem.write_frame(addr(1), frame_of(mem, 9))
    changed = dict(mem.diff(baseline))
    assert set(changed) == {addr(0), addr(1)}


def test_diff_empty_when_identical(mem):
    mem.write_frame(addr(0), frame_of(mem, 4))
    assert list(mem.diff(mem.snapshot())) == []


def test_diff_detects_frame_cleared_vs_baseline(mem):
    mem.write_frame(addr(2), frame_of(mem, 5))
    baseline = mem.snapshot()
    mem.write_frame(addr(2), frame_of(mem, 0))
    changed = dict(mem.diff(baseline))
    assert addr(2) in changed


def test_frames_equal_across_memories():
    a = ConfigMemory(XC2VP4)
    b = ConfigMemory(XC2VP4)
    data = np.full(a.geometry.words_per_frame, 3, dtype=np.uint32)
    a.write_frame(addr(), data)
    assert not a.frames_equal(addr(), b)
    b.write_frame(addr(), data)
    assert a.frames_equal(addr(), b)


def test_write_counters(mem):
    mem.write_frame(addr(), frame_of(mem, 1))
    mem.read_frame(addr())
    assert mem.writes == 1
    assert mem.reads >= 1


def test_written_addresses_sorted(mem):
    mem.write_frame(addr(3), frame_of(mem, 1))
    mem.write_frame(addr(1), frame_of(mem, 1))
    assert list(mem.written_addresses()) == [addr(1), addr(3)]


# -- flip_bit (targeted fault injection) --------------------------------------

def test_flip_bit_flips_and_returns_address(mem):
    mem.write_frame(addr(), frame_of(mem, 0))
    struck = mem.flip_bit(mem.geometry.frame_index(addr()), 2, 7)
    assert struck == addr()
    assert mem.read_frame(addr())[2] == 1 << 7


def test_flip_bit_twice_restores(mem):
    data = frame_of(mem, 0xDEADBEEF)
    mem.write_frame(addr(), data)
    row = mem.geometry.frame_index(addr())
    mem.flip_bit(row, 5, 31)
    assert not np.array_equal(mem.read_frame(addr()), data)
    mem.flip_bit(row, 5, 31)
    assert np.array_equal(mem.read_frame(addr()), data)


def test_flip_bit_is_counter_silent(mem):
    # Radiation is not a bus access: neither counter may advance.
    mem.write_frame(addr(), frame_of(mem, 1))
    writes, reads = mem.writes, mem.reads
    mem.flip_bit(mem.geometry.frame_index(addr()), 0, 0)
    assert (mem.writes, mem.reads) == (writes, reads)


def test_flip_bit_never_promotes_unwritten_frames(mem):
    # A strike on a never-configured frame must stay outside the written
    # set, or scrubbing would start "repairing" frames nobody owns.
    row = int(np.flatnonzero(~mem.written_mask())[0])
    mem.flip_bit(row, 0, 3)
    assert not mem.written_mask()[row]
    assert mem.flip_bit(row, 0, 3) is not None  # flip back, still silent
    assert len(mem) == 0


def test_flip_bit_bounds_checked(mem):
    total = mem.device.total_frames
    words = mem.geometry.words_per_frame
    with pytest.raises(BitstreamError):
        mem.flip_bit(total, 0, 0)
    with pytest.raises(BitstreamError):
        mem.flip_bit(-1, 0, 0)
    with pytest.raises(BitstreamError):
        mem.flip_bit(0, words, 0)
    with pytest.raises(BitstreamError):
        mem.flip_bit(0, 0, 32)


# -- inject_upset -------------------------------------------------------------

def _rng(seed=9):
    return np.random.default_rng(seed)


def test_inject_upset_empty_memory_has_no_targets(mem):
    assert mem.inject_upset(_rng()) == []


def test_inject_upset_hits_only_written_frames_by_default(mem):
    mem.write_frame(addr(1), frame_of(mem, 0))
    flips = mem.inject_upset(_rng(), flips=16)
    assert len(flips) == 16
    assert {address for address, _, _ in flips} == {addr(1)}


def test_inject_upset_include_unwritten_widens_to_whole_catalogue(mem):
    # The Monte-Carlo campaigns sample the full configuration space:
    # even a completely blank memory yields strikes, and strikes on
    # never-written frames stay benign (no written-flag promotion).
    flips = mem.inject_upset(_rng(), flips=64, include_unwritten=True)
    assert len(flips) == 64
    assert not mem.written_mask().any()
    assert len(mem) == 0
    rows = {mem.geometry.frame_index(address) for address, _, _ in flips}
    assert len(rows) > 1  # spread over the catalogue, not one frame


def test_inject_upset_is_counter_silent(mem):
    mem.write_frame(addr(), frame_of(mem, 7))
    writes, reads = mem.writes, mem.reads
    mem.inject_upset(_rng(), flips=8, include_unwritten=True)
    assert (mem.writes, mem.reads) == (writes, reads)


def test_inject_upset_respects_address_restriction(mem):
    mem.write_frame(addr(0), frame_of(mem, 1))
    mem.write_frame(addr(2), frame_of(mem, 1))
    flips = mem.inject_upset(_rng(), flips=12, addresses=[addr(2)])
    assert {address for address, _, _ in flips} == {addr(2)}


def test_inject_upset_address_restriction_skips_unwritten_unless_asked(mem):
    mem.write_frame(addr(0), frame_of(mem, 1))
    assert mem.inject_upset(_rng(), flips=4, addresses=[addr(3)]) == []
    flips = mem.inject_upset(
        _rng(), flips=4, addresses=[addr(3)], include_unwritten=True
    )
    assert {address for address, _, _ in flips} == {addr(3)}
    assert not mem.written_mask()[mem.geometry.frame_index(addr(3))]


def test_inject_upset_actually_corrupts_and_is_seeded(mem):
    mem.write_frame(addr(), frame_of(mem, 0))
    [(address, word, bit)] = mem.inject_upset(_rng(21), flips=1)
    assert mem.read_frame(address)[word] == np.uint32(1 << bit)
    fresh = ConfigMemory(XC2VP4)
    fresh.write_frame(addr(), frame_of(mem, 0))
    assert fresh.inject_upset(_rng(21), flips=1) == [(address, word, bit)]

"""Sweep orchestrator: parallel == serial, crash recovery, aggregation.

The load-bearing guarantee is that orchestration only changes *host*
cost: a scenario's simulated numbers must be byte-identical whether it
ran serially, in a worker process, or came out of the cache.
"""

import json
import os

import pytest

from repro.engine.stats import StatsGroup
from repro.scenarios import ScenarioResult, get_scenario
from repro.scenarios.registry import _REGISTRY, register_scenario
from repro.sweep import ResultCache, apply_seed_base, run_sweep

#: Cheap full-fidelity scenarios for cross-process equality checks.
CHEAP = ["ablation_busmacro", "fig1_generic_architecture", "fig2_bus_macros"]


@pytest.fixture
def scratch():
    added = []

    def _register(name, fn, **kwargs):
        entry = register_scenario(name, fn, **kwargs)
        added.append(name)
        return entry

    yield _register
    for name in added:
        _REGISTRY.pop(name, None)


def _wire(outcome):
    """Canonical bytes of every result in a sweep, for equality checks."""
    return [
        json.dumps(o.result.to_dict(), sort_keys=True) if o.result else None
        for o in outcome.outcomes
    ]


# -- parallel-vs-serial equality ---------------------------------------------

def test_parallel_results_equal_serial():
    scenarios = [get_scenario(name) for name in CHEAP]
    serial = run_sweep(scenarios, jobs=1, cache=None)
    parallel = run_sweep(scenarios, jobs=2, cache=None)
    assert serial.ok and parallel.ok
    assert _wire(serial) == _wire(parallel)
    assert [o.name for o in parallel.outcomes] == CHEAP  # input order kept


def test_cached_results_equal_fresh(tmp_path):
    scenarios = [get_scenario(name) for name in CHEAP]
    cache = ResultCache(tmp_path)
    cold = run_sweep(scenarios, jobs=1, cache=cache)
    warm = run_sweep(scenarios, jobs=1, cache=cache)
    assert _wire(cold) == _wire(warm)
    assert all(o.cache == "miss" for o in cold.outcomes)
    assert all(o.cache == "hit" for o in warm.outcomes)
    # Hits report the cold run's compute cost, not their own ~0s lookup.
    for before, after in zip(cold.outcomes, warm.outcomes):
        assert after.compute_seconds == before.compute_seconds


def test_refresh_recomputes_but_stores(tmp_path):
    scenarios = [get_scenario(CHEAP[0])]
    cache = ResultCache(tmp_path)
    run_sweep(scenarios, jobs=1, cache=cache)
    refreshed = run_sweep(scenarios, jobs=1, cache=cache, refresh=True)
    assert refreshed.outcomes[0].cache == "refresh"
    assert cache.telemetry.stores == 2


def test_smoke_params_flow_to_scenarios(scratch):
    scratch(
        "scratch_smokey",
        lambda n: ScenarioResult(name="scratch_smokey", headers=["n"], rows=[[n]]),
        params={"n": 100},
        smoke_params={"n": 2},
    )
    outcome = run_sweep([get_scenario("scratch_smokey")], jobs=1, smoke=True)
    assert outcome.outcomes[0].result.rows == [[2]]
    assert outcome.smoke


# -- failure containment ------------------------------------------------------

def test_failed_scenario_does_not_sink_the_sweep(scratch):
    def boom():
        raise ValueError("deliberate failure")

    scratch("scratch_boom", boom)
    scenarios = [get_scenario("scratch_boom"), get_scenario(CHEAP[0])]
    outcome = run_sweep(scenarios, jobs=1, cache=None)
    assert not outcome.ok
    failed, healthy = outcome.outcomes
    assert failed.status == "failed"
    assert "deliberate failure" in failed.error
    assert healthy.status == "ok"
    assert [f.name for f in outcome.failures] == ["scratch_boom"]


def test_failed_run_reports_no_compute_seconds(scratch):
    """A failed run produced no result: its host time must land in
    ``failed_seconds``, not pollute the serial-compute aggregate the
    report derives speedup claims from."""
    import time

    def slow_boom():
        time.sleep(0.05)  # repro: noqa LINT001 (host-side test fixture)
        raise ValueError("deliberate failure")

    scratch("scratch_slow_boom", slow_boom)
    outcome = run_sweep(
        [get_scenario("scratch_slow_boom"), get_scenario(CHEAP[0])], jobs=1, cache=None
    )
    failed, healthy = outcome.outcomes
    assert failed.status == "failed"
    assert failed.compute_seconds == 0.0
    assert failed.failed_seconds >= 0.05
    assert healthy.failed_seconds == 0.0
    assert healthy.compute_seconds > 0.0

    from repro.sweep import build_report

    report = build_report(outcome)
    assert report["serial_compute_seconds"] == pytest.approx(
        healthy.compute_seconds, abs=1e-6
    )
    assert report["failed_seconds"] >= 0.05
    record = next(s for s in report["scenarios"] if s["name"] == "scratch_slow_boom")
    assert record["compute_seconds"] == 0.0
    assert record["failed_seconds"] >= 0.05


def test_worker_crash_triggers_serial_retry(scratch):
    parent = os.getpid()

    def fragile(parent_pid):
        if os.getpid() != parent_pid:
            os._exit(17)  # hard-kill the worker: no exception to catch
        return ScenarioResult(name="scratch_fragile", headers=["pid"], rows=[[1]])

    scratch("scratch_fragile", fragile, params={"parent_pid": parent})
    outcome = run_sweep([get_scenario("scratch_fragile")], jobs=2, cache=None)
    assert outcome.pool_broken
    entry = outcome.outcomes[0]
    assert entry.status == "ok"
    assert entry.retried_serially
    assert entry.result.rows == [[1]]


# -- cross-process stats aggregation ------------------------------------------

def test_merged_stats_aggregate_across_scenarios(scratch):
    def with_stats(name, count):
        group = StatsGroup("bus")
        group.counter("reads").add(count)
        group.accumulator("latency").add(count * 10)
        return ScenarioResult(
            name=name, headers=["n"], rows=[[count]], stats={"bus": group.snapshot()}
        )

    scratch("scratch_stats_a", lambda: with_stats("scratch_stats_a", 3))
    scratch("scratch_stats_b", lambda: with_stats("scratch_stats_b", 5))
    outcome = run_sweep(
        [get_scenario("scratch_stats_a"), get_scenario("scratch_stats_b")], jobs=1
    )
    merged = outcome.merged_stats()
    assert merged["bus"].counter("reads").value == 8
    latency = merged["bus"].accumulator("latency")
    assert latency.count == 2
    assert latency.total == 80


# -- seed derivation ----------------------------------------------------------

def test_apply_seed_base_rewrites_only_seed_params():
    params = {"pattern_seed": 2006, "lengths": (1, 2), "seed": 5}
    untouched = apply_seed_base("s", params, None)
    assert untouched == params
    derived = apply_seed_base("s", params, 42)
    assert derived["lengths"] == (1, 2)
    assert derived["pattern_seed"] != 2006
    assert derived["seed"] != 5
    # Deterministic: same base, same scenario, same derived seeds.
    assert derived == apply_seed_base("s", params, 42)
    # Distinct per scenario name.
    assert derived["seed"] != apply_seed_base("other", params, 42)["seed"]


# -- per-scenario parameter overrides (--set) ---------------------------------

def test_overrides_reach_the_scenario_and_compose_with_smoke(scratch):
    scratch(
        "scratch_tuned",
        lambda n, m: ScenarioResult(
            name="scratch_tuned", headers=["n", "m"], rows=[[n, m]]
        ),
        params={"n": 100, "m": 7},
        smoke_params={"n": 2},
    )
    entry = get_scenario("scratch_tuned")
    outcome = run_sweep(
        [entry], jobs=1, smoke=True, overrides={"scratch_tuned": {"m": 99}}
    )
    # Smoke reduces n, the override pins m — they compose, override last.
    assert outcome.outcomes[0].result.rows == [[2, 99]]
    overridden = run_sweep(
        [entry], jobs=1, smoke=True,
        overrides={"scratch_tuned": {"n": 5, "m": 99}},
    )
    assert overridden.outcomes[0].result.rows == [[5, 99]]


def test_overridden_params_feed_the_cache_key(tmp_path, scratch):
    scratch(
        "scratch_keyed",
        lambda n: ScenarioResult(name="scratch_keyed", headers=["n"], rows=[[n]]),
        params={"n": 1},
    )
    entry = get_scenario("scratch_keyed")
    cache = ResultCache(tmp_path)
    default = run_sweep([entry], jobs=1, cache=cache)
    tuned = run_sweep([entry], jobs=1, cache=cache, overrides={"scratch_keyed": {"n": 3}})
    # A different parameter value is a different key: no collision...
    assert default.outcomes[0].cache == "miss"
    assert tuned.outcomes[0].cache == "miss"
    assert tuned.outcomes[0].result.rows == [[3]]
    # ...and re-running either configuration hits its own entry.
    again = run_sweep([entry], jobs=1, cache=cache, overrides={"scratch_keyed": {"n": 3}})
    assert again.outcomes[0].cache == "hit"
    assert again.outcomes[0].result.rows == [[3]]


def test_unknown_override_parameter_fails_the_scenario(scratch):
    scratch(
        "scratch_strict",
        lambda n: ScenarioResult(name="scratch_strict", headers=["n"], rows=[[n]]),
        params={"n": 1},
    )
    with pytest.raises(Exception, match="no parameter"):
        run_sweep(
            [get_scenario("scratch_strict")],
            jobs=1,
            overrides={"scratch_strict": {"typo": 5}},
        )

"""``repro sweep`` CLI: listing, filtered runs, report emission, caching.

Exercises the same entry point CI's sweep job uses (``main`` with argv),
against cheap scenarios and tmp-path cache/report locations.
"""

import json

import pytest

from repro.sweep.cli import main
from repro.sweep.report import REPORT_SCHEMA

CHEAP = ["fig1_generic_architecture", "fig2_bus_macros"]


def _run(tmp_path, *extra):
    out = tmp_path / "BENCH_sweep.json"
    argv = [
        *CHEAP,
        "--jobs", "1",
        "--smoke",
        "--cache-dir", str(tmp_path / "cache"),
        "--out", str(out),
        *extra,
    ]
    return main(argv), out


# -- listing ------------------------------------------------------------------

def test_list_prints_registry(capsys):
    assert main(["list"]) == 0
    captured = capsys.readouterr().out
    assert "table03_patmatch32" in captured
    assert "ablation_boot" in captured
    assert "scenario(s)" in captured


def test_list_json_with_tag_filter(capsys):
    assert main(["list", "--tag", "figure", "--json"]) == 0
    entries = json.loads(capsys.readouterr().out)
    assert {e["name"] for e in entries} >= set(CHEAP)
    assert all("figure" in e["tags"] for e in entries)


def test_list_flag_is_equivalent(capsys):
    assert main(["--list", "--tag", "figure"]) == 0
    assert "fig1_generic_architecture" in capsys.readouterr().out


# -- running ------------------------------------------------------------------

def test_run_writes_schema_tagged_report(tmp_path, capsys):
    code, out = _run(tmp_path, "--json")
    assert code == 0
    report = json.loads(out.read_text(encoding="utf-8"))
    assert report["schema"] == REPORT_SCHEMA
    assert report["ok"] is True
    assert report["smoke"] is True
    assert [s["name"] for s in report["scenarios"]] == CHEAP
    assert all(s["cache"] == "miss" for s in report["scenarios"])
    # --json keeps stdout pure machine-readable (the report itself).
    stdout = capsys.readouterr().out
    assert json.loads(stdout)["schema"] == REPORT_SCHEMA


def test_warm_rerun_hits_the_cache(tmp_path, capsys):
    _run(tmp_path, "--json")
    code, out = _run(tmp_path, "--json")
    assert code == 0
    report = json.loads(out.read_text(encoding="utf-8"))
    assert report["cache"]["hits"] >= 1
    assert all(s["cache"] == "hit" for s in report["scenarios"])
    capsys.readouterr()


def test_no_cache_disables_telemetry(tmp_path, capsys):
    code, out = _run(tmp_path, "--no-cache", "--json")
    assert code == 0
    report = json.loads(out.read_text(encoding="utf-8"))
    assert report["cache"]["enabled"] is False
    assert all(s["cache"] == "off" for s in report["scenarios"])
    capsys.readouterr()


def test_tables_flag_writes_rendered_artifacts(tmp_path, capsys):
    tables_dir = tmp_path / "tables"
    code, _ = _run(tmp_path, "--tables", str(tables_dir))
    assert code == 0
    written = {p.name for p in tables_dir.glob("*.txt")}
    assert written == {f"{name}.txt" for name in CHEAP}
    capsys.readouterr()


def test_empty_selection_is_an_error(tmp_path, capsys):
    assert main(["run", "--tag", "no-such-tag"]) == 2
    assert "no scenarios match" in capsys.readouterr().err


def test_unknown_scenario_name_raises():
    from repro.scenarios import ScenarioError

    with pytest.raises(ScenarioError, match="unknown scenario"):
        main(["run", "definitely_not_registered"])


def test_explain_attributes_misses_then_reports_hits(tmp_path, capsys):
    out_path = tmp_path / "sweep.json"
    argv = [
        "run", "fig1_generic_architecture", "--smoke", "--explain",
        "--cache-dir", str(tmp_path / "cache"), "--out", str(out_path),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "cache-miss attribution:" in cold
    assert "no cached entry" in cold

    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "every scenario hit the cache" in warm


# -- per-scenario overrides (--set) -------------------------------------------

def test_parse_overrides_types_and_grouping():
    from repro.sweep.cli import parse_overrides

    parsed = parse_overrides(
        [
            "mc_campaign:trials=5000",
            "mc_campaign:check_equivalence=true",
            "mc_campaign:kinds=upset,commit",
            "fault_campaign:seed=7",
        ]
    )
    assert parsed == {
        "mc_campaign": {
            "trials": 5000,  # JSON int
            "check_equivalence": True,  # JSON bool
            "kinds": "upset,commit",  # JSON-invalid -> kept as string
        },
        "fault_campaign": {"seed": 7},
    }
    assert parse_overrides(None) is None
    assert parse_overrides([]) is None


@pytest.mark.parametrize(
    "bad", ["mc_campaign:trials", "trials=5", ":trials=5", "name:=5"]
)
def test_parse_overrides_rejects_malformed_entries(bad):
    from repro.sweep.cli import parse_overrides

    with pytest.raises(SystemExit, match="--set"):
        parse_overrides([bad])


def test_parse_overrides_conflicting_duplicate_aborts_naming_both():
    from repro.sweep.cli import parse_overrides

    # Silent last-wins would make the command line lie about what ran;
    # the error must name both conflicting values.
    with pytest.raises(SystemExit, match=r"5000.*9999|9999.*5000"):
        parse_overrides(["mc_campaign:trials=5000", "mc_campaign:trials=9999"])


def test_parse_overrides_identical_duplicate_is_benign():
    from repro.sweep.cli import parse_overrides

    parsed = parse_overrides(["mc_campaign:trials=5000", "mc_campaign:trials=5000"])
    assert parsed == {"mc_campaign": {"trials": 5000}}


def test_set_flag_overrides_scenario_params(tmp_path, capsys):
    from repro.scenarios import ScenarioResult
    from repro.scenarios.registry import _REGISTRY, register_scenario

    register_scenario(
        "scratch_cli_set",
        lambda n: ScenarioResult(
            name="scratch_cli_set", headers=["n"], rows=[[n]],
            headline={"n": n},
        ),
        params={"n": 1},
    )
    try:
        out = tmp_path / "BENCH_sweep.json"
        code = main(
            [
                "scratch_cli_set",
                "--jobs", "1",
                "--set", "scratch_cli_set:n=42",
                "--cache-dir", str(tmp_path / "cache"),
                "--out", str(out),
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        [entry] = report["scenarios"]
        assert entry["headline"]["n"] == 42
        capsys.readouterr()
    finally:
        _REGISTRY.pop("scratch_cli_set", None)

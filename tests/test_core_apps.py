"""Tests for the hardware application drivers (bit-exact vs software)."""

import numpy as np
import pytest

from repro.core.apps import (
    HwBlendDma,
    HwBlendPio,
    HwBrightnessDma,
    HwBrightnessPio,
    HwFadeDma,
    HwFadePio,
    HwJenkinsHash,
    HwPatternMatch,
    HwSha1,
)
from repro.errors import KernelError, ReconfigurationError
from repro.kernels import lookup2, sha1
from repro.sw import (
    SwBlend,
    SwBrightness,
    SwFade,
    SwJenkinsHash,
    SwPatternMatch,
    SwSha1,
    match_counts,
)
from repro.workloads import binary_image, grayscale_image, random_key


def test_driver_requires_matching_kernel(system32, manager32):
    manager32.load("brightness")
    with pytest.raises(ReconfigurationError, match="reconfigure"):
        HwPatternMatch().run(system32, binary_image(8, 16))


def test_driver_requires_any_kernel(system32):
    with pytest.raises(ReconfigurationError):
        HwJenkinsHash().run(system32, b"key")


def test_pattern_match_hw_equals_reference(system32, manager32, pattern):
    manager32.load("patmatch")
    image = binary_image(12, 32, seed=21)
    result = HwPatternMatch().run(system32, image)
    assert np.array_equal(result.result, match_counts(image, pattern))
    assert result.elapsed_ps > 0


def test_pattern_match_hw_equals_sw_task(system32, manager32, pattern):
    manager32.load("patmatch")
    image = binary_image(10, 24, seed=22)
    hw = HwPatternMatch().run(system32, image)
    sw = SwPatternMatch(pattern).run(system32, image)
    assert np.array_equal(hw.result, sw.result)


def test_hash_hw_equals_reference(system32, manager32):
    manager32.load("lookup2")
    key = random_key(100, seed=23)
    result = HwJenkinsHash().run(system32, key)
    assert result.result == lookup2(key)


def test_hash_hw_equals_sw_task(system32, manager32):
    manager32.load("lookup2")
    key = random_key(61, seed=24)
    hw = HwJenkinsHash().run(system32, key)
    sw = SwJenkinsHash().run(system32, key)
    assert hw.result == sw.result


def test_sha1_hw_equals_hashlib(system64, manager64):
    import hashlib

    manager64.load("sha1")
    message = random_key(300, seed=25)
    result = HwSha1().run(system64, message)
    assert result.result == hashlib.sha1(message).digest()


def test_sha1_sw_task_matches(system64, manager64):
    manager64.load("sha1")
    message = random_key(129, seed=26)
    hw = HwSha1().run(system64, message)
    sw = SwSha1().run(system64, message)
    assert hw.result == sw.result == sha1(message)


def test_brightness_pio_matches_sw(system32, manager32):
    manager32.load("brightness")
    image = grayscale_image(12, 16, seed=27)
    hw = HwBrightnessPio().run(system32, image)
    sw = SwBrightness(32).run(system32, image)
    assert np.array_equal(hw.result, sw.result)
    assert hw.result.shape == image.shape


def test_blend_pio_matches_sw(system32, manager32, gray_pair):
    manager32.load("blend")
    a, b = gray_pair
    hw = HwBlendPio().run(system32, a, b)
    sw = SwBlend().run(system32, a, b)
    assert np.array_equal(hw.result, sw.result)
    assert "data_preparation_ps" in hw.breakdown
    assert 0 < hw.breakdown["data_preparation_ps"] < hw.elapsed_ps


def test_fade_pio_matches_sw(system32, manager32, gray_pair):
    manager32.load("fade")
    a, b = gray_pair
    hw = HwFadePio().run(system32, a, b)
    sw = SwFade(0.5).run(system32, a, b)
    assert np.array_equal(hw.result, sw.result)


def test_brightness_dma_matches_sw(system64, manager64):
    manager64.load("brightness")
    image = grayscale_image(16, 16, seed=28)
    hw = HwBrightnessDma().run(system64, image)
    sw = SwBrightness(32).run(system64, image)
    assert np.array_equal(hw.result, sw.result)


def test_blend_dma_matches_sw(system64, manager64, gray_pair):
    manager64.load("blend")
    a, b = gray_pair
    hw = HwBlendDma().run(system64, a, b)
    sw = SwBlend().run(system64, a, b)
    assert np.array_equal(hw.result, sw.result)
    assert hw.breakdown["data_preparation_ps"] > 0


def test_fade_dma_matches_sw(system64, manager64, gray_pair):
    manager64.load("fade")
    a, b = gray_pair
    hw = HwFadeDma().run(system64, a, b)
    sw = SwFade(0.5).run(system64, a, b)
    assert np.array_equal(hw.result, sw.result)


def test_dma_drivers_rejected_on_32bit(system32, manager32):
    manager32.load("brightness")
    with pytest.raises(KernelError, match="PLB Dock"):
        HwBrightnessDma().run(system32, grayscale_image(8, 8))


def test_two_source_shape_mismatch(system32, manager32):
    manager32.load("blend")
    with pytest.raises(KernelError):
        HwBlendPio().run(system32, grayscale_image(8, 8), grayscale_image(8, 16))


def test_odd_sized_image_roundtrip(system64, manager64):
    manager64.load("brightness")
    image = grayscale_image(5, 7, seed=29)  # 35 px: exercises padding
    hw = HwBrightnessDma().run(system64, image)
    assert np.array_equal(hw.result, SwBrightness(32).run(system64, image).result)


def test_pio_brightness_odd_size(system32, manager32):
    manager32.load("brightness")
    image = grayscale_image(3, 7, seed=30)  # 21 px: partial final word
    hw = HwBrightnessPio().run(system32, image)
    assert np.array_equal(hw.result, SwBrightness(32).run(system32, image).result)

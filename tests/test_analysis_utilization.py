"""Tests for the utilization profiler."""

import pytest

from repro.analysis import profile_run
from repro.core import TransferBench, memmap
from repro.core.apps import HwJenkinsHash
from repro.workloads import random_key


def test_profile_reports_bus_occupancy(system32, manager32):
    manager32.load("lookup2")
    key = random_key(512, seed=90)
    report = profile_run(system32, lambda: HwJenkinsHash().run(system32, key))
    assert report.window_ps > 0
    assert "opb32" in report.buses
    assert "plb32" in report.buses
    opb = report.buses["opb32"]
    assert 0 < opb.occupancy <= 1.0
    assert opb.transactions > 0
    assert opb.mean_transaction_ps > 0


def test_profile_returns_workload_result(system32, manager32):
    manager32.load("lookup2")
    key = random_key(64, seed=91)
    report = profile_run(system32, lambda: HwJenkinsHash().run(system32, key))
    assert report.result.result is not None


def test_pio_transfer_run_is_bus_bound(system32):
    # Per-word uncached reads keep the CPU's bus port saturated.  (Note:
    # batch-extrapolated sequences bypass the tracer, so the profiler is
    # meant for real driver loops like this one.)
    def workload():
        for i in range(100):
            system32.cpu.io_read(memmap.STAGE_INPUT + 4 * i)

    report = profile_run(system32, workload)
    assert report.bottleneck in ("plb32", "opb32")
    assert report.buses["plb32"].occupancy > 0.5


def test_compute_heavy_run_is_cpu_bound(system32):
    from repro.cpu.isa import InstructionMix

    def workload():
        system32.cpu.execute(InstructionMix(alu=50_000))
        system32.cpu.io_read(memmap.STAGE_INPUT)
        return None

    report = profile_run(system32, workload)
    assert report.bottleneck == "cpu"


def test_tracers_restored_after_profile(system32):
    sentinel = object()
    system32.plb.tracer = sentinel
    profile_run(system32, lambda: system32.cpu.io_read(memmap.STAGE_INPUT))
    assert system32.plb.tracer is sentinel


def test_summary_lines_mention_buses(system32):
    report = profile_run(system32, lambda: system32.cpu.io_read(memmap.STAGE_INPUT))
    text = "\n".join(report.summary_lines())
    assert "bottleneck" in text
    assert "us" in text

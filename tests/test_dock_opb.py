"""Tests for the OPB Dock wrapper."""

import pytest

from repro.bus.transaction import Op, Transaction
from repro.dock.opb_dock import EMPTY_READ_VALUE, OpbDock
from repro.errors import KernelError
from repro.kernels.streams import LoopbackKernel, SinkKernel

BASE = 0x8000_0000


@pytest.fixture
def dock():
    return OpbDock(BASE)


def test_ports_exposed_for_bitlinker(dock):
    assert len(dock.ports) == 3
    names = {p.macro.name for p in dock.ports}
    assert "dock_write32" in names


def test_write_latch_holds_data_between_writes(dock):
    # "The wrapper stores incoming data, so that it is kept available ...
    #  between write operations."
    dock.access(Transaction(Op.WRITE, BASE, data=0x1234), 0)
    assert dock.write_latch == 0x1234
    dock.access(Transaction(Op.READ, BASE), 0)
    assert dock.write_latch == 0x1234


def test_read_without_kernel_returns_floating_value(dock):
    _, value = dock.access(Transaction(Op.READ, BASE), 0)
    assert value == EMPTY_READ_VALUE


def test_write_without_kernel_absorbed(dock):
    dock.access(Transaction(Op.WRITE, BASE, data=1), 0)
    assert dock.stats.get("words_in") == 1


def test_kernel_receives_writes(dock):
    sink = SinkKernel()
    dock.attach_kernel(sink)
    dock.access(Transaction(Op.WRITE, BASE, data=0xAB), 0)
    assert sink.words == 1
    assert sink.last == 0xAB


def test_loopback_roundtrip(dock):
    dock.attach_kernel(LoopbackKernel())
    dock.access(Transaction(Op.WRITE, BASE, data=0xBEEF), 0)
    _, value = dock.access(Transaction(Op.READ, BASE), 0)
    assert value == 0xBEEF


def test_outputs_queued_in_order(dock):
    dock.attach_kernel(LoopbackKernel())
    for v in (1, 2, 3):
        dock.access(Transaction(Op.WRITE, BASE, data=v), 0)
    values = [dock.access(Transaction(Op.READ, BASE), 0)[1] for _ in range(3)]
    assert values == [1, 2, 3]


def test_read_falls_back_to_register(dock):
    sink = SinkKernel()
    dock.attach_kernel(sink)
    dock.access(Transaction(Op.WRITE, BASE, data=9), 0)
    _, count = dock.access(Transaction(Op.READ, BASE), 0)  # REG_COUNT
    assert count == 1


def test_attach_resets_kernel(dock):
    kernel = LoopbackKernel()
    kernel.consume(5, 32)
    dock.attach_kernel(kernel)
    assert kernel.words == 0
    assert dock.pending_outputs == 0


def test_detach_clears_outputs(dock):
    dock.attach_kernel(LoopbackKernel())
    dock.access(Transaction(Op.WRITE, BASE, data=1), 0)
    dock.detach_kernel()
    assert dock.pending_outputs == 0
    _, value = dock.access(Transaction(Op.READ, BASE), 0)
    assert value == EMPTY_READ_VALUE


def test_collect_outputs_pulls_from_kernel(dock):
    from repro.kernels.streams import CounterSourceKernel

    source = CounterSourceKernel(seed=10)
    dock.attach_kernel(source)
    source.generate(3, width_bits=32)
    assert dock.collect_outputs() == 3
    _, value = dock.access(Transaction(Op.READ, BASE), 0)
    assert value == 10


def test_64bit_beat_rejected(dock):
    with pytest.raises(KernelError):
        dock.access(Transaction(Op.WRITE, BASE, size_bytes=8, data=1), 0)


def test_write_wait_zero_read_wait_positive(dock):
    wait_w, _ = dock.access(Transaction(Op.WRITE, BASE, data=1), 0)
    wait_r, _ = dock.access(Transaction(Op.READ, BASE), 0)
    assert wait_w == 0
    assert wait_r > 0


def test_burst_write_delivers_each_beat(dock):
    sink = SinkKernel()
    dock.attach_kernel(sink)
    dock.access(Transaction(Op.WRITE, BASE, beats=4, data=[1, 2, 3, 4]), 0)
    assert sink.words == 4

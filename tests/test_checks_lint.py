"""Per-rule fixtures for the simulator-discipline linter (repro.checks.lint).

Each LINT rule gets a minimal snippet that fires it and a near-identical
snippet that does not, plus suppression-comment semantics and the
self-lint gate: the shipped package must lint clean.
"""

import textwrap

from repro.checks import lint_package, lint_source
from repro.checks.lint import package_root


def ids(diagnostics):
    return {d.rule for d in diagnostics}


def lint(snippet, path="repro/somemodule.py"):
    return lint_source(textwrap.dedent(snippet), path)


# -- LINT000: unparseable module ---------------------------------------------

def test_lint000_syntax_error():
    found = lint("def broken(:\n")
    assert ids(found) == {"LINT000"}


# -- LINT001: wall-clock reads ----------------------------------------------

def test_lint001_time_time():
    found = lint(
        """
        import time

        def stamp():
            return time.time()
        """
    )
    assert ids(found) == {"LINT001"}


def test_lint001_perf_counter_and_datetime_now():
    found = lint(
        """
        import time, datetime

        def stamps():
            return time.perf_counter(), datetime.datetime.now()
        """
    )
    assert len([d for d in found if d.rule == "LINT001"]) == 2


def test_lint001_simulated_time_is_clean():
    found = lint(
        """
        def advance(sim):
            return sim.now + 5
        """
    )
    assert found == []


# -- LINT002: unseeded randomness -------------------------------------------

def test_lint002_global_random_module():
    found = lint(
        """
        import random

        def roll():
            return random.randint(0, 7)
        """
    )
    assert ids(found) == {"LINT002"}


def test_lint002_default_rng_without_seed():
    found = lint(
        """
        import numpy as np

        def gen():
            return np.random.default_rng()
        """
    )
    assert ids(found) == {"LINT002"}


def test_lint002_legacy_numpy_global():
    found = lint(
        """
        import numpy as np

        def gen():
            return np.random.randint(0, 255)
        """
    )
    assert ids(found) == {"LINT002"}


def test_lint002_seeded_rng_is_clean():
    found = lint(
        """
        import numpy as np

        def gen(seed):
            return np.random.default_rng(seed)
        """
    )
    assert found == []


def test_lint002_hardwired_literal_seed():
    found = lint(
        """
        import numpy as np

        def gen():
            return np.random.default_rng(42)
        """
    )
    assert ids(found) == {"LINT002"}


def test_lint002_explicit_none_seed():
    found = lint(
        """
        import numpy as np

        def gen():
            return np.random.default_rng(None)
        """
    )
    assert ids(found) == {"LINT002"}


def test_lint002_np_random_seed_literal():
    found = lint(
        """
        import numpy as np

        def gen():
            np.random.seed(1234)
        """
    )
    assert ids(found) == {"LINT002"}


def test_lint002_bare_default_rng_import_form():
    found = lint(
        """
        from numpy.random import default_rng

        def gen():
            return default_rng(7)
        """
    )
    assert ids(found) == {"LINT002"}


def test_lint002_derive_seed_helper_is_clean():
    found = lint(
        """
        import numpy as np

        def gen(name):
            return np.random.default_rng(derive_seed(name))
        """
    )
    assert found == []


def test_lint002_seed_propagated_through_assignment_is_clean():
    found = lint(
        """
        import numpy as np

        def gen(seed):
            local = seed + 1
            return np.random.default_rng(local)
        """
    )
    assert found == []


def test_lint002_keyword_seed_from_parameter_is_clean():
    found = lint(
        """
        import numpy as np

        def gen(seed):
            return np.random.default_rng(seed=seed)
        """
    )
    assert found == []


def test_lint002_nested_function_sees_outer_parameter():
    found = lint(
        """
        import numpy as np

        def outer(seed):
            def inner():
                return np.random.default_rng(seed)

            return inner
        """
    )
    assert found == []


# -- LINT003: bare assert in library code -----------------------------------

def test_lint003_bare_assert():
    found = lint(
        """
        def f(x):
            assert x > 0
            return x
        """
    )
    assert ids(found) == {"LINT003"}


def test_lint003_explicit_raise_is_clean():
    found = lint(
        """
        def f(x):
            if x <= 0:
                raise ValueError("x must be positive")
            return x
        """
    )
    assert found == []


# -- LINT004: float arithmetic into *_ps values -----------------------------

def test_lint004_division_assigned_to_ps_name():
    found = lint("delay_ps = cycles / 2\n")
    assert ids(found) == {"LINT004"}


def test_lint004_augmented_division():
    found = lint(
        """
        def tick(self):
            self.busy_until_ps /= 2
        """
    )
    assert ids(found) == {"LINT004"}


def test_lint004_float_keyword_argument():
    found = lint(
        """
        def go(sim, n):
            sim.schedule(when_ps=n / 3)
        """
    )
    assert ids(found) == {"LINT004"}


def test_lint004_rounded_division_is_clean():
    found = lint("delay_ps = round(cycles / 2)\n")
    assert found == []


def test_lint004_integer_arithmetic_is_clean():
    found = lint("delay_ps = cycles * period_ps + 3\n")
    assert found == []


# -- LINT005: fast-path discipline ------------------------------------------

def test_lint005_unguarded_burst_primitive():
    found = lint(
        """
        def move(self, cursor, d):
            return self.bus.request_burst(cursor, d.src, d.word_count)
        """
    )
    assert ids(found) == {"LINT005"}


def test_lint005_guarded_burst_is_clean():
    found = lint(
        """
        def move(self, cursor, d):
            if self.bus.fast_path_active():
                return self.bus.request_burst(cursor, d.src, d.word_count)
            return self.slow(cursor, d)
        """
    )
    assert found == []


def test_lint005_unguarded_icap_bulk_push():
    found = lint(
        """
        def feed(self, words):
            self.hwicap.push_words(words)
        """
    )
    assert ids(found) == {"LINT005"}


def test_lint005_guarded_icap_bulk_push_is_clean():
    found = lint(
        """
        def feed(self, words):
            fast_ok = fastpath.enabled()
            if fast_ok:
                self.hwicap.push_words(words)
            else:
                for word in words:
                    self.hwicap.push_word(word)
        """
    )
    assert found == []


def test_lint005_env_var_literal_outside_fastpath_module():
    found = lint('import os\nflag = os.environ.get("REPRO_NO_FAST_PATH")\n')
    assert ids(found) == {"LINT005"}


def test_lint005_env_var_literal_inside_fastpath_module_is_clean():
    found = lint(
        'import os\nflag = os.environ.get("REPRO_NO_FAST_PATH")\n',
        path="repro/engine/fastpath.py",
    )
    assert found == []


# -- LINT006: scenario purity ------------------------------------------------

def test_lint006_wall_clock_in_scenario():
    found = lint(
        """
        import time
        from repro.scenarios import scenario

        @scenario("bad_clock")
        def bad_clock():
            started = time.time()
            return started
        """
    )
    # LINT001 also fires (wall clock anywhere); LINT006 adds scenario context.
    assert "LINT006" in ids(found)
    assert "LINT001" in ids(found)


def test_lint006_global_statement_in_scenario():
    found = lint(
        """
        from repro.scenarios import scenario

        COUNTER = 0

        @scenario("bad_global")
        def bad_global():
            global COUNTER
            COUNTER = COUNTER + 1
            return COUNTER
        """
    )
    assert ids(found) == {"LINT006"}


def test_lint006_mutating_module_level_list():
    found = lint(
        """
        from repro.scenarios import scenario

        RESULTS = []

        @scenario("bad_mutation")
        def bad_mutation():
            RESULTS.append(1)
            return RESULTS
        """
    )
    assert ids(found) == {"LINT006"}


def test_lint006_subscript_write_into_module_level_dict():
    found = lint(
        """
        from repro.scenarios import scenario

        MEMO = {}

        @scenario("bad_memo")
        def bad_memo(n):
            MEMO[n] = n * 2
            return MEMO[n]
        """
    )
    assert ids(found) == {"LINT006"}


def test_lint006_attribute_write_into_imported_module():
    found = lint(
        """
        import somepkg
        from repro.scenarios import scenario

        @scenario("bad_attr")
        def bad_attr():
            somepkg.state = 3
            return 3
        """
    )
    assert ids(found) == {"LINT006"}


def test_lint006_local_state_and_reads_are_clean():
    found = lint(
        """
        from repro.scenarios import scenario

        SIZES = (16, 64)

        @scenario("good", params={"n": 4})
        def good(n):
            rows = []
            for size in SIZES:  # reading module constants is fine
                rows.append([size, n * size])
            return rows
        """
    )
    assert found == []


def test_lint006_local_shadowing_is_clean():
    found = lint(
        """
        from repro.scenarios import scenario

        rows = []

        @scenario("shadowed")
        def shadowed():
            rows = []
            rows.append(1)  # the local, not the module-level binding
            return rows
        """
    )
    assert found == []


def test_lint006_undecorated_function_not_held_to_purity():
    found = lint(
        """
        RESULTS = []

        def helper():
            RESULTS.append(1)
        """
    )
    assert found == []


# -- suppression comments ----------------------------------------------------

def test_noqa_named_rule_suppresses():
    found = lint("def f(x):\n    assert x  # repro: noqa LINT003\n")
    assert found == []


def test_noqa_blanket_suppresses_all():
    found = lint("def f(x):\n    assert x  # repro: noqa\n")
    assert found == []


def test_noqa_other_rule_does_not_suppress():
    found = lint("def f(x):\n    assert x  # repro: noqa LINT001\n")
    assert ids(found) == {"LINT003"}


def test_noqa_multiple_rules():
    found = lint("def f(x):\n    assert x  # repro: noqa LINT001, LINT003\n")
    assert found == []


# -- diagnostics carry locations ---------------------------------------------

def test_diagnostic_location_and_hint():
    found = lint("def f(x):\n    assert x\n", path="repro/lib.py")
    (diag,) = found
    assert diag.file == "repro/lib.py"
    assert diag.line == 2
    assert diag.hint
    assert "repro/lib.py:2" in diag.render()


# -- the self-lint gate ------------------------------------------------------

def test_shipped_package_lints_clean():
    report = lint_package()
    assert report.diagnostics == [], report.format_text()


def test_package_root_points_at_repro():
    assert package_root().name == "repro"
    assert (package_root() / "checks" / "lint.py").exists()


# -- LINT007: swallowed broad excepts ----------------------------------------

def test_lint007_bare_except_swallowing():
    found = lint(
        """
        def f():
            try:
                work()
            except:
                pass
        """
    )
    assert ids(found) == {"LINT007"}


def test_lint007_broad_except_swallowing():
    found = lint(
        """
        def f():
            try:
                work()
            except Exception:
                return None
        """
    )
    assert ids(found) == {"LINT007"}


def test_lint007_broad_except_in_tuple():
    found = lint(
        """
        def f():
            try:
                work()
            except (ValueError, BaseException) as err:
                log(err)
        """
    )
    assert ids(found) == {"LINT007"}


def test_lint007_reraising_handler_is_clean():
    found = lint(
        """
        def f():
            try:
                work()
            except Exception as err:
                raise RuntimeError("wrapped") from err
        """
    )
    assert found == []


def test_lint007_narrow_handler_is_clean():
    found = lint(
        """
        def f():
            try:
                work()
            except (ValueError, KeyError):
                return None
        """
    )
    assert found == []


def test_lint007_noqa_suppresses():
    found = lint(
        """
        def f():
            try:
                work()
            except Exception:  # repro: noqa LINT007 (boundary: errors become data)
                return None
        """
    )
    assert found == []


# -- LINT008: engine mutation inside a run_steady bulk callback ---------------

def test_lint008_cpu_primitive_in_bulk():
    found = lint(
        """
        def run(system, words):
            cpu = system.cpu

            def step(i):
                cpu.io_write(0x100, words[i])
                cpu.execute_cycles(4)

            def bulk(start, count):
                for i in range(start, start + count):
                    cpu.io_write(0x100, words[i])  # charges bus time twice

            run_steady(system, len(words), step, bulk, phase="demo")
        """
    )
    assert ids(found) == {"LINT008"}


def test_lint008_timing_cursor_write_in_bulk():
    found = lint(
        """
        def run(system, n):
            def step(i):
                system.cpu.execute_cycles(4)

            def bulk(start, count):
                system.cpu.now_ps = system.cpu.now_ps + count * 40

            run_steady(system, n, step, bulk, phase="demo")
        """
    )
    assert ids(found) == {"LINT008"}


def test_lint008_bulk_keyword_and_lambda_forms():
    found = lint(
        """
        def run(system, n):
            def step(i):
                system.cpu.execute_cycles(4)

            run_steady(
                system, n, step,
                bulk=lambda start, count: system.cpu.elapse_cycles(4 * count),
                phase="demo",
            )
        """
    )
    assert ids(found) == {"LINT008"}


def test_lint008_data_movement_bulk_is_clean():
    found = lint(
        """
        def run(system, words, out_words):
            dock = system.dock

            def step(i):
                system.cpu.io_write(dock.base, words[i])
                system.cpu.execute_cycles(4)

            def bulk(start, count):
                dock.feed_words(words[start : start + count], 32, 0)
                out_words.extend(dock.drain_words(count, 32, 0))

            run_steady(system, len(words), step, bulk, phase="demo")
        """
    )
    assert found == []


def test_lint008_mutators_outside_bulk_are_clean():
    found = lint(
        """
        def plain(system, n):
            for _ in range(n):
                system.cpu.execute_cycles(4)
        """
    )
    assert found == []


def test_lint008_noqa_suppresses():
    found = lint(
        """
        def run(system, n):
            def step(i):
                system.cpu.execute_cycles(4)

            def bulk(start, count):
                system.cpu.count("retired")  # repro: noqa LINT008 (measured elsewhere)

            run_steady(system, n, step, bulk, phase="demo")
        """
    )
    assert found == []


# -- LINT009: serve-decision discipline --------------------------------------

def test_lint009_decision_kernel_with_loop():
    found = lint(
        """
        def decide_segment(costs):
            total = 0
            for c in costs:
                total += c
            return total
        """
    )
    assert ids(found) == {"LINT009"}


def test_lint009_decision_kernel_with_rng():
    found = lint(
        """
        from numpy.random import default_rng

        def decide_admit(seed):
            return default_rng(seed).random() < 0.5
        """
    )
    assert "LINT009" in ids(found)


def test_lint009_decision_kernel_reads_environment():
    found = lint(
        """
        import os

        def decide_mode():
            if os.getenv("SERVE_MODE"):
                return 1
            return os.environ["SERVE_MODE"]
        """
    )
    assert ids(found) == {"LINT009"}
    assert len(found) == 2


def test_lint009_pure_decision_kernel_is_clean():
    found = lint(
        """
        def decide_segment(reconfig_ps, hw_ps, sw_ps, resident):
            if resident:
                return 0 if hw_ps < sw_ps else 2
            if reconfig_ps + hw_ps < sw_ps:
                return 1
            return 2
        """
    )
    assert found == []


def test_lint009_serve_scenario_loops_over_trace():
    found = lint(
        """
        @scenario("s", tags=("serve",), params={"n": 4, "seed": 1})
        def s(n, seed):
            trace = make_trace("poisson", n, 100, seed)
            total = 0
            for request in trace:
                total += int(request["size"])
            return total
        """
    )
    assert ids(found) == {"LINT009"}


def test_lint009_serve_scenario_comprehension_over_outcome_projection():
    found = lint(
        """
        @scenario("s", tags=("serve",), params={"n": 4})
        def s(n):
            outcome = simulate(build(), table(), config())
            lat = outcome.latency_ps
            return [int(x) for x in lat]
        """
    )
    assert ids(found) == {"LINT009"}


def test_lint009_serve_scenario_vectorized_is_clean():
    found = lint(
        """
        @scenario("s", tags=("serve",), params={"n": 4, "seed": 1})
        def s(n, seed):
            trace = make_trace("poisson", n, 100, seed)
            outcome = simulate(trace, table(), config())
            report = summarize(outcome)
            rows = [[row.bin, row.count] for row in report.curve]
            return int(outcome.latency_ps.max()), rows
        """
    )
    assert found == []


def test_lint009_untagged_scenario_may_loop():
    found = lint(
        """
        @scenario("s", tags=("table",), params={"n": 4, "seed": 1})
        def s(n, seed):
            trace = make_trace("poisson", n, 100, seed)
            return sum(int(r["size"]) for r in trace)
        """
    )
    assert found == []


def test_lint009_noqa_suppresses():
    found = lint(
        """
        def decide_debug(costs):
            for c in costs:  # repro: noqa LINT009 (diagnostic helper)
                print(c)
        """
    )
    assert found == []

"""Tests for clock domains."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.clock import ClockDomain, mhz
from repro.errors import SimulationError


def test_period_of_50mhz():
    clk = ClockDomain("opb", mhz(50))
    assert clk.period_ps == 20_000


def test_period_of_200mhz():
    clk = ClockDomain("cpu", mhz(200))
    assert clk.period_ps == 5_000


def test_period_of_300mhz_rounds():
    clk = ClockDomain("cpu", mhz(300))
    assert clk.period_ps == 3_333


def test_freq_mhz_property():
    assert ClockDomain("x", mhz(100)).freq_mhz == 100.0


def test_cycles_to_ps_integral():
    clk = ClockDomain("bus", mhz(100))
    assert clk.cycles_to_ps(3) == 30_000


def test_cycles_to_ps_fractional():
    clk = ClockDomain("bus", mhz(100))
    assert clk.cycles_to_ps(2.5) == 25_000


def test_ps_to_cycles():
    clk = ClockDomain("bus", mhz(50))
    assert clk.ps_to_cycles(40_000) == 2.0


def test_next_edge_on_edge():
    clk = ClockDomain("bus", mhz(50))
    assert clk.next_edge(40_000) == 40_000


def test_next_edge_mid_cycle():
    clk = ClockDomain("bus", mhz(50))
    assert clk.next_edge(40_001) == 60_000


def test_sync_delay():
    clk = ClockDomain("bus", mhz(50))
    assert clk.sync_delay(59_999) == 1
    assert clk.sync_delay(60_000) == 0


def test_zero_frequency_rejected():
    with pytest.raises(SimulationError):
        ClockDomain("bad", 0)


def test_negative_frequency_rejected():
    with pytest.raises(SimulationError):
        ClockDomain("bad", -5)


def test_mhz_helper():
    assert mhz(50) == 50_000_000
    assert mhz(0.5) == 500_000


@given(st.integers(min_value=1, max_value=10**12))
def test_next_edge_is_aligned_and_not_before(now):
    clk = ClockDomain("bus", mhz(100))
    edge = clk.next_edge(now)
    assert edge >= now
    assert edge % clk.period_ps == 0
    assert edge - now < clk.period_ps

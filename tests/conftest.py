"""Shared fixtures.

Systems are rebuilt per test (they carry mutable simulated state); the
static baseline computation is the expensive part, so a session-scoped
cache of prebuilt *pristine* systems is kept and deep state is never
shared — each test gets a fresh build.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_system32, build_system64
from repro.core.reconfig import ReconfigManager
from repro.kernels import (
    BlendKernel,
    BrightnessKernel,
    FadeKernel,
    JenkinsHashKernel,
    PatternMatchKernel,
)
from repro.workloads import binary_image, binary_pattern, grayscale_image


@pytest.fixture
def system32():
    return build_system32()


@pytest.fixture
def system64():
    return build_system64()


@pytest.fixture
def pattern():
    return binary_pattern(seed=11)


@pytest.fixture
def small_image():
    return binary_image(16, 24, seed=12)


@pytest.fixture
def gray_pair():
    return grayscale_image(16, 16, seed=13), grayscale_image(16, 16, seed=14)


@pytest.fixture
def manager32(system32, pattern):
    manager = ReconfigManager(system32)
    manager.register(PatternMatchKernel(pattern))
    manager.register(JenkinsHashKernel())
    manager.register(BrightnessKernel(32))
    manager.register(BlendKernel())
    manager.register(FadeKernel(0.5))
    return manager


@pytest.fixture
def manager64(system64, pattern):
    from repro.kernels import Sha1Kernel

    manager = ReconfigManager(system64)
    manager.register(PatternMatchKernel(pattern))
    manager.register(JenkinsHashKernel())
    manager.register(BrightnessKernel(32))
    manager.register(BlendKernel())
    manager.register(FadeKernel(0.5))
    manager.register(Sha1Kernel())
    return manager


def pack_bytes_to_words(values, word_bytes=4):
    """Helper shared by dock/kernel tests."""
    words = []
    for i in range(0, len(values), word_bytes):
        chunk = values[i : i + word_bytes]
        words.append(sum(int(v) << (8 * j) for j, v in enumerate(chunk)))
    return words


@pytest.fixture
def pack_words():
    return pack_bytes_to_words

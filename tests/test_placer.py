"""Tests for automatic component placement."""

import pytest

from repro.bitstream.bitlinker import BitLinker
from repro.bitstream.busmacro import BusMacro, Direction, MacroKind, Port, Side
from repro.bitstream.component import ComponentConfig
from repro.bitstream.generator import initialize_static_configuration
from repro.bitstream.placer import (
    assembly_resources,
    free_columns,
    pack_chain,
    pack_independent,
)
from repro.dock.interface import dock_ports, kernel_ports
from repro.errors import LinkError, ResourceError
from repro.fabric.config_memory import ConfigMemory
from repro.fabric.device import XC2VP7
from repro.fabric.region import find_region
from repro.fabric.resources import ResourceVector


@pytest.fixture(scope="module")
def region():
    return find_region(XC2VP7, 28, 11, bram_blocks=6)


def comp(name, width, ports=(), slices=None):
    return ComponentConfig(
        name=name,
        width=width,
        height=11,
        resources=ResourceVector(slices=slices if slices is not None else width * 20),
        ports=tuple(ports),
    )


def test_pack_chain_abuts_in_order(region):
    parts = [comp("a", 4), comp("b", 6), comp("c", 3)]
    placements = pack_chain(region, parts)
    assert [p.col_offset for p in placements] == [0, 4, 10]
    assert free_columns(region, placements) == 28 - 13


def test_pack_chain_too_wide_rejected(region):
    with pytest.raises(ResourceError, match="columns wide"):
        pack_chain(region, [comp("a", 15), comp("b", 15)])


def test_pack_empty_rejected(region):
    with pytest.raises(LinkError):
        pack_chain(region, [])
    with pytest.raises(LinkError):
        pack_independent(region, [])


def test_pack_too_tall_rejected(region):
    tall = ComponentConfig(name="t", width=2, height=12, resources=ResourceVector(slices=8))
    with pytest.raises(LinkError, match="rows tall"):
        pack_chain(region, [tall])


def test_pack_independent_preserves_input_order(region):
    parts = [comp("small", 2), comp("big", 10), comp("mid", 5)]
    placements = pack_independent(region, parts)
    assert [p.component.name for p in placements] == ["small", "big", "mid"]
    # Widest got the leftmost slot (FFD).
    by_name = {p.component.name: p.col_offset for p in placements}
    assert by_name["big"] == 0
    # No overlaps.
    spans = sorted((p.col_offset, p.col_offset + p.component.width) for p in placements)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_pack_independent_overflow(region):
    with pytest.raises(ResourceError):
        pack_independent(region, [comp("a", 20), comp("b", 20)])


def test_pack_resource_overcommit(region):
    # Slices always fit if the footprints do (capacity = area x 4), but
    # scarce BRAM blocks can be overcommitted: the region holds only 6.
    def bram_comp(name):
        return ComponentConfig(
            name=name,
            width=6,
            height=11,
            resources=ResourceVector(slices=64, bram_blocks=4),
        )

    with pytest.raises(ResourceError, match="assembly needs"):
        pack_chain(region, [bram_comp("fat"), bram_comp("fat2")])


def test_assembly_resources_sums(region):
    parts = [comp("a", 4), comp("b", 6)]
    total = assembly_resources(pack_chain(region, parts))
    assert total.slices == parts[0].total_resources.slices + parts[1].total_resources.slices


def test_packed_chain_links_end_to_end(region):
    """A dock-fed two-stage chain placed by the packer must link cleanly."""
    chain_macro = BusMacro("stage", MacroKind.LUT, width=8)
    stage1 = comp(
        "stage1",
        6,
        ports=tuple(kernel_ports(32)) + (Port(chain_macro, Side.RIGHT, Direction.OUT),),
    )
    stage2 = comp("stage2", 5, ports=(Port(chain_macro, Side.LEFT, Direction.IN),))
    memory = ConfigMemory(XC2VP7)
    initialize_static_configuration(memory, region, seed="placer-test")
    linker = BitLinker(region, memory, dock_ports=dock_ports(32))
    placements = pack_chain(region, [stage1, stage2])
    stream = linker.link(placements)
    assert stream.frame_count == region.frame_count
    assert ("stage1.stage", "stage2.stage") in linker.last_report.connections

"""Tests for the vectorized Monte-Carlo campaigns (repro.faults.montecarlo).

Three layers:

* **Semantics** — hand-built tiny :class:`FaultSpace`/:class:`OutcomeModel`
  pairs pin the classification rules exactly, for both executors.
* **Calibration** — the measured constants are validated against live
  simulations at different strike positions and calibration seeds (the
  closed-form charging assumption, tested rather than trusted).
* **Equivalence** — on the real rig the batched executor must reproduce
  the per-trial reference's ``TrialResult`` stream byte-for-byte,
  including under early stopping.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.errors import InvariantError
from repro.faults.heatmap import (
    RAMP,
    UNSAMPLED,
    empirical_vulnerability,
    render_heatmap,
)
from repro.faults.montecarlo import (
    OUTCOMES,
    CalibratedRig,
    OutcomeModel,
    calibrate_rig,
    classify_batch,
    classify_reference,
    run_mc_campaign,
    trials_from_batch,
)
from repro.faults.plan import FaultPlan, armed, derive_rng_seed
from repro.faults.sampling import (
    DEFAULT_MC_KINDS,
    REGION_ALL,
    REGION_DYNAMIC,
    REGION_STATIC,
    REGION_UNUSED,
    FaultLoad,
    FaultSpace,
)
from repro.scenarios.rigs import build_rig64


@pytest.fixture(scope="module")
def rig():
    return calibrate_rig(build_rig64, kernel="brightness", max_attempts=3)


# -- classification semantics on a synthetic space ----------------------------

def tiny_space():
    essential = np.array(
        [[0b1, 0], [0xFFFFFFFF, 0xFFFFFFFF], [0, 0], [0, 0b100]],
        dtype=np.uint32,
    )
    return FaultSpace(
        total_frames=4,
        words_per_frame=2,
        written_rows=np.array([True, True, False, True]),
        region_class=np.array(
            [REGION_STATIC, REGION_DYNAMIC, REGION_UNUSED, REGION_STATIC],
            dtype=np.int8,
        ),
        essential=essential,
        load_rows=np.array([1], dtype=np.int64),
        payload_indices=np.array([4, 5], dtype=np.int64),
        max_attempts=3,
    )


def tiny_model():
    return OutcomeModel(
        clean_ps=100,
        scan_ps=10,
        scrub_repair_ps=20,
        inload_ps=30,
        seu_retry_ps=40,
        commit_retry_ps=(50, 60),
        fallback_ps=70,
        max_attempts=3,
    )


def both(space, model, load):
    batch = classify_batch(space, model, load, 0, load.trials)
    reference = classify_reference(space, model, load, 0, load.trials)
    for column in (
        "outcome", "recovered", "fallback", "attempts",
        "scrubbed", "faults", "elapsed_ps", "region",
    ):
        assert np.array_equal(getattr(batch, column), getattr(reference, column)), column
    return batch


def test_upset_classification_rules():
    load = FaultLoad(
        kind="upset", trials=5, seed=1,
        rows=np.array([0, 0, 2, 1, 3]),
        words=np.array([0, 0, 0, 1, 1]),
        bits=np.array([0, 1, 5, 31, 2]),
    )
    batch = both(tiny_space(), tiny_model(), load)
    # essential bit -> critical, written-but-clear bit -> latent,
    # unwritten frame -> benign (scan only, nothing scrubbed).
    assert [OUTCOMES[c] for c in batch.outcome] == [
        "critical", "latent", "benign", "critical", "critical",
    ]
    assert batch.scrubbed.tolist() == [1, 1, 0, 1, 1]
    assert batch.elapsed_ps.tolist() == [20, 20, 10, 20, 20]
    assert batch.region.tolist() == [
        REGION_STATIC, REGION_STATIC, REGION_UNUSED,
        REGION_DYNAMIC, REGION_STATIC,
    ]
    assert batch.recovered.all() and not batch.fallback.any()


def test_post_commit_and_seu_classification_rules():
    post = FaultLoad(
        kind="post-commit", trials=2, seed=2,
        rows=np.array([1, 1]), words=np.array([0, 1]), bits=np.array([3, 4]),
    )
    batch = both(tiny_space(), tiny_model(), post)
    assert [OUTCOMES[c] for c in batch.outcome] == ["detected-inload"] * 2
    assert batch.scrubbed.tolist() == [1, 1]
    assert batch.elapsed_ps.tolist() == [30, 30]
    assert batch.attempts.tolist() == [1, 1]

    seu = FaultLoad(
        kind="seu", trials=2, seed=3,
        stream_pos=np.array([0, 1]), bits=np.array([0, 9]),
    )
    batch = both(tiny_space(), tiny_model(), seu)
    assert [OUTCOMES[c] for c in batch.outcome] == ["detected-retry"] * 2
    assert batch.attempts.tolist() == [2, 2]
    assert batch.elapsed_ps.tolist() == [40, 40]
    # Stream positions 0..1 sit in load frame 0 = dense row 1 (dynamic).
    assert batch.region.tolist() == [REGION_DYNAMIC, REGION_DYNAMIC]


def test_commit_classification_rules():
    load = FaultLoad(
        kind="commit", trials=3, seed=4, fail_counts=np.array([1, 2, 3]),
    )
    batch = both(tiny_space(), tiny_model(), load)
    assert [OUTCOMES[c] for c in batch.outcome] == [
        "detected-retry", "detected-retry", "fallback",
    ]
    assert batch.attempts.tolist() == [2, 3, 3]
    assert batch.elapsed_ps.tolist() == [50, 60, 70]
    assert batch.recovered.tolist() == [True, True, False]
    assert batch.fallback.tolist() == [False, False, True]
    assert batch.faults.tolist() == [1, 2, 3]
    assert batch.region.tolist() == [REGION_ALL] * 3


def test_trials_from_batch_materializes_pr5_stream():
    space, model = tiny_space(), tiny_model()
    load = FaultLoad(
        kind="upset", trials=2, seed=77,
        rows=np.array([0, 2]), words=np.array([0, 1]), bits=np.array([0, 8]),
    )
    results = trials_from_batch(space, load, classify_batch(space, model, load, 0, 2))
    assert [r.outcome for r in results] == ["critical", "benign"]
    assert [r.trial for r in results] == [0, 1]
    assert all(r.seed == 77 and r.kind == "upset" for r in results)
    assert results[0].detail == "row 0 word 0 bit 0 [static]"
    assert results[1].detail == "row 2 word 1 bit 8 [unused]"


def test_seu_needs_a_retry_budget(rig):
    crippled = CalibratedRig(
        space=rig.space,
        model=dataclasses.replace(rig.model, max_attempts=1, commit_retry_ps=()),
    )
    with pytest.raises(InvariantError, match="max_attempts"):
        run_mc_campaign(rig=crippled, kinds=("seu",), trials=8)


# -- calibration vs live simulation ------------------------------------------

def test_model_is_seed_independent(rig):
    # The calibration plans' RNG seed moves *where* faults strike, not
    # what they cost: recalibrating under a different seed must measure
    # the identical model (the closed-form charging assumption).
    other = calibrate_rig(
        build_rig64, kernel="brightness", max_attempts=3, calibration_seed=42
    )
    assert other.model == rig.model
    assert np.array_equal(other.space.essential, rig.space.essential)


def test_scrub_repair_cost_is_position_independent(rig):
    # Live check at strike positions the calibration never touched.
    for row_pick, word, bit in [(7, 0, 0), (-1, 100, 17)]:
        system, manager = build_rig64()
        manager.load_robust("brightness")
        written = np.flatnonzero(system.config_memory.written_mask())
        system.config_memory.flip_bit(int(written[row_pick]), word, bit)
        report = manager.scrub()
        assert report.frames_repaired == 1
        assert report.elapsed_ps == rig.model.scrub_repair_ps


def test_inload_and_retry_costs_are_strike_independent(rig):
    # The in-load catch, CRC retry and fallback timelines are charged as
    # constants; re-derive each with a different plan seed (different
    # strike coordinates) and compare against the model.
    system, manager = build_rig64()
    plan = FaultPlan(
        derive_rng_seed(99, "probe:post-commit") & 0x7FFFFFFF,
        post_commit_upsets={0},
    )
    with armed(system, plan):
        inload = manager.load_robust("brightness", max_attempts=3)
    assert inload.elapsed_ps == rig.model.inload_ps

    system, manager = build_rig64()
    plan = FaultPlan(
        derive_rng_seed(99, "probe:seu") & 0x7FFFFFFF, seu_feeds={0}
    )
    with armed(system, plan):
        seu = manager.load_robust("brightness", max_attempts=3)
    assert seu.attempts == 2
    assert seu.elapsed_ps == rig.model.seu_retry_ps

    system, manager = build_rig64()
    manager.register_software("brightness", "sw:brightness")
    plan = FaultPlan(
        derive_rng_seed(99, "probe:fallback") & 0x7FFFFFFF,
        commit_faults={0, 1, 2},
    )
    with armed(system, plan):
        fell = manager.load_robust("brightness", max_attempts=3)
    assert fell.fallback
    assert fell.elapsed_ps == rig.model.fallback_ps


def test_calibration_rejects_nonpositive_attempts():
    with pytest.raises(InvariantError, match="max_attempts"):
        calibrate_rig(build_rig64, max_attempts=0)


# -- batched vs reference equivalence on the real rig -------------------------

def test_executors_agree_on_the_real_rig(rig):
    batch = run_mc_campaign(
        rig=rig, kinds=DEFAULT_MC_KINDS, trials=1500, seed=2006, batch_size=256
    )
    reference = run_mc_campaign(
        rig=rig, kinds=DEFAULT_MC_KINDS, trials=1500, seed=2006,
        batch_size=256, executor="reference",
    )
    assert batch.trial_results() == reference.trial_results()
    assert batch.to_dict() == reference.to_dict()


def test_executors_stop_early_identically(rig):
    kwargs = dict(
        rig=rig, kinds=("upset", "commit"), trials=6000, seed=2006,
        batch_size=512, target_half_width=0.05, min_trials=512,
    )
    batch = run_mc_campaign(executor="batch", **kwargs)
    reference = run_mc_campaign(executor="reference", **kwargs)
    assert batch.stopped_early == reference.stopped_early
    assert batch.trials_run == reference.trials_run
    assert batch.trial_results() == reference.trial_results()
    # The coarse target actually triggers the stop, on whole batches.
    assert batch.stopped_early["upset"]
    assert batch.trials_run["upset"] < 6000
    assert batch.trials_run["upset"] % 512 == 0


def test_unknown_executor_rejected(rig):
    with pytest.raises(InvariantError, match="executor"):
        run_mc_campaign(rig=rig, kinds=("commit",), trials=8, executor="gpu")
    with pytest.raises(InvariantError, match="batch_size"):
        run_mc_campaign(rig=rig, kinds=("commit",), trials=8, batch_size=0)
    with pytest.raises(InvariantError, match="builder or a rig"):
        run_mc_campaign()


# -- estimation ---------------------------------------------------------------

def test_vulnerability_ci_covers_the_analytic_fraction(rig):
    report = run_mc_campaign(rig=rig, kinds=("upset",), trials=2000, seed=2006)
    overall = next(
        s for s in report.strata() if s["kind"] == "upset" and s["region"] == "all"
    )
    lo, hi = overall["vulnerability_ci95"]
    analytic = rig.space.analytic_vulnerability()
    assert lo <= analytic <= hi
    assert overall["analytic_vulnerability"] == analytic
    assert 0.0 < lo < hi < 1.0


def test_kind_summary_rates_and_intervals(rig):
    report = run_mc_campaign(
        rig=rig, kinds=DEFAULT_MC_KINDS, trials=600, seed=2006, batch_size=128
    )
    summary = {entry["kind"]: entry for entry in report.kind_summary()}
    assert set(summary) == set(DEFAULT_MC_KINDS)
    for entry in summary.values():
        lo, hi = entry["recovery_ci95"]
        assert 0.0 <= lo <= entry["recovery_rate"] <= hi <= 1.0
        assert entry["p50_ps"] <= entry["p99_ps"] <= entry["p999_ps"]
    # Upsets and post-commit strikes always recover; commits fall back
    # exactly when all attempts are forced to fail.
    assert summary["upset"]["recovery_rate"] == 1.0
    assert summary["post-commit"]["recovery_rate"] == 1.0
    assert summary["seu"]["mean_attempts"] == 2.0
    assert 0.0 < summary["commit"]["fallback_rate"] < 1.0
    assert summary["commit"]["handled_rate"] == 1.0


def test_frame_tallies_partition_the_upset_trials(rig):
    report = run_mc_campaign(rig=rig, kinds=("upset",), trials=900, seed=2006)
    strikes, criticals = report.frame_tallies()
    assert int(strikes.sum()) == 900
    assert (criticals <= strikes).all()
    assert strikes.shape == (rig.space.total_frames,)


def test_report_is_json_safe_and_schema_tagged(rig):
    report = run_mc_campaign(
        rig=rig, kinds=("upset", "commit"), trials=300, seed=2006, batch_size=128
    )
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["schema"] == "repro-mc-campaign/1"
    assert payload["total_trials"] == 600
    assert payload["analytic"]["total_bits"] == rig.space.total_bits
    assert payload["analytic"]["essential_bits"] == int(
        rig.space.essential_counts().sum()
    )
    assert payload["model"]["clean_ps"] == rig.model.clean_ps
    assert {s["kind"] for s in payload["strata"]} == {"upset", "commit"}


# -- heatmap ------------------------------------------------------------------

def test_analytic_heatmap_renders_layout(rig):
    text = render_heatmap(rig.space)
    assert "per-frame vulnerability (analytic)" in text
    assert "CLB frames" in text and "BRAM content frames" in text
    assert "dynamic region columns" in text
    assert f"'{RAMP[0]}'=0.0" in text
    assert f"frames: {rig.space.total_frames}" in text


def test_empirical_heatmap_marks_unsampled_frames(rig):
    report = run_mc_campaign(rig=rig, kinds=("upset",), trials=64, seed=2006)
    strikes, criticals = report.frame_tallies()
    values = empirical_vulnerability(rig.space, strikes, criticals)
    assert float(values.min()) == -1.0  # 64 strikes cannot touch 1700 frames
    text = render_heatmap(rig.space, values, title="empirical probe")
    assert "empirical probe" in text
    assert UNSAMPLED in text
    assert "unsampled" in text


def test_heatmap_rejects_wrong_shapes(rig):
    with pytest.raises(InvariantError, match="one value per frame"):
        render_heatmap(rig.space, np.zeros(3))
    with pytest.raises(InvariantError, match="frame layout"):
        render_heatmap(tiny_space(), np.zeros(4))

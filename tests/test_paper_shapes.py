"""End-to-end checks of the paper's qualitative results (all 12 tables).

These tests assert the *shape* of the evaluation — who wins, by roughly
what factor, where the crossovers are — on reduced workload sizes so the
whole file runs in seconds.  The benchmark harness regenerates the full
tables.
"""

import numpy as np
import pytest

from repro.core import TransferBench
from repro.core.apps import (
    HwBlendDma,
    HwBlendPio,
    HwBrightnessDma,
    HwBrightnessPio,
    HwFadeDma,
    HwFadePio,
    HwJenkinsHash,
    HwPatternMatch,
    HwSha1,
)
from repro.errors import ResourceError
from repro.kernels import Sha1Kernel
from repro.sw import (
    SwBlend,
    SwBrightness,
    SwFade,
    SwJenkinsHash,
    SwPatternMatch,
    SwSha1,
)
from repro.workloads import binary_image, grayscale_image, random_key

IMG = (16, 40)
GRAY = (32, 32)
KEY_LEN = 1536


@pytest.fixture
def loaded32(system32, manager32):
    return system32, manager32


@pytest.fixture
def loaded64(system64, manager64):
    return system64, manager64


# -- Tables 2 / 7: CPU-controlled transfer times -------------------------------------

def test_table2_vs_table7_4_to_6x(system32, system64):
    bench32, bench64 = TransferBench(system32), TransferBench(system64)
    for method in ("pio_write_sequence", "pio_read_sequence", "pio_interleaved_sequence"):
        t32 = getattr(bench32, method)(1024).per_transfer_ns
        t64 = getattr(bench64, method)(1024).per_transfer_ns
        assert 4.0 <= t32 / t64 <= 6.0, method


# -- Table 8: DMA transfers -----------------------------------------------------------

def test_table8_dma_beats_pio_despite_double_width(system64):
    bench = TransferBench(system64)
    pio = bench.pio_write_sequence(1024).per_transfer_ns  # 32-bit words
    dma = bench.dma_write_sequence(1024).per_transfer_ns  # 64-bit words
    assert dma < pio / 2


def test_table8_interleaved_uses_block_interleaving(system64):
    bench = TransferBench(system64)
    result = bench.dma_interleaved_sequence(4096)  # > FIFO depth of 2047
    assert result.per_transfer_ns < bench.pio_interleaved_sequence(1024).per_transfer_ns


# -- Tables 3 / 9: pattern matching ----------------------------------------------------

def test_table3_speedup_over_26(loaded32, pattern):
    system, manager = loaded32
    manager.load("patmatch")
    image = binary_image(*IMG, seed=50)
    hw = HwPatternMatch().run(system, image)
    sw = SwPatternMatch(pattern).run(system, image)
    assert np.array_equal(hw.result, sw.result)
    assert sw.elapsed_ps / hw.elapsed_ps > 26


def test_table9_speedup_decreases_but_stays_large(loaded32, loaded64, pattern):
    image = binary_image(*IMG, seed=51)
    system32, manager32 = loaded32
    system64, manager64 = loaded64
    manager32.load("patmatch")
    manager64.load("patmatch")
    s32 = (
        SwPatternMatch(pattern).run(system32, image).elapsed_ps
        / HwPatternMatch().run(system32, image).elapsed_ps
    )
    s64 = (
        SwPatternMatch(pattern).run(system64, image).elapsed_ps
        / HwPatternMatch().run(system64, image).elapsed_ps
    )
    # "a decrease in the hardware vs. software speedup is obtained ...
    #  The hardware implementations still maintain a considerable
    #  performance advantage."
    assert s64 < s32
    assert s64 > 8


def test_table9_software_benefits_more_from_memory(loaded32, loaded64, pattern):
    image = binary_image(*IMG, seed=52)
    sw32 = SwPatternMatch(pattern).run(loaded32[0], image).elapsed_ps
    sw64 = SwPatternMatch(pattern).run(loaded64[0], image).elapsed_ps
    assert sw32 / sw64 > 2.5  # more than the 1.5x clock alone


# -- Tables 4 / 10: lookup2 hash ---------------------------------------------------------

def test_table4_speedup_much_more_modest(loaded32):
    system, manager = loaded32
    manager.load("lookup2")
    key = random_key(KEY_LEN, seed=53)
    hw = HwJenkinsHash().run(system, key)
    sw = SwJenkinsHash().run(system, key)
    assert hw.result == sw.result
    speedup = sw.elapsed_ps / hw.elapsed_ps
    assert 0.8 < speedup < 1.8  # "much more modest" than 26x


def test_table10_slightly_better_speedup(loaded32, loaded64):
    key = random_key(KEY_LEN, seed=54)
    s = {}
    for label, (system, manager) in (("32", loaded32), ("64", loaded64)):
        manager.load("lookup2")
        hw = HwJenkinsHash().run(system, key)
        sw = SwJenkinsHash().run(system, key)
        s[label] = sw.elapsed_ps / hw.elapsed_ps
    assert s["64"] > s["32"]
    assert s["64"] < 2.5  # still transfer-limited, not a blowout


# -- Table 11: SHA-1 -------------------------------------------------------------------

def test_table11_sha1_does_not_fit_32bit(manager32):
    with pytest.raises(ResourceError):
        manager32.register(Sha1Kernel())


def test_table11_sha1_considerable_gain_on_64bit(loaded64):
    system, manager = loaded64
    manager.load("sha1")
    message = random_key(2048, seed=55)
    hw = HwSha1().run(system, message)
    sw = SwSha1().run(system, message)
    assert hw.result == sw.result
    assert sw.elapsed_ps / hw.elapsed_ps > 2


def test_table11_sw_overhead_shrinks_with_size(system64):
    per_byte = []
    for n in (64, 512, 8192):
        result = SwSha1().run(system64, random_key(n, seed=56))
        per_byte.append(result.elapsed_ps / n)
    assert per_byte[0] > per_byte[1] > per_byte[2]


# -- Tables 5 / 12: image processing ------------------------------------------------------

def _image_speedups(system, manager, drivers):
    a = grayscale_image(*GRAY, seed=57)
    b = grayscale_image(*GRAY, seed=58)
    out = {}
    manager.load("brightness")
    hw = drivers[0]().run(system, a)
    sw = SwBrightness(32).run(system, a)
    assert np.array_equal(hw.result, sw.result)
    out["brightness"] = sw.elapsed_ps / hw.elapsed_ps
    manager.load("blend")
    hw = drivers[1]().run(system, a, b)
    sw = SwBlend().run(system, a, b)
    assert np.array_equal(hw.result, sw.result)
    out["blend"] = sw.elapsed_ps / hw.elapsed_ps
    out["blend_prep"] = hw.breakdown["data_preparation_ps"]
    manager.load("fade")
    hw = drivers[2]().run(system, a, b)
    sw = SwFade(0.5).run(system, a, b)
    assert np.array_equal(hw.result, sw.result)
    out["fade"] = sw.elapsed_ps / hw.elapsed_ps
    return out


def test_table5_image_speedups(loaded32):
    system, manager = loaded32
    s = _image_speedups(system, manager, (HwBrightnessPio, HwBlendPio, HwFadePio))
    # All hardware versions win; the two-source tasks win less, with blend
    # (the simpler operation) benefiting least.
    assert s["brightness"] > 1.5
    assert 1.0 < s["blend"] < s["fade"] <= s["brightness"] * 1.05
    assert s["blend_prep"] > 0


def test_table12_image_speedups(loaded32, loaded64):
    s32 = _image_speedups(
        loaded32[0], loaded32[1], (HwBrightnessPio, HwBlendPio, HwFadePio)
    )
    s64 = _image_speedups(
        loaded64[0], loaded64[1], (HwBrightnessDma, HwBlendDma, HwFadeDma)
    )
    # "For the first task, there is a clear increase of the speedup"
    assert s64["brightness"] > 2 * s32["brightness"]
    # "The other tasks show a significantly smaller speedup increase"
    assert s64["blend"] >= s32["blend"] * 0.95
    assert s64["fade"] >= s32["fade"]
    blend_gain = s64["blend"] / s32["blend"]
    bright_gain = s64["brightness"] / s32["brightness"]
    assert blend_gain < bright_gain / 1.5
    # Data preparation is charged on the DMA path.
    assert s64["blend_prep"] > 0


# -- Tables 1 / 6: resource usage ------------------------------------------------------------

def test_table1_table6_resource_inventories(system32, system64):
    static32 = system32.static_resources()
    static64 = system64.static_resources()
    # The second design's permanent circuits are larger and more complex.
    assert static64.slices > static32.slices
    # Both leave the dynamic region free.
    for system, static in ((system32, static32), (system64, static64)):
        assert static.fits_within(system.device.capacity - system.region.resources)

"""Tests for the fault-tolerant loader (ReconfigManager.load_robust) and
the standalone readback scrubber."""

import numpy as np
import pytest

from repro.core.reconfig import ReconfigManager
from repro.errors import ReconfigurationError
from repro.faults import FaultPlan, armed
from repro.kernels import BrightnessKernel, JenkinsHashKernel


def _manager(system):
    manager = ReconfigManager(system)
    manager.register(BrightnessKernel(5))
    manager.register(JenkinsHashKernel())
    return manager


def _memories_equal(memory, other):
    mine, theirs = memory.snapshot(), other.snapshot()
    if set(mine) != set(theirs):
        return False
    return all(np.array_equal(mine[addr], theirs[addr]) for addr in mine)


# -- clean path --------------------------------------------------------------

def test_clean_robust_load_succeeds_first_attempt(system32):
    manager = _manager(system32)
    result = manager.load_robust("brightness")
    assert result.attempts == 1
    assert result.scrubbed_frames == 0
    assert not result.fallback
    assert not result.rolled_back
    assert manager.active == "brightness"
    assert system32.dock.kernel is not None
    # The default scan reads back every written frame.
    assert result.frames_verified == result.frame_count
    assert result.verify_ps > 0
    assert result.elapsed_ps >= result.verify_ps


def test_robust_load_costs_more_than_plain(system32):
    plain = _manager(system32).load("brightness")
    from repro.core import build_system32

    fresh = build_system32()
    robust = _manager(fresh).load_robust("brightness")
    assert robust.elapsed_ps > plain.elapsed_ps


def test_robust_load_validates_arguments(system32):
    manager = _manager(system32)
    with pytest.raises(ValueError, match="max_attempts"):
        manager.load_robust("brightness", max_attempts=0)
    with pytest.raises(ValueError, match="verify_samples"):
        manager.load_robust("brightness", verify_samples=0)
    with pytest.raises(ReconfigurationError, match="not registered"):
        manager.load_robust("ghost")


# -- recovery from injected faults -------------------------------------------

def test_seu_in_staged_stream_is_retried(system32):
    manager = _manager(system32)
    plan = FaultPlan(101, seu_feeds={0})
    with armed(system32, plan):
        result = manager.load_robust("brightness")
    assert result.attempts == 2
    assert not result.fallback
    assert plan.faults_delivered == 1
    # The CRC rejection left memory untouched, so no rollback was needed.
    assert not result.rolled_back
    # The recovered configuration matches a fault-free load.
    from repro.core import build_system32

    clean = build_system32()
    _manager(clean).load_robust("brightness")
    assert _memories_equal(system32.config_memory, clean.config_memory)


def test_forced_commit_failure_is_retried(system32):
    manager = _manager(system32)
    plan = FaultPlan(102, commit_faults={0})
    with armed(system32, plan):
        result = manager.load_robust("brightness")
    assert result.attempts == 2
    assert not result.fallback


def test_post_commit_upset_is_scrubbed_in_load(system32):
    manager = _manager(system32)
    plan = FaultPlan(103, post_commit_upsets={0})
    with armed(system32, plan):
        result = manager.load_robust("brightness")
    assert result.attempts == 1
    assert result.scrubbed_frames >= 1
    assert not result.fallback
    from repro.core import build_system32

    clean = build_system32()
    _manager(clean).load_robust("brightness")
    assert _memories_equal(system32.config_memory, clean.config_memory)


def test_recovery_is_reproducible(system32):
    from repro.core import build_system32

    def run():
        system = build_system32()
        manager = _manager(system)
        plan = FaultPlan(77, seu_feeds={0}, post_commit_upsets={0})
        with armed(system, plan):
            result = manager.load_robust("brightness")
        return (
            plan.summary(),
            result.attempts,
            result.scrubbed_frames,
            result.elapsed_ps,
            system.cpu.now_ps,
        )

    assert run() == run()


# -- graceful degradation ----------------------------------------------------

def test_fallback_to_software_after_exhausted_attempts(system32):
    manager = _manager(system32)
    manager.register_software("brightness", "sw:brightness")
    baseline = system32.config_memory.snapshot()
    plan = FaultPlan(104, seu_feeds={0, 1, 2})
    with armed(system32, plan):
        result = manager.load_robust("brightness", max_attempts=3)
    assert result.fallback
    assert result.rolled_back
    assert result.kind == "software-fallback"
    assert result.attempts == 3
    assert manager.active is None
    assert system32.dock.kernel is None
    assert manager.software("brightness") == "sw:brightness"
    # The region was rolled back to its pre-load state.
    after = system32.config_memory.snapshot()
    assert set(after) == set(baseline)
    assert all(np.array_equal(after[a], baseline[a]) for a in after)


def test_software_registered_alongside_kernel(system32):
    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(5), software="impl")
    assert manager.software("brightness") == "impl"


def test_exhausted_attempts_without_fallback_raise(system32):
    manager = _manager(system32)
    baseline = system32.config_memory.snapshot()
    plan = FaultPlan(105, seu_feeds={0, 1})
    with armed(system32, plan):
        with pytest.raises(ReconfigurationError, match="after 2 attempt"):
            manager.load_robust("brightness", max_attempts=2)
    after = system32.config_memory.snapshot()
    assert all(np.array_equal(after[a], baseline[a]) for a in after)


def test_fallback_disabled_raises_even_with_software(system32):
    manager = _manager(system32)
    manager.register_software("brightness", "sw")
    plan = FaultPlan(106, seu_feeds={0})
    with armed(system32, plan):
        with pytest.raises(ReconfigurationError):
            manager.load_robust("brightness", max_attempts=1, allow_fallback=False)


# -- standalone scrubbing ----------------------------------------------------

def test_scrub_repairs_an_idle_upset(system32):
    manager = _manager(system32)
    manager.load_robust("brightness")
    golden = system32.config_memory.snapshot()
    plan = FaultPlan(107, upset_flips=2)
    flipped = plan.upset_now(system32.config_memory)
    assert flipped
    report = manager.scrub()
    assert report.frames_checked == len(golden)
    assert report.frames_repaired >= 1
    assert report.elapsed_ps > 0
    after = system32.config_memory.snapshot()
    assert all(np.array_equal(after[a], golden[a]) for a in golden)
    # A second pass finds nothing left to repair.
    assert manager.scrub().frames_repaired == 0


def test_scrub_without_golden_snapshot_raises(system32):
    manager = _manager(system32)
    with pytest.raises(ReconfigurationError, match="golden"):
        manager.scrub()


def test_mark_golden_enables_scrub(system32):
    manager = _manager(system32)
    manager.load("brightness")  # plain load does not set the golden snapshot
    with pytest.raises(ReconfigurationError, match="golden"):
        manager.scrub()
    manager.mark_golden()
    assert manager.scrub().frames_repaired == 0

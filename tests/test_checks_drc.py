"""Known-bad fixtures for every DRC rule — and silence on the seed systems.

Each rule in repro.checks gets at least one fixture that fires it, and the
shipped example systems must produce zero diagnostics, so the DRC neither
under- nor over-reports.
"""

import numpy as np
import pytest

from repro.bitstream.bitlinker import BitLinker, Placement
from repro.bitstream.bitstream import Bitstream, BitstreamKind
from repro.bitstream.component import ComponentConfig
from repro.bitstream.generator import initialize_static_configuration
from repro.checks import (
    ChainDescriptor,
    CheckReport,
    Severity,
    check_address_map,
    check_bitstream,
    check_bridge_map,
    check_descriptor_chain,
    check_dma_program,
    check_master_binding,
    check_placements,
    check_system,
    program_from_descriptors,
)
from repro.core import build_system32, build_system64, build_system64_dual
from repro.core import memmap
from repro.dock.dma import Descriptor
from repro.dock.interface import dock_ports, kernel_ports
from repro.dock.plb_dock import PlbDock
from repro.fabric.config_memory import ConfigMemory
from repro.fabric.device import XC2VP7
from repro.fabric.frames import FrameAddress
from repro.fabric.region import find_region
from repro.fabric.resources import ResourceVector


@pytest.fixture(scope="module")
def region():
    return find_region(XC2VP7, 28, 11, bram_blocks=6)


@pytest.fixture(scope="module")
def linker(region):
    memory = ConfigMemory(XC2VP7)
    initialize_static_configuration(memory, region, seed="drc-test-static")
    return BitLinker(region, memory, dock_ports=dock_ports(32))


def component(name="comp", width=6, height=11, slices=150, ports=None):
    return ComponentConfig(
        name=name,
        width=width,
        height=height,
        resources=ResourceVector(slices=slices),
        ports=tuple(kernel_ports(32) if ports is None else ports),
    )


def rule_ids(report):
    return {d.rule for d in report.diagnostics}


# -- placement DRC (BITS001..BITS005) ---------------------------------------

def test_clean_placement_is_silent(region):
    report = check_placements(region, [Placement(component(), 0)], dock_ports(32))
    assert report.diagnostics == []


def test_bits001_component_overlap(region):
    placements = [
        Placement(component("a"), 0),
        Placement(component("b", ports=()), 3),  # overlaps columns 3..5 of 'a'
    ]
    report = check_placements(region, placements, dock_ports(32))
    assert "BITS001" in rule_ids(report)
    assert report.has_errors


def test_bits002_component_outside_region(region):
    offset = region.rect.width - 2  # width-6 component hangs 4 columns out
    report = check_placements(
        region, [Placement(component(ports=()), offset)], dock_ports(32)
    )
    assert "BITS002" in rule_ids(report)


def test_bits003_no_dock_interface(region):
    report = check_placements(region, [Placement(component(), 0)], dock_ports=())
    assert "BITS003" in rule_ids(report)


def test_bits003_adjacent_port_count_mismatch(region):
    # 'a' exposes no right-edge ports but abutting 'b' expects three.
    placements = [
        Placement(component("a"), 0),
        Placement(component("b"), 6),
    ]
    report = check_placements(region, placements, dock_ports(32))
    assert "BITS003" in rule_ids(report)


def test_bits004_left_ports_off_dock_edge(region):
    report = check_placements(region, [Placement(component(), 2)], dock_ports(32))
    assert "BITS004" in rule_ids(report)


def test_bits004_non_abutting_components(region):
    placements = [
        Placement(component("a"), 0),
        Placement(component("b"), 8),  # gap: 'a' ends at column 6
    ]
    report = check_placements(region, placements, dock_ports(32))
    assert "BITS004" in rule_ids(report)


def test_bits005_region_resources_exceeded(region):
    dense = region.rect.width * region.rect.height * 4
    placements = [
        Placement(component("a", width=region.rect.width, slices=dense), 0),
        Placement(component("b", width=region.rect.width, slices=dense, ports=()), 0),
    ]
    report = check_placements(region, placements, dock_ports(32))
    assert "BITS005" in rule_ids(report)


# -- bitstream DRC (BITS006..BITS008) ---------------------------------------

def test_clean_bitstream_is_silent(region, linker):
    bitstream = linker.link([Placement(component(), 0)])
    report = check_bitstream(region, bitstream)
    assert report.diagnostics == []


def test_bits006_frame_outside_region(region, linker):
    bitstream = linker.link([Placement(component(), 0)])
    inside = bitstream.frames[0][0]
    outside = FrameAddress(inside.block, inside.major + 1000, 0)
    payload = np.zeros(region.device.words_per_frame, dtype=np.uint32)
    tampered = Bitstream(
        device_name=bitstream.device_name,
        kind=BitstreamKind.PARTIAL_COMPLETE,
        frames=list(bitstream.frames) + [(outside, payload)],
    )
    report = check_bitstream(region, tampered)
    assert "BITS006" in rule_ids(report)
    assert report.has_errors


def test_bits007_differential_bitstream_warns(region, linker):
    memory = ConfigMemory(XC2VP7)
    initialize_static_configuration(memory, region, seed="drc-test-static")
    diff = linker.link_differential([Placement(component(), 0)], memory)
    report = check_bitstream(region, diff)
    assert "BITS007" in rule_ids(report)
    assert not report.has_errors  # hazard, not a hard failure
    assert report.warnings


def test_bits007_incomplete_partial_is_an_error(region, linker):
    bitstream = linker.link([Placement(component(), 0)])
    truncated = Bitstream(
        device_name=bitstream.device_name,
        kind=BitstreamKind.PARTIAL_COMPLETE,
        frames=list(bitstream.frames[:-1]),
    )
    report = check_bitstream(region, truncated)
    assert "BITS007" in rule_ids(report)
    assert report.has_errors


def test_bits008_device_mismatch(region):
    alien = Bitstream(device_name="XC2VP30", kind=BitstreamKind.PARTIAL_COMPLETE)
    report = check_bitstream(region, alien)
    assert rule_ids(report) == {"BITS008"}


# -- bus/address-map DRC (BUS001..BUS005) -----------------------------------

def test_bus001_overlapping_windows():
    report = check_address_map([("a", 0x0, 0x100), ("b", 0x80, 0x100)])
    assert "BUS001" in rule_ids(report)


def test_bus002_misaligned_window_warns():
    report = check_address_map([("a", 0x1002, 0x100)], beat_bytes=4)
    assert "BUS002" in rule_ids(report)
    assert not report.has_errors


def test_bus003_unreachable_opb_slave():
    report = check_bridge_map(
        bridge_windows=[("bridge", 0x1000, 0x100)],
        opb_windows=[("uart", 0x2000, 0x10)],
    )
    assert "BUS003" in rule_ids(report)


def test_bus004_dead_bridge_window_warns():
    report = check_bridge_map(
        bridge_windows=[("bridge", 0x1000, 0x100), ("dead", 0x9000, 0x100)],
        opb_windows=[("uart", 0x1000, 0x10)],
    )
    assert "BUS004" in rule_ids(report)
    assert not report.has_errors


def test_bus005_dma_master_on_wrong_bus():
    system = build_system64()
    system.dock.dma.bus = system.opb  # mis-wire the master port
    report = check_master_binding(system.plb, system.dock)
    assert rule_ids(report) == {"BUS005"}


# -- DMA-program DRC (DMA001..DMA006) ---------------------------------------

DOCK = memmap.DOCK_BASE


def test_clean_dma_program_is_silent():
    chain = [
        Descriptor(src=0x10_0000, dst=None, word_count=64),
        Descriptor(src=None, dst=0x20_0000, word_count=64),
    ]
    report = check_descriptor_chain(chain, dock_base=DOCK)
    assert report.diagnostics == []


def test_dma001_cyclic_chain():
    program = [
        ChainDescriptor(src=0x10_0000, dst=None, word_count=8, next_index=1),
        ChainDescriptor(src=0x20_0000, dst=None, word_count=8, next_index=0),
    ]
    report = check_dma_program(program, dock_base=DOCK)
    assert "DMA001" in rule_ids(report)


def test_dma001_dangling_link():
    program = [ChainDescriptor(src=0x10_0000, dst=None, word_count=8, next_index=5)]
    report = check_dma_program(program, dock_base=DOCK)
    assert "DMA001" in rule_ids(report)


def test_dma002_zero_length():
    program = [ChainDescriptor(src=0x10_0000, dst=None, word_count=0)]
    report = check_dma_program(program, dock_base=DOCK)
    assert "DMA002" in rule_ids(report)


def test_dma003_misaligned_address():
    program = [ChainDescriptor(src=0x10_0003, dst=None, word_count=8, size_bytes=8)]
    report = check_dma_program(program, dock_base=DOCK)
    assert "DMA003" in rule_ids(report)


def test_dma003_unsupported_beat_size():
    program = [ChainDescriptor(src=0x10_0000, dst=None, word_count=8, size_bytes=3)]
    report = check_dma_program(program, dock_base=DOCK)
    assert "DMA003" in rule_ids(report)


def test_dma004_transfer_crosses_dock_window():
    program = [ChainDescriptor(src=DOCK - 0x40, dst=0x20_0000, word_count=32)]
    report = check_dma_program(program, dock_base=DOCK)
    assert "DMA004" in rule_ids(report)


def test_dma004_dock_to_dock():
    program = [ChainDescriptor(src=None, dst=None, word_count=8)]
    report = check_dma_program(program, dock_base=DOCK)
    assert "DMA004" in rule_ids(report)


def test_dma005_drain_exceeds_fifo():
    program = [ChainDescriptor(src=None, dst=0x20_0000, word_count=4096)]
    report = check_dma_program(program, dock_base=DOCK, fifo_depth=2047)
    assert "DMA005" in rule_ids(report)


def test_dma006_beat_wider_than_bus():
    program = [ChainDescriptor(src=0x10_0000, dst=None, word_count=8, size_bytes=8)]
    report = check_dma_program(program, dock_base=DOCK, bus_width_bits=32)
    assert "DMA006" in rule_ids(report)


def test_program_from_descriptors_links_sequentially():
    chain = [
        Descriptor(src=0x10_0000, dst=None, word_count=4),
        Descriptor(src=None, dst=0x20_0000, word_count=4),
    ]
    program = program_from_descriptors(chain)
    assert [d.next_index for d in program] == [1, None]


# -- system DRC (SYS001..SYS003) and seed silence ---------------------------

@pytest.mark.parametrize("builder", [build_system32, build_system64])
def test_seed_systems_pass_drc(builder):
    report = check_system(builder())
    assert report.diagnostics == []


def test_dual_seed_system_passes_drc():
    system, _slot = build_system64_dual()
    assert check_system(system).diagnostics == []


def test_sys001_static_over_budget():
    system = build_system32()
    system.static_resources = lambda: ResourceVector(slices=10**6)
    report = check_system(system)
    assert "SYS001" in rule_ids(report)


def test_sys002_dock_window_too_small():
    system = build_system64()
    stub = PlbDock(0xC000_0000)
    system.plb.attach(stub, 0xC000_0000, 0x100, name="plb_dock_small")
    report = check_system(system)
    assert "SYS002" in rule_ids(report)


def test_sys003_dock_interface_drift():
    system = build_system64()
    system.bitlinker.dock_ports = system.bitlinker.dock_ports[:-1]
    report = check_system(system)
    assert "SYS003" in rule_ids(report)


def test_bus005_via_check_system():
    system = build_system64()
    system.dock.dma.bus = system.opb
    report = check_system(system)
    assert "BUS005" in rule_ids(report)


def test_reports_accumulate_across_checks():
    report = CheckReport()
    check_address_map([("a", 0x0, 0x100), ("b", 0x80, 0x100)], report=report)
    check_dma_program(
        [ChainDescriptor(src=None, dst=None, word_count=0)],
        dock_base=DOCK,
        report=report,
    )
    ids = rule_ids(report)
    assert {"BUS001", "DMA002", "DMA004"} <= ids
    assert report.summary()["error"] == len(report.errors)
    assert all(d.severity is Severity.ERROR for d in report.errors)

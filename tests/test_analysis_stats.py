"""Tests for the shared estimators (repro.analysis.stats)."""

import numpy as np
import pytest

from repro.analysis.stats import (
    QUANTILES,
    Z_95,
    percentiles_ps,
    quantile_ps,
    wilson_half_width,
    wilson_interval,
)
from repro.errors import InvariantError


# -- quantile_ps / percentiles_ps --------------------------------------------

def test_quantile_is_exact_order_statistic():
    values = np.arange(1, 101, dtype=np.int64)  # 1..100, sorted
    assert quantile_ps(values, 0.5) == 50
    assert quantile_ps(values, 0.99) == 99
    assert quantile_ps(values, 0.999) == 100
    assert quantile_ps(values, 1.0) == 100


def test_quantile_single_element_and_clamping():
    one = np.array([42], dtype=np.int64)
    for q in QUANTILES:
        assert quantile_ps(one, q) == 42


def test_quantile_of_empty_rejected():
    with pytest.raises(InvariantError):
        quantile_ps(np.array([], dtype=np.int64), 0.5)


def test_quantile_stays_integer():
    # Order statistics never interpolate: picosecond inputs stay exact.
    values = np.array([1, 2], dtype=np.int64)
    assert quantile_ps(values, 0.5) == 1
    assert isinstance(quantile_ps(values, 0.5), int)


def test_percentiles_sorts_and_matches_quantiles():
    rng = np.random.default_rng(7)
    values = rng.integers(0, 10**12, size=1000)
    out = percentiles_ps(values)
    assert set(out) == {"p50_ps", "p99_ps", "p999_ps"}
    ordered = np.sort(values)
    assert out["p50_ps"] == quantile_ps(ordered, 0.5)
    assert out["p99_ps"] == quantile_ps(ordered, 0.99)
    assert out["p999_ps"] == quantile_ps(ordered, 0.999)
    assert out["p50_ps"] <= out["p99_ps"] <= out["p999_ps"]


# -- wilson_interval ----------------------------------------------------------

def test_wilson_known_value():
    lo, hi = wilson_interval(8, 10)
    assert lo == pytest.approx(0.4901624715366418)
    assert hi == pytest.approx(0.9433178485456248)


def test_wilson_boundaries_are_exact():
    # Zero successes pin the lower bound at 0; all successes pin the
    # upper bound at 1 — but the other end stays strictly informative.
    lo, hi = wilson_interval(0, 20)
    assert lo == 0.0 and 0.0 < hi < 1.0
    lo, hi = wilson_interval(20, 20)
    assert hi == 1.0 and 0.0 < lo < 1.0


def test_wilson_zero_trials_is_vacuous():
    assert wilson_interval(0, 0) == (0.0, 1.0)
    assert wilson_half_width(0, 0) == 0.5


def test_wilson_symmetric_at_half():
    lo, hi = wilson_interval(50, 100)
    assert lo + hi == pytest.approx(1.0)
    assert lo == pytest.approx(0.4038315303659956)


def test_wilson_contains_point_estimate_and_tightens():
    for successes, trials in [(1, 10), (5, 50), (499, 1000)]:
        lo, hi = wilson_interval(successes, trials)
        assert lo <= successes / trials <= hi
    assert wilson_half_width(500, 1000) < wilson_half_width(50, 100)
    assert wilson_half_width(50, 100) == pytest.approx(0.09616846963400438)


def test_wilson_invalid_counts_rejected():
    with pytest.raises(InvariantError):
        wilson_interval(-1, 10)
    with pytest.raises(InvariantError):
        wilson_interval(11, 10)
    with pytest.raises(InvariantError):
        wilson_interval(0, -1)


def test_wilson_z_parameter_widens_with_confidence():
    narrow = wilson_interval(30, 100, z=1.0)
    wide = wilson_interval(30, 100, z=Z_95)
    assert wide[0] < narrow[0] < narrow[1] < wide[1]


# -- serve compatibility ------------------------------------------------------

def test_serve_report_reexports_shared_quantiles():
    # The serve scheduler's report moved its percentile math here; the
    # historical import surface must keep working and agree exactly.
    from repro.serve.report import QUANTILES as SERVE_QUANTILES
    from repro.serve.report import quantile_ps as serve_quantile_ps

    assert SERVE_QUANTILES == QUANTILES
    values = np.sort(np.random.default_rng(3).integers(0, 10**9, size=257))
    for q in QUANTILES:
        assert serve_quantile_ps(values, q) == quantile_ps(values, q)

"""Tests for the PLB-OPB bridge."""

import pytest

from repro.bus.bridge import PlbOpbBridge
from repro.bus.opb import make_opb
from repro.bus.plb import make_plb
from repro.bus.transaction import Op, Transaction
from repro.engine.clock import ClockDomain, mhz
from repro.mem.controllers import SramController
from repro.mem.memory import MemoryArray


@pytest.fixture
def fabric():
    clock = ClockDomain("bus", mhz(50))
    plb = make_plb(clock, "plb")
    opb = make_opb(clock, "opb")
    memory = MemoryArray(65536, "sram")
    opb.attach(SramController(memory, 0, "sram"), 0, 65536, name="sram")
    bridge = PlbOpbBridge(plb, opb)
    plb.attach(bridge, 0, 65536, name="bridge", posted_writes=True)
    return plb, opb, bridge, memory


def test_write_reaches_memory(fabric):
    plb, opb, bridge, memory = fabric
    plb.request(0, Transaction(Op.WRITE, 0x10, data=0x1234))
    assert memory.read_word(0x10, 4) == 0x1234


def test_read_returns_data(fabric):
    plb, opb, bridge, memory = fabric
    memory.write_word(0x20, 4, 0xBEEF)
    completion = plb.request(0, Transaction(Op.READ, 0x20))
    assert completion.value == 0xBEEF


def test_read_slower_than_direct_opb(fabric):
    plb, opb, bridge, memory = fabric
    direct = opb.request(0, Transaction(Op.READ, 0x0))
    bridged = plb.request(opb.busy_until, Transaction(Op.READ, 0x0))
    direct_time = direct.done_ps
    bridged_time = bridged.done_ps - opb.busy_until + (bridged.done_ps - bridged.done_ps)
    assert (bridged.done_ps - direct.done_ps) > 0  # crossing costs extra


def test_posted_write_releases_before_opb_completes(fabric):
    plb, opb, bridge, memory = fabric
    completion = plb.request(0, Transaction(Op.WRITE, 0, data=1))
    assert completion.master_free_ps < opb.busy_until


def test_write_buffer_backpressure(fabric):
    plb, opb, bridge, memory = fabric
    # Fire more writes than the buffer holds, back to back.
    releases = []
    cursor = 0
    for i in range(PlbOpbBridge.WRITE_BUFFER_DEPTH * 3):
        completion = plb.request(cursor, Transaction(Op.WRITE, 4 * i, data=i))
        releases.append(completion.master_free_ps - cursor)
        cursor = completion.master_free_ps
    # Early writes are cheap; steady-state writes stall on the buffer.
    assert max(releases[-3:]) > min(releases[:2])
    assert bridge.stats.get("write_buffer_stalls") > 0


def test_sustained_writes_run_at_opb_rate(fabric):
    plb, opb, bridge, memory = fabric
    cursor = 0
    n = 32
    for i in range(n):
        completion = plb.request(cursor, Transaction(Op.WRITE, 4 * i, data=i))
        cursor = completion.master_free_ps
    # All words must have reached memory despite posting.
    for i in range(n):
        assert memory.read_word(4 * i, 4) == i


def test_64bit_beat_split_into_two_opb_beats(fabric):
    plb, opb, bridge, memory = fabric
    value = 0x1122334455667788
    plb.request(0, Transaction(Op.WRITE, 0x40, size_bytes=8, data=value))
    assert memory.read_word(0x40, 8) == value
    assert opb.stats.get("beats") == 2  # one 64-bit beat -> two 32-bit beats


def test_64bit_read_merged(fabric):
    plb, opb, bridge, memory = fabric
    memory.write_word(0x80, 8, 0xA1B2C3D4E5F60718)
    completion = plb.request(0, Transaction(Op.READ, 0x80, size_bytes=8))
    assert completion.value == 0xA1B2C3D4E5F60718


def test_64bit_burst_read_merged(fabric):
    plb, opb, bridge, memory = fabric
    values = [0x1111111122222222, 0x3333333344444444]
    memory.write_words(0x100, values, size_bytes=8)
    completion = plb.request(0, Transaction(Op.READ, 0x100, size_bytes=8, beats=2))
    assert completion.value == values


def test_bridge_counts_forwarded_ops(fabric):
    plb, opb, bridge, memory = fabric
    plb.request(0, Transaction(Op.WRITE, 0, data=1))
    plb.request(0, Transaction(Op.READ, 0))
    assert bridge.stats.get("forwarded_writes") == 1
    assert bridge.stats.get("forwarded_reads") == 1

"""Region allocator: placement, eviction policy, defrag, fragmentation."""

import pytest

from repro.errors import RegionError
from repro.serve.regions import NEVER, RegionAllocator

#: Four kernels shaped like the calibrated rig (brightness, fade,
#: patmatch, lookup2 widths) with distinct reconfig costs.
WIDTHS = [3, 6, 7, 10]
RECONFIG = [300, 600, 700, 1000]


def alloc(cols=32, defrag=True):
    return RegionAllocator(cols, WIDTHS, RECONFIG, defrag=defrag)


def test_all_kernels_fit_in_wide_region():
    a = alloc(32)
    for k in range(4):
        placed, extra = a.allocate(k)
        assert placed and extra == 0
    assert a.resident_set() == (0, 1, 2, 3)
    assert a.free_total() == 32 - sum(WIDTHS)
    assert a.evictions == 0


def test_kernel_wider_than_region_is_rejected():
    a = alloc(8)
    placed, extra = a.allocate(3)  # width 10 > 8 columns
    assert placed is False and extra == 0
    assert a.resident_set() == ()


def test_lru_evicts_least_recently_touched():
    a = alloc(17)  # 3 + 6 + 7 = 16 fit; lookup2 (10) forces eviction
    for k in (0, 1, 2):
        a.allocate(k)
    a.touch(0)  # 1 is now least recent
    placed, _ = a.allocate(3)
    assert placed
    assert 1 not in a.resident_set()
    assert a.evictions >= 1


def test_belady_evicts_farthest_next_use():
    a = alloc(17)
    for k in (0, 1, 2):
        a.allocate(k)
    next_use = {0: 5, 1: 9, 2: NEVER}.__getitem__
    placed, _ = a.allocate(3, next_use=next_use)
    assert placed
    assert 2 not in a.resident_set()  # never used again -> first victim


def test_touch_requires_residency():
    a = alloc()
    with pytest.raises(RegionError):
        a.touch(0)


def test_evict_requires_residency():
    a = alloc()
    with pytest.raises(RegionError):
        a.evict(2)


def test_compaction_charges_moved_kernels_only():
    a = alloc(17)
    a.allocate(0)  # [0,3)
    a.allocate(1)  # [3,9)
    a.allocate(2)  # [9,16)
    a.evict(1)     # hole [3,9): free 7 total but largest extent is 6
    placed, extra = a.allocate(3)  # width 10: free 7 < 10 -> must evict too
    assert placed
    # Compaction path: free_total >= width after eviction(s), single
    # extent smaller -> compact, charging each moved kernel's reconfig.
    stats = a.stats()
    assert stats["evictions"] >= 1
    if stats["defrag_events"]:
        assert extra == stats["defrag_ps"]
        assert stats["defrag_moves"] >= 1


def test_defrag_event_fires_when_total_fits_but_no_extent_does():
    a = alloc(17)
    a.allocate(0)  # [0,3)
    a.allocate(1)  # [3,9)
    a.allocate(2)  # [9,16)
    a.evict(0)     # hole [0,3)
    a.evict(2)     # holes [0,3) + [9,17): free 11, largest extent 8
    placed, extra = a.allocate(3)  # width 10 <= 11 free -> compaction
    assert placed
    assert a.defrag_events == 1
    assert a.defrag_moves == 1  # only kernel 1 moves (to column 0)
    assert extra == RECONFIG[1]
    assert a.evictions == 2


def test_defrag_disabled_evicts_instead():
    a = alloc(17, defrag=False)
    a.allocate(0)
    a.allocate(1)
    a.allocate(2)
    a.evict(0)
    a.evict(2)
    placed, extra = a.allocate(3)
    assert placed
    assert a.defrag_events == 0
    assert extra == 0
    assert 1 not in a.resident_set()  # evicted, not relocated


def test_fragmentation_metric():
    a = alloc(17)
    assert a.fragmentation() == 0.0  # one empty extent
    a.allocate(0)
    a.allocate(1)
    a.allocate(2)
    a.evict(1)
    # holes [3,9) and [16,17): free 7, largest 6.
    assert a.fragmentation() == pytest.approx(1.0 - 6 / 7)


def test_fragmentation_zero_when_full():
    a = RegionAllocator(9, [3, 6], [1, 1])
    a.allocate(0)
    a.allocate(1)
    assert a.free_total() == 0
    assert a.fragmentation() == 0.0


def test_resident_allocate_is_a_touch():
    a = alloc()
    a.allocate(0)
    a.allocate(1)
    placed, extra = a.allocate(0)  # already resident
    assert placed and extra == 0
    # 1 is now LRU: fill and force one eviction to prove recency moved.
    a.allocate(2)
    a.allocate(3)  # 3+6+7+10 = 26 <= 32, all fit
    assert a.evictions == 0


def test_stats_snapshot_keys():
    a = alloc()
    a.allocate(0)
    stats = a.stats()
    assert set(stats) >= {
        "evictions",
        "defrag_events",
        "defrag_moves",
        "defrag_ps",
        "frag_samples",
        "frag_mean",
        "frag_max",
        "resident_final",
    }
    assert stats["resident_final"] == [0]


def test_constructor_validation():
    with pytest.raises(RegionError):
        RegionAllocator(0, [1], [1])
    with pytest.raises(RegionError):
        RegionAllocator(8, [1, 2], [1])
    with pytest.raises(RegionError):
        RegionAllocator(8, [0], [1])

"""Serve engine: fast path == scalar reference, policy semantics, errors.

The load-bearing guarantee mirrors the repo's other fast paths: the
vectorized scheduler and the per-request reference interpreter must
produce byte-identical simulated outcomes — decisions, finish
timestamps, segment structure, allocator stats — on any trace and any
policy combination.  ``REPRO_NO_FAST_PATH=1`` runs this whole file
through the reference path (CI does), so the engine's own equivalence
tests force both paths explicitly via the fastpath contexts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import fastpath
from repro.scenarios.registry import derive_seed
from repro.scenarios.rigs import build_rig64
from repro.serve.costtable import calibrate
from repro.serve.engine import (
    QUEUE_POLICIES,
    RESIDENCY_POLICIES,
    ServeConfig,
    ServeError,
    simulate,
)
from repro.serve.report import ServeReport
from repro.workloads.traces import ARRIVAL_MODELS, make_trace

#: One calibration for the whole module: the cost table is immutable.
TABLE = calibrate(build_rig64, seed=2006)

ALL_COMBOS = [(q, r) for q in QUEUE_POLICIES for r in RESIDENCY_POLICIES]


def trace_for(requests, model="poisson", seed=7, util=0.7):
    gap = TABLE.mean_gap_for_utilization(util)
    return make_trace(model, requests, gap, derive_seed(seed, f"t:{model}"))


def both_paths(trace, config):
    with fastpath.forced_on():
        fast = simulate(trace, TABLE, config)
    with fastpath.disabled():
        ref = simulate(trace, TABLE, config)
    return fast, ref


# -- fast == reference --------------------------------------------------------

@pytest.mark.parametrize("queue,residency", ALL_COMBOS)
def test_fast_equals_reference_10k(queue, residency):
    trace = trace_for(10_000)
    config = ServeConfig(queue=queue, residency=residency)
    fast, ref = both_paths(trace, config)
    assert fast.observables() == ref.observables()
    assert ServeReport.from_outcome(fast).to_dict() == (
        ServeReport.from_outcome(ref).to_dict()
    )


def test_fast_equals_reference_narrow_region_with_defrag():
    trace = trace_for(6_000, model="bursty", util=0.9)
    for defrag in (True, False):
        config = ServeConfig(
            queue="fifo",
            residency="oracle",
            region_cols=17,
            defrag=defrag,
            oracle_lookahead=128,
        )
        fast, ref = both_paths(trace, config)
        assert fast.observables() == ref.observables()


@settings(max_examples=25, deadline=None)
@given(
    model=st.sampled_from(list(ARRIVAL_MODELS)),
    queue=st.sampled_from(list(QUEUE_POLICIES)),
    residency=st.sampled_from(list(RESIDENCY_POLICIES)),
    requests=st.integers(min_value=1, max_value=400),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_fast_equals_reference_property(model, queue, residency, requests, seed):
    gap = TABLE.mean_gap_for_utilization(0.8)
    trace = make_trace(model, requests, gap, seed)
    config = ServeConfig(queue=queue, residency=residency)
    fast, ref = both_paths(trace, config)
    assert fast.observables() == ref.observables()


def test_simulate_is_deterministic():
    trace = trace_for(5_000)
    config = ServeConfig(queue="edf", residency="oracle")
    a = simulate(trace, TABLE, config)
    b = simulate(trace, TABLE, config)
    assert a.observables() == b.observables()


# -- scheduling semantics -----------------------------------------------------

def test_finish_never_precedes_arrival_plus_cost():
    trace = trace_for(5_000)
    outcome = simulate(trace, TABLE, ServeConfig())
    assert np.all(outcome.finish_ps > trace["arrival_ps"])
    assert np.all(outcome.latency_ps > 0)


def test_policies_produce_distinct_latency_profiles():
    trace = trace_for(10_000)
    p99 = {}
    miss = {}
    for queue in QUEUE_POLICIES:
        outcome = simulate(trace, TABLE, ServeConfig(queue=queue))
        report = ServeReport.from_outcome(outcome)
        p99[queue] = report.p99_ps
        miss[queue] = report.deadline_miss_rate
    assert len(set(p99.values())) == 3
    assert miss["edf"] <= miss["fifo"]


def test_oracle_beats_lru_on_busy_time():
    trace = trace_for(10_000)
    lru = simulate(trace, TABLE, ServeConfig(residency="lru"))
    oracle = simulate(trace, TABLE, ServeConfig(residency="oracle"))
    assert oracle.busy_ps < lru.busy_ps
    lru_report = ServeReport.from_outcome(lru)
    oracle_report = ServeReport.from_outcome(oracle)
    assert oracle_report.software_share < lru_report.software_share


def test_priority_queue_favours_high_priority():
    trace = trace_for(10_000)
    outcome = simulate(trace, TABLE, ServeConfig(queue="priority"))
    pr = trace["priority"]
    hi = outcome.latency_ps[pr == pr.max()].mean()
    lo = outcome.latency_ps[pr == pr.min()].mean()
    assert hi < lo


def test_segment_arrays_cover_every_request():
    trace = trace_for(3_000)
    outcome = simulate(trace, TABLE, ServeConfig())
    assert int(outcome.seg_len.sum()) == 3_000
    assert outcome.seg_kernel.size == outcome.seg_decision.size
    assert outcome.seg_overhead_ps.size == outcome.seg_len.size


# -- validation ---------------------------------------------------------------

def test_bad_queue_policy_rejected():
    with pytest.raises(ServeError):
        ServeConfig(queue="sjf")


def test_bad_residency_policy_rejected():
    with pytest.raises(ServeError):
        ServeConfig(residency="random")


def test_bad_epoch_rejected():
    with pytest.raises(ServeError):
        ServeConfig(epoch_ps=0)


def test_bad_region_cols_rejected():
    with pytest.raises(ServeError):
        ServeConfig(region_cols=-3)


def test_size_class_out_of_table_range_rejected():
    trace = make_trace("poisson", 100, 1_000_000, seed=1, size_classes=9)
    with pytest.raises(ServeError):
        simulate(trace, TABLE, ServeConfig())


# -- zero-request outcomes ----------------------------------------------------

def test_report_from_zero_request_outcome_is_well_defined():
    """A windowed replay whose window precedes the first arrival admits
    zero requests; every per-request statistic must then be zero, not a
    ZeroDivisionError / empty-quantile crash."""
    from repro.serve.engine import ServeOutcome

    empty64 = np.zeros(0, dtype=np.int64)
    outcome = ServeOutcome(
        config=ServeConfig(),
        requests=0,
        decisions=np.zeros(0, dtype=np.uint8),
        finish_ps=empty64,
        latency_ps=empty64,
        service_order=empty64,
        busy_ps=0,
        span_ps=0,
        seg_kernel=empty64,
        seg_len=empty64,
        seg_decision=np.zeros(0, dtype=np.uint8),
        seg_overhead_ps=empty64,
    )
    report = ServeReport.from_outcome(outcome)
    assert report.requests == 0
    assert (report.p50_ps, report.p99_ps, report.p999_ps) == (0, 0, 0)
    assert report.mean_latency_ps == 0
    assert report.max_latency_ps == 0
    assert report.deadline_miss_rate == 0.0
    assert report.software_share == 0.0
    assert report.utilization == 0.0
    assert report.throughput_rps == 0.0
    assert report.amortization_curve == []
    assert report.decision_counts == {"resident": 0, "reconfig": 0, "software": 0}
    # The dict form stays JSON-serializable (no NaN/inf sneaking in).
    import json

    json.dumps(report.to_dict())

"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_devices_lists_catalog(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "XC2VP7" in out
    assert "XC2VP30" in out
    assert "4928" in out  # XC2VP7 slices


def test_info_32(capsys):
    assert main(["info", "--system", "32"]) == 0
    out = capsys.readouterr().out
    assert "system32" in out
    assert "OPB Dock" in out
    assert "1232 slices" in out


def test_info_64(capsys):
    assert main(["info", "--system", "64"]) == 0
    out = capsys.readouterr().out
    assert "PLB Dock" in out


def test_info_dual(capsys):
    assert main(["info", "--system", "dual"]) == 0
    out = capsys.readouterr().out
    assert "Dock B" in out


def test_floorplan_generic(capsys):
    assert main(["floorplan", "--system", "generic"]) == 0
    assert "dynamic" in capsys.readouterr().out


def test_floorplan_system(capsys):
    assert main(["floorplan", "--system", "64"]) == 0
    assert "XC2VP30" in capsys.readouterr().out


def test_transfers_32(capsys):
    assert main(["transfers", "--system", "32", "--words", "256"]) == 0
    out = capsys.readouterr().out
    assert "PIO write" in out
    assert "DMA" not in out  # 32-bit system has no DMA


def test_transfers_64_includes_dma(capsys):
    assert main(["transfers", "--system", "64", "--words", "256"]) == 0
    out = capsys.readouterr().out
    assert "DMA write/read" in out


def test_demo_runs(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "loaded 'brightness'" in out


def test_demo_with_verify(capsys):
    assert main(["demo", "--verify"]) == 0
    assert "readback verify" in capsys.readouterr().out


def test_trace_summary(capsys):
    assert main(["trace", "--words", "16"]) == 0
    out = capsys.readouterr().out
    assert "bus transactions recorded" in out
    assert "opb32:" in out


def test_trace_csv(capsys):
    assert main(["trace", "--words", "8", "--csv", "--head", "3"]) == 0
    out = capsys.readouterr().out
    assert "time_ps,source,kind" in out


def test_unknown_command_errors():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_unknown_system_errors():
    with pytest.raises(SystemExit):
        main(["info", "--system", "128"])


def test_assess_command(capsys):
    assert main([
        "assess", "--words-in", "1000", "--words-out", "1000",
        "--software-us", "5000",
    ]) == 0
    out = capsys.readouterr().out
    assert "max speedup" in out
    assert "candidate" in out


def test_assess_both_methods_on_64(capsys):
    assert main([
        "assess", "--system", "64", "--words-in", "100", "--words-out", "100",
        "--software-us", "100",
    ]) == 0
    out = capsys.readouterr().out
    assert "via pio" in out
    assert "via dma" in out


def test_faults_table_with_equivalence_and_heatmap(capsys):
    assert main(
        [
            "faults",
            "--trials", "64",
            "--executor", "both",
            "--heatmap",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "Monte-Carlo fault campaign" in out
    assert "(equivalence-checked)" in out
    assert "wilson 95% CI" in out
    assert "vulnerability heatmap" in out
    for kind in ("upset", "post-commit", "seu", "commit"):
        assert kind in out


def test_faults_json_report(capsys):
    import json

    assert main(
        ["faults", "--trials", "32", "--kinds", "commit", "--json"]
    ) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == "repro-mc-campaign/1"
    assert report["kinds"] == ["commit"]
    assert report["total_trials"] == 32


def test_faults_rejects_empty_kinds(capsys):
    assert main(["faults", "--kinds", " , "]) == 2
    assert "no fault kinds" in capsys.readouterr().err

"""Compiled-phase / interpreted-path equivalence for the app drivers.

The batch compiler must be invisible in every simulated observable: for
random workload shapes, each PIO driver is run with the compiler on and
off and everything comparable is diffed — elapsed picoseconds, task
results, CPU/bus/bridge/dock/FIFO statistics including accumulator
count/min/max tuples.  ``REPRO_NO_FAST_PATH`` and trace hooks must force
the identical reference behaviour.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.apps import (
    HwBrightnessPio,
    HwFadePio,
    HwJenkinsHash,
    HwPatternMatch,
)
from repro.engine import fastpath
from repro.scenarios.rigs import build_rig32, build_rig64
from repro.workloads import binary_image, grayscale_image, random_key


def _full_stats(system):
    groups = [system.cpu.stats, system.plb.stats, system.dock.stats]
    for attr in ("opb", "bridge"):
        component = getattr(system, attr, None)
        if component is not None and hasattr(component, "stats"):
            groups.append(component.stats)
    fifo = getattr(system.dock, "fifo", None)
    if fifo is not None:
        groups.append(fifo.stats)
    dma = getattr(system.dock, "dma", None)
    if dma is not None:
        groups.append(dma.stats)
    out = {}
    for group in groups:
        for name, counter in group._counters.items():
            out[f"{group.name}.{name}"] = counter.value
        for name, acc in group._accumulators.items():
            out[f"{group.name}.{name}"] = (acc.total, acc.count, acc.minimum, acc.maximum)
    return out


def _run_both(builder, scenario):
    with fastpath.forced_on():
        fast_system, fast_manager = builder()
        fast_run = scenario(fast_system, fast_manager)
    with fastpath.disabled():
        slow_system, slow_manager = builder()
        slow_run = scenario(slow_system, slow_manager)
    assert fast_run.elapsed_ps == slow_run.elapsed_ps
    assert np.array_equal(np.asarray(fast_run.result), np.asarray(slow_run.result))
    assert fast_system.cpu.now_ps == slow_system.cpu.now_ps
    assert _full_stats(fast_system) == _full_stats(slow_system)


@pytest.mark.parametrize("builder", [build_rig32, build_rig64], ids=["32", "64"])
@given(height=st.integers(min_value=4, max_value=24), width=st.integers(min_value=4, max_value=40))
@settings(max_examples=8, deadline=None)
def test_brightness_pio_equivalence(builder, height, width):
    def scenario(system, manager):
        manager.load("brightness")
        return HwBrightnessPio().run(system, grayscale_image(height, width, seed=3))

    _run_both(builder, scenario)


@pytest.mark.parametrize("builder", [build_rig32, build_rig64], ids=["32", "64"])
@given(height=st.integers(min_value=4, max_value=24), width=st.integers(min_value=4, max_value=40))
@settings(max_examples=8, deadline=None)
def test_fade_pio_equivalence(builder, height, width):
    def scenario(system, manager):
        manager.load("fade")
        a = grayscale_image(height, width, seed=5)
        b = grayscale_image(height, width, seed=6)
        return HwFadePio().run(system, a, b)

    _run_both(builder, scenario)


@pytest.mark.parametrize("builder", [build_rig32, build_rig64], ids=["32", "64"])
@given(height=st.integers(min_value=8, max_value=24), width=st.integers(min_value=8, max_value=64))
@settings(max_examples=6, deadline=None)
def test_patmatch_equivalence(builder, height, width):
    def scenario(system, manager):
        manager.load("patmatch")
        return HwPatternMatch().run(system, binary_image(height, width, seed=height + width))

    _run_both(builder, scenario)


@pytest.mark.parametrize("builder", [build_rig32, build_rig64], ids=["32", "64"])
@given(length=st.integers(min_value=1, max_value=2048))
@settings(max_examples=8, deadline=None)
def test_hash_equivalence(builder, length):
    def scenario(system, manager):
        manager.load("lookup2")
        return HwJenkinsHash().run(system, random_key(length, seed=length))

    _run_both(builder, scenario)


def test_driver_trace_is_byte_identical_under_compilation():
    """With a trace hook the compiler steps aside; the emitted trace must
    equal the reference trace byte for byte."""
    from repro.engine.trace import TraceRecorder

    def run(force_off):
        ctx = fastpath.disabled() if force_off else fastpath.forced_on()
        with ctx:
            system, manager = build_rig64()
            manager.load("brightness")
            tracer = TraceRecorder(capacity=1_000_000)
            system.plb.tracer = tracer
            run_result = HwBrightnessPio().run(system, grayscale_image(16, 32, seed=9))
            return run_result.elapsed_ps, tracer.to_jsonl()

    fast_ps, fast_trace = run(force_off=False)
    slow_ps, slow_trace = run(force_off=True)
    assert fast_ps == slow_ps
    assert fast_trace == slow_trace
    assert len(fast_trace) > 0


def test_env_var_round_trip_disables_compilation():
    from repro.engine.batch import reset_telemetry, telemetry

    fastpath.force(None)
    old = os.environ.get(fastpath.ENV_VAR)
    try:
        os.environ[fastpath.ENV_VAR] = "1"
        reset_telemetry()
        system, manager = build_rig32()
        manager.load("brightness")
        HwBrightnessPio().run(system, grayscale_image(8, 16, seed=2))
        assert telemetry().compiled_phases == 0
        assert telemetry().reference_iterations > 0
    finally:
        reset_telemetry()
        if old is None:
            os.environ.pop(fastpath.ENV_VAR, None)
        else:
            os.environ[fastpath.ENV_VAR] = old

"""Tests for the fault-load sampling layer (repro.faults.sampling)."""

import numpy as np
import pytest

from repro.bitstream.bitlinker import Placement
from repro.core.multiregion import build_system64_dual
from repro.core.reconfig import ReconfigManager
from repro.errors import InvariantError
from repro.faults.sampling import (
    DEFAULT_MC_KINDS,
    REGION_DYNAMIC,
    REGION_STATIC,
    REGION_UNUSED,
    build_fault_space,
    essential_bit_map,
    popcount_rows,
    sample_fault_load,
    sample_fault_loads,
)
from repro.kernels import BrightnessKernel, JenkinsHashKernel
from repro.scenarios.rigs import build_rig64


@pytest.fixture(scope="module")
def rig():
    system, manager = build_rig64()
    manager.load_robust("brightness")
    return system, manager


@pytest.fixture(scope="module")
def space(rig):
    system, manager = rig
    component = manager.component("brightness")
    staged = manager.bitlinker.link(
        [Placement(component, col_offset=0, row_offset=0)]
    )
    return build_fault_space(system.config_memory, manager.region, staged, 3)


# -- popcount -----------------------------------------------------------------

def test_popcount_matches_python_bin():
    rng = np.random.default_rng(4)
    words = rng.integers(0, 2**32, size=(7, 5), dtype=np.uint64).astype(np.uint32)
    expected = [sum(bin(int(w)).count("1") for w in row) for row in words]
    assert popcount_rows(words).tolist() == expected


# -- essential_bit_map --------------------------------------------------------

def test_unwritten_frames_contribute_no_essential_bits():
    # A full rig writes every frame, so the "unused" stratum needs a
    # partially configured memory: one static frame and one region frame
    # written, everything else untouched.
    from repro.fabric.config_memory import ConfigMemory
    from repro.fabric.device import XC2VP4
    from repro.fabric.geometry import Rect
    from repro.fabric.region import Region

    memory = ConfigMemory(XC2VP4)
    region = Region(XC2VP4, Rect(12, 8, 4, 16))
    geometry = memory.geometry
    static_addr = geometry.frame_order()[0]
    region_addr = region.frame_addresses[0]
    frame = np.zeros(geometry.words_per_frame, dtype=np.uint32)
    frame[3] = 0xA5A5A5A5
    memory.write_frame(static_addr, frame)
    memory.write_frame(region_addr, frame)

    essential, region_class = essential_bit_map(memory, region)
    written = memory.written_mask()
    unwritten = ~written
    assert np.count_nonzero(unwritten) > 0
    # Strikes outside written frames are benign by construction: not one
    # essential bit lives there, and the stratum label says "unused" —
    # even for *unwritten* frames inside the region's column span.
    assert not essential[unwritten].any()
    assert (region_class[unwritten] == REGION_UNUSED).all()
    unwritten_region_rows = [
        row
        for row in geometry.frame_rows(region.frame_addresses).tolist()
        if not written[row]
    ]
    assert unwritten_region_rows  # the region has unwritten frames here
    assert (region_class[unwritten_region_rows] == REGION_UNUSED).all()

    # The written region frame owns its full row span; the static frame
    # exposes exactly its set bits.
    row_mask = geometry.row_mask_cached(region.rect.row, region.rect.row_end)
    region_row = geometry.frame_index(region_addr)
    static_row = geometry.frame_index(static_addr)
    assert region_class[region_row] == REGION_DYNAMIC
    assert region_class[static_row] == REGION_STATIC
    assert ((essential[region_row] & row_mask) == row_mask).all()
    assert np.array_equal(essential[static_row], frame)


def test_static_frames_expose_exactly_their_set_bits(rig):
    system, manager = rig
    essential, region_class = essential_bit_map(
        system.config_memory, manager.region
    )
    static = region_class == REGION_STATIC
    assert np.count_nonzero(static) > 0
    rows = np.flatnonzero(static)
    data = system.config_memory.data_rows(rows)
    assert np.array_equal(essential[rows], data)


def test_dynamic_frames_carry_the_full_row_span(rig):
    system, manager = rig
    geometry = system.config_memory.geometry
    essential, region_class = essential_bit_map(
        system.config_memory, manager.region
    )
    dynamic = np.flatnonzero(region_class == REGION_DYNAMIC)
    assert dynamic.size > 0
    row_mask = geometry.row_mask_cached(
        manager.region.rect.row, manager.region.rect.row_end
    )
    # Every bit in the region's row span is essential while a kernel is
    # resident, set or cleared — the map is a superset of the mask.
    assert ((essential[dynamic] & row_mask) == row_mask).all()
    region_rows = set(geometry.frame_rows(manager.region.frame_addresses).tolist())
    assert set(dynamic.tolist()) <= region_rows


def test_essential_map_under_differential_loads():
    # A second (differential) load rewrites the dynamic frames' golden
    # contents...
    system, manager = build_rig64()
    manager.load_robust("brightness")
    total = system.config_memory.geometry.frame_count()
    rows = np.arange(total, dtype=np.int64)
    before, _ = essential_bit_map(system.config_memory, manager.region)
    data_before = system.config_memory.data_rows(rows).copy()
    manager.load_robust("lookup2")
    data_after = system.config_memory.data_rows(rows)
    assert not np.array_equal(data_before, data_after)
    # ...but the essential map is *kernel-independent* by construction:
    # the two kernels differ only inside the region's row span, and
    # every bit of the span is essential whichever kernel owns it.  The
    # map derived after the differential load must still match.
    after, region_class = essential_bit_map(system.config_memory, manager.region)
    assert np.array_equal(before, after)
    changed_rows = np.flatnonzero((data_before != data_after).any(axis=1))
    assert (region_class[changed_rows] == REGION_DYNAMIC).all()
    # Static frames keep exposing exactly their (unchanged) set bits.
    static_rows = np.flatnonzero(region_class == REGION_STATIC)
    assert np.array_equal(after[static_rows], data_after[static_rows])


def test_essential_map_with_two_dynamic_regions():
    system, slot = build_system64_dual()
    manager_a = ReconfigManager(system)
    manager_b = ReconfigManager(system, slot=slot)
    manager_a.register(BrightnessKernel(16))
    manager_b.register(JenkinsHashKernel())
    manager_a.load("brightness")
    manager_b.load("lookup2")

    _, class_a = essential_bit_map(system.config_memory, manager_a.region)
    _, class_b = essential_bit_map(system.config_memory, manager_b.region)
    dynamic_a = np.flatnonzero(class_a == REGION_DYNAMIC)
    dynamic_b = np.flatnonzero(class_b == REGION_DYNAMIC)
    assert dynamic_a.size > 0 and dynamic_b.size > 0
    # The regions are disjoint, so each map's dynamic stratum is its own
    # region's frames and the *other* slot's frames land in "static".
    assert not set(dynamic_a.tolist()) & set(dynamic_b.tolist())
    assert (class_b[dynamic_a] == REGION_STATIC).all()
    assert (class_a[dynamic_b] == REGION_STATIC).all()


# -- FaultSpace ---------------------------------------------------------------

def test_space_shapes_and_layout(space):
    assert space.written_rows.shape == (space.total_frames,)
    assert space.essential.shape == (space.total_frames, space.words_per_frame)
    assert space.total_bits == space.total_frames * space.words_per_frame * 32
    for layout in (space.frame_blocks, space.frame_cols, space.frame_minors):
        assert layout.shape == (space.total_frames,)


def test_analytic_vulnerability_decomposes_over_regions(space):
    counts = {
        region: int(np.count_nonzero(space.region_class == region))
        for region in (REGION_UNUSED, REGION_STATIC, REGION_DYNAMIC)
    }
    weighted = sum(
        space.analytic_vulnerability(region) * frames
        for region, frames in counts.items()
    )
    assert weighted / space.total_frames == pytest.approx(
        space.analytic_vulnerability()
    )
    assert space.analytic_vulnerability(REGION_UNUSED) == 0.0
    assert (
        space.analytic_vulnerability(REGION_DYNAMIC)
        > space.analytic_vulnerability(REGION_STATIC)
        > 0.0
    )


def test_frame_vulnerability_bounds(space):
    values = space.frame_vulnerability()
    assert values.shape == (space.total_frames,)
    assert float(values.min()) >= 0.0 and float(values.max()) <= 1.0
    dynamic = space.region_class == REGION_DYNAMIC
    # Dynamic frames carry the row-span mask on top of their set bits,
    # so on average they are hotter than the static remainder.
    assert values[dynamic].mean() > values[~dynamic].mean()


# -- sample_fault_load --------------------------------------------------------

def test_loads_are_deterministic_and_kind_independent(space):
    one = sample_fault_loads(space, DEFAULT_MC_KINDS, 500, seed=2006)
    two = sample_fault_loads(space, DEFAULT_MC_KINDS, 500, seed=2006)
    assert one["upset"].rows.tolist() == two["upset"].rows.tolist()
    assert one["seu"].stream_pos.tolist() == two["seu"].stream_pos.tolist()
    assert one["commit"].fail_counts.tolist() == two["commit"].fail_counts.tolist()
    # Distinct kinds draw from distinct derived streams.
    assert one["upset"].seed != one["post-commit"].seed
    assert one["upset"].words.tolist() != one["post-commit"].words.tolist()
    other = sample_fault_load(space, "upset", 500, seed=2007)
    assert other.rows.tolist() != one["upset"].rows.tolist()


def test_load_coordinates_stay_in_bounds(space):
    trials = 2000
    upset = sample_fault_load(space, "upset", trials, seed=1)
    assert int(upset.rows.max()) < space.total_frames
    assert int(upset.words.max()) < space.words_per_frame
    assert int(upset.bits.max()) < 32

    post = sample_fault_load(space, "post-commit", trials, seed=1)
    assert set(post.rows.tolist()) <= set(space.load_rows.tolist())

    seu = sample_fault_load(space, "seu", trials, seed=1)
    assert int(seu.stream_pos.max()) < space.payload_indices.size

    commit = sample_fault_load(space, "commit", trials, seed=1)
    assert int(commit.fail_counts.min()) >= 1
    assert int(commit.fail_counts.max()) <= space.max_attempts


def test_unknown_kind_and_bad_trials_rejected(space):
    with pytest.raises(InvariantError):
        sample_fault_load(space, "meteor", 10, seed=1)
    with pytest.raises(InvariantError):
        sample_fault_load(space, "upset", 0, seed=1)

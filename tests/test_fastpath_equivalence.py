"""Fast-path / per-beat-path equivalence contract.

The vectorized burst fast path (``Bus.request_burst``, the block DMA
primitives, the ring-buffer FIFO) must be *indistinguishable* from the
per-beat reference path: identical simulated timestamps, identical data in
memory and FIFOs, identical aggregate statistics — and with a trace hook
installed, byte-identical trace output (the hook forces the reference
path).  ``repro.engine.fastpath`` (driven by the ``REPRO_NO_FAST_PATH``
environment variable or ``force()``) flips between the two worlds; these
tests run every scenario in both and diff everything observable.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TransferBench, build_system64, memmap
from repro.dock.dma import Descriptor
from repro.engine import fastpath
from repro.engine.trace import TraceRecorder
from repro.kernels.streams import CounterSourceKernel, LoopbackKernel, SinkKernel


def _seed_memory(system, n_words):
    data = np.arange(n_words, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    system.ext_mem.load(memmap.STAGE_INPUT - memmap.EXT_MEM_BASE, data.view(np.uint8))


def _full_stats(system):
    """Every observable statistic, including accumulator count/min/max."""
    out = {}
    for name, group in (
        ("plb", system.plb.stats),
        ("dock", system.dock.stats),
        ("fifo", system.dock.fifo.stats),
        ("dma", system.dock.dma.stats),
    ):
        for key, counter in group._counters.items():
            out[f"{name}.{key}"] = counter.value
        for key, acc in group._accumulators.items():
            out[f"{name}.{key}"] = (acc.total, acc.count, acc.minimum, acc.maximum)
    return out


def _run_both(scenario):
    """Run ``scenario(system) -> result`` with the fast path on and off."""
    with fastpath.forced_on():
        fast_system = build_system64()
        fast_result = scenario(fast_system)
    with fastpath.disabled():
        slow_system = build_system64()
        slow_result = scenario(slow_system)
    return (fast_system, fast_result), (slow_system, slow_result)


def _assert_equivalent(fast, slow):
    (fast_system, fast_result), (slow_system, slow_result) = fast, slow
    assert fast_result == slow_result
    assert _full_stats(fast_system) == _full_stats(slow_system)
    window = 2 * 1024 * 1024  # covers the staging regions the scenarios touch
    for base in (memmap.STAGE_INPUT - memmap.EXT_MEM_BASE, memmap.STAGE_OUTPUT - memmap.EXT_MEM_BASE):
        assert (
            fast_system.ext_mem.dump(base, window) == slow_system.ext_mem.dump(base, window)
        ).all()
    assert fast_system.dock.fifo.pop_many(len(fast_system.dock.fifo)) == slow_system.dock.fifo.pop_many(
        len(slow_system.dock.fifo)
    )


def test_env_var_disables_fast_path(monkeypatch):
    fastpath.force(None)
    monkeypatch.delenv(fastpath.ENV_VAR, raising=False)
    assert fastpath.enabled()
    monkeypatch.setenv(fastpath.ENV_VAR, "1")
    assert not fastpath.enabled()
    monkeypatch.setenv(fastpath.ENV_VAR, "0")
    assert fastpath.enabled()


@given(n=st.integers(min_value=1, max_value=5000))
@settings(max_examples=25, deadline=None)
def test_dma_write_block_equivalence(n):
    def scenario(system):
        _seed_memory(system, n)
        system.dock.attach_kernel(SinkKernel())
        done = system.dock.dma_write_block(system.cpu.now_ps, memmap.STAGE_INPUT, n)
        return done, system.dock.kernel.words, system.dock.kernel.last

    _assert_equivalent(*_run_both(scenario))


@given(
    n=st.integers(min_value=1, max_value=4000),
    depth=st.integers(min_value=1, max_value=2047),
    pipeline=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_dma_interleaved_chain_equivalence(n, depth, pipeline):
    """Random write+drain chains over random FIFO depths and pipelines."""

    def scenario(system):
        system.dock.fifo.depth = depth  # shrink before any data flows
        system.dock.attach_kernel(LoopbackKernel(pipeline_depth=pipeline))
        cursor = system.cpu.now_ps
        _seed_memory(system, n)
        src, dst = memmap.STAGE_INPUT, memmap.STAGE_OUTPUT
        remaining, completions = n, []
        while remaining:
            chunk = min(remaining, system.dock.fifo.free)
            cursor = system.dock.dma_write_block(cursor, src, chunk)
            cursor, drained = system.dock.dma_drain_fifo(cursor, dst)
            completions.append((cursor, drained))
            src += chunk * 8
            dst += drained * 8
            remaining -= chunk
        return completions

    _assert_equivalent(*_run_both(scenario))


@given(n=st.integers(min_value=1, max_value=4000))
@settings(max_examples=15, deadline=None)
def test_dma_drain_from_source_kernel_equivalence(n):
    def scenario(system):
        source = CounterSourceKernel(seed=0xBEEF)
        system.dock.attach_kernel(source)
        cursor = system.cpu.now_ps
        remaining, completions = n, []
        while remaining:
            chunk = min(remaining, system.dock.fifo.depth)
            source.generate(chunk, width_bits=64)
            system.dock.collect_outputs()
            cursor, drained = system.dock.dma_drain_fifo(cursor, memmap.STAGE_OUTPUT)
            completions.append((cursor, drained))
            remaining -= chunk
        return completions

    _assert_equivalent(*_run_both(scenario))


@given(
    chain=st.lists(
        st.tuples(st.integers(min_value=1, max_value=600), st.booleans()),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=20, deadline=None)
def test_descriptor_chain_equivalence(chain):
    """Random scatter-gather chains mixing directions."""

    def scenario(system):
        system.dock.attach_kernel(LoopbackKernel(pipeline_depth=1))
        total = sum(count for count, _ in chain)
        _seed_memory(system, total)
        descriptors = []
        src = memmap.STAGE_INPUT
        dst = memmap.STAGE_OUTPUT
        pending = 0
        for count, drain in chain:
            if pending + count > 2000:  # keep undrained data inside the FIFO
                descriptors.append(Descriptor(src=None, dst=dst, word_count=pending))
                dst += pending * 8
                pending = 0
            descriptors.append(Descriptor(src=src, dst=None, word_count=count))
            src += count * 8
            pending += count
            if drain and pending:
                descriptors.append(Descriptor(src=None, dst=dst, word_count=pending))
                dst += pending * 8
                pending = 0
        return system.dock.dma.run_chain(system.cpu.now_ps, descriptors)

    _assert_equivalent(*_run_both(scenario))


@pytest.mark.parametrize("n", [1, 16, 17, 2047, 2048, 6000])
def test_transfer_bench_sequences_equivalence(n):
    def scenario(system):
        bench = TransferBench(system)
        w = bench.dma_write_sequence(n).total_ps
        r = bench.dma_read_sequence(n).total_ps
        wr = bench.dma_interleaved_sequence(n).total_ps
        return w, r, wr

    _assert_equivalent(*_run_both(scenario))


def test_trace_hook_forces_reference_path_and_is_byte_identical():
    """With a tracer installed, the fast-path build must emit exactly the
    trace the per-beat build emits (the hook disables the shortcut)."""

    def traced(n, force_off):
        ctx = fastpath.disabled() if force_off else fastpath.forced_on()
        with ctx:
            system = build_system64()
            tracer = TraceRecorder(capacity=1_000_000)
            system.plb.tracer = tracer
            bench = TransferBench(system)
            bench.dma_interleaved_sequence(n)
            return tracer.to_jsonl(), tracer.to_csv()

    fast_jsonl, fast_csv = traced(300, force_off=False)
    slow_jsonl, slow_csv = traced(300, force_off=True)
    assert fast_jsonl == slow_jsonl
    assert fast_csv == slow_csv
    assert len(fast_jsonl) > 0


def test_repro_no_fast_path_env_round_trip():
    """The documented env flag flips the gate (subprocess-free check)."""
    fastpath.force(None)
    old = os.environ.get(fastpath.ENV_VAR)
    try:
        os.environ[fastpath.ENV_VAR] = "1"
        assert not fastpath.enabled()
        system = build_system64()
        assert not system.plb.fast_path_active()
    finally:
        if old is None:
            os.environ.pop(fastpath.ENV_VAR, None)
        else:
            os.environ[fastpath.ENV_VAR] = old

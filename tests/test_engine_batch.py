"""Unit contract of the steady-state phase compiler (`repro.engine.batch`).

`run_steady` must be a pure host-time optimization: for any mix of gates
(declaration, fast-path switch, trace hooks, irregular timing, simulator
activity) the simulated clock, per-component statistics and data contents
must match the stepped reference exactly.
"""

import numpy as np
import pytest

from repro.core import memmap
from repro.engine import fastpath
from repro.engine.batch import (
    MAX_PROBES,
    MIN_PROBES,
    declare_phases,
    declared_phases,
    phase_declared,
    reset_telemetry,
    run_steady,
    telemetry,
)
from repro.engine.trace import TraceRecorder
from repro.kernels.streams import LoopbackKernel
from repro.scenarios.rigs import build_rig32, build_rig64

N = 64
PHASE = "unit-phase"


@pytest.fixture(autouse=True)
def _clean_telemetry():
    reset_telemetry()
    yield
    reset_telemetry()


def _loaded_system(builder):
    system, manager = builder()
    system.dock.attach_kernel(LoopbackKernel(pipeline_depth=1))
    declare_phases(system, PHASE)
    return system


def _drive(system, n=N, use_bulk=True, phase=PHASE):
    """A canonical steady loop: write one word per iteration via PIO."""
    base = system.dock.base
    cpu = system.cpu
    words = list(range(1, n + 1))

    def step(i):
        cpu.io_write(base, words[i])
        cpu.execute_cycles(4)

    def bulk(start, count):
        system.dock.feed_words(np.asarray(words[start : start + count], dtype=np.uint64), 32, 0)

    run_steady(system, n, step, bulk if use_bulk else None, phase=phase)


def _observables(system):
    groups = [system.cpu.stats, system.plb.stats, system.dock.stats]
    fifo = getattr(system.dock, "fifo", None)
    if fifo is not None:
        groups.append(fifo.stats)
    stats = {}
    for group in groups:
        for name, counter in group._counters.items():
            stats[f"{group.name}.{name}"] = counter.value
        for name, acc in group._accumulators.items():
            stats[f"{group.name}.{name}"] = (acc.total, acc.count, acc.minimum, acc.maximum)
    drained = (
        system.dock.fifo.pop_many(len(system.dock.fifo))
        if fifo is not None
        else list(system.dock.drain_words(system.dock.pending_outputs))
    )
    return system.cpu.now_ps, stats, drained


@pytest.mark.parametrize("builder", [build_rig32, build_rig64], ids=["32", "64"])
def test_compiled_phase_matches_stepped_run(builder):
    with fastpath.forced_on():
        fast = _loaded_system(builder)
        _drive(fast)
    with fastpath.disabled():
        slow = _loaded_system(builder)
        _drive(slow)
    assert _observables(fast) == _observables(slow)
    assert telemetry().compiled_phases == 1
    assert telemetry().extrapolated_iterations == N - telemetry().probe_iterations


def test_declaration_gates_compilation():
    with fastpath.forced_on():
        system = _loaded_system(build_rig32)
        _drive(system, phase="never-declared")
    assert telemetry().compiled_phases == 0
    assert telemetry().reference_iterations == N


def test_phase_declarations_live_on_the_system():
    system = _loaded_system(build_rig32)
    assert phase_declared(system, PHASE)
    assert not phase_declared(system, "other")
    declare_phases(system, "other")
    assert {"other", PHASE} <= set(declared_phases(system))
    # A fresh system does not inherit the declaration.
    other = _loaded_system(build_rig32)
    assert "other" not in declared_phases(other)


def test_missing_bulk_falls_back_to_reference():
    with fastpath.forced_on():
        system = _loaded_system(build_rig32)
        _drive(system, use_bulk=False)
    assert telemetry().compiled_phases == 0
    assert telemetry().reference_iterations == N


def test_short_phase_falls_back_to_reference():
    with fastpath.forced_on():
        system = _loaded_system(build_rig32)
        _drive(system, n=MIN_PROBES)
    assert telemetry().compiled_phases == 0
    assert telemetry().reference_iterations == MIN_PROBES


def test_fastpath_off_forces_reference():
    with fastpath.disabled():
        system = _loaded_system(build_rig32)
        _drive(system)
    assert telemetry().compiled_phases == 0
    assert telemetry().reference_iterations == N


def test_trace_hook_forces_reference_and_equal_trace():
    def run(force_off):
        ctx = fastpath.disabled() if force_off else fastpath.forced_on()
        with ctx:
            system = _loaded_system(build_rig64)
            tracer = TraceRecorder(capacity=1_000_000)
            system.plb.tracer = tracer
            _drive(system)
            return _observables(system), tracer.to_jsonl()

    fast_obs, fast_trace = run(force_off=False)
    slow_obs, slow_trace = run(force_off=True)
    assert fast_obs == slow_obs
    assert fast_trace == slow_trace
    assert len(fast_trace) > 0
    assert telemetry().compiled_phases == 0


def test_irregular_phase_falls_back_and_stays_exact():
    """Iterations with varying cost never converge to a signature."""

    def run(ctx_factory):
        with ctx_factory():
            system = _loaded_system(build_rig32)
            cpu = system.cpu
            base = system.dock.base

            def step(i):
                cpu.io_write(base, i)
                cpu.execute_cycles(1 + (i % 5))  # different dt every probe

            def bulk(start, count):
                system.dock.feed_words(
                    np.arange(start, start + count, dtype=np.uint64), 32, 0
                )

            run_steady(system, N, step, bulk, phase=PHASE)
            return _observables(system)

    assert run(fastpath.forced_on) == run(fastpath.disabled)
    assert telemetry().compiled_phases == 0


def test_simulator_activity_breaks_the_probe():
    """A step that schedules simulator events hands over to the interpreter."""
    from repro.engine.events import Timeout

    def run(ctx_factory):
        with ctx_factory():
            system = _loaded_system(build_rig32)
            cpu = system.cpu
            base = system.dock.base

            def step(i):
                Timeout(system.sim, 10)
                system.sim.run()
                cpu.io_write(base, i)
                cpu.execute_cycles(4)

            def bulk(start, count):  # pragma: no cover - must never be used
                raise AssertionError("bulk applied despite simulator activity")

            run_steady(system, N, step, bulk, phase=PHASE)
            return _observables(system)

    assert run(fastpath.forced_on) == run(fastpath.disabled)
    assert telemetry().compiled_phases == 0


def test_probe_budget_is_bounded():
    """Irregular phases stop probing after MAX_PROBES and still finish."""
    with fastpath.forced_on():
        system = _loaded_system(build_rig32)
        seen = []
        cpu = system.cpu
        base = system.dock.base

        def step(i):
            seen.append(i)
            cpu.io_write(base, i)
            cpu.execute_cycles(1 + (i % 7))

        def bulk(start, count):
            system.dock.feed_words(np.arange(start, start + count, dtype=np.uint64), 32, 0)

        run_steady(system, N, step, bulk, phase=PHASE)
    assert seen == list(range(N))
    assert MAX_PROBES < N

"""Tests for the dual-dynamic-area extension."""

import numpy as np
import pytest

from repro.core.multiregion import build_system64_dual
from repro.core.reconfig import ReconfigManager
from repro.errors import ResourceError
from repro.kernels import BrightnessKernel, JenkinsHashKernel, Sha1Kernel, lookup2
from repro.kernels.jenkins_hash import LENGTH_OFFSET, key_to_words
from repro.sw import brightness_ref
from repro.workloads import grayscale_image, random_key


@pytest.fixture(scope="module")
def dual():
    return build_system64_dual()


def test_regions_disjoint(dual):
    system, slot = dual
    assert not system.region.rect.overlaps(slot.region.rect)
    assert slot.region.resources.slices > 0


def test_static_design_still_fits(dual):
    system, slot = dual
    budget = system.device.capacity - system.region.resources - slot.region.resources
    assert system.static_resources().fits_within(budget)


def test_docks_have_distinct_windows(dual):
    system, slot = dual
    assert slot.dock.base != system.dock.base
    assert slot.dock.dma is not None


def test_both_kernels_resident_simultaneously():
    system, slot = build_system64_dual()
    manager_a = ReconfigManager(system)
    manager_b = ReconfigManager(system, slot=slot)
    manager_a.register(BrightnessKernel(16))
    manager_b.register(JenkinsHashKernel())
    manager_a.load("brightness")
    manager_b.load("lookup2")

    # Kernel A still attached and functional after loading B.
    assert system.dock.kernel is not None and system.dock.kernel.name == "brightness"
    assert slot.dock.kernel is not None and slot.dock.kernel.name == "lookup2"

    # Drive both through their own docks.
    cpu = system.cpu
    image = grayscale_image(4, 8, seed=60)
    words = [int(v) for v in np.asarray(image, dtype=np.uint8).ravel().view("<u4")]
    outs = []
    for word in words:
        cpu.io_write(system.dock.base, word)
        outs.append(cpu.io_read(system.dock.base))
    pixels = np.array(outs, dtype="<u4").view(np.uint8)[: image.size]
    assert np.array_equal(pixels.reshape(image.shape), brightness_ref(image, 16))

    key = random_key(24, seed=61)
    cpu.io_write(slot.dock.base + LENGTH_OFFSET, len(key))
    for word in key_to_words(key):
        cpu.io_write(slot.dock.base, word)
    assert cpu.io_read(slot.dock.base) == lookup2(key)


def test_loading_b_preserves_a_configuration():
    system, slot = build_system64_dual()
    manager_a = ReconfigManager(system)
    manager_b = ReconfigManager(system, slot=slot)
    manager_a.register(BrightnessKernel(16))
    manager_b.register(JenkinsHashKernel())
    manager_a.load("brightness")
    frames_a = {
        address: system.config_memory.read_frame(address)
        for address in system.region.frame_addresses
    }
    manager_b.load("lookup2")  # would raise if it disturbed region A
    for address, frame in frames_a.items():
        assert (system.config_memory.read_frame(address) == frame).all()


def test_secondary_region_rejects_big_kernels():
    system, slot = build_system64_dual()
    manager_b = ReconfigManager(system, slot=slot)
    with pytest.raises(ResourceError):
        manager_b.register(Sha1Kernel())  # too wide for the small region


def test_secondary_dock_interrupt_line(dual):
    system, slot = dual
    assert slot.dock.irq_source != system.dock.irq_source


def test_module_inventory_lists_second_dock(dual):
    system, slot = dual
    assert any("Dock B" in m.name for m in system.modules)

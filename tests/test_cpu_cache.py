"""Tests for the tag-only cache model."""

import pytest

from repro.cpu.cache import Cache
from repro.errors import SimulationError


@pytest.fixture
def cache():
    return Cache(size_bytes=1024, line_bytes=32, ways=2)  # 16 sets


def test_geometry_must_divide():
    with pytest.raises(SimulationError):
        Cache(size_bytes=1000, line_bytes=32, ways=2)


def test_cold_miss_then_hit(cache):
    hit, evicted = cache.access(0x100)
    assert not hit and evicted is None
    hit, _ = cache.access(0x104)  # same line
    assert hit


def test_line_base(cache):
    assert cache.line_base(0x47) == 0x40


def test_two_way_associativity(cache):
    # Three lines mapping to the same set: third access evicts the LRU.
    stride = cache.set_count * cache.line_bytes
    cache.access(0)
    cache.access(stride)
    cache.access(2 * stride)
    assert not cache.contains(0)
    assert cache.contains(stride)
    assert cache.contains(2 * stride)


def test_lru_updated_on_hit(cache):
    stride = cache.set_count * cache.line_bytes
    cache.access(0)
    cache.access(stride)
    cache.access(0)  # refresh line 0
    cache.access(2 * stride)  # evicts stride, not 0
    assert cache.contains(0)
    assert not cache.contains(stride)


def test_dirty_eviction_returns_address(cache):
    stride = cache.set_count * cache.line_bytes
    cache.access(0, write=True)
    cache.access(stride)
    _, evicted = cache.access(2 * stride)
    assert evicted == 0


def test_clean_eviction_returns_none(cache):
    stride = cache.set_count * cache.line_bytes
    cache.access(0)
    cache.access(stride)
    _, evicted = cache.access(2 * stride)
    assert evicted is None


def test_invalidate_clears_everything(cache):
    cache.access(0, write=True)
    cache.invalidate()
    assert not cache.contains(0)
    assert cache.dirty_line_count() == 0


def test_stats_track_hits_misses(cache):
    cache.access(0)
    cache.access(0)
    assert cache.stats.get("misses") == 1
    assert cache.stats.get("hits") == 1


def test_stream_cold_misses_every_line(cache):
    misses, evictions = cache.stream(0, 10 * cache.line_bytes)
    assert misses == 10
    assert evictions == 0


def test_stream_partial_line_counts_whole_line(cache):
    misses, _ = cache.stream(8, 8)  # inside one line
    assert misses == 1


def test_stream_resident_rescan_hits(cache):
    cache.stream(0, 8 * cache.line_bytes)
    misses, _ = cache.stream(0, 8 * cache.line_bytes)
    assert misses == 0


def test_stream_write_longer_than_cache_evicts_dirty(cache):
    capacity = cache.size_bytes
    misses, evictions = cache.stream(0, 4 * capacity, write=True)
    assert misses == 4 * capacity // cache.line_bytes
    assert evictions > 0


def test_stream_zero_bytes(cache):
    assert cache.stream(0, 0) == (0, 0)


def test_stream_leaves_tail_resident(cache):
    cache.stream(0, 4 * cache.size_bytes)
    tail_line = 4 * cache.size_bytes - cache.line_bytes
    assert cache.contains(tail_line)
    assert not cache.contains(0)

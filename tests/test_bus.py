"""Tests for the generic bus model (OPB/PLB parameterisations)."""

import pytest

from repro.bus.bus import Bus
from repro.bus.opb import make_opb
from repro.bus.plb import make_plb
from repro.bus.transaction import AddressRange, Op, Transaction
from repro.engine.clock import ClockDomain, mhz
from repro.errors import AddressDecodeError, BusError, BusWidthError
from repro.mem.controllers import SramController
from repro.mem.memory import MemoryArray


@pytest.fixture
def opb():
    bus = make_opb(ClockDomain("bus", mhz(50)))
    memory = MemoryArray(4096, "m")
    bus.attach(SramController(memory, 0, "sram"), 0, 4096, name="sram")
    return bus


@pytest.fixture
def plb():
    bus = make_plb(ClockDomain("bus", mhz(100)))
    memory = MemoryArray(8192, "m")
    bus.attach(SramController(memory, 0, "mem"), 0, 8192, name="mem")
    return bus


def test_address_range_contains():
    r = AddressRange(0x100, 0x10)
    assert r.contains(0x100)
    assert r.contains(0x10C, 4)
    assert not r.contains(0x10D, 4)
    assert not r.contains(0xFF)


def test_address_range_overlap():
    assert AddressRange(0, 16).overlaps(AddressRange(8, 16))
    assert not AddressRange(0, 16).overlaps(AddressRange(16, 16))


def test_transaction_validation():
    with pytest.raises(ValueError):
        Transaction(Op.READ, 0, size_bytes=3)
    with pytest.raises(ValueError):
        Transaction(Op.READ, 0, beats=0)


def test_attach_overlap_rejected(opb):
    with pytest.raises(BusError, match="overlaps"):
        opb.attach(object(), 0x800, 0x1000, name="late")


def test_decode_unknown_address(opb):
    with pytest.raises(AddressDecodeError):
        opb.request(0, Transaction(Op.READ, 0x9999_0000))


def test_width_enforced(opb):
    with pytest.raises(BusWidthError):
        opb.request(0, Transaction(Op.READ, 0, size_bytes=8))


def test_write_then_read_functional(opb):
    opb.request(0, Transaction(Op.WRITE, 0x40, data=0xCAFEBABE))
    completion = opb.request(opb.busy_until, Transaction(Op.READ, 0x40))
    assert completion.value == 0xCAFEBABE


def test_read_takes_longer_than_write(opb):
    w = opb.request(0, Transaction(Op.WRITE, 0, data=1))
    start = opb.busy_until
    r = opb.request(start, Transaction(Op.READ, 0))
    assert (r.done_ps - start) > w.done_ps  # read turnaround + wait states


def test_bus_serialises_requests(opb):
    first = opb.request(0, Transaction(Op.WRITE, 0, data=1))
    second = opb.request(0, Transaction(Op.WRITE, 4, data=2))
    assert second.done_ps > first.done_ps


def test_requests_align_to_clock_edge(opb):
    completion = opb.request(1, Transaction(Op.WRITE, 0, data=1))
    assert completion.done_ps % opb.clock.period_ps == 0


def test_burst_on_plb_is_pipelined(plb):
    single = plb.request(0, Transaction(Op.READ, 0, size_bytes=8))
    t0 = plb.busy_until
    burst = plb.request(t0, Transaction(Op.READ, 0, size_bytes=8, beats=8))
    burst_time = burst.done_ps - t0
    # 8 beats must cost far less than 8 separate transactions.
    assert burst_time < 8 * single.done_ps * 0.8


def test_burst_write_data_lands(plb):
    data = [10, 20, 30, 40]
    plb.request(0, Transaction(Op.WRITE, 0x100, size_bytes=8, beats=4, data=data))
    completion = plb.request(plb.busy_until, Transaction(Op.READ, 0x100, size_bytes=8, beats=4))
    assert completion.value == data


def test_long_burst_split_and_reassembled(plb):
    data = list(range(50))
    plb.request(0, Transaction(Op.WRITE, 0, size_bytes=8, beats=50, data=data))
    completion = plb.request(plb.busy_until, Transaction(Op.READ, 0, size_bytes=8, beats=50))
    assert completion.value == data


def test_posted_write_releases_early():
    bus = make_plb(ClockDomain("bus", mhz(100)))
    memory = MemoryArray(4096, "m")
    bus.attach(SramController(memory, 0, "mem"), 0, 4096, name="mem", posted_writes=True)
    completion = bus.request(0, Transaction(Op.WRITE, 0, data=5))
    assert completion.released_ps is not None
    assert completion.released_ps < completion.done_ps
    assert completion.master_free_ps == completion.released_ps


def test_non_posted_read_never_released_early(plb):
    completion = plb.request(0, Transaction(Op.READ, 0))
    assert completion.released_ps is None
    assert completion.master_free_ps == completion.done_ps


def test_stats_recorded(opb):
    opb.request(0, Transaction(Op.WRITE, 0, data=1))
    opb.request(0, Transaction(Op.READ, 0))
    assert opb.stats.get("writes") == 1
    assert opb.stats.get("reads") == 1
    assert opb.stats.get("beats") == 2


def test_opb_narrower_than_plb():
    assert make_opb(ClockDomain("b", mhz(50))).width_bits == 32
    assert make_plb(ClockDomain("b", mhz(50))).width_bits == 64

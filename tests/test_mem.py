"""Tests for memory arrays and controllers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bus.transaction import Op, Transaction
from repro.errors import BusError
from repro.mem.controllers import BramController, DdrController, SramController
from repro.mem.memory import MemoryArray


@pytest.fixture
def memory():
    return MemoryArray(4096, "m")


def test_size_must_be_multiple_of_eight():
    with pytest.raises(BusError):
        MemoryArray(100)


def test_word_roundtrip(memory):
    memory.write_word(0x10, 4, 0xDEADBEEF)
    assert memory.read_word(0x10, 4) == 0xDEADBEEF


def test_byte_roundtrip(memory):
    memory.write_word(5, 1, 0xAB)
    assert memory.read_word(5, 1) == 0xAB


def test_64bit_roundtrip(memory):
    memory.write_word(0x20, 8, 0x1122334455667788)
    assert memory.read_word(0x20, 8) == 0x1122334455667788


def test_little_endian_layout(memory):
    memory.write_word(0, 4, 0x04030201)
    assert list(memory.dump(0, 4)) == [1, 2, 3, 4]


def test_value_masked_to_width(memory):
    memory.write_word(0, 2, 0x12345)
    assert memory.read_word(0, 2) == 0x2345


def test_out_of_bounds_raises(memory):
    with pytest.raises(BusError):
        memory.read_word(4096, 4)
    with pytest.raises(BusError):
        memory.write_word(-4, 4, 0)


def test_words_roundtrip(memory):
    values = [1, 2, 3, 4]
    memory.write_words(0x40, values, 4)
    assert memory.read_words(0x40, 4, 4) == values


def test_load_dump(memory):
    memory.load(8, b"hello")
    assert bytes(memory.dump(8, 5)) == b"hello"


def test_fill(memory):
    memory.load(0, b"\xff" * 16)
    memory.fill(0)
    assert not memory.dump(0, 16).any()


@given(st.integers(0, 4088), st.integers(0, 2**64 - 1))
def test_word_roundtrip_property(offset, value):
    memory = MemoryArray(4096)
    memory.write_word(offset, 8, value)
    assert memory.read_word(offset, 8) == value


# -- controllers -------------------------------------------------------------

def make_controller(cls, base=0x1000):
    memory = MemoryArray(4096, "m")
    return cls(memory, base, "ctrl"), memory


def test_controller_translates_base_address():
    ctrl, memory = make_controller(SramController)
    ctrl.access(Transaction(Op.WRITE, 0x1010, data=0x42), 0)
    assert memory.read_word(0x10, 4) == 0x42


def test_controller_read_wait_states():
    ctrl, memory = make_controller(SramController)
    wait, _ = ctrl.access(Transaction(Op.READ, 0x1000), 0)
    assert wait == SramController.READ_WAIT


def test_controller_burst_wait_scaling():
    ctrl, memory = make_controller(SramController)
    wait1, _ = ctrl.access(Transaction(Op.READ, 0x1000, beats=1), 0)
    wait4, _ = ctrl.access(Transaction(Op.READ, 0x1000, beats=4), 0)
    assert wait4 == wait1 + 3 * SramController.READ_BEAT_WAIT


def test_ddr_burst_beats_free_after_first():
    ctrl, memory = make_controller(DdrController)
    wait1, _ = ctrl.access(Transaction(Op.READ, 0x1000, size_bytes=8), 0)
    wait8, _ = ctrl.access(Transaction(Op.READ, 0x1000, size_bytes=8, beats=8), 0)
    assert wait8 == wait1  # streaming beats hide behind the bus clock


def test_bram_no_wait_states():
    ctrl, memory = make_controller(BramController)
    wait_r, _ = ctrl.access(Transaction(Op.READ, 0x1000), 0)
    wait_w, _ = ctrl.access(Transaction(Op.WRITE, 0x1000, data=0), 0)
    assert wait_r == 0 and wait_w == 0


def test_controller_burst_write_data():
    ctrl, memory = make_controller(DdrController)
    ctrl.access(Transaction(Op.WRITE, 0x1000, size_bytes=8, beats=3, data=[1, 2, 3]), 0)
    assert memory.read_words(0, 3, 8) == [1, 2, 3]


def test_controller_burst_read_data():
    ctrl, memory = make_controller(DdrController)
    memory.write_words(0, [7, 8], 8)
    _, value = ctrl.access(Transaction(Op.READ, 0x1000, size_bytes=8, beats=2), 0)
    assert value == [7, 8]


def test_controller_stats():
    ctrl, memory = make_controller(SramController)
    ctrl.access(Transaction(Op.WRITE, 0x1000, data=1), 0)
    ctrl.access(Transaction(Op.READ, 0x1000), 0)
    assert ctrl.stats.get("writes") == 1
    assert ctrl.stats.get("reads") == 1


def test_controller_short_write_payload_zero_padded():
    ctrl, memory = make_controller(SramController)
    memory.load(0, b"\xff" * 8)
    ctrl.access(Transaction(Op.WRITE, 0x1000, beats=2, data=[0x5]), 0)
    assert memory.read_words(0, 2, 4) == [5, 0]

"""Tests for the picosecond time base."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.time import (
    PS_PER_NS,
    PS_PER_US,
    format_time,
    ns_from_ps,
    ps_from_ns,
    ps_from_s,
    ps_from_us,
    s_from_ps,
    us_from_ps,
)


def test_ns_round_trip():
    assert ps_from_ns(1.5) == 1_500
    assert ns_from_ps(1_500) == 1.5


def test_us_round_trip():
    assert ps_from_us(2.0) == 2_000_000
    assert us_from_ps(2_000_000) == 2.0


def test_seconds_round_trip():
    assert ps_from_s(0.001) == 1_000_000_000
    assert s_from_ps(10**12) == 1.0


def test_rounding_to_nearest_ps():
    assert ps_from_ns(0.0004) == 0
    assert ps_from_ns(0.0006) == 1


def test_format_time_units():
    assert format_time(500) == "500 ps"
    assert format_time(1_500) == "1.500 ns"
    assert format_time(2_000_000) == "2.000 us"
    assert format_time(3_000_000_000) == "3.000 ms"
    assert format_time(4 * 10**12) == "4.000 s"


def test_constants_consistent():
    assert PS_PER_US == 1000 * PS_PER_NS


@given(st.integers(min_value=0, max_value=10**15))
def test_ns_ps_inverse_property(ps):
    assert ps_from_ns(ns_from_ps(ps)) == ps


@given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
def test_ps_from_us_monotone(us):
    assert ps_from_us(us) <= ps_from_us(us + 1.0)

"""Tests for reconfiguration amortisation and episode planning."""

import math

import pytest

from repro.analysis import Episode, EpisodePlanner, break_even_runs, measure_episode
from repro.core.apps import HwBrightnessPio
from repro.errors import TransferError
from repro.kernels import BrightnessKernel
from repro.sw import SwBrightness
from repro.workloads import grayscale_image


def test_break_even_basic():
    # Save 10 us per run, pay 100 us to reconfigure -> 10 runs.
    assert break_even_runs(100_000_000, 20_000_000, 10_000_000) == pytest.approx(10.0)


def test_break_even_infinite_when_hw_slower():
    assert break_even_runs(1, 10, 20) == math.inf


def test_break_even_validates():
    with pytest.raises(TransferError):
        break_even_runs(-1, 10, 5)
    with pytest.raises(TransferError):
        break_even_runs(1, 0, 5)


def episode(kernel="k", runs=5, sw=100, hw=40, reconfig=200):
    return Episode(kernel=kernel, runs=runs, sw_run_ps=sw, hw_run_ps=hw, reconfig_ps=reconfig)


def test_episode_costs():
    ep = episode()
    assert ep.software_ps() == 500
    assert ep.hardware_ps(resident=None) == 400
    assert ep.hardware_ps(resident="k") == 200  # no swap needed


def test_episode_validates_runs():
    with pytest.raises(TransferError):
        episode(runs=0)


def test_planner_prefers_software_for_tiny_batches():
    plan = EpisodePlanner().plan([episode(runs=1, sw=100, hw=40, reconfig=1000)])
    assert not plan.steps[0].use_hardware
    assert plan.total_ps == 100


def test_planner_prefers_hardware_for_big_batches():
    plan = EpisodePlanner().plan([episode(runs=100, sw=100, hw=40, reconfig=1000)])
    assert plan.steps[0].use_hardware
    assert plan.total_ps == 1000 + 100 * 40


def test_planner_exploits_residency():
    episodes = [
        episode(kernel="a", runs=50, reconfig=1000),
        episode(kernel="a", runs=2, reconfig=1000),  # resident: no swap, hw wins
    ]
    plan = EpisodePlanner().plan(episodes)
    assert all(step.use_hardware for step in plan.steps)
    assert plan.swaps == 1
    assert plan.steps[1].elapsed_ps == 2 * 40


def test_planner_alternating_kernels_pay_swaps():
    episodes = [
        episode(kernel="a", runs=50, reconfig=1000),
        episode(kernel="b", runs=50, reconfig=1000),
        episode(kernel="a", runs=50, reconfig=1000),
    ]
    plan = EpisodePlanner().plan(episodes)
    assert plan.swaps == 3


def test_plan_speedup_vs_software_only():
    plan = EpisodePlanner().plan([episode(runs=100, sw=100, hw=10, reconfig=500)])
    assert plan.speedup > 1
    assert plan.software_only_ps() == 10_000


def test_measure_episode_on_live_system(system32, manager32):
    image = grayscale_image(16, 16, seed=95)
    costs = measure_episode(
        system32, manager32, "brightness", SwBrightness(32), HwBrightnessPio(), image
    )
    assert costs["reconfig_ps"] > 0
    assert costs["sw_run_ps"] > costs["hw_run_ps"] > 0
    runs = break_even_runs(costs["reconfig_ps"], costs["sw_run_ps"], costs["hw_run_ps"])
    assert 1 < runs < 10_000


def test_planner_matches_timeshared_example_logic(system32, manager32):
    """End-to-end: plan with measured costs, then verify the decision."""
    image = grayscale_image(32, 32, seed=96)
    costs = measure_episode(
        system32, manager32, "brightness", SwBrightness(32), HwBrightnessPio(), image
    )
    few = Episode("brightness", 2, costs["sw_run_ps"], costs["hw_run_ps"], costs["reconfig_ps"])
    many_runs = int(break_even_runs(
        costs["reconfig_ps"], costs["sw_run_ps"], costs["hw_run_ps"]
    )) * 3
    many = Episode(
        "brightness", many_runs, costs["sw_run_ps"], costs["hw_run_ps"], costs["reconfig_ps"]
    )
    plan = EpisodePlanner().plan([few])
    assert not plan.steps[0].use_hardware  # 2 runs never amortise ~28 ms
    plan = EpisodePlanner().plan([many])
    assert plan.steps[0].use_hardware


# -- vectorized break-even table and amortized-cost helpers ------------------

def test_break_even_table_matches_scalar():
    import numpy as np

    from repro.analysis import break_even_table

    reconfig = np.array([[10_000], [20_000]])
    sw = np.array([300, 500])
    hw = np.array([100, 500 + 1])  # second column: hw slower than sw
    table = break_even_table(reconfig, sw, hw)
    assert table.shape == (2, 2)
    assert table[0, 0] == pytest.approx(break_even_runs(10_000, 300, 100))
    assert math.isinf(table[0, 1]) and math.isinf(table[1, 1])


def test_break_even_table_zero_reconfig_is_free():
    import numpy as np

    from repro.analysis import break_even_table

    table = break_even_table(0, np.array([300]), np.array([100]))
    assert table[0] == 0.0


def test_break_even_table_equal_costs_never_break_even():
    import math as _math

    from repro.analysis import break_even_table

    assert _math.isinf(float(break_even_table(10_000, 200, 200)))


def test_break_even_table_validates():
    from repro.analysis import break_even_table

    with pytest.raises(TransferError):
        break_even_table(-1, 300, 100)
    with pytest.raises(TransferError):
        break_even_table(10_000, 0, 100)
    with pytest.raises(TransferError):
        break_even_table(10_000, 300, 0)


def test_amortized_reconfig_ps_halves_with_run_length():
    import numpy as np

    from repro.analysis import amortized_reconfig_ps

    curve = amortized_reconfig_ps(1_000_000, np.array([1, 2, 4]))
    assert curve[0] == 1_000_000.0
    assert curve[1] == 500_000.0
    assert curve[2] == 250_000.0


def test_amortized_reconfig_ps_validates():
    from repro.analysis import amortized_reconfig_ps

    with pytest.raises(TransferError):
        amortized_reconfig_ps(-1, [4])
    with pytest.raises(TransferError):
        amortized_reconfig_ps(1_000, [0])

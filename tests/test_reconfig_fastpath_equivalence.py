"""Reconfiguration-datapath fast-path equivalence contract.

The vectorized reconfiguration datapath (NumPy packet codec, bulk ICAP
ingest, array-backed configuration memory, bulk BitLinker assembly) must
be *indistinguishable* from the word-by-word reference path: byte-identical
serialised bitstreams, identical configuration-memory contents and access
counters after load/swap/clear cycles, identical simulated timing in every
:class:`ReconfigResult`, and identical failure behaviour on corrupt
streams.  ``repro.engine.fastpath`` flips between the two worlds; these
tests run the same workload in both and diff everything observable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitstream.bitstream import Bitstream
from repro.engine import fastpath
from repro.errors import ReconfigurationError
from repro.scenarios.perf import run_reconfig_cycles
from repro.scenarios.rigs import build_rig64

KERNEL = "brightness"
ALTERNATE = "lookup2"


def _both(scenario):
    """Run ``scenario() -> value`` with the fast path forced on and off."""
    with fastpath.forced_on():
        fast = scenario()
    with fastpath.disabled():
        slow = scenario()
    return fast, slow


# -- serialisation ----------------------------------------------------------
def test_serialized_clear_stream_byte_identical():
    def stream():
        _, manager = build_rig64()
        return manager.bitlinker.clear_bitstream().to_words()

    fast, slow = _both(stream)
    assert fast.dtype == slow.dtype
    assert fast.tobytes() == slow.tobytes()


def test_decode_agrees_with_reference_path():
    with fastpath.disabled():
        _, manager = build_rig64()
        words = manager.bitlinker.clear_bitstream().to_words()

    fast, slow = _both(lambda: Bitstream.from_words(words.copy()))
    assert fast.device_name == slow.device_name
    assert fast.frame_count == slow.frame_count
    for (fast_addr, fast_data), (slow_addr, slow_data) in zip(fast.frames, slow.frames):
        assert fast_addr == slow_addr
        assert np.array_equal(fast_data, slow_data)


# -- full reconfiguration cycles --------------------------------------------
def _cycle_observables():
    system, manager = build_rig64()
    loads, differentials, clears = run_reconfig_cycles(
        manager, cycles=2, kernel=KERNEL, alternate=ALTERNATE
    )
    memory = system.config_memory
    return {
        "now_ps": system.cpu.now_ps,
        "results": [
            (
                result.kernel_name,
                result.kind,
                result.frame_count,
                result.word_count,
                result.elapsed_ps,
                result.verify_ps,
                result.frames_verified,
            )
            for result in loads + differentials + clears
        ],
        "frames_written": system.hwicap.frames_written,
        "crc_failures": system.hwicap.crc_failures,
        "memory_writes": memory.writes,
        "memory_reads": memory.reads,
        "icap_stats": system.hwicap.stats.snapshot(),
        "memory": dict(memory.snapshot()),
    }


def test_reconfig_cycles_identical_in_every_observable():
    fast, slow = _both(_cycle_observables)

    fast_memory = fast.pop("memory")
    slow_memory = slow.pop("memory")
    assert fast == slow  # timing, results, counters, stats

    assert set(fast_memory) == set(slow_memory)
    for address, fast_data in fast_memory.items():
        assert np.array_equal(fast_data, slow_memory[address]), address


def test_verified_load_identical():
    def observables():
        system, manager = build_rig64()
        result = manager.load(KERNEL, verify=True, verify_samples=4)
        return (
            system.cpu.now_ps,
            result.elapsed_ps,
            result.verify_ps,
            result.frames_verified,
        )

    fast, slow = _both(observables)
    assert fast == slow


# -- failure behaviour -------------------------------------------------------
def _load_corrupted(mutate):
    """Feed a corrupted clear stream through the ICAP; return the error."""
    system, manager = build_rig64()
    words = manager.bitlinker.clear_bitstream().to_words().copy()
    mutate(words)
    with pytest.raises(ReconfigurationError) as excinfo:
        system.hwicap.load_words(words)
    return str(excinfo.value), system.hwicap.crc_failures, system.hwicap.frames_written


def test_crc_failure_identical():
    def flip_payload_word(words):
        # Word 12 sits inside the first frame's FDRI payload (after the
        # dummy/sync words, the RCRC/IDCODE/WCFG preamble and the frame's
        # FAR/FDRI headers), so the packet structure stays intact and only
        # the checksum breaks.
        words[12] ^= np.uint32(0x00010000)

    fast, slow = _both(lambda: _load_corrupted(flip_payload_word))
    assert fast == slow
    message, crc_failures, frames_written = fast
    assert "bad bitstream" in message and "CRC" in message
    assert crc_failures == 1
    assert frames_written == 0


# -- robust loading ----------------------------------------------------------
def test_clean_robust_load_identical():
    def observables():
        system, manager = build_rig64()
        result = manager.load_robust(KERNEL, verify_samples=4)
        return (
            system.cpu.now_ps,
            result.elapsed_ps,
            result.verify_ps,
            result.frames_verified,
            result.attempts,
            result.scrubbed_frames,
            result.fallback,
            system.hwicap.stats.snapshot(),
        )

    fast, slow = _both(observables)
    assert fast == slow


def test_faulted_robust_load_identical():
    from repro.faults import FaultPlan, armed

    def observables():
        system, manager = build_rig64()
        plan = FaultPlan(909, seu_feeds={0}, post_commit_upsets={0})
        with armed(system, plan):
            result = manager.load_robust(KERNEL)
        memory = system.config_memory
        return {
            "now_ps": system.cpu.now_ps,
            "attempts": result.attempts,
            "scrubbed": result.scrubbed_frames,
            "rolled_back": result.rolled_back,
            "faults": plan.summary(),
            "crc_failures": system.hwicap.crc_failures,
            "icap_stats": system.hwicap.stats.snapshot(),
            "memory_bytes": {
                address: data.tobytes() for address, data in memory.snapshot().items()
            },
        }

    fast, slow = _both(observables)
    assert fast == slow


def test_unarmed_hooks_do_not_change_observables():
    # The no-plan-armed contract: loading with hooks present but unarmed is
    # byte-identical to the pre-fault-subsystem behaviour in both worlds —
    # the equivalence suite above pins fast == slow, this pins armed-None.
    def observables():
        system, manager = build_rig64()
        assert system.fault_plan is None
        result = manager.load(KERNEL, verify=True, verify_samples=4)
        return (system.cpu.now_ps, result.elapsed_ps, result.frames_verified)

    fast, slow = _both(observables)
    assert fast == slow

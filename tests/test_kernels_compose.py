"""Tests for composite (chained) kernels."""

import numpy as np
import pytest

from repro.bitstream.placer import pack_chain
from repro.errors import KernelError
from repro.kernels import BrightnessKernel
from repro.kernels.compose import STAGE_WINDOW, CompositeKernel, InvertKernel
from repro.kernels.image_ops import PARAM_OFFSET
from repro.sw.image_ops import brightness_ref


def feed(kernel, pixels, width_bits=32):
    per_word = width_bits // 8
    for i in range(0, len(pixels), per_word):
        chunk = pixels[i : i + per_word]
        kernel.consume(sum(int(p) << (8 * j) for j, p in enumerate(chunk)), width_bits, 0)
    out = []
    for word in kernel.produce():
        out.extend((word >> (8 * j)) & 0xFF for j in range(per_word))
    return out[: len(pixels)]


def test_invert_kernel():
    kernel = InvertKernel()
    assert feed(kernel, [0x00, 0xFF, 0xA5, 0x3C]) == [0xFF, 0x00, 0x5A, 0xC3]


def test_composite_requires_stages():
    with pytest.raises(KernelError):
        CompositeKernel([])


def test_composite_name_and_depth():
    composite = CompositeKernel([BrightnessKernel(10), InvertKernel()])
    assert composite.name == "brightness+invert"
    assert composite.PIPELINE_DEPTH == BrightnessKernel(10).PIPELINE_DEPTH + 1


def test_composite_chains_functionally():
    """brightness -> invert == invert(brightness(x)) per pixel."""
    rng = np.random.default_rng(7)
    pixels = rng.integers(0, 256, size=32, dtype=np.uint8)
    composite = CompositeKernel([BrightnessKernel(40), InvertKernel()])
    out = feed(composite, pixels)
    expected = [(~int(p) & 0xFF) for p in brightness_ref(pixels, 40)]
    assert out == expected


def test_composite_three_stages():
    pixels = np.arange(16, dtype=np.uint8)
    composite = CompositeKernel(
        [BrightnessKernel(10), InvertKernel(), BrightnessKernel(5)]
    )
    out = feed(composite, pixels)
    step1 = brightness_ref(pixels, 10)
    step2 = np.array([~int(p) & 0xFF for p in step1], dtype=np.uint8)
    step3 = brightness_ref(step2, 5)
    assert out == list(step3)


def test_composite_stage_registers_addressable():
    composite = CompositeKernel([BrightnessKernel(0), BrightnessKernel(0)])
    composite.consume(25, 32, PARAM_OFFSET)  # stage 0
    composite.consume(50, 32, STAGE_WINDOW + PARAM_OFFSET)  # stage 1
    assert composite.stages[0].constant == 25
    assert composite.stages[1].constant == 50


def test_composite_register_reads_segmented():
    composite = CompositeKernel([BrightnessKernel(1), InvertKernel()])
    feed(composite, np.zeros(8, dtype=np.uint8))
    assert composite.read_register(0x0) == 8  # stage 0 pixel counter
    assert composite.read_register(2 * STAGE_WINDOW) == 0  # beyond last stage


def test_composite_reset_resets_stages():
    composite = CompositeKernel([BrightnessKernel(1), InvertKernel()])
    feed(composite, np.zeros(8, dtype=np.uint8))
    composite.reset()
    assert composite.stages[0].read_register(0x0) == 0


def test_composite_components_chain_and_link(system32):
    """The per-stage components pack and BitLink into the real region."""
    composite = CompositeKernel([BrightnessKernel(12), InvertKernel()])
    components = composite.make_components(32, system32.region.rect.height)
    assert len(components) == 2
    placements = pack_chain(system32.region, components)
    stream = system32.bitlinker.link(placements)
    assert stream.frame_count == system32.region.frame_count
    links = [c for c in system32.bitlinker.last_report.connections if "stage-link" in c[0]]
    assert links


def test_composite_end_to_end_through_dock(system32):
    """Attach the composite to the dock and stream an image through it."""
    composite = CompositeKernel([BrightnessKernel(30), InvertKernel()])
    system32.dock.attach_kernel(composite)
    cpu = system32.cpu
    pixels = np.arange(32, dtype=np.uint8)
    words = [int(v) for v in pixels.view("<u4")]
    outs = []
    for word in words:
        cpu.io_write(system32.dock.base, word)
        outs.append(cpu.io_read(system32.dock.base))
    result = np.array(outs, dtype="<u4").view(np.uint8)[: pixels.size]
    expected = np.array([~int(p) & 0xFF for p in brightness_ref(pixels, 30)], dtype=np.uint8)
    assert np.array_equal(result, expected)

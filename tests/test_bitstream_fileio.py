"""Tests for the .bit file container."""

import numpy as np
import pytest

from repro.bitstream.bitstream import Bitstream, BitstreamKind
from repro.bitstream.fileio import BitFileHeader, read_bit_file, write_bit_file
from repro.errors import BitstreamError
from repro.fabric.device import XC2VP4
from repro.fabric.frames import BlockType, FrameAddress


@pytest.fixture
def stream():
    words = XC2VP4.words_per_frame
    frames = [
        (FrameAddress(BlockType.CLB, 2, 5), np.full(words, 0xA1B2C3D4, dtype=np.uint32)),
        (FrameAddress(BlockType.CLB, 3, 0), np.arange(words, dtype=np.uint32)),
    ]
    return Bitstream("XC2VP4", BitstreamKind.PARTIAL_COMPLETE, frames=frames,
                     description="unit-test design")


def test_roundtrip_frames_and_header(tmp_path, stream):
    path = tmp_path / "design.bit"
    written = write_bit_file(path, stream, design_name="demo", date="2006-04-25")
    loaded, header = read_bit_file(path)
    assert header == written
    assert header.design_name == "demo"
    assert header.part_name == "xc2vp4"
    assert loaded.addresses() == stream.addresses()
    for (a1, d1), (a2, d2) in zip(stream.frames, loaded.frames):
        assert a1 == a2 and np.array_equal(d1, d2)


def test_default_design_name_from_description(tmp_path, stream):
    header = write_bit_file(tmp_path / "x.bit", stream)
    assert header.design_name == "unit-test design"


def test_bad_preamble_rejected(tmp_path):
    path = tmp_path / "junk.bit"
    path.write_bytes(b"not a bit file at all")
    with pytest.raises(BitstreamError, match="preamble"):
        read_bit_file(path)


def test_truncated_payload_rejected(tmp_path, stream):
    path = tmp_path / "trunc.bit"
    write_bit_file(path, stream)
    blob = path.read_bytes()
    path.write_bytes(blob[:-10])
    with pytest.raises(BitstreamError, match="truncated"):
        read_bit_file(path)


def test_corrupted_payload_fails_crc(tmp_path, stream):
    path = tmp_path / "corrupt.bit"
    write_bit_file(path, stream)
    blob = bytearray(path.read_bytes())
    blob[-40] ^= 0xFF  # flip a payload byte
    path.write_bytes(bytes(blob))
    with pytest.raises(BitstreamError):
        read_bit_file(path)


def test_header_part_mismatch_detected(tmp_path, stream):
    path = tmp_path / "mismatch.bit"
    write_bit_file(path, stream)
    blob = path.read_bytes()
    # Forge the part-name field without touching the payload.
    patched = blob.replace(b"xc2vp4\x00", b"xc2vp7\x00", 1)
    path.write_bytes(patched)
    with pytest.raises(BitstreamError, match="IDCODE"):
        read_bit_file(path)


def test_header_rejects_nul():
    with pytest.raises(BitstreamError):
        BitFileHeader(design_name="a\x00b", part_name="x", date="d", time="t")


def test_file_size_reasonable(tmp_path, stream):
    path = tmp_path / "size.bit"
    write_bit_file(path, stream)
    assert path.stat().st_size >= stream.word_count * 4

"""Tests for bus macros and ports."""

import pytest

from repro.bitstream.busmacro import (
    BusMacro,
    Direction,
    MacroKind,
    Port,
    Side,
    standard_data_macros,
)
from repro.errors import PortMismatchError


def test_lut_macro_slice_cost():
    macro = BusMacro("m", MacroKind.LUT, width=32)
    assert macro.slices_per_side == 16  # two signals per slice


def test_tristate_macro_costs_more_area():
    # "LUT-based bus macros ... consume less area" (than tristate ones)
    lut = BusMacro("l", MacroKind.LUT, width=8)
    tri = BusMacro("t", MacroKind.TRISTATE, width=8)
    assert lut.resource_cost().slices < tri.resource_cost().slices
    assert tri.resource_cost().tbufs == 16
    assert lut.resource_cost().tbufs == 0


def test_rows_spanned():
    macro = BusMacro("m", MacroKind.LUT, width=32)
    assert macro.rows_spanned == 4  # 16 slices / 4 per row


def test_zero_width_rejected():
    with pytest.raises(PortMismatchError):
        BusMacro("m", MacroKind.LUT, width=0)


def test_negative_offset_rejected():
    with pytest.raises(PortMismatchError):
        BusMacro("m", MacroKind.LUT, width=1, row_offset=-1)


def test_shape_key_ignores_name():
    a = BusMacro("a", MacroKind.LUT, width=4, row_offset=2)
    b = BusMacro("b", MacroKind.LUT, width=4, row_offset=2)
    assert a.shape_key() == b.shape_key()


def test_ports_mate_when_compatible():
    macro = BusMacro("m", MacroKind.LUT, width=8)
    out_port = Port(macro, Side.RIGHT, Direction.OUT)
    in_port = Port(macro, Side.LEFT, Direction.IN)
    assert out_port.mates_with(in_port)
    assert in_port.mates_with(out_port)


def test_ports_same_side_do_not_mate():
    macro = BusMacro("m", MacroKind.LUT, width=8)
    a = Port(macro, Side.LEFT, Direction.OUT)
    b = Port(macro, Side.LEFT, Direction.IN)
    assert not a.mates_with(b)


def test_ports_same_direction_do_not_mate():
    macro = BusMacro("m", MacroKind.LUT, width=8)
    a = Port(macro, Side.RIGHT, Direction.OUT)
    b = Port(macro, Side.LEFT, Direction.OUT)
    assert not a.mates_with(b)


def test_ports_shape_mismatch_do_not_mate():
    a = Port(BusMacro("m", MacroKind.LUT, width=8), Side.RIGHT, Direction.OUT)
    b = Port(BusMacro("m", MacroKind.LUT, width=16), Side.LEFT, Direction.IN)
    assert not a.mates_with(b)


def test_require_mates_error_details():
    a = Port(BusMacro("m", MacroKind.LUT, width=8), Side.RIGHT, Direction.OUT)
    b = Port(BusMacro("m", MacroKind.TRISTATE, width=8), Side.RIGHT, Direction.OUT)
    with pytest.raises(PortMismatchError) as err:
        a.require_mates(b)
    message = str(err.value)
    assert "shapes differ" in message
    assert "sides do not abut" in message
    assert "directions clash" in message


def test_standard_data_macros_no_overlap():
    write, read, ctrl = standard_data_macros(32)
    assert write.row_offset + write.rows_spanned <= read.row_offset
    assert read.row_offset + read.rows_spanned <= ctrl.row_offset


def test_standard_data_macros_64bit_fit_region_height():
    write, read, ctrl = standard_data_macros(64)
    assert ctrl.row_offset + ctrl.rows_spanned <= 24  # 64-bit region height


def test_side_and_direction_opposites():
    assert Side.LEFT.opposite is Side.RIGHT
    assert Direction.IN.opposite is Direction.OUT

"""Tests for the fault-campaign scenarios (repro.scenarios.faults)."""

from repro.faults.campaign import DEFAULT_KINDS, run_campaign
from repro.scenarios.registry import get_scenario, run_scenario
from repro.scenarios.rigs import build_rig64


def test_fault_campaign_smoke_rows_and_invariants():
    result = run_scenario("fault_campaign", smoke=True)
    assert result.name == "fault_campaign"
    # Smoke runs one trial of every fault kind.
    assert len(result.rows) == len(DEFAULT_KINDS)
    headline = result.headline
    assert headline["trials"] == len(DEFAULT_KINDS)
    # Every injected fault is at least handled (recovered or degraded)...
    assert headline["handled_rate"] == 1.0
    # ...SEUs in the staged stream are always recoverable by retrying...
    assert headline["seu_recovery_rate"] == 1.0
    # ...and the forced-fallback kind always degrades to software.
    assert headline["fallback_kind_rate"] == 1.0
    assert headline["recovery_rate"] >= 1.0 - headline["fallback_rate"]
    assert headline["clean_load_ps"] > 0
    assert headline["total_faults"] >= len(DEFAULT_KINDS)


def test_fault_campaign_is_deterministic():
    one = run_scenario("fault_campaign", smoke=True)
    two = run_scenario("fault_campaign", smoke=True)
    assert one.to_dict() == two.to_dict()


def test_campaign_report_reproduces_from_seed():
    first = run_campaign(build_rig64, kinds=("seu", "commit"), trials=1, seed=5)
    second = run_campaign(build_rig64, kinds=("seu", "commit"), trials=1, seed=5)
    assert first.trials == second.trials
    assert first.clean_load_ps == second.clean_load_ps
    third = run_campaign(build_rig64, kinds=("seu", "commit"), trials=1, seed=6)
    assert [t.detail for t in third.trials] != [t.detail for t in first.trials]


def test_robust_overhead_scenario():
    result = run_scenario("robust_overhead")
    headline = result.headline
    assert headline["plain_ps"] > 0
    # Verification is extra work: overhead strictly above the plain load,
    # and the full-scan robust load costs at least the sampled verify.
    assert headline["sampled_overhead"] > 1.0
    assert headline["robust_overhead"] >= headline["sampled_overhead"]
    assert headline["frames_verified_robust"] > 0


def test_fault_scenarios_are_registered_with_tags():
    for name in ("fault_campaign", "robust_overhead"):
        entry = get_scenario(name)
        assert "faults" in entry.tags
        assert "reconfig" in entry.tags


# -- Monte-Carlo scenarios ----------------------------------------------------

def test_mc_campaign_smoke_headline_and_gate():
    result = run_scenario("mc_campaign", smoke=True)
    assert result.name == "mc_campaign"
    headline = result.headline
    # Smoke: 200 trials per kind, all four kinds, equivalence enforced
    # in-scenario (a divergence would have raised, failing the run).
    assert headline["trials_total"] == 200 * headline["kinds"]
    assert headline["equivalence_checked"] is True
    lo, hi = headline["vulnerability_ci95"]
    assert lo <= headline["vulnerability"] <= hi
    assert 0.0 < headline["analytic_vulnerability"] < 1.0
    for kind in ("upset", "post-commit", "seu", "commit"):
        assert 0.0 <= headline[f"{kind}_recovery_rate"] <= 1.0
    assert headline["upset_recovery_rate"] == 1.0


def test_mc_campaign_is_deterministic():
    one = run_scenario("mc_campaign", smoke=True)
    two = run_scenario("mc_campaign", smoke=True)
    assert one.to_dict() == two.to_dict()


def test_mc_campaign_kinds_param_restricts_the_run():
    result = run_scenario(
        "mc_campaign", {"kinds": "commit", "trials": 64}, smoke=True
    )
    assert result.headline["kinds"] == 1
    assert result.headline["trials_total"] == 64
    assert "vulnerability" not in result.headline  # no upset stratum ran
    assert {row[0] for row in result.rows} == {"commit"}


def test_mc_vulnerability_smoke_covers_analytic_truth():
    result = run_scenario("mc_vulnerability", smoke=True)
    headline = result.headline
    lo, hi = headline["vulnerability_ci95"]
    # The scenario gates on this internally; assert it at the seam too.
    assert lo <= headline["analytic_vulnerability"] <= hi
    assert headline["essential_bits"] < headline["total_bits"]
    # Empirical heatmap rides as the figure text, analytic as appendix.
    assert "empirical" in result.text
    assert "analytic" in result.appendix
    assert "dynamic region columns" in result.appendix

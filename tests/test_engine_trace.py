"""Tests for the transaction tracer."""

import json

import pytest

from repro.core import memmap
from repro.engine.trace import TraceEvent, TraceRecorder, merge_traces


def test_record_and_len():
    trace = TraceRecorder()
    trace.record(100, "plb", "read", address=0x10)
    trace.record(200, "plb", "write", address=0x14)
    assert len(trace) == 2
    assert trace.events[0].fields["address"] == 0x10


def test_capacity_drops_and_counts():
    trace = TraceRecorder(capacity=2)
    for i in range(5):
        trace.record(i, "x", "k")
    assert len(trace) == 2
    assert trace.dropped == 3


def test_invalid_capacity():
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)


def test_disable_stops_recording():
    trace = TraceRecorder()
    trace.enabled = False
    trace.record(1, "x", "k")
    assert len(trace) == 0


def test_filter_by_source_kind_predicate():
    trace = TraceRecorder()
    trace.record(1, "plb", "read", address=8)
    trace.record(2, "opb", "read", address=16)
    trace.record(3, "plb", "write", address=8)
    assert len(trace.filter(source="plb")) == 2
    assert len(trace.filter(kind="read")) == 2
    assert len(trace.filter(predicate=lambda e: e.fields["address"] == 8)) == 2
    assert len(trace.filter(source="plb", kind="read")) == 1


def test_summary_counts():
    trace = TraceRecorder()
    trace.record(1, "plb", "read")
    trace.record(2, "plb", "read")
    trace.record(3, "opb", "write")
    assert trace.summary() == {"plb:read": 2, "opb:write": 1}


def test_jsonl_export_parses():
    trace = TraceRecorder()
    trace.record(5, "plb", "read", address=0x20, beats=4)
    lines = trace.to_jsonl().splitlines()
    parsed = json.loads(lines[0])
    assert parsed["time_ps"] == 5
    assert parsed["beats"] == 4


def test_csv_export_headers_union():
    trace = TraceRecorder()
    trace.record(1, "a", "k", x=1)
    trace.record(2, "b", "k", y=2)
    lines = trace.to_csv().strip().splitlines()
    assert lines[0] == "time_ps,source,kind,x,y"
    assert lines[2].endswith(",2")


def test_merge_traces_time_ordered():
    a = TraceRecorder()
    b = TraceRecorder()
    a.record(10, "a", "k")
    b.record(5, "b", "k")
    a.record(20, "a", "k")
    merged = merge_traces([a, b])
    assert [e.time_ps for e in merged] == [5, 10, 20]


def test_clear_resets():
    trace = TraceRecorder(capacity=1)
    trace.record(1, "a", "k")
    trace.record(2, "a", "k")
    trace.clear()
    assert len(trace) == 0
    assert trace.dropped == 0


def test_bus_hook_records_transactions(system32):
    trace = TraceRecorder()
    system32.plb.tracer = trace
    system32.opb.tracer = trace
    system32.cpu.io_write(memmap.STAGE_INPUT, 0x1)
    system32.cpu.io_read(memmap.STAGE_INPUT)
    kinds = {(e.source, e.kind) for e in trace.events}
    assert ("plb32", "write") in kinds
    assert ("opb32", "write") in kinds  # forwarded through the bridge
    assert ("plb32", "read") in kinds
    durations = [e.fields["duration_ps"] for e in trace.events]
    assert all(d > 0 for d in durations)


def test_bus_trace_posted_flag(system64):
    trace = TraceRecorder()
    system64.plb.tracer = trace
    system64.cpu.io_write(memmap.DOCK_BASE, 1)
    writes = trace.filter(kind="write")
    assert writes and writes[-1].fields["posted"]

"""Property-based tests of bus-level invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus.opb import make_opb
from repro.bus.plb import make_plb
from repro.bus.bridge import PlbOpbBridge
from repro.bus.transaction import Op, Transaction
from repro.engine.clock import ClockDomain, mhz
from repro.mem.controllers import DdrController, SramController
from repro.mem.memory import MemoryArray

MEM_SIZE = 1 << 14


def fresh_plb():
    plb = make_plb(ClockDomain("bus", mhz(100)))
    memory = MemoryArray(MEM_SIZE)
    plb.attach(DdrController(memory, 0, "mem"), 0, MEM_SIZE, name="mem")
    return plb, memory


def fresh_bridged():
    clock = ClockDomain("bus", mhz(50))
    plb = make_plb(clock)
    opb = make_opb(clock)
    memory = MemoryArray(MEM_SIZE)
    opb.attach(SramController(memory, 0, "sram"), 0, MEM_SIZE, name="sram")
    bridge = PlbOpbBridge(plb, opb)
    plb.attach(bridge, 0, MEM_SIZE, name="bridge", posted_writes=True)
    return plb, memory


ops = st.lists(
    st.tuples(
        st.sampled_from([Op.READ, Op.WRITE]),
        st.integers(0, (MEM_SIZE // 8) - 1),  # 8-byte-aligned slots
        st.integers(0, 2**32 - 1),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=40, deadline=None)
@given(ops)
def test_memory_semantics_last_write_wins(sequence):
    """Random op sequences: every read returns the latest write."""
    plb, memory = fresh_plb()
    shadow = {}
    cursor = 0
    for op, slot, value in sequence:
        address = slot * 8
        if op is Op.WRITE:
            completion = plb.request(cursor, Transaction(Op.WRITE, address, data=value))
            shadow[address] = value
        else:
            completion = plb.request(cursor, Transaction(Op.READ, address))
            assert completion.value == shadow.get(address, 0)
        cursor = completion.done_ps


@settings(max_examples=40, deadline=None)
@given(ops)
def test_time_monotone_and_busy_watermark(sequence):
    """Completions never move backwards; busy_until is monotone."""
    plb, memory = fresh_plb()
    cursor = 0
    watermark = 0
    for op, slot, value in sequence:
        txn = Transaction(op, slot * 8, data=value if op is Op.WRITE else None)
        completion = plb.request(cursor, txn)
        assert completion.done_ps > cursor
        assert plb.busy_until >= watermark
        watermark = plb.busy_until
        cursor = completion.done_ps


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 120), st.integers(0, 255))
def test_burst_equivalent_to_singles_functionally(beats, seed):
    """A burst write then burst read round-trips arbitrary lengths."""
    plb, memory = fresh_plb()
    data = [(seed * 2654435761 + i) & 0xFFFFFFFFFFFFFFFF for i in range(beats)]
    plb.request(0, Transaction(Op.WRITE, 0, size_bytes=8, beats=beats, data=data))
    completion = plb.request(
        plb.busy_until, Transaction(Op.READ, 0, size_bytes=8, beats=beats)
    )
    value = completion.value if isinstance(completion.value, list) else [completion.value]
    assert value == data


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 16))
def test_burst_cheaper_than_singles_in_time(beats):
    """Per-beat time of a PLB burst never exceeds per-single time."""
    plb, _ = fresh_plb()
    single = plb.request(0, Transaction(Op.READ, 0, size_bytes=8))
    single_time = single.done_ps
    start = plb.busy_until
    burst = plb.request(start, Transaction(Op.READ, 0, size_bytes=8, beats=beats))
    per_beat = (burst.done_ps - start) / beats
    assert per_beat <= single_time + 1


@settings(max_examples=30, deadline=None)
@given(ops)
def test_bridge_preserves_memory_semantics(sequence):
    """The same random sequences hold across the PLB-OPB bridge."""
    plb, memory = fresh_bridged()
    shadow = {}
    cursor = 0
    for op, slot, value in sequence:
        address = slot * 8
        if op is Op.WRITE:
            completion = plb.request(cursor, Transaction(Op.WRITE, address, data=value))
            shadow[address] = value
            cursor = completion.master_free_ps
        else:
            completion = plb.request(cursor, Transaction(Op.READ, address))
            assert completion.value == shadow.get(address, 0)
            cursor = completion.done_ps


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**64 - 1), st.integers(0, (MEM_SIZE // 8) - 1))
def test_bridge_64bit_roundtrip_property(value, slot):
    plb, memory = fresh_bridged()
    address = slot * 8
    plb.request(0, Transaction(Op.WRITE, address, size_bytes=8, data=value))
    completion = plb.request(plb.busy_until, Transaction(Op.READ, address, size_bytes=8))
    assert completion.value == value

"""Tests for statistics collection."""

import pytest

from repro.engine.stats import Accumulator, Counter, StatsGroup


def test_counter_add():
    c = Counter("x")
    c.add()
    c.add(4)
    assert c.value == 5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("x").add(-1)


def test_counter_reset():
    c = Counter("x", value=9)
    c.reset()
    assert c.value == 0


def test_accumulator_statistics():
    a = Accumulator("t")
    for v in (1.0, 3.0, 2.0):
        a.add(v)
    assert a.total == 6.0
    assert a.count == 3
    assert a.minimum == 1.0
    assert a.maximum == 3.0
    assert a.mean == 2.0


def test_accumulator_mean_empty_is_zero():
    assert Accumulator("t").mean == 0.0


def test_group_creates_on_first_use():
    g = StatsGroup("bus")
    g.count("reads")
    g.count("reads", 2)
    g.record("busy", 10.0)
    assert g.get("reads") == 3
    assert g.get("busy") == 10.0


def test_group_get_missing_returns_zero():
    assert StatsGroup("g").get("nothing") == 0


def test_group_reset_resets_all():
    g = StatsGroup("g")
    g.count("a", 5)
    g.record("b", 2.5)
    g.reset()
    assert g.get("a") == 0
    assert g.get("b") == 0.0


def test_group_as_dict_sorted_members():
    g = StatsGroup("g")
    g.count("zeta")
    g.count("alpha")
    g.record("mid", 1.0)
    assert list(g.as_dict()) == ["alpha", "zeta", "mid"]

"""Tests for statistics collection."""

import pytest

from repro.engine.stats import Accumulator, Counter, StatsGroup


def test_counter_add():
    c = Counter("x")
    c.add()
    c.add(4)
    assert c.value == 5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("x").add(-1)


def test_counter_reset():
    c = Counter("x", value=9)
    c.reset()
    assert c.value == 0


def test_accumulator_statistics():
    a = Accumulator("t")
    for v in (1.0, 3.0, 2.0):
        a.add(v)
    assert a.total == 6.0
    assert a.count == 3
    assert a.minimum == 1.0
    assert a.maximum == 3.0
    assert a.mean == 2.0


def test_accumulator_mean_empty_is_zero():
    assert Accumulator("t").mean == 0.0


def test_group_creates_on_first_use():
    g = StatsGroup("bus")
    g.count("reads")
    g.count("reads", 2)
    g.record("busy", 10.0)
    assert g.get("reads") == 3
    assert g.get("busy") == 10.0


def test_group_get_missing_returns_zero():
    assert StatsGroup("g").get("nothing") == 0


def test_group_reset_resets_all():
    g = StatsGroup("g")
    g.count("a", 5)
    g.record("b", 2.5)
    g.reset()
    assert g.get("a") == 0
    assert g.get("b") == 0.0


def test_group_as_dict_sorted_members():
    g = StatsGroup("g")
    g.count("zeta")
    g.count("alpha")
    g.record("mid", 1.0)
    assert list(g.as_dict()) == ["alpha", "zeta", "mid"]


# -- merge (cross-process aggregation) ---------------------------------------


def test_counter_merge_adds_values():
    a = Counter("x", value=3)
    b = Counter("x", value=4)
    a.merge(b)
    assert a.value == 7
    assert b.value == 4  # other side untouched


def test_counter_merge_rejects_name_mismatch():
    with pytest.raises(ValueError):
        Counter("x").merge(Counter("y"))


def test_accumulator_merge_matches_replayed_samples():
    left, right, combined = Accumulator("t"), Accumulator("t"), Accumulator("t")
    for v in (1.0, 5.0):
        left.add(v)
        combined.add(v)
    for v in (0.5, 2.0, 9.0):
        right.add(v)
        combined.add(v)
    left.merge(right)
    assert left.total == combined.total
    assert left.count == combined.count
    assert left.minimum == combined.minimum
    assert left.maximum == combined.maximum


def test_accumulator_merge_empty_other_is_noop():
    a = Accumulator("t")
    a.add(2.0)
    a.merge(Accumulator("t"))
    assert a.count == 1
    assert a.minimum == 2.0


def test_accumulator_merge_rejects_name_mismatch():
    with pytest.raises(ValueError):
        Accumulator("t").merge(Accumulator("u"))


def test_group_merge_member_wise():
    a = StatsGroup("bus")
    a.count("reads", 2)
    a.record("busy", 10.0)
    b = StatsGroup("bus")
    b.count("reads", 3)
    b.count("writes", 1)
    b.record("busy", 4.0)
    b.record("stall", 7.0)
    a.merge(b)
    assert a.get("reads") == 5
    assert a.get("writes") == 1
    assert a.get("busy") == 14.0
    assert a.get("stall") == 7.0
    assert a.accumulator("busy").minimum == 4.0


def test_group_merge_returns_self_for_chaining():
    a = StatsGroup("g")
    assert a.merge(StatsGroup("g")) is a


def test_group_snapshot_round_trip():
    g = StatsGroup("dock")
    g.count("words", 8)
    g.record("beat_ps", 120.0)
    g.record("beat_ps", 80.0)
    g.accumulator("empty")  # exists but never sampled
    snap = g.snapshot()
    # The snapshot must be plain JSON (no ±inf for the empty accumulator).
    import json

    restored = StatsGroup.from_snapshot(json.loads(json.dumps(snap)))
    assert restored.name == "dock"
    assert restored.get("words") == 8
    assert restored.accumulator("beat_ps").count == 2
    assert restored.accumulator("beat_ps").minimum == 80.0
    assert restored.accumulator("empty").count == 0
    assert restored.as_dict() == g.as_dict()


def test_group_snapshot_merge_equals_direct_merge():
    a = StatsGroup("plb")
    a.count("grants", 5)
    a.record("tenure", 3.0)
    b = StatsGroup("plb")
    b.count("grants", 2)
    b.record("tenure", 11.0)
    via_snapshot = StatsGroup.from_snapshot(a.snapshot()).merge(
        StatsGroup.from_snapshot(b.snapshot())
    )
    a.merge(b)
    assert via_snapshot.as_dict() == a.as_dict()

"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_everything_derives_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError), name


def test_sub_hierarchies():
    assert issubclass(errors.ScheduleInPastError, errors.SimulationError)
    assert issubclass(errors.RegionError, errors.FabricError)
    assert issubclass(errors.ResourceError, errors.FabricError)
    assert issubclass(errors.CRCError, errors.BitstreamError)
    assert issubclass(errors.LinkError, errors.BitstreamError)
    assert issubclass(errors.PortMismatchError, errors.LinkError)
    assert issubclass(errors.AddressDecodeError, errors.BusError)
    assert issubclass(errors.BusWidthError, errors.BusError)


def test_address_decode_error_formats_address():
    err = errors.AddressDecodeError(0xDEAD_BEEF)
    assert "0xdeadbeef" in str(err)
    assert err.address == 0xDEADBEEF


def test_single_catch_point():
    """Library call sites can catch ReproError for anything domain-level."""
    from repro.fabric import get_device

    with pytest.raises(errors.ReproError):
        get_device("not-a-part")

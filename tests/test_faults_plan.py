"""Tests for the seeded fault-injection plans (repro.faults.plan)."""

import numpy as np
import pytest

from repro.errors import ReconfigurationError, TransferError
from repro.faults import FaultPlan, arm, armed, disarm, payload_word_indices
from repro.kernels import BrightnessKernel


# -- seed derivation / determinism -------------------------------------------

def test_plan_strikes_are_deterministic_from_seed():
    def strikes(seed):
        plan = FaultPlan(seed, seu_feeds={0}, seu_flips=3)
        words = _sample_words()
        plan.corrupt_staged(words)
        return plan.summary()

    assert strikes(7) == strikes(7)
    assert strikes(7) != strikes(8)


def test_invalid_seu_target_rejected():
    with pytest.raises(ValueError, match="seu_target"):
        FaultPlan(1, seu_target="everything")


# -- payload_word_indices ----------------------------------------------------

def _sample_words(system=None):
    from repro.core import build_system32

    if system is None:
        system = build_system32()
    return system.bitlinker.clear_bitstream().to_words()


def test_payload_indices_cover_fdri_payload_only(system32):
    words = _sample_words(system32)
    indices = payload_word_indices(words)
    assert indices.size > 0
    assert int(indices.min()) >= 0 and int(indices.max()) < words.size
    # Headers never land in the payload set: sync and dummy words are out.
    chosen = set(int(i) for i in indices)
    for idx, word in enumerate(words.tolist()):
        if word in (0xAA995566, 0xFFFFFFFF):
            assert idx not in chosen


def test_payload_flip_breaks_the_stream(system32):
    words = _sample_words(system32)
    indices = payload_word_indices(words)
    corrupted = words.copy()
    corrupted[int(indices[0])] ^= np.uint32(1)
    with pytest.raises(ReconfigurationError):
        system32.hwicap.load_words(corrupted)
    # The pristine copy still loads.
    system32.hwicap.load_words(words)


def test_payload_indices_of_streams_without_sync():
    assert payload_word_indices(np.zeros(16, dtype=np.uint32)).size == 0
    assert payload_word_indices(np.zeros(0, dtype=np.uint32)).size == 0


# -- staged-SEU hook ---------------------------------------------------------

def test_corrupt_staged_only_fires_on_scheduled_ordinals(system32):
    words = _sample_words(system32)
    plan = FaultPlan(3, seu_feeds={1})
    first = plan.corrupt_staged(words)
    assert first is words  # ordinal 0 untouched, no copy made
    second = plan.corrupt_staged(words)
    assert second is not words
    assert np.count_nonzero(second != words) == 1
    assert plan.faults_delivered == 1
    assert plan.injected[0].kind == "seu"
    assert plan.injected[0].site == "staged[1]"


def test_corrupt_staged_payload_target_hits_payload(system32):
    words = _sample_words(system32)
    plan = FaultPlan(5, seu_feeds={0})
    corrupted = plan.corrupt_staged(words)
    (changed,) = np.flatnonzero(corrupted != words)
    assert int(changed) in set(int(i) for i in payload_word_indices(words))


# -- configuration-memory upsets ---------------------------------------------

def test_inject_upset_flips_bits_without_touching_counters(system32):
    memory = system32.config_memory
    reads = memory.reads
    writes = memory.writes
    plan = FaultPlan(11, upset_flips=2)
    flipped = plan.upset_now(memory)
    assert len(flipped) == 2
    assert memory.reads == reads
    assert memory.writes == writes
    for fault in plan.injected:
        assert fault.kind == "memory-upset"
        assert fault.site == "idle"


def test_inject_upset_is_reproducible(system32, system64):
    from repro.core import build_system32

    def flips(seed):
        system = build_system32()
        plan = FaultPlan(seed, upset_flips=3)
        plan.upset_now(system.config_memory)
        return plan.summary()

    assert flips(21) == flips(21)
    assert flips(21) != flips(22)


# -- arming / disarming ------------------------------------------------------

def test_arm_and_disarm_wire_every_site(system64):
    plan = FaultPlan(1)
    arm(system64, plan)
    assert system64.fault_plan is plan
    assert system64.hwicap.fault_plan is plan
    assert system64.dock.dma.fault_plan is plan
    disarm(system64)
    assert system64.fault_plan is None
    assert system64.hwicap.fault_plan is None
    assert system64.dock.dma.fault_plan is None


def test_armed_context_manager_disarms_on_exit(system64):
    plan = FaultPlan(1)
    with armed(system64, plan) as active:
        assert active is plan
        assert system64.fault_plan is plan
    assert system64.fault_plan is None


def test_unarmed_system_has_null_plans(system32, system64):
    assert system32.fault_plan is None
    assert system32.hwicap.fault_plan is None
    assert system64.dock.dma.fault_plan is None  # only the 64-bit dock has DMA


# -- commit-fault hook through the ICAP --------------------------------------

def test_forced_commit_fault_raises_and_counts(system32):
    from repro.core.reconfig import ReconfigManager

    manager = ReconfigManager(system32)
    manager.register(BrightnessKernel(5))
    plan = FaultPlan(9, commit_faults={0})
    crc_before = system32.hwicap.crc_failures
    with armed(system32, plan):
        with pytest.raises(ReconfigurationError, match="injected CRC/commit fault"):
            manager.load("brightness")
    assert system32.hwicap.crc_failures == crc_before + 1
    assert plan.faults_delivered == 1
    assert plan.injected[0].kind == "commit-fail"


# -- DMA-error hook ----------------------------------------------------------

def test_dma_descriptor_fault_aborts_chain(system64):
    from repro.dock.dma import Descriptor

    plan = FaultPlan(4, dma_descriptors={0})
    descriptor = Descriptor(
        src=system64.ext_mem_base,
        dst=system64.ext_mem_base + 0x1000,
        word_count=16,
        size_bytes=8,
    )
    with armed(system64, plan):
        with pytest.raises(TransferError, match="injected transfer error"):
            system64.dock.dma.run_chain(0, [descriptor])
        # The next descriptor (ordinal 1) is not scheduled: retry succeeds.
        system64.dock.dma.run_chain(system64.cpu.now_ps, [descriptor])
    assert plan.faults_delivered == 1
    assert system64.dock.dma.stats.get("descriptor_faults") == 1

"""Tests for the SHA-1 kernel vs hashlib (bit-exactness to RFC 3174)."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernels.jenkins_hash import key_to_words
from repro.kernels.sha1_core import (
    FINALIZE_OFFSET,
    LENGTH_OFFSET,
    REG_BLOCKS,
    REG_H,
    Sha1Kernel,
    sha1,
    sha1_compress,
)


def stream_message(kernel: Sha1Kernel, message: bytes, width_bits=32):
    kernel.consume(len(message), width_bits, LENGTH_OFFSET)
    for word in key_to_words(message, width_bits // 8):
        kernel.consume(word, width_bits, 0)
    kernel.consume(1, width_bits, FINALIZE_OFFSET)
    return kernel.digest()


def test_batch_matches_hashlib_vectors():
    for message in (b"", b"abc", b"a" * 55, b"b" * 56, b"c" * 64, b"d" * 1000):
        assert sha1(message) == hashlib.sha1(message).digest()


def test_rfc_test_vector():
    assert sha1(b"abc").hex() == "a9993e364706816aba3e25717850c26c9cd0d89d"


def test_streaming_matches_hashlib():
    message = b"The quick brown fox jumps over the lazy dog"
    assert stream_message(Sha1Kernel(), message) == hashlib.sha1(message).digest()


def test_streaming_64bit_words():
    message = bytes(range(200))
    assert stream_message(Sha1Kernel(), message, 64) == hashlib.sha1(message).digest()


def test_streaming_empty_message():
    assert stream_message(Sha1Kernel(), b"") == hashlib.sha1(b"").digest()


def test_result_registers_big_endian():
    kernel = Sha1Kernel()
    message = b"abc"
    stream_message(kernel, message)
    digest = hashlib.sha1(message).digest()
    for index, reg in enumerate(REG_H):
        expected = int.from_bytes(digest[4 * index : 4 * index + 4], "big")
        assert kernel.read_register(reg) == expected


def test_blocks_register_counts_padding():
    kernel = Sha1Kernel()
    stream_message(kernel, b"x" * 64)  # one data block + one padding block
    assert kernel.read_register(REG_BLOCKS) == 2


def test_digest_before_finalize_raises():
    kernel = Sha1Kernel()
    kernel.consume(4, 32, LENGTH_OFFSET)
    kernel.consume(0, 32, 0)
    with pytest.raises(KernelError):
        kernel.digest()
    assert not kernel.digest_ready


def test_finalize_with_missing_data_raises():
    kernel = Sha1Kernel()
    kernel.consume(8, 32, LENGTH_OFFSET)
    kernel.consume(0, 32, 0)
    with pytest.raises(KernelError):
        kernel.consume(1, 32, FINALIZE_OFFSET)


def test_excess_data_rejected():
    kernel = Sha1Kernel()
    kernel.consume(2, 32, LENGTH_OFFSET)
    kernel.consume(0, 32, 0)
    with pytest.raises(KernelError):
        kernel.consume(0, 32, 0)


def test_write_after_finalize_rejected():
    kernel = Sha1Kernel()
    stream_message(kernel, b"done")
    with pytest.raises(KernelError):
        kernel.consume(0, 32, 0)


def test_compress_requires_full_block():
    with pytest.raises(KernelError):
        sha1_compress((0, 0, 0, 0, 0), b"short")


def test_reset_allows_reuse():
    kernel = Sha1Kernel()
    stream_message(kernel, b"first message")
    kernel.reset()
    assert stream_message(kernel, b"second") == hashlib.sha1(b"second").digest()


def test_does_not_fit_32bit_region():
    # Table 11's caption: "Our implementation does not fit into the dynamic
    # area of the 32-bit system".
    from repro.errors import KernelError as KErr

    kernel = Sha1Kernel()
    component = kernel.make_component(32, 11)
    assert component.width > 28 or component.resources.slices > 1232


@settings(max_examples=40, deadline=None)
@given(st.binary(max_size=300))
def test_batch_matches_hashlib_property(message):
    assert sha1(message) == hashlib.sha1(message).digest()


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=150))
def test_streaming_matches_hashlib_property(message):
    assert stream_message(Sha1Kernel(), message) == hashlib.sha1(message).digest()

"""Tests for frame addressing and intra-frame row mapping."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import BitstreamError
from repro.fabric.device import XC2VP4, XC2VP7
from repro.fabric.frames import BlockType, FrameAddress, FrameGeometry


@pytest.fixture(scope="module")
def geo():
    return FrameGeometry(XC2VP7)


def test_frame_address_pack_unpack():
    addr = FrameAddress(BlockType.BRAM_CONTENT, 3, 17)
    assert FrameAddress.unpacked(addr.packed()) == addr


def test_frame_address_negative_rejected():
    with pytest.raises(BitstreamError):
        FrameAddress(BlockType.CLB, -1, 0)


def test_frame_address_ordering():
    a = FrameAddress(BlockType.CLB, 0, 1)
    b = FrameAddress(BlockType.CLB, 1, 0)
    assert a < b


def test_clb_column_frames_count(geo):
    frames = geo.clb_column_frames(5)
    assert len(frames) == 22
    assert all(f.major == 5 and f.block is BlockType.CLB for f in frames)


def test_clb_column_out_of_range(geo):
    with pytest.raises(BitstreamError):
        geo.clb_column_frames(XC2VP7.clb_cols)


def test_bram_column_frames(geo):
    col = XC2VP7.bram_columns[0].col
    content = geo.bram_column_frames(col, content=True)
    interconnect = geo.bram_column_frames(col, content=False)
    assert len(content) == 64
    assert len(interconnect) == 22
    assert content[0].block is BlockType.BRAM_CONTENT


def test_bram_column_requires_real_column(geo):
    with pytest.raises(BitstreamError):
        geo.bram_column_frames(1)  # no BRAM column at x=1


def test_frames_for_columns_includes_bram(geo):
    col = XC2VP7.bram_columns[1].col
    frames = geo.frames_for_columns(col, col + 1)
    blocks = {f.block for f in frames}
    assert blocks == {BlockType.CLB, BlockType.BRAM_CONTENT, BlockType.BRAM_INTERCONNECT}


def test_frames_for_columns_excluding_bram(geo):
    col = XC2VP7.bram_columns[1].col
    frames = geo.frames_for_columns(col, col + 1, include_bram=False)
    assert {f.block for f in frames} == {BlockType.CLB}
    assert len(frames) == 22


def test_all_frames_matches_device_total(geo):
    assert len(list(geo.all_frames())) == XC2VP7.total_frames == geo.frame_count()


def test_all_frames_unique(geo):
    frames = list(geo.all_frames())
    assert len(frames) == len(set(frames))


def test_row_bit_span(geo):
    lo, hi = geo.row_bit_span(0)
    assert (lo, hi) == (0, 80)
    lo, hi = geo.row_bit_span(3)
    assert (lo, hi) == (240, 320)


def test_row_bit_span_out_of_range(geo):
    with pytest.raises(BitstreamError):
        geo.row_bit_span(XC2VP7.clb_rows)


def test_row_mask_selects_exact_bits(geo):
    mask = geo.row_mask(1, 2)
    bits = np.unpackbits(mask.view(np.uint8), bitorder="little")
    set_bits = np.nonzero(bits)[0]
    assert set_bits.min() == 80
    assert set_bits.max() == 159
    assert len(set_bits) == 80


def test_row_mask_empty_range(geo):
    assert not geo.row_mask(5, 5).any()


def test_row_mask_full_height_covers_all_rows(geo):
    mask = geo.row_mask(0, XC2VP7.clb_rows)
    bits = np.unpackbits(mask.view(np.uint8), bitorder="little")
    assert bits[: XC2VP7.clb_rows * 80].all()
    # padding bits beyond the last row stay clear
    assert not bits[XC2VP7.clb_rows * 80 :].any()


def test_row_mask_invalid_range(geo):
    with pytest.raises(BitstreamError):
        geo.row_mask(3, 2_000)


@given(st.integers(0, 39), st.integers(0, 39))
def test_row_mask_popcount_matches_span(row_a, row_b):
    geo = FrameGeometry(XC2VP4)
    row0, row1 = sorted((row_a, row_b))
    mask = geo.row_mask(row0, row1)
    bits = int(np.unpackbits(mask.view(np.uint8)).sum())
    assert bits == (row1 - row0) * XC2VP4.bits_per_frame_row


@given(st.integers(0, 3), st.integers(0, 200), st.integers(0, 255))
def test_pack_unpack_roundtrip_property(block, major, minor):
    addr = FrameAddress(BlockType(block % 3), major, minor)
    assert FrameAddress.unpacked(addr.packed()) == addr

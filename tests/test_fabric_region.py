"""Tests for dynamic regions and floorplan search."""

import pytest

from repro.errors import RegionError
from repro.fabric.device import XC2VP7, XC2VP30
from repro.fabric.geometry import Rect
from repro.fabric.region import Region, candidate_regions, find_region


def test_paper_region_32bit():
    # "The dynamic region ... contains 6 RAM blocks and 28x11 = 308 CLBs ...
    #  25% of the total number of slices"
    region = find_region(XC2VP7, 28, 11, bram_blocks=6)
    assert region.clb_count == 308
    assert region.resources.slices == 1232
    assert region.resources.bram_blocks == 6
    assert abs(region.slice_fraction - 0.25) < 1e-9


def test_paper_region_64bit():
    # "contains 22 BRAMs and 32x24 = 768 CLBs, i.e., 3072 slices (22.4%)"
    region = find_region(XC2VP30, 32, 24, bram_blocks=22)
    assert region.clb_count == 768
    assert region.resources.slices == 3072
    assert region.resources.bram_blocks == 22
    assert abs(region.slice_fraction - 0.224) < 0.001


def test_region_rejects_cpu_overlap():
    cpu = XC2VP7.cpu_blocks[0]
    with pytest.raises(RegionError, match="CPU"):
        Region(XC2VP7, Rect(cpu.col, cpu.row, 2, 2))


def test_region_rejects_out_of_grid():
    with pytest.raises(RegionError):
        Region(XC2VP7, Rect(0, 0, XC2VP7.clb_cols + 1, 1))


def test_full_height_detection():
    region = Region(XC2VP7, Rect(10, 0, 2, XC2VP7.clb_rows))
    assert region.full_height
    assert region.isolates_sides()


def test_partial_height_does_not_isolate():
    region = find_region(XC2VP7, 28, 11, bram_blocks=6)
    assert not region.full_height
    assert not region.isolates_sides()


def test_frame_addresses_cover_all_columns():
    region = find_region(XC2VP7, 28, 11, bram_blocks=6)
    majors = {f.major for f in region.frame_addresses if f.block.name == "CLB"}
    assert majors == set(range(region.rect.col, region.rect.col_end))


def test_frame_count_includes_bram_columns():
    region = find_region(XC2VP7, 28, 11, bram_blocks=6)
    clb_only = region.rect.width * 22
    assert region.frame_count > clb_only


def test_find_region_too_large_raises():
    with pytest.raises(RegionError):
        find_region(XC2VP7, XC2VP7.clb_cols + 1, 4)


def test_find_region_impossible_bram_count():
    with pytest.raises(RegionError, match="BRAM"):
        find_region(XC2VP7, 2, 2, bram_blocks=40)


def test_find_region_avoid_rectangles():
    first = find_region(XC2VP7, 10, 10)
    second = find_region(XC2VP7, 10, 10, avoid=[first.rect])
    assert not first.rect.overlaps(second.rect)


def test_candidate_regions_avoid_cpu():
    for region in candidate_regions(XC2VP7, 30, 30):
        for block in XC2VP7.cpu_blocks:
            assert not region.rect.overlaps(block)


def test_candidate_regions_nonempty():
    assert any(True for _ in candidate_regions(XC2VP7, 5, 5))


def test_region_str_mentions_device():
    region = find_region(XC2VP7, 4, 4)
    assert "XC2VP7" in str(region)

"""Tests for resource vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ResourceError
from repro.fabric.resources import ResourceVector, clbs


def test_derived_luts_and_ffs():
    r = ResourceVector(slices=10)
    assert r.luts == 20
    assert r.flip_flops == 20


def test_bram_kbits():
    assert ResourceVector(bram_blocks=3).bram_kbits == 54


def test_negative_counts_rejected():
    with pytest.raises(ResourceError):
        ResourceVector(slices=-1)


def test_addition():
    total = ResourceVector(slices=5, bram_blocks=1) + ResourceVector(slices=3, tbufs=2)
    assert total == ResourceVector(slices=8, bram_blocks=1, tbufs=2)


def test_subtraction():
    diff = ResourceVector(slices=5, bram_blocks=2) - ResourceVector(slices=3, bram_blocks=1)
    assert diff == ResourceVector(slices=2, bram_blocks=1)


def test_subtraction_below_zero_rejected():
    with pytest.raises(ResourceError):
        ResourceVector(slices=1) - ResourceVector(slices=2)


def test_scalar_multiplication():
    assert 3 * ResourceVector(slices=2, mult18=1) == ResourceVector(slices=6, mult18=3)


def test_fits_within():
    small = ResourceVector(slices=10, bram_blocks=1)
    big = ResourceVector(slices=20, bram_blocks=2, tbufs=5)
    assert small.fits_within(big)
    assert not big.fits_within(small)


def test_fits_within_checks_every_component():
    a = ResourceVector(slices=1, bram_blocks=5)
    b = ResourceVector(slices=100, bram_blocks=1)
    assert not a.fits_within(b)


def test_shortfall():
    demand = ResourceVector(slices=10, bram_blocks=3)
    capacity = ResourceVector(slices=12, bram_blocks=1)
    assert demand.shortfall(capacity) == ResourceVector(bram_blocks=2)


def test_utilization():
    u = ResourceVector(slices=5).utilization(ResourceVector(slices=10, bram_blocks=4))
    assert u["slices"] == 0.5
    assert u["bram_blocks"] == 0.0


def test_utilization_zero_capacity_is_zero():
    u = ResourceVector(slices=5).utilization(ResourceVector(slices=10))
    assert u["mult18"] == 0.0


def test_require_fit_raises_with_context():
    with pytest.raises(ResourceError, match="short by"):
        ResourceVector(slices=100).require_fit(ResourceVector(slices=10), what="test module")


def test_clbs_helper():
    assert clbs(3) == ResourceVector(slices=12)
    assert clbs(2, bram_blocks=1).bram_blocks == 1


vectors = st.builds(
    ResourceVector,
    slices=st.integers(0, 1000),
    bram_blocks=st.integers(0, 50),
    tbufs=st.integers(0, 100),
    mult18=st.integers(0, 50),
)


@given(vectors, vectors)
def test_addition_commutative(a, b):
    assert a + b == b + a


@given(vectors, vectors)
def test_sum_always_fits_parts(a, b):
    assert a.fits_within(a + b)
    assert b.fits_within(a + b)


@given(vectors, vectors)
def test_shortfall_zero_iff_fits(a, b):
    short = a.shortfall(b)
    assert (short == ResourceVector()) == a.fits_within(b)

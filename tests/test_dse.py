"""Design-space exploration: legality gate, designs, determinism, caching.

The expensive determinism properties run on a deliberately tiny 2-axis
space (4 points, 2 distinct rigs) in smoke mode, so the whole module
stays in CI's budget while still driving the real evaluator, the real
sweep batch runner and the real probe scenarios.
"""

import json

import pytest

from repro.dse import (
    Axis,
    Evaluator,
    PlatformSpace,
    build_report,
    default_space,
    evolve,
    full_factorial,
    star_design,
)
from repro.dse.space import RIG_AXES
from repro.errors import InvariantError
from repro.sweep import ResultCache


def small_space():
    """4-point space over one rig axis + one policy axis (2 rigs total)."""
    return PlatformSpace(
        [
            Axis("bus_mhz", (66, 100), 100, "MHz"),
            Axis("scrub_period_us", (50, 200), 200, "us"),
        ]
    )


def drc_space():
    """Space whose rig axes include a geometry the DRC gate must reject:
    a 16-row region cannot host the 64-bit dock interface (17 rows)."""
    return PlatformSpace(
        [
            Axis("region_rows", (16, 24), 24, "CLBs"),
            Axis("scrub_period_us", (50, 200), 200, "us"),
        ]
    )


def explore(tmp_path, *, jobs, seed=7):
    """One full factorial+evolve exploration against a private cache."""
    cache = ResultCache(tmp_path / "cache")
    space = small_space()
    evaluator = Evaluator(
        space,
        jobs=jobs,
        cache=cache,
        smoke=True,
        rig_cache_dir=str(tmp_path / "cache" / "rigs"),
    )
    design = star_design(space)
    evaluator.evaluate(design.points)
    search = evolve(
        space, evaluator, generations=2, population=4, seed=seed,
        seed_points=design.points,
    )
    return build_report(
        space, evaluator, mode="both", smoke=True, search=search,
        rejected=design.rejected,
    )


def deterministic_sections(report):
    """The byte-stable slice of a report: everything except host-side
    telemetry (cache hit/miss counts and host_seconds legitimately vary
    between a cold and a warm run of the *same* exploration)."""
    keys = ("evaluations", "front", "front_points", "slopes", "search")
    return json.dumps({key: report[key] for key in keys}, sort_keys=True)


# -- axes and space validation -------------------------------------------------

def test_axis_rejects_degenerate_levels():
    with pytest.raises(InvariantError, match=">= 2 levels"):
        Axis("bus_mhz", (100,), 100)
    with pytest.raises(InvariantError, match="strictly increasing"):
        Axis("bus_mhz", (100, 66), 100)
    with pytest.raises(InvariantError, match="baseline"):
        Axis("bus_mhz", (66, 100), 133)


def test_space_rejects_duplicate_axes():
    axis = Axis("bus_mhz", (66, 100), 100)
    with pytest.raises(InvariantError, match="duplicate"):
        PlatformSpace([axis, axis])


def test_malformed_points_are_rejected():
    space = small_space()
    with pytest.raises(InvariantError, match="missing axes"):
        space.canonical({"bus_mhz": 100})
    with pytest.raises(InvariantError, match="unknown axes"):
        space.canonical({"bus_mhz": 100, "scrub_period_us": 200, "turbo": 1})
    with pytest.raises(InvariantError, match="not one of the levels"):
        space.violation({"bus_mhz": 101, "scrub_period_us": 200})


def test_default_space_covers_the_required_axes():
    space = default_space()
    assert len(space.axes) >= 6
    assert set(RIG_AXES) <= set(space.names)
    assert space.is_legal(space.baseline())


# -- legality gate -------------------------------------------------------------

def test_static_rule_rejects_undrainable_burst():
    space = default_space()
    point = {**space.baseline(), "fifo_depth": 8, "burst_beats": 16}
    reason = space.violation(point)
    assert reason is not None and "never drain" in reason


def test_drc_gate_rejects_unbuildable_geometry():
    space = drc_space()
    bad = {"region_rows": 16, "scrub_period_us": 200}
    reason = space.violation(bad)
    assert reason is not None
    assert "rig construction failed" in reason
    # The verdict is memoized per rig projection: the scrub axis does not
    # influence buildability, so the sibling point shares the verdict.
    assert space.violation({"region_rows": 16, "scrub_period_us": 50}) == reason
    assert space.is_legal({"region_rows": 24, "scrub_period_us": 200})


def test_evaluator_refuses_illegal_points_without_simulating(tmp_path):
    space = drc_space()
    evaluator = Evaluator(space, cache=None, smoke=True)
    with pytest.raises(InvariantError, match="refusing to evaluate illegal point"):
        evaluator.evaluate([{"region_rows": 16, "scrub_period_us": 200}])
    # Rejection happened before any simulation was spent.
    assert evaluator.evaluations == []
    assert evaluator.jobs_run == 0
    assert evaluator.compute_seconds == 0.0


# -- factorial designs ---------------------------------------------------------

def test_star_design_is_baseline_plus_ofat():
    space = small_space()
    design = star_design(space)
    expected = 1 + sum(len(axis.levels) - 1 for axis in space.axes)
    assert len(design.points) == expected
    assert design.points[0] == space.baseline()
    assert design.rejected == []


def test_star_design_reports_rejected_points():
    design = star_design(drc_space())
    assert [point["region_rows"] for point, _ in design.rejected] == [16]
    assert all("rig construction failed" in reason for _, reason in design.rejected)


def test_full_factorial_covers_the_product():
    space = small_space()
    design = full_factorial(space)
    assert len(design.points) == space.size() == 4


def test_full_factorial_refuses_oversized_products():
    with pytest.raises(InvariantError, match="max_points"):
        full_factorial(default_space(), max_points=16)


# -- evaluation and caching ----------------------------------------------------

def test_projection_shares_jobs_between_candidates(tmp_path):
    space = small_space()
    evaluator = Evaluator(space, cache=ResultCache(tmp_path / "cache"), smoke=True)
    design = full_factorial(space)
    evaluations = evaluator.evaluate(design.points)
    assert len(evaluations) == 4
    # Throughput and reconfig only see bus_mhz (2 levels), recovery only
    # sees scrub_period_us (2 levels): 6 unique jobs for 4x3 requests.
    assert evaluator.jobs_run == 6
    assert evaluator.jobs_deduped == 6
    # Re-evaluating known points is pure memo: no new jobs.
    again = evaluator.evaluate(design.points)
    assert evaluator.jobs_run == 6
    assert [e.to_dict() for e in again] == [e.to_dict() for e in evaluations]


def test_second_exploration_runs_entirely_from_warm_cache(tmp_path):
    space = small_space()
    design = full_factorial(space)

    def run():
        evaluator = Evaluator(
            space, cache=ResultCache(tmp_path / "cache"), smoke=True,
            rig_cache_dir=str(tmp_path / "cache" / "rigs"),
        )
        evaluator.evaluate(design.points)
        return evaluator

    cold = run()
    assert cold.cache_stats["misses"] == 6
    warm = run()
    assert warm.cache_stats["hits"] == 6
    assert warm.cache_stats["misses"] == 0
    assert [e.to_dict() for e in warm.evaluations] == [
        e.to_dict() for e in cold.evaluations
    ]


# -- end-to-end determinism ----------------------------------------------------

def test_fixed_seed_yields_byte_identical_front_across_runs_and_jobs(tmp_path):
    first = explore(tmp_path / "a", jobs=1)
    second = explore(tmp_path / "b", jobs=1)
    parallel = explore(tmp_path / "c", jobs=2)
    assert deterministic_sections(first) == deterministic_sections(second)
    assert deterministic_sections(first) == deterministic_sections(parallel)
    # The front is non-trivial and indices point at real evaluations.
    assert first["schema"] == "repro-dse/1"
    assert first["front"], "expected a non-empty Pareto front"
    assert all(0 <= i < len(first["evaluations"]) for i in first["front"])
    # A different seed explores differently (the search is really seeded).
    other = explore(tmp_path / "d", jobs=1, seed=8)
    assert json.loads(deterministic_sections(other))["search"]["seed"] == 8


def test_report_is_json_clean_and_renders(tmp_path):
    report = explore(tmp_path, jobs=1)
    text = json.dumps(report, sort_keys=True)
    assert json.loads(text) == json.loads(text)

    from repro.dse import render_text

    rendered = render_text(report)
    assert "Pareto-front candidates" in rendered
    assert "regression slopes" in rendered

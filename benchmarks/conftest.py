"""Shared fixtures for the benchmark harness.

Each ``bench_tableXX_*.py`` regenerates one table of the paper; the
``benchmark`` fixture wraps the simulation run (so pytest-benchmark reports
host wall-clock), while the *simulated* numbers are printed as a
paper-style table and written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os

import pytest

from repro.core import build_system32, build_system64
from repro.core.reconfig import ReconfigManager
from repro.kernels import (
    BlendKernel,
    BrightnessKernel,
    FadeKernel,
    JenkinsHashKernel,
    PatternMatchKernel,
    Sha1Kernel,
)
from repro.workloads import binary_pattern

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Image-task constants shared across table benches.
BRIGHTNESS_CONSTANT = 48
FADE_FACTOR = 0.5


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_table(results_dir):
    def _save(name: str, text: str) -> None:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print()
        print(text)

    return _save


@pytest.fixture
def pattern():
    return binary_pattern(seed=2006)


def _register_all(system, pattern):
    manager = ReconfigManager(system)
    manager.register(PatternMatchKernel(pattern))
    manager.register(JenkinsHashKernel())
    manager.register(BrightnessKernel(BRIGHTNESS_CONSTANT))
    manager.register(BlendKernel())
    manager.register(FadeKernel(FADE_FACTOR))
    try:
        manager.register(Sha1Kernel())
    except Exception:
        pass  # does not fit the 32-bit region — the paper's point
    return manager


@pytest.fixture
def rig32(pattern):
    system = build_system32()
    return system, _register_all(system, pattern)


@pytest.fixture
def rig64(pattern):
    system = build_system64()
    return system, _register_all(system, pattern)

"""Shared fixtures for the benchmark harness.

Each ``bench_tableXX_*.py`` regenerates one table of the paper by running
the matching registered scenario (:mod:`repro.scenarios`); the
``benchmark`` fixture wraps the run (so pytest-benchmark reports host
wall-clock) while the *simulated* numbers come from the scenario itself
and are written to ``benchmarks/results/``.  ``repro sweep`` runs the
same scenarios through the parallel orchestrator — the rows are
byte-identical either way (docs/SWEEP.md).
"""

from __future__ import annotations

import os

import pytest

from repro.scenarios.rigs import (
    BRIGHTNESS_CONSTANT,
    FADE_FACTOR,
    PATTERN_SEED,
    build_rig32,
    build_rig64,
)
from repro.sweep.results_io import write_text_result
from repro.workloads import binary_pattern

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

__all__ = ["BRIGHTNESS_CONSTANT", "FADE_FACTOR", "RESULTS_DIR"]


@pytest.fixture(scope="session")
def save_table():
    def _save(name: str, text: str) -> None:
        # write_text_result creates RESULTS_DIR on demand.
        write_text_result(RESULTS_DIR, name, text)
        print()
        print(text)

    return _save


@pytest.fixture
def pattern():
    return binary_pattern(seed=PATTERN_SEED)


@pytest.fixture
def rig32():
    return build_rig32()


@pytest.fixture
def rig64():
    return build_rig64()

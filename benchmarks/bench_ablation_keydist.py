"""Ablation — key-length distribution vs hash offload viability.

lookup2 was published as a hash-table function, and hash tables see mostly
short keys.  Every hardware invocation pays fixed overhead (LENGTH write,
result read) on top of the per-word stream, so the marginal Table-4
speedup collapses further on a realistic Zipf key mix — the offload is
only defensible for long-key workloads (checksumming, dedup).
"""

import numpy as np

from repro.core.apps import HwJenkinsHash
from repro.sw import SwJenkinsHash
from repro.reporting import format_table
from repro.workloads import key_batch, zipf_key_batch


def run(system, manager):
    manager.load("lookup2")
    hw_driver = HwJenkinsHash()
    sw_task = SwJenkinsHash()
    rows = []
    for label, keys in (
        ("zipf (hash-table mix)", zipf_key_batch(64, max_length=256, seed=12)),
        ("fixed 64 B", key_batch(64, 64, seed=12)),
        ("fixed 4 KiB", key_batch(16, 4096, seed=12)),
    ):
        hw_ps = sw_ps = 0
        for key in keys:
            hw = hw_driver.run(system, key)
            sw = sw_task.run(system, key)
            assert hw.result == sw.result
            hw_ps += hw.elapsed_ps
            sw_ps += sw.elapsed_ps
        mean_len = float(np.mean([len(k) for k in keys]))
        rows.append([label, len(keys), mean_len, sw_ps / 1e6, hw_ps / 1e6, sw_ps / hw_ps])
    return rows


def test_ablation_key_distribution(benchmark, rig32, save_table):
    system, manager = rig32
    rows = benchmark.pedantic(lambda: run(system, manager), rounds=1, iterations=1)
    text = format_table(
        "Ablation: key-length distribution vs lookup2 offload (32-bit system)",
        ["key mix", "keys", "mean bytes", "software (us)", "hardware (us)", "speedup"],
        rows,
    )
    save_table("ablation_keydist", text)

    speedups = {row[0]: row[-1] for row in rows}
    # Per-key overhead sinks the short-key mixes below the long-key case.
    assert speedups["zipf (hash-table mix)"] < speedups["fixed 4 KiB"]
    assert speedups["fixed 64 B"] < speedups["fixed 4 KiB"]

"""Ablation — key-length distribution vs hash offload viability.

lookup2 was published as a hash-table function, and hash tables see mostly
short keys.  Every hardware invocation pays fixed overhead (LENGTH write,
result read) on top of the per-word stream, so the marginal Table-4
speedup collapses further on a realistic Zipf key mix — the offload is
only defensible for long-key workloads (checksumming, dedup).  Thin
wrapper around the ``ablation_keydist`` scenario.
"""

from repro.scenarios import run_scenario


def test_ablation_key_distribution(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("ablation_keydist"), rounds=1, iterations=1
    )
    save_table("ablation_keydist", result.table_text())

    speedups = {row[0]: row[-1] for row in result.rows}
    # Per-key overhead sinks the short-key mixes below the long-key case.
    assert speedups["zipf (hash-table mix)"] < speedups["fixed 4096 B"]
    assert speedups["fixed 64 B"] < speedups["fixed 4096 B"]

"""Table 2 — Measured times for data transfers between the dynamic region
and external memory on the 32-bit system (CPU-controlled, per 32-bit word).
"""

from repro.core import TransferBench
from repro.reporting import format_table

SEQUENCE_LENGTHS = (1024, 4096, 16384)


def run_sequences(system):
    bench = TransferBench(system)
    rows = []
    for n in SEQUENCE_LENGTHS:
        w = bench.pio_write_sequence(n)
        r = bench.pio_read_sequence(n)
        wr = bench.pio_interleaved_sequence(n)
        rows.append([n, w.per_transfer_ns, r.per_transfer_ns, wr.per_transfer_ns])
    return rows


def test_table2_transfer_times_32bit(benchmark, rig32, save_table):
    system, _ = rig32

    rows = benchmark.pedantic(lambda: run_sequences(system), rounds=1, iterations=1)

    text = format_table(
        "Table 2: Transfer times, 32-bit system (CPU-controlled, ns per 32-bit transfer)",
        ["sequence length", "write", "read", "write/read pair"],
        rows,
    )
    save_table("table02_transfers32", text)

    # Shape: all sub-microsecond-ish, pair ~ write + read, stable over n.
    for n, w, r, wr in rows:
        assert 100 < w < 2_000
        assert 100 < r < 2_000
        assert 0.7 * (w + r) < wr < 1.3 * (w + r)
    assert abs(rows[0][1] - rows[-1][1]) / rows[-1][1] < 0.1

"""Table 2 — Measured times for data transfers between the dynamic region
and external memory on the 32-bit system (CPU-controlled, per 32-bit word).

Thin wrapper around the ``table02_transfers32`` scenario.
"""

from repro.scenarios import run_scenario


def test_table2_transfer_times_32bit(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("table02_transfers32"), rounds=1, iterations=1
    )
    save_table("table02_transfers32", result.table_text())

    # Shape: all sub-microsecond-ish, pair ~ write + read, stable over n.
    rows = result.rows
    for n, w, r, wr in rows:
        assert 100 < w < 2_000
        assert 100 < r < 2_000
        assert 0.7 * (w + r) < wr < 1.3 * (w + r)
    assert abs(rows[0][1] - rows[-1][1]) / rows[-1][1] < 0.1

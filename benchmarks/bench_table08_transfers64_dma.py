"""Table 8 — Measured times for 64-bit DMA-controlled transfers between
the dynamic region and external memory (64-bit system).

The interleaved row is block-interleaved: the write stream fills the
2047-deep output FIFO, pauses, and a DMA burst drains it to memory.
Thin wrapper around the ``table08_transfers64_dma`` scenario, whose
headline carries the PIO reference time.
"""

from repro.scenarios import run_scenario


def test_table8_transfer_times_64bit_dma(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("table08_transfers64_dma"), rounds=1, iterations=1
    )
    save_table("table08_transfers64_dma", result.table_text())

    rows = result.rows
    pio = result.headline["pio_write_ns"]
    for n, w, r, wr in rows:
        # Each DMA transfer moves 64 bits yet is far cheaper than a 32-bit
        # PIO transfer — the whole reason the PLB Dock grew a DMA engine.
        assert w < pio / 2
        assert wr < 2.5 * (w + r)
    # Longer sequences amortise setup: per-transfer time must not grow.
    assert rows[-1][1] <= rows[0][1] * 1.05

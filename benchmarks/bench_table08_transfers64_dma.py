"""Table 8 — Measured times for 64-bit DMA-controlled transfers between
the dynamic region and external memory (64-bit system).

The interleaved row is block-interleaved: the write stream fills the
2047-deep output FIFO, pauses, and a DMA burst drains it to memory.
"""

from repro.core import TransferBench
from repro.reporting import format_table

SEQUENCE_LENGTHS = (2047, 8192, 32768)


def run_sequences(system):
    bench = TransferBench(system)
    rows = []
    for n in SEQUENCE_LENGTHS:
        w = bench.dma_write_sequence(n)
        r = bench.dma_read_sequence(n)
        wr = bench.dma_interleaved_sequence(n)
        rows.append([n, w.per_transfer_ns, r.per_transfer_ns, wr.per_transfer_ns])
    return rows


def test_table8_transfer_times_64bit_dma(benchmark, rig64, save_table):
    system, _ = rig64

    rows = benchmark.pedantic(lambda: run_sequences(system), rounds=1, iterations=1)

    text = format_table(
        "Table 8: DMA-controlled transfers, 64-bit system (ns per 64-bit transfer)",
        ["sequence length", "write", "read", "write/read (block-interleaved)"],
        rows,
    )
    save_table("table08_transfers64_dma", text)

    pio = TransferBench(system).pio_write_sequence(4096).per_transfer_ns
    for n, w, r, wr in rows:
        # Each DMA transfer moves 64 bits yet is far cheaper than a 32-bit
        # PIO transfer — the whole reason the PLB Dock grew a DMA engine.
        assert w < pio / 2
        assert wr < 2.5 * (w + r)
    # Longer sequences amortise setup: per-transfer time must not grow.
    assert rows[-1][1] <= rows[0][1] * 1.05

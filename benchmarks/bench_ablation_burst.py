"""Ablation — PLB burst length vs DMA throughput.

The scatter-gather engine moves data in ≤16-beat bursts; each burst pays
arbitration + address once.  Sweeping the maximum burst length shows why
CoreConnect bursts matter: at length 1 every 64-bit word pays full
per-transaction overhead and the DMA advantage largely evaporates.
Thin wrapper around the ``ablation_burst`` scenario.
"""

from repro.scenarios import run_scenario

BURSTS = (1, 2, 4, 8, 16)


def test_ablation_burst_length(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("ablation_burst"), rounds=1, iterations=1
    )
    save_table("ablation_burst", result.table_text())

    times = {burst: ns for burst, ns in result.rows}
    # Monotone improvement with burst length, and >2x from 1 to 16.
    ordered = [times[b] for b in BURSTS]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))
    assert times[1] > 2 * times[16]

"""Ablation — PLB burst length vs DMA throughput.

The scatter-gather engine moves data in ≤16-beat bursts; each burst pays
arbitration + address once.  Sweeping the maximum burst length shows why
CoreConnect bursts matter: at length 1 every 64-bit word pays full
per-transaction overhead and the DMA advantage largely evaporates.
"""

from repro.bus.plb import make_plb
from repro.dock.dma import Descriptor, SgDmaEngine
from repro.dock.plb_dock import PlbDock
from repro.engine.clock import ClockDomain, mhz
from repro.kernels.streams import SinkKernel
from repro.mem.controllers import DdrController
from repro.mem.memory import MemoryArray
from repro.reporting import format_table

BURSTS = (1, 2, 4, 8, 16)
WORDS = 4096
DOCK_BASE = 0x8000_0000


def run_burst(max_beats: int) -> float:
    plb = make_plb(ClockDomain("bus", mhz(100)))
    plb.max_burst_beats = max_beats
    memory = MemoryArray(1 << 20)
    plb.attach(DdrController(memory, 0, "ddr"), 0, 1 << 20, name="ddr")
    dock = PlbDock(DOCK_BASE)
    plb.attach(dock, DOCK_BASE, 0x1_0000, name="dock", posted_writes=True)
    dock.connect_bus(plb)
    dock.attach_kernel(SinkKernel())
    done = dock.dma.run_chain(0, [Descriptor(src=0, dst=None, word_count=WORDS)])
    return done / WORDS / 1000.0  # ns per 64-bit word


def test_ablation_burst_length(benchmark, save_table):
    rows = benchmark.pedantic(
        lambda: [(b, run_burst(b)) for b in BURSTS], rounds=1, iterations=1
    )
    text = format_table(
        f"Ablation: PLB max burst length vs DMA cost ({WORDS} x 64-bit words)",
        ["max burst (beats)", "ns per word"],
        rows,
    )
    save_table("ablation_burst", text)

    times = dict(rows)
    # Monotone improvement with burst length, and >2x from 1 to 16.
    ordered = [times[b] for b in BURSTS]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))
    assert times[1] > 2 * times[16]

"""Ablation — complete vs differential partial bitstreams.

BitLinker emits *complete* configurations (correct regardless of prior
state) "with the side effect of increasing the configuration time".  This
bench quantifies that: load a kernel with a complete bitstream, then load
the next with complete vs differential streams and compare sizes/times.
Thin wrapper around the ``ablation_bitlinker`` scenario.
"""

from repro.scenarios import run_scenario


def test_ablation_bitlinker_complete_vs_differential(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("ablation_bitlinker"), rounds=1, iterations=1
    )
    save_table("ablation_bitlinker", result.table_text())

    # Complete streams are state-independent but bigger and slower to load.
    h = result.headline
    assert h["differential_words"] < h["complete_words"]
    assert h["differential_ps"] < h["complete_ps"]
    assert h["complete_kind"] == "partial-complete"
    assert h["differential_kind"] == "partial-differential"

"""Ablation — complete vs differential partial bitstreams.

BitLinker emits *complete* configurations (correct regardless of prior
state) "with the side effect of increasing the configuration time".  This
bench quantifies that: load a kernel with a complete bitstream, then load
the next with complete vs differential streams and compare sizes/times.
"""

from repro.reporting import format_table


def run(manager):
    rows = []
    first = manager.load("brightness")
    rows.append(["brightness (complete, cold)", first.frame_count, first.word_count,
                 first.elapsed_ps / 1e9])
    complete = manager.load("lookup2")
    rows.append(["lookup2 (complete)", complete.frame_count, complete.word_count,
                 complete.elapsed_ps / 1e9])
    manager.load("brightness")  # reset state
    differential = manager.load("lookup2", differential=True)
    rows.append(["lookup2 (differential)", differential.frame_count,
                 differential.word_count, differential.elapsed_ps / 1e9])
    return rows, complete, differential


def test_ablation_bitlinker_complete_vs_differential(benchmark, rig32, save_table):
    _, manager = rig32
    rows, complete, differential = benchmark.pedantic(
        lambda: run(manager), rounds=1, iterations=1
    )
    text = format_table(
        "Ablation: complete vs differential partial bitstreams (32-bit system)",
        ["load", "frames", "words", "time (ms)"],
        rows,
    )
    save_table("ablation_bitlinker", text)

    # Complete streams are state-independent but bigger and slower to load.
    assert differential.word_count < complete.word_count
    assert differential.elapsed_ps < complete.elapsed_ps
    assert complete.kind == "partial-complete"
    assert differential.kind == "partial-differential"

"""Table 5 — Speedups for simple image processing tasks (32-bit system).

Brightness adjustment, additive blending and the fade effect on 8-bit
grayscale images.  The last two tasks require the CPU to combine two
source images before sending data to the dynamic area, which caps their
speedups; blending is the simpler operation and benefits least.
Thin wrapper around the ``table05_image32`` scenario.
"""

from repro.scenarios import run_scenario


def test_table5_image_tasks_32bit(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("table05_image32"), rounds=1, iterations=1
    )
    save_table("table05_image32", result.table_text())

    speedups = {row[0]: row[-1] for row in result.rows}
    assert all(s > 1 for s in speedups.values())
    # Blend (the simpler two-source op) benefits least.
    assert speedups["additive blending"] < speedups["fade effect"]
    assert speedups["additive blending"] < speedups["brightness"]

"""Table 5 — Speedups for simple image processing tasks (32-bit system).

Brightness adjustment, additive blending and the fade effect on 8-bit
grayscale images.  The last two tasks require the CPU to combine two
source images before sending data to the dynamic area, which caps their
speedups; blending is the simpler operation and benefits least.
"""

import numpy as np

from repro.core.apps import HwBlendPio, HwBrightnessPio, HwFadePio
from repro.sw import SwBlend, SwBrightness, SwFade
from repro.reporting import format_table
from repro.workloads import grayscale_image

#: Must match the kernels registered in conftest.py.
BRIGHTNESS_CONSTANT = 48
FADE_FACTOR = 0.5

IMAGE = (96, 96)


def run_tasks(system, manager):
    a = grayscale_image(*IMAGE, seed=1)
    b = grayscale_image(*IMAGE, seed=2)
    rows = []

    manager.load("brightness")
    hw = HwBrightnessPio().run(system, a)
    sw = SwBrightness(BRIGHTNESS_CONSTANT).run(system, a)
    assert np.array_equal(hw.result, sw.result)
    rows.append(["brightness", sw.elapsed_ps / 1e6, hw.elapsed_ps / 1e6,
                 sw.elapsed_ps / hw.elapsed_ps])

    manager.load("blend")
    hw = HwBlendPio().run(system, a, b)
    sw = SwBlend().run(system, a, b)
    assert np.array_equal(hw.result, sw.result)
    rows.append(["additive blending", sw.elapsed_ps / 1e6, hw.elapsed_ps / 1e6,
                 sw.elapsed_ps / hw.elapsed_ps])

    manager.load("fade")
    hw = HwFadePio().run(system, a, b)
    sw = SwFade(FADE_FACTOR).run(system, a, b)
    assert np.array_equal(hw.result, sw.result)
    rows.append(["fade effect", sw.elapsed_ps / 1e6, hw.elapsed_ps / 1e6,
                 sw.elapsed_ps / hw.elapsed_ps])
    return rows


def test_table5_image_tasks_32bit(benchmark, rig32, save_table):
    system, manager = rig32

    rows = benchmark.pedantic(lambda: run_tasks(system, manager), rounds=1, iterations=1)

    text = format_table(
        f"Table 5: Speedups for simple image processing tasks (32-bit, {IMAGE[0]}x{IMAGE[1]})",
        ["task", "software (us)", "hardware (us)", "speedup"],
        rows,
    )
    save_table("table05_image32", text)

    speedups = {row[0]: row[-1] for row in rows}
    assert all(s > 1 for s in speedups.values())
    # Blend (the simpler two-source op) benefits least.
    assert speedups["additive blending"] < speedups["fade effect"]
    assert speedups["additive blending"] < speedups["brightness"]

"""Table 10 — Hash function on the 64-bit system.

Unmodified 32-bit method (CPU-controlled transfers).  Both software and
hardware improve; the hardware speedup ends up "only ... slightly better"
than on the 32-bit system.
"""

from repro.core.apps import HwJenkinsHash
from repro.sw import SwJenkinsHash
from repro.reporting import format_table
from repro.workloads import random_key

KEY_LENGTHS = (256, 1024, 4096, 16384)


def run_lengths(system, manager):
    manager.load("lookup2")
    rows = []
    for length in KEY_LENGTHS:
        key = random_key(length, seed=length)
        hw = HwJenkinsHash().run(system, key)
        sw = SwJenkinsHash().run(system, key)
        assert hw.result == sw.result
        rows.append(
            [length, sw.elapsed_ps / 1e6, hw.elapsed_ps / 1e6, sw.elapsed_ps / hw.elapsed_ps]
        )
    return rows


def test_table10_hash_64bit(benchmark, rig32, rig64, save_table):
    system64, manager64 = rig64
    system32, manager32 = rig32

    rows64 = benchmark.pedantic(
        lambda: run_lengths(system64, manager64), rounds=1, iterations=1
    )
    rows32 = run_lengths(system32, manager32)

    merged = [r64 + [r32[-1]] for r64, r32 in zip(rows64, rows32)]
    text = format_table(
        "Table 10: Results for hash function lookup2 (64-bit system)",
        ["key bytes", "software (us)", "hardware (us)", "speedup", "(32-bit speedup)"],
        merged,
    )
    save_table("table10_hash64", text)

    for r64, r32 in zip(rows64[1:], rows32[1:]):
        assert r64[-1] > r32[-1]  # slightly better speedup
        assert r64[-1] < 2.5  # ... but still transfer-limited

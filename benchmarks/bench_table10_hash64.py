"""Table 10 — Hash function on the 64-bit system.

Unmodified 32-bit method (CPU-controlled transfers).  Both software and
hardware improve; the hardware speedup ends up "only ... slightly better"
than on the 32-bit system.  Thin wrapper around the ``table10_hash64``
scenario, whose rows carry both systems' speedups.
"""

from repro.scenarios import run_scenario


def test_table10_hash_64bit(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("table10_hash64"), rounds=1, iterations=1
    )
    save_table("table10_hash64", result.table_text())

    for row in result.rows[1:]:  # [..., speedup64, speedup32]
        assert row[-2] > row[-1]  # slightly better speedup
        assert row[-2] < 2.5  # ... but still transfer-limited

"""Host-wall-clock perf bench for the Monte-Carlo fault campaigns.

Runs the headline campaign — ≥100,000 trials (25,000 per default kind,
seed 2006) on the calibrated 64-bit rig — through both executors:

* **batch** — vectorized closed-form classification
  (:mod:`repro.faults.montecarlo`);
* **reference** — the per-trial scalar loop that defines the semantics.

Both consume the identical sampled fault load; the bench enforces that
their ``TrialResult`` streams and reports are byte-identical, that the
batched path beats the reference by the ``--check`` speedup floor, and
that the whole campaign (calibration simulations included) fits the
end-to-end budget.  Writes ``benchmarks/results/BENCH_faults.json``
(recovery rates and vulnerability factors with Wilson 95% intervals)
plus the vulnerability heatmap artifact
``benchmarks/results/fault_heatmap.txt``.

Run directly (report-only)::

    PYTHONPATH=src python benchmarks/bench_perf_faults.py

or with ``--check`` to enforce the floors in CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.faults.heatmap import empirical_vulnerability, render_heatmap  # noqa: E402
from repro.faults.montecarlo import calibrate_rig, run_mc_campaign  # noqa: E402
from repro.faults.sampling import DEFAULT_MC_KINDS  # noqa: E402
from repro.scenarios.rigs import build_rig64  # noqa: E402

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results", "BENCH_faults.json")
HEATMAP_PATH = os.path.join(os.path.dirname(__file__), "results", "fault_heatmap.txt")

#: --check floor: batched speedup over the per-trial reference on the
#: headline campaign (measured far higher on the dev container).
SPEEDUP_FLOOR = 10.0

#: --check floor: headline campaign size (trials across all kinds).
MIN_TOTAL_TRIALS = 100_000

#: --check budget: whole campaign end-to-end (calibration + both
#: executors + equivalence), host seconds.
END_TO_END_BUDGET_S = 120.0


def run(check: bool, trials: int, seed: int) -> int:
    failures = []
    total_requested = trials * len(DEFAULT_MC_KINDS)
    if check and total_requested < MIN_TOTAL_TRIALS:
        failures.append(
            f"headline campaign has {total_requested} trials "
            f"< {MIN_TOTAL_TRIALS} floor"
        )

    wall0 = time.perf_counter()
    t0 = time.perf_counter()
    rig = calibrate_rig(build_rig64, kernel="brightness", max_attempts=3)
    calibration_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batch = run_mc_campaign(
        rig=rig, kinds=DEFAULT_MC_KINDS, trials=trials, seed=seed,
        executor="batch",
    )
    batch_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    reference = run_mc_campaign(
        rig=rig, kinds=DEFAULT_MC_KINDS, trials=trials, seed=seed,
        executor="reference",
    )
    reference_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    stream_equal = batch.trial_results() == reference.trial_results()
    report_equal = batch.to_dict() == reference.to_dict()
    if not stream_equal:
        failures.append(
            "batched executor diverged from the reference TrialResult stream"
        )
    if not report_equal:
        failures.append("batched report diverged from the reference report")
    equivalence_s = time.perf_counter() - t0
    end_to_end_s = time.perf_counter() - wall0

    speedup = reference_s / batch_s if batch_s else float("inf")
    rate = batch.total_trials / batch_s if batch_s else float("inf")
    print(
        f"headline ({batch.total_trials} trials, {len(DEFAULT_MC_KINDS)} kinds, "
        f"seed {seed}): batch {batch_s:7.3f} s  reference {reference_s:7.3f} s  "
        f"speedup {speedup:6.1f}x  ({rate / 1e6:.2f} M trials/s batched)"
    )
    print(
        f"  calibration {calibration_s:.2f} s "
        f"({5 + rig.model.max_attempts} simulations), "
        f"equivalence check {equivalence_s:.2f} s, "
        f"end-to-end {end_to_end_s:.2f} s"
    )
    for entry in batch.kind_summary():
        lo, hi = entry["recovery_ci95"]
        print(
            f"  {entry['kind']:12s} recovery {entry['recovery_rate']:.4f} "
            f"[{lo:.4f}, {hi:.4f}] over {entry['trials']} trial(s)"
        )
    overall = next(
        s for s in batch.strata() if s["kind"] == "upset" and s["region"] == "all"
    )
    lo, hi = overall["vulnerability_ci95"]
    print(
        f"  vulnerability {overall['vulnerability']:.4f} [{lo:.4f}, {hi:.4f}] "
        f"(analytic {overall['analytic_vulnerability']:.4f})"
    )

    if check and speedup < SPEEDUP_FLOOR:
        failures.append(f"speedup {speedup:.1f}x < {SPEEDUP_FLOOR:.0f}x floor")
    if check and end_to_end_s > END_TO_END_BUDGET_S:
        failures.append(
            f"end-to-end {end_to_end_s:.1f} s > {END_TO_END_BUDGET_S:.0f} s budget"
        )
    if not (lo <= overall["analytic_vulnerability"] <= hi):
        failures.append(
            f"vulnerability CI [{lo:.4f}, {hi:.4f}] excludes the analytic "
            f"fraction {overall['analytic_vulnerability']:.4f}"
        )

    report = {
        "schema": "repro-faults-bench/1",
        "unit": "host seconds per campaign",
        "workload": (
            f"{trials} trials x {len(DEFAULT_MC_KINDS)} kinds, seed {seed}, "
            "64-bit rig"
        ),
        "trials_total": batch.total_trials,
        "host_s_calibration": round(calibration_s, 6),
        "host_s_batch": round(batch_s, 6),
        "host_s_reference": round(reference_s, 6),
        "host_s_end_to_end": round(end_to_end_s, 6),
        "speedup": round(speedup, 2),
        "trials_per_s_batch": round(rate, 1),
        "equivalent": bool(stream_equal and report_equal),
        **batch.to_dict(),
    }

    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {RESULTS_PATH}")

    strikes, criticals = batch.frame_tallies()
    heatmap = "\n\n".join(
        [
            render_heatmap(
                rig.space,
                empirical_vulnerability(rig.space, strikes, criticals),
                title=f"empirical, {batch.trials_run['upset']} upset trial(s), "
                f"seed {seed}",
            ),
            render_heatmap(rig.space),
        ]
    )
    with open(HEATMAP_PATH, "w") as handle:
        handle.write(heatmap)
        handle.write("\n")
    print(f"wrote {HEATMAP_PATH}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="enforce the speedup/size/budget floors (default: report-only)",
    )
    parser.add_argument(
        "--trials", type=int, default=25_000, help="trials per fault kind"
    )
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args()
    return run(check=args.check, trials=args.trials, seed=args.seed)


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation — reconfiguration amortisation (the time-sharing economics).

The paper's opening motivation is time-sharing the fabric between
mutually exclusive tasks; every swap costs a full partial configuration.
This bench measures, per task and system, how many runs amortise one
swap — the batch size below which software remains the right choice.
"""

from repro.analysis import break_even_runs, measure_episode
from repro.core.apps import HwBrightnessPio, HwJenkinsHash, HwPatternMatch
from repro.reporting import format_table
from repro.sw import SwBrightness, SwJenkinsHash, SwPatternMatch
from repro.workloads import binary_image, grayscale_image, random_key


def run(system, manager, pattern):
    image = binary_image(16, 64, seed=6)
    gray = grayscale_image(64, 64, seed=6)
    key = random_key(4096, seed=6)
    rows = []
    for kernel, sw_task, hw_driver, args in (
        ("patmatch", SwPatternMatch(pattern), HwPatternMatch(), (image,)),
        ("brightness", SwBrightness(48), HwBrightnessPio(), (gray,)),
        ("lookup2", SwJenkinsHash(), HwJenkinsHash(), (key,)),
    ):
        costs = measure_episode(system, manager, kernel, sw_task, hw_driver, *args)
        runs = break_even_runs(costs["reconfig_ps"], costs["sw_run_ps"], costs["hw_run_ps"])
        rows.append(
            [
                kernel,
                costs["reconfig_ps"] / 1e9,
                costs["sw_run_ps"] / 1e6,
                costs["hw_run_ps"] / 1e6,
                "never" if runs == float("inf") else f"{runs:.1f}",
            ]
        )
    return rows


def test_ablation_amortization(benchmark, rig32, pattern, save_table):
    system, manager = rig32
    rows = benchmark.pedantic(lambda: run(system, manager, pattern), rounds=1, iterations=1)
    text = format_table(
        "Ablation: runs needed to amortise one reconfiguration (32-bit system)",
        ["task", "reconfig (ms)", "sw/run (us)", "hw/run (us)", "break-even runs"],
        rows,
    )
    save_table("ablation_amortization", text)

    values = {row[0]: row[4] for row in rows}
    # Pattern matching amortises in very few runs; the hash, with its ~1x
    # speedup, effectively never does.
    assert float(values["patmatch"]) < 15
    assert values["lookup2"] == "never" or float(values["lookup2"]) > 500

"""Ablation — reconfiguration amortisation (the time-sharing economics).

The paper's opening motivation is time-sharing the fabric between
mutually exclusive tasks; every swap costs a full partial configuration.
This bench measures, per task and system, how many runs amortise one
swap — the batch size below which software remains the right choice.
Thin wrapper around the ``ablation_amortization`` scenario.
"""

from repro.scenarios import run_scenario


def test_ablation_amortization(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("ablation_amortization"), rounds=1, iterations=1
    )
    save_table("ablation_amortization", result.table_text())

    values = {row[0]: row[4] for row in result.rows}
    # Pattern matching amortises in very few runs; the hash, with its ~1x
    # speedup, effectively never does.
    assert float(values["patmatch"]) < 15
    assert values["lookup2"] == "never" or float(values["lookup2"]) > 500

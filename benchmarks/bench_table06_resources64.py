"""Table 6 — Resource usage of the 64-bit system.

Same inventory as Table 1 for the XC2VP30 design; the PLB Dock line item
is visibly larger than the OPB Dock's (DMA controller + output FIFO +
interrupt generator).  Thin wrapper around the ``table06_resources64``
scenario.
"""

from repro.dock.opb_dock import OpbDock
from repro.dock.plb_dock import PlbDock
from repro.scenarios import run_scenario


def test_table6_resource_usage_64bit(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("table06_resources64"), rounds=1, iterations=1
    )
    save_table("table06_resources64", result.table_text())

    assert PlbDock.RESOURCES.slices > OpbDock.RESOURCES.slices
    h = result.headline
    assert h["static_slices"] > 0
    assert h["region_slices"] == 3072
    assert h["region_bram"] == 22

"""Table 6 — Resource usage of the 64-bit system.

Same inventory as Table 1 for the XC2VP30 design; the PLB Dock line item
is visibly larger than the OPB Dock's (DMA controller + output FIFO +
interrupt generator).
"""

from repro.dock.opb_dock import OpbDock
from repro.dock.plb_dock import PlbDock
from repro.reporting import format_table


def build_rows(system):
    rows = []
    for entry in system.modules:
        rows.append(
            [entry.name, entry.resources.slices, entry.resources.bram_blocks, entry.bus, entry.note]
        )
    static = system.static_resources()
    region = system.region.resources
    rows.append(["-- static total --", static.slices, static.bram_blocks, "", ""])
    rows.append(["-- dynamic area --", region.slices, region.bram_blocks, "", "32x24 CLBs, 22.4%"])
    cap = system.device.capacity
    rows.append(["-- device (XC2VP30) --", cap.slices, cap.bram_blocks, "", "speed grade -7"])
    return rows


def test_table6_resource_usage_64bit(benchmark, rig64, save_table):
    system, _ = rig64

    rows = benchmark.pedantic(lambda: build_rows(system), rounds=1, iterations=1)

    text = format_table(
        "Table 6: Resource usage (64-bit system)",
        ["module", "slices", "BRAM", "bus", "note"],
        rows,
    )
    save_table("table06_resources64", text)

    assert PlbDock.RESOURCES.slices > OpbDock.RESOURCES.slices
    assert system.static_resources().slices > 0
    assert system.region.resources.slices == 3072
    assert system.region.resources.bram_blocks == 22

"""Ablation — the PLB-OPB bridge in the data path.

Compares a read/write against the same SRAM controller reached directly on
the OPB vs through the bridge from the PLB — isolating the third factor of
the paper's 4-6x transfer improvement (beyond the x2 bus and x1.5 CPU
clocks).
"""

from repro.bus.bridge import PlbOpbBridge
from repro.bus.opb import make_opb
from repro.bus.plb import make_plb
from repro.bus.transaction import Op, Transaction
from repro.engine.clock import ClockDomain, mhz
from repro.mem.controllers import SramController
from repro.mem.memory import MemoryArray
from repro.reporting import format_table


def measure():
    clock = ClockDomain("bus", mhz(50))
    plb = make_plb(clock)
    opb = make_opb(clock)
    memory = MemoryArray(65536)
    opb.attach(SramController(memory, 0, "sram"), 0, 65536, name="sram")
    bridge = PlbOpbBridge(plb, opb)
    plb.attach(bridge, 0, 65536, name="bridge", posted_writes=True)

    def latency(bus, op):
        start = bus.clock.next_edge(max(0, bus.busy_until))
        completion = bus.request(start, Transaction(op, 0x100, data=1 if op is Op.WRITE else None))
        return (completion.master_free_ps - start) / 1000.0

    return {
        "direct OPB read": latency(opb, Op.READ),
        "bridged read": latency(plb, Op.READ),
        "direct OPB write": latency(opb, Op.WRITE),
        "bridged write (posted)": latency(plb, Op.WRITE),
    }


def test_ablation_bridge_latency(benchmark, save_table):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_table(
        "Ablation: PLB-OPB bridge cost (50 MHz buses, ns per access)",
        ["path", "latency (ns)"],
        [[k, v] for k, v in results.items()],
    )
    save_table("ablation_bridge", text)
    # Reads pay the full store-and-forward round trip ...
    assert results["bridged read"] > results["direct OPB read"] * 1.5
    # ... while the bridge's write buffer hides the crossing from the master
    # (sustained streams are still OPB-rate-limited; see the bridge tests).
    assert results["bridged write (posted)"] <= results["direct OPB write"]

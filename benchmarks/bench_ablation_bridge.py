"""Ablation — the PLB-OPB bridge in the data path.

Compares a read/write against the same SRAM controller reached directly on
the OPB vs through the bridge from the PLB — isolating the third factor of
the paper's 4-6x transfer improvement (beyond the x2 bus and x1.5 CPU
clocks).  Thin wrapper around the ``ablation_bridge`` scenario.
"""

from repro.scenarios import run_scenario


def test_ablation_bridge_latency(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("ablation_bridge"), rounds=1, iterations=1
    )
    save_table("ablation_bridge", result.table_text())

    results = result.headline
    # Reads pay the full store-and-forward round trip ...
    assert results["bridged read"] > results["direct OPB read"] * 1.5
    # ... while the bridge's write buffer hides the crossing from the master
    # (sustained streams are still OPB-rate-limited; see the bridge tests).
    assert results["bridged write (posted)"] <= results["direct OPB write"]

"""Table 12 — Image processing tasks on the 64-bit system (64-bit DMA).

Brightness uses the full 64-bit DMA path "without additional work" and its
speedup clearly increases over Table 5.  Blend and fade must first have
their two source images combined by the CPU — the "data preparation" row —
so their speedup increase is significantly smaller.
"""

import numpy as np

from repro.core.apps import (
    HwBlendDma,
    HwBlendPio,
    HwBrightnessDma,
    HwBrightnessPio,
    HwFadeDma,
    HwFadePio,
)
from repro.sw import SwBlend, SwBrightness, SwFade
from repro.reporting import format_table
from repro.workloads import grayscale_image

#: Must match the kernels registered in conftest.py.
BRIGHTNESS_CONSTANT = 48
FADE_FACTOR = 0.5

IMAGE = (96, 96)


def run_tasks(system, manager, drivers):
    a = grayscale_image(*IMAGE, seed=1)
    b = grayscale_image(*IMAGE, seed=2)
    rows = []

    manager.load("brightness")
    hw = drivers[0]().run(system, a)
    sw = SwBrightness(BRIGHTNESS_CONSTANT).run(system, a)
    assert np.array_equal(hw.result, sw.result)
    rows.append(["brightness", sw.elapsed_ps / 1e6, hw.elapsed_ps / 1e6, 0.0,
                 sw.elapsed_ps / hw.elapsed_ps])

    manager.load("blend")
    hw = drivers[1]().run(system, a, b)
    sw = SwBlend().run(system, a, b)
    assert np.array_equal(hw.result, sw.result)
    rows.append(["additive blending", sw.elapsed_ps / 1e6, hw.elapsed_ps / 1e6,
                 hw.breakdown.get("data_preparation_ps", 0) / 1e6,
                 sw.elapsed_ps / hw.elapsed_ps])

    manager.load("fade")
    hw = drivers[2]().run(system, a, b)
    sw = SwFade(FADE_FACTOR).run(system, a, b)
    assert np.array_equal(hw.result, sw.result)
    rows.append(["fade effect", sw.elapsed_ps / 1e6, hw.elapsed_ps / 1e6,
                 hw.breakdown.get("data_preparation_ps", 0) / 1e6,
                 sw.elapsed_ps / hw.elapsed_ps])
    return rows


def test_table12_image_tasks_64bit(benchmark, rig32, rig64, save_table):
    system64, manager64 = rig64
    system32, manager32 = rig32

    rows64 = benchmark.pedantic(
        lambda: run_tasks(system64, manager64, (HwBrightnessDma, HwBlendDma, HwFadeDma)),
        rounds=1,
        iterations=1,
    )
    rows32 = run_tasks(system32, manager32, (HwBrightnessPio, HwBlendPio, HwFadePio))

    merged = [r64 + [r32[-1]] for r64, r32 in zip(rows64, rows32)]
    text = format_table(
        f"Table 12: Image tasks, 64-bit system with DMA ({IMAGE[0]}x{IMAGE[1]})",
        ["task", "software (us)", "hardware (us)", "data preparation (us)",
         "speedup", "(32-bit speedup)"],
        merged,
    )
    save_table("table12_image64", text)

    s64 = {row[0]: row[-1] for row in rows64}
    s32 = {row[0]: row[-1] for row in rows32}
    # "a clear increase of the speedup" for brightness...
    assert s64["brightness"] > 2 * s32["brightness"]
    # ...and a significantly smaller increase for the two-source tasks.
    for task in ("additive blending", "fade effect"):
        assert s64[task] >= s32[task] * 0.95
        assert s64[task] / s32[task] < (s64["brightness"] / s32["brightness"]) / 1.5
    # Data preparation appears only for the two-source tasks.
    prep = {row[0]: row[3] for row in rows64}
    assert prep["brightness"] == 0.0
    assert prep["additive blending"] > 0
    assert prep["fade effect"] > 0

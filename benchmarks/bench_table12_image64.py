"""Table 12 — Image processing tasks on the 64-bit system (64-bit DMA).

Brightness uses the full 64-bit DMA path "without additional work" and its
speedup clearly increases over Table 5.  Blend and fade must first have
their two source images combined by the CPU — the "data preparation" row —
so their speedup increase is significantly smaller.  Thin wrapper around
the ``table12_image64`` scenario, whose rows carry both systems' speedups.
"""

from repro.scenarios import run_scenario


def test_table12_image_tasks_64bit(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("table12_image64"), rounds=1, iterations=1
    )
    save_table("table12_image64", result.table_text())

    # rows: [task, sw, hw, prep, speedup64, speedup32]
    s64 = {row[0]: row[-2] for row in result.rows}
    s32 = {row[0]: row[-1] for row in result.rows}
    # "a clear increase of the speedup" for brightness...
    assert s64["brightness"] > 2 * s32["brightness"]
    # ...and a significantly smaller increase for the two-source tasks.
    for task in ("additive blending", "fade effect"):
        assert s64[task] >= s32[task] * 0.95
        assert s64[task] / s32[task] < (s64["brightness"] / s32["brightness"]) / 1.5
    # Data preparation appears only for the two-source tasks.
    prep = {row[0]: row[3] for row in result.rows}
    assert prep["brightness"] == 0.0
    assert prep["additive blending"] > 0
    assert prep["fade effect"] > 0

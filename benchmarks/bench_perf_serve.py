"""Host-wall-clock perf bench for the multi-tenant serve scheduler.

Simulates the headline trace — ≥1,000,000 Poisson requests against the
64-bit rig's calibrated cost table — through both scheduler paths:

* **fast** — the vectorized engine (:mod:`repro.serve.engine`);
* **reference** — the scalar per-request interpreter behind
  ``REPRO_NO_FAST_PATH``.

The two paths must agree on every simulated observable (per-request
decisions, finish timestamps, segment structure, allocator stats); the
fast path must beat the reference by the ``--check`` floor.  Every queue
× residency policy combination is additionally reported (fast path only)
with its service report and reconfiguration-amortization curve.  Writes
``benchmarks/results/BENCH_serve.json``.

Run directly (report-only)::

    PYTHONPATH=src python benchmarks/bench_perf_serve.py

or with ``--check`` to enforce the floors in CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.engine import fastpath  # noqa: E402
from repro.scenarios.serve import POLICY_COMBOS, build_serve_inputs  # noqa: E402
from repro.serve.engine import ServeConfig, simulate  # noqa: E402
from repro.serve.report import ServeReport  # noqa: E402

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results", "BENCH_serve.json")

#: --check floor: fast-path speedup over the scalar reference on the
#: headline trace (measured ~16-17x on the dev container).
SPEEDUP_FLOOR = 10.0

#: --check floor: headline trace length.
MIN_REQUESTS = 1_000_000

_MS = 1_000_000_000


def _simulate_timed(trace, table, config, fast: bool):
    """One timed simulation; calibration and trace generation stay outside."""
    context = fastpath.forced_on() if fast else fastpath.disabled()
    with context:
        start = time.perf_counter()
        outcome = simulate(trace, table, config)
        elapsed = time.perf_counter() - start
    return outcome, elapsed


def run(check: bool, requests: int, seed: int) -> int:
    failures = []
    if check and requests < MIN_REQUESTS:
        failures.append(
            f"headline trace has {requests} requests < {MIN_REQUESTS} floor"
        )

    t0 = time.perf_counter()
    table, trace = build_serve_inputs(requests, seed, "poisson", 0.7)
    setup_s = time.perf_counter() - t0

    headline_config = ServeConfig(queue="fifo", residency="lru")
    fast_outcome, fast_s = _simulate_timed(trace, table, headline_config, fast=True)
    ref_outcome, ref_s = _simulate_timed(trace, table, headline_config, fast=False)

    if fast_outcome.observables() != ref_outcome.observables():
        failures.append(
            "fast and reference paths diverged on the headline observables"
        )
    fast_report = ServeReport.from_outcome(fast_outcome)
    ref_report = ServeReport.from_outcome(ref_outcome)
    if fast_report.to_dict() != ref_report.to_dict():
        failures.append("fast and reference service reports diverged")

    speedup = ref_s / fast_s if fast_s else float("inf")
    rate = requests / fast_s if fast_s else float("inf")
    print(
        f"headline ({requests} requests, fifo/lru): "
        f"fast {fast_s:7.3f} s  reference {ref_s:7.3f} s  "
        f"speedup {speedup:5.1f}x  ({rate / 1e6:.2f} M req/s fast path)"
    )
    print(
        f"  p50 {fast_report.p50_ps / _MS:6.2f} ms  "
        f"p99 {fast_report.p99_ps / _MS:6.2f} ms  "
        f"p99.9 {fast_report.p999_ps / _MS:6.2f} ms  "
        f"util {fast_report.utilization:.3f}"
    )
    if check and speedup < SPEEDUP_FLOOR:
        failures.append(
            f"headline speedup {speedup:.1f}x < {SPEEDUP_FLOOR:.0f}x floor"
        )

    policies = []
    for queue, residency in POLICY_COMBOS:
        config = ServeConfig(queue=queue, residency=residency)
        outcome, host_s = _simulate_timed(trace, table, config, fast=True)
        report = ServeReport.from_outcome(outcome)
        policies.append({"host_s_fast": round(host_s, 6), **report.to_dict()})
        print(
            f"  {queue:>8}/{residency:<6}: p99 {report.p99_ps / _MS:6.2f} ms  "
            f"util {report.utilization:.3f}  sw-share {report.software_share:.3f}  "
            f"({host_s:6.3f} s)"
        )

    report = {
        "schema": "repro-serve-bench/1",
        "unit": "host seconds per simulation",
        "workload": f"{requests} poisson requests, target util 0.7, seed {seed}",
        "requests": requests,
        "setup_s": round(setup_s, 6),
        "headline": {
            "host_s_fast": round(fast_s, 6),
            "host_s_reference": round(ref_s, 6),
            "speedup": round(speedup, 2),
            "requests_per_s_fast": round(rate, 1),
            **fast_report.to_dict(),
        },
        "policies": policies,
    }

    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {RESULTS_PATH}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="enforce the speedup and trace-size floors (default: report-only)",
    )
    parser.add_argument("--requests", type=int, default=MIN_REQUESTS)
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args()
    return run(check=args.check, requests=args.requests, seed=args.seed)


if __name__ == "__main__":
    raise SystemExit(main())

"""Host-wall-clock perf bench for the reconfiguration datapath.

Times repeated load/swap/clear cycles on the 64-bit system (the
``perf_reconfig`` scenario's workload) with the vectorized reconfiguration
datapath on and off, verifies the two paths agree on every simulated
observable, and writes ``benchmarks/results/perf_reconfig.json``.

Run directly (report-only)::

    PYTHONPATH=src python benchmarks/bench_perf_reconfig.py

or with ``--check`` to additionally enforce the >=10x fast-path speedup
floor on the 64-bit complete-bitstream load (the reference path is the
seed implementation's word-by-word code path).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.engine import fastpath  # noqa: E402
from repro.scenarios.rigs import build_rig64  # noqa: E402

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results", "perf_reconfig.json")

KERNEL = "brightness"
ALTERNATE = "lookup2"

#: Phases checked/reported, with the speedup floor --check enforces.
FLOORS = {"complete_load": 10.0}


def _run_cycles(fast: bool, cycles: int):
    """One timed run: returns per-phase host seconds + simulated observables."""
    context = fastpath.forced_on() if fast else fastpath.disabled()
    with context:
        system, manager = build_rig64()  # rig build stays outside the timers
        host = {"complete_load": 0.0, "differential_load": 0.0, "clear": 0.0}
        results = []
        for _ in range(cycles):
            start = time.perf_counter()
            load = manager.load(KERNEL)
            host["complete_load"] += time.perf_counter() - start
            start = time.perf_counter()
            diff = manager.load(ALTERNATE, differential=True)
            host["differential_load"] += time.perf_counter() - start
            start = time.perf_counter()
            clear = manager.clear()
            host["clear"] += time.perf_counter() - start
            results.extend([load, diff, clear])
        observables = {
            "now_ps": system.cpu.now_ps,
            "results": [
                (r.kernel_name, r.kind, r.frame_count, r.word_count, r.elapsed_ps)
                for r in results
            ],
            "frames_written": system.hwicap.frames_written,
            "crc_failures": system.hwicap.crc_failures,
            "memory_writes": system.config_memory.writes,
            "memory_reads": system.config_memory.reads,
            "icap_stats": system.hwicap.stats.snapshot(),
        }
    return host, observables


def run(check: bool, cycles: int) -> int:
    fast_host, fast_obs = _run_cycles(fast=True, cycles=cycles)
    slow_host, slow_obs = _run_cycles(fast=False, cycles=cycles)

    failures = []
    if fast_obs != slow_obs:
        for key in fast_obs:
            if fast_obs[key] != slow_obs[key]:
                failures.append(
                    f"observable {key!r} diverged between fast and reference paths"
                )

    report = {
        "unit": "host seconds per phase",
        "cycles": cycles,
        "workload": f"{cycles} x (load {KERNEL}, differential {ALTERNATE}, clear) on system64",
        "phases": [],
        "speedups": {},
        "simulated_total_ps": slow_obs["now_ps"],
    }
    for phase in ("complete_load", "differential_load", "clear"):
        speedup = slow_host[phase] / fast_host[phase] if fast_host[phase] else float("inf")
        report["phases"].append(
            {
                "phase": phase,
                "host_s_fast": round(fast_host[phase], 6),
                "host_s_reference": round(slow_host[phase], 6),
                "speedup": round(speedup, 2),
            }
        )
        report["speedups"][phase] = round(speedup, 2)
        print(
            f"{phase:>18}: fast {fast_host[phase] * 1e3:8.2f} ms  "
            f"reference {slow_host[phase] * 1e3:8.2f} ms  speedup {speedup:6.1f}x"
        )
        floor = FLOORS.get(phase)
        if check and floor is not None and speedup < floor:
            failures.append(f"{phase} speedup {speedup:.1f}x < {floor:.0f}x floor")

    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {RESULTS_PATH}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="enforce the speedup floors (default: report-only)",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=2,
        help="load/swap/clear cycles per path (default: 2)",
    )
    args = parser.parse_args()
    return run(check=args.check, cycles=args.cycles)


if __name__ == "__main__":
    raise SystemExit(main())

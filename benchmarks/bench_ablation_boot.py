"""Ablation — full external reload vs partial internal reconfiguration.

The external SelectMAP port moves bytes an order of magnitude faster than
the OPB HWICAP, yet the paper's systems never use it at run time: a full
reload destroys the CPU, memory and I/O state.  The partial path trades
raw bandwidth for keeping the system alive — the whole premise quantified.
"""

from repro.core.boot import compare_reconfiguration
from repro.reporting import format_table


def test_ablation_boot_vs_partial(benchmark, rig32, save_table):
    system, manager = rig32
    comparison = benchmark.pedantic(
        lambda: compare_reconfiguration(system, manager, "brightness"),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            "full reload (SelectMAP)",
            comparison.boot.byte_size / 1024,
            comparison.boot.load_ms,
            "destroyed",
        ],
        [
            "partial (OPB HWICAP)",
            comparison.partial_byte_size / 1024,
            comparison.partial_load_ps / 1e9,
            "keeps running",
        ],
    ]
    text = format_table(
        "Ablation: full boot-time reload vs run-time partial reconfiguration "
        "(32-bit system)",
        ["path", "KiB", "load (ms)", "system state"],
        rows,
    )
    save_table("ablation_boot", text + "\n\n" + comparison.summary())

    # The external port is much faster per byte...
    assert comparison.bandwidth_ratio > 3
    # ...and the full image is bigger than the partial one...
    assert comparison.boot.byte_size > comparison.partial_byte_size
    # ...but only the partial path leaves the system running.
    assert comparison.partial_keeps_system_alive
    assert comparison.boot.destroys_system_state

"""Ablation — full external reload vs partial internal reconfiguration.

The external SelectMAP port moves bytes an order of magnitude faster than
the OPB HWICAP, yet the paper's systems never use it at run time: a full
reload destroys the CPU, memory and I/O state.  The partial path trades
raw bandwidth for keeping the system alive — the whole premise quantified.
Thin wrapper around the ``ablation_boot`` scenario.
"""

from repro.scenarios import run_scenario


def test_ablation_boot_vs_partial(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("ablation_boot"), rounds=1, iterations=1
    )
    save_table("ablation_boot", result.table_text())

    h = result.headline
    # The external port is much faster per byte...
    assert h["bandwidth_ratio"] > 3
    # ...and the full image is bigger than the partial one...
    assert h["boot_bytes"] > h["partial_bytes"]
    # ...but only the partial path leaves the system running.
    assert h["partial_keeps_system_alive"]
    assert h["boot_destroys_system_state"]

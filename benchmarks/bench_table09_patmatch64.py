"""Table 9 — Pattern matching on the 64-bit system.

The 32-bit implementation transferred "without any modifications": still
CPU-controlled transfers, no use of the wider bus.  Software benefits more
from the quicker (cached DDR) memory, so the hardware-vs-software speedup
*decreases* while remaining considerable.  Thin wrapper around the
``table09_patmatch64`` scenario, whose rows carry both systems' speedups.
"""

from repro.scenarios import run_scenario


def test_table9_pattern_matching_64bit(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("table09_patmatch64"), rounds=1, iterations=1
    )
    save_table("table09_patmatch64", result.table_text())

    for row in result.rows:  # [..., speedup64, speedup32]
        assert row[-2] < row[-1]  # decreased speedup
        assert row[-2] > 8  # "still ... a considerable performance advantage"

"""Table 9 — Pattern matching on the 64-bit system.

The 32-bit implementation transferred "without any modifications": still
CPU-controlled transfers, no use of the wider bus.  Software benefits more
from the quicker (cached DDR) memory, so the hardware-vs-software speedup
*decreases* while remaining considerable.
"""

import numpy as np

from repro.core.apps import HwPatternMatch
from repro.sw import SwPatternMatch
from repro.reporting import format_table
from repro.workloads import binary_image

IMAGE_SIZES = ((16, 64), (24, 96), (32, 128))


def run_sizes(system, manager, pattern):
    manager.load("patmatch")
    rows = []
    for height, width in IMAGE_SIZES:
        image = binary_image(height, width, seed=height * width)
        hw = HwPatternMatch().run(system, image)
        sw = SwPatternMatch(pattern).run(system, image)
        assert np.array_equal(hw.result, sw.result)
        rows.append(
            [
                f"{height}x{width}",
                sw.elapsed_ps / 1e6,
                hw.elapsed_ps / 1e6,
                sw.elapsed_ps / hw.elapsed_ps,
            ]
        )
    return rows


def test_table9_pattern_matching_64bit(benchmark, rig32, rig64, pattern, save_table):
    system64, manager64 = rig64
    system32, manager32 = rig32

    rows = benchmark.pedantic(
        lambda: run_sizes(system64, manager64, pattern), rounds=1, iterations=1
    )
    rows32 = run_sizes(system32, manager32, pattern)

    merged = [
        row + [row32[-1]] for row, row32 in zip(rows, rows32)
    ]
    text = format_table(
        "Table 9: Pattern matching in binary images (64-bit system)",
        ["image", "software (us)", "hardware (us)", "speedup", "(32-bit speedup)"],
        merged,
    )
    save_table("table09_patmatch64", text)

    for row, row32 in zip(rows, rows32):
        assert row[-1] < row32[-1]  # decreased speedup
        assert row[-1] > 8  # "still ... a considerable performance advantage"

"""Table 1 — Resource usage of the 32-bit system.

Thin wrapper around the ``table01_resources32`` scenario
(``repro.scenarios.tables``): the per-module slice/BRAM inventory of the
XC2VP7 design, plus the summary rows (static total, dynamic area, device
capacity).
"""

from repro.scenarios import run_scenario


def test_table1_resource_usage_32bit(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("table01_resources32"), rounds=1, iterations=1
    )
    save_table("table01_resources32", result.table_text())

    h = result.headline
    assert h["static_slices"] + h["region_slices"] <= h["device_slices"]
    assert h["region_slices"] == 1232
    assert h["region_bram"] == 6

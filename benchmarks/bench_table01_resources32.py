"""Table 1 — Resource usage of the 32-bit system.

Regenerates the per-module slice/BRAM inventory of the XC2VP7 design,
plus the summary rows (static total, dynamic area, device capacity).
"""

from repro.reporting import format_table


def build_rows(system):
    rows = []
    for entry in system.modules:
        rows.append(
            [entry.name, entry.resources.slices, entry.resources.bram_blocks, entry.bus, entry.note]
        )
    static = system.static_resources()
    region = system.region.resources
    rows.append(["-- static total --", static.slices, static.bram_blocks, "", ""])
    rows.append(["-- dynamic area --", region.slices, region.bram_blocks, "", "28x11 CLBs, 25.0%"])
    cap = system.device.capacity
    rows.append(["-- device (XC2VP7) --", cap.slices, cap.bram_blocks, "", "speed grade -6"])
    return rows


def test_table1_resource_usage_32bit(benchmark, rig32, save_table):
    system, _ = rig32

    rows = benchmark.pedantic(lambda: build_rows(system), rounds=1, iterations=1)

    text = format_table(
        "Table 1: Resource usage (32-bit system)",
        ["module", "slices", "BRAM", "bus", "note"],
        rows,
    )
    save_table("table01_resources32", text)

    static = system.static_resources()
    assert static.slices + system.region.resources.slices <= system.device.capacity.slices
    assert system.region.resources.slices == 1232
    assert system.region.resources.bram_blocks == 6

"""Ablation — cacheable vs uncached external memory for software tasks.

The 32-bit system's software numbers are dominated by uncached OPB/bridge
accesses; the 64-bit system's cacheable DDR is most of its software win.
This bench runs the same software task on the 64-bit platform with the
cache model enabled vs a facade that forces the uncached path.
"""

from dataclasses import dataclass

from repro.mem.memory import MemoryArray
from repro.reporting import format_table
from repro.sw import SwBrightness, SwJenkinsHash
from repro.workloads import grayscale_image, random_key


@dataclass
class UncachedFacade:
    """System facade forcing the uncached access path."""

    cpu: object
    ext_mem: MemoryArray
    ext_mem_base: int
    ext_mem_cacheable: bool = False


def run(system):
    image = grayscale_image(48, 48, seed=9)
    key = random_key(4096, seed=9)
    rows = []

    cached_b = SwBrightness(30).run(system, image).elapsed_ps
    cached_h = SwJenkinsHash().run(system, key).elapsed_ps

    uncached = UncachedFacade(
        cpu=system.cpu, ext_mem=system.ext_mem, ext_mem_base=system.ext_mem_base
    )
    uncached_b = SwBrightness(30).run(uncached, image).elapsed_ps
    uncached_h = SwJenkinsHash().run(uncached, key).elapsed_ps

    rows.append(["brightness 48x48", cached_b / 1e6, uncached_b / 1e6, uncached_b / cached_b])
    rows.append(["lookup2 4 KiB", cached_h / 1e6, uncached_h / 1e6, uncached_h / cached_h])
    return rows


def test_ablation_cacheable_memory(benchmark, rig64, save_table):
    system, _ = rig64
    rows = benchmark.pedantic(lambda: run(system), rounds=1, iterations=1)
    text = format_table(
        "Ablation: cacheable DDR vs uncached access (64-bit system, software tasks)",
        ["task", "cached (us)", "uncached (us)", "slowdown"],
        rows,
    )
    save_table("ablation_cache", text)
    for row in rows:
        assert row[-1] > 1.5  # uncached software pays dearly

"""Ablation — cacheable vs uncached external memory for software tasks.

The 32-bit system's software numbers are dominated by uncached OPB/bridge
accesses; the 64-bit system's cacheable DDR is most of its software win.
This bench runs the same software task on the 64-bit platform with the
cache model enabled vs a facade that forces the uncached path.  Thin
wrapper around the ``ablation_cache`` scenario.
"""

from repro.scenarios import run_scenario


def test_ablation_cacheable_memory(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("ablation_cache"), rounds=1, iterations=1
    )
    save_table("ablation_cache", result.table_text())

    for row in result.rows:
        assert row[-1] > 1.5  # uncached software pays dearly

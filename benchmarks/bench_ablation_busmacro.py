"""Ablation — LUT-based vs tristate bus macros.

"The circuits mentioned in the next sections use LUT-based bus macros when
necessary, since they consume less area."  This bench tabulates the
per-side fabric cost of both kinds across channel widths.  Thin wrapper
around the ``ablation_busmacro`` scenario.
"""

from repro.scenarios import run_scenario


def test_ablation_bus_macro_kinds(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("ablation_busmacro"), rounds=1, iterations=1
    )
    save_table("ablation_busmacro", result.table_text())

    for width, lut_slices, tri_slices, tbufs, ratio in result.rows:
        assert lut_slices < tri_slices  # the paper's reason for LUT macros
        assert tbufs == 2 * width

"""Ablation — LUT-based vs tristate bus macros.

"The circuits mentioned in the next sections use LUT-based bus macros when
necessary, since they consume less area."  This bench tabulates the
per-side fabric cost of both kinds across channel widths.
"""

from repro.bitstream.busmacro import BusMacro, MacroKind
from repro.reporting import format_table

WIDTHS = (4, 8, 16, 32, 64)


def run():
    rows = []
    for width in WIDTHS:
        lut = BusMacro(f"lut{width}", MacroKind.LUT, width=width)
        tri = BusMacro(f"tri{width}", MacroKind.TRISTATE, width=width)
        lut_cost = lut.resource_cost()
        tri_cost = tri.resource_cost()
        rows.append([width, lut_cost.slices, tri_cost.slices, tri_cost.tbufs,
                     tri_cost.slices / lut_cost.slices])
    return rows


def test_ablation_bus_macro_kinds(benchmark, save_table):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        "Ablation: bus-macro area per side (LUT vs tristate)",
        ["signals", "LUT slices", "tristate slices", "TBUFs", "area ratio"],
        rows,
    )
    save_table("ablation_busmacro", text)
    for width, lut_slices, tri_slices, tbufs, ratio in rows:
        assert lut_slices < tri_slices  # the paper's reason for LUT macros
        assert tbufs == 2 * width

"""Ablation — output-FIFO depth for block-interleaved DMA.

The paper's FIFO stores 2047 64-bit values.  Sweeping the depth shows the
trade-off: small FIFOs force frequent write-stream pauses (more DMA setup
per block), while beyond a few hundred entries the per-word time flattens
— the 2047 choice sits comfortably on the plateau.  Thin wrapper around
the ``ablation_fifo`` scenario.
"""

from repro.scenarios import run_scenario


def test_ablation_fifo_depth(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("ablation_fifo"), rounds=1, iterations=1
    )
    save_table("ablation_fifo", result.table_text())

    times = {depth: ns for depth, ns in result.rows}
    assert times[16] > times[2047]  # tiny FIFOs pay per-block overhead
    # The paper's 2047 sits on the plateau: quadrupling it gains <2%.
    assert abs(times[4096] - times[2047]) / times[2047] < 0.02

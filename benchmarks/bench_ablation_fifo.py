"""Ablation — output-FIFO depth for block-interleaved DMA.

The paper's FIFO stores 2047 64-bit values.  Sweeping the depth shows the
trade-off: small FIFOs force frequent write-stream pauses (more DMA setup
per block), while beyond a few hundred entries the per-word time flattens
— the 2047 choice sits comfortably on the plateau.
"""

from repro.bus.plb import make_plb
from repro.dock.plb_dock import PlbDock
from repro.engine.clock import ClockDomain, mhz
from repro.kernels.streams import LoopbackKernel
from repro.mem.controllers import DdrController
from repro.mem.memory import MemoryArray
from repro.reporting import format_table

DEPTHS = (16, 64, 256, 1024, 2047, 4096)
WORDS = 8192
DOCK_BASE = 0x8000_0000


def run_depth(depth: int) -> float:
    plb = make_plb(ClockDomain("bus", mhz(100)))
    memory = MemoryArray(1 << 20)
    plb.attach(DdrController(memory, 0, "ddr"), 0, 1 << 20, name="ddr")
    dock = PlbDock(DOCK_BASE, fifo_depth=depth)
    plb.attach(dock, DOCK_BASE, 0x1_0000, name="dock", posted_writes=True)
    dock.connect_bus(plb)
    dock.attach_kernel(LoopbackKernel())
    cursor = 0
    remaining = WORDS
    src, dst = 0x0, 0x8_0000
    while remaining:
        chunk = min(remaining, depth)
        cursor = dock.dma_write_block(cursor, src, chunk)
        cursor, drained = dock.dma_drain_fifo(cursor, dst)
        src += chunk * 8
        dst += drained * 8
        remaining -= chunk
    return cursor / WORDS / 1000.0  # ns per 64-bit word round trip


def test_ablation_fifo_depth(benchmark, save_table):
    results = benchmark.pedantic(
        lambda: [(d, run_depth(d)) for d in DEPTHS], rounds=1, iterations=1
    )
    text = format_table(
        "Ablation: output-FIFO depth vs block-interleaved DMA time "
        f"({WORDS} x 64-bit words)",
        ["FIFO depth", "ns per word (out + back)"],
        results,
    )
    save_table("ablation_fifo", text)
    times = dict(results)
    assert times[16] > times[2047]  # tiny FIFOs pay per-block overhead
    # The paper's 2047 sits on the plateau: quadrupling it gains <2%.
    assert abs(times[4096] - times[2047]) / times[2047] < 0.02

"""Host-wall-clock perf smoke bench for the transfer engine.

Measures words/sec of host time (not simulated time) for PIO and DMA
sequences at 10k and 200k words, with the vectorized burst fast path on
and off, and writes ``benchmarks/results/perf_engine.json`` so future PRs
have a perf trajectory to compare against.

Run directly (report-only)::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py

or with ``--check`` to additionally enforce the fast-path speedup floors
(>=10x on ``dma_interleaved_sequence(200_000)``, >=5x on the Table 8/12
sequence lengths) against the per-beat reference path, which is the seed
implementation's code path.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core import TransferBench, build_system32, build_system64  # noqa: E402
from repro.engine import fastpath  # noqa: E402

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results", "perf_engine.json")

#: (label, builder, method, word counts)
WORKLOADS = [
    ("pio_write", build_system32, "pio_write_sequence", (10_000, 200_000)),
    ("pio_interleaved", build_system32, "pio_interleaved_sequence", (10_000, 200_000)),
    ("dma_write", build_system64, "dma_write_sequence", (10_000, 200_000)),
    ("dma_interleaved", build_system64, "dma_interleaved_sequence", (10_000, 200_000)),
]

#: Table 8/12-scale sequence lengths the >=5x floor applies to.
TABLE_LENGTHS = (2047, 8192, 32768)


def _time_one(builder, method, n, fast):
    context = fastpath.forced_on() if fast else fastpath.disabled()
    with context:
        system = builder()
        bench = TransferBench(system)
        start = time.perf_counter()
        result = getattr(bench, method)(n)
        host = time.perf_counter() - start
    return host, result.total_ps


def run(check: bool) -> int:
    report = {"unit": "host seconds per run", "workloads": [], "speedups": {}}
    failures = []
    for label, builder, method, counts in WORKLOADS:
        for n in counts:
            fast_host, fast_ps = _time_one(builder, method, n, fast=True)
            slow_host, slow_ps = _time_one(builder, method, n, fast=False)
            if fast_ps != slow_ps:
                failures.append(f"{label}({n}): simulated time diverged {fast_ps} != {slow_ps}")
            speedup = slow_host / fast_host if fast_host else float("inf")
            entry = {
                "workload": label,
                "words": n,
                "host_s_fast": round(fast_host, 6),
                "host_s_reference": round(slow_host, 6),
                "words_per_sec_fast": round(n / fast_host) if fast_host else None,
                "words_per_sec_reference": round(n / slow_host) if slow_host else None,
                "total_ps": fast_ps,
                "speedup": round(speedup, 2),
            }
            report["workloads"].append(entry)
            print(
                f"{label:>16} n={n:>7}: fast {fast_host * 1e3:8.2f} ms  "
                f"reference {slow_host * 1e3:8.2f} ms  speedup {speedup:6.1f}x  "
                f"({entry['words_per_sec_fast']:,} words/s)"
            )
            if label == "dma_interleaved" and n == 200_000:
                report["speedups"]["dma_interleaved_200k"] = round(speedup, 2)
                if check and speedup < 10.0:
                    failures.append(
                        f"dma_interleaved_sequence(200_000) speedup {speedup:.1f}x < 10x floor"
                    )

    for n in TABLE_LENGTHS:
        fast_host, fast_ps = _time_one(build_system64, "dma_interleaved_sequence", n, fast=True)
        slow_host, slow_ps = _time_one(build_system64, "dma_interleaved_sequence", n, fast=False)
        if fast_ps != slow_ps:
            failures.append(f"table8({n}): simulated time diverged {fast_ps} != {slow_ps}")
        speedup = slow_host / fast_host if fast_host else float("inf")
        report["speedups"][f"table8_interleaved_{n}"] = round(speedup, 2)
        print(f"table8 interleaved n={n:>6}: speedup {speedup:6.1f}x")
        if check and n >= 8192 and speedup < 5.0:
            failures.append(f"table8 interleaved({n}) speedup {speedup:.1f}x < 5x floor")

    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {RESULTS_PATH}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="enforce the speedup floors (default: report-only)",
    )
    args = parser.parse_args()
    return run(check=args.check)


if __name__ == "__main__":
    raise SystemExit(main())

"""Figures 1-4 — architecture and floorplan diagrams.

The paper's figures are structural drawings; the reproduction renders them
from the live system models, so the diagrams always match the code's
actual topology, and records them next to the table outputs.
"""

from repro.bitstream.busmacro import BusMacro, MacroKind
from repro.core.floorplan import (
    render_bus_macro,
    render_generic_architecture,
    render_system_floorplan,
)


def test_fig1_generic_architecture(benchmark, save_table):
    art = benchmark.pedantic(render_generic_architecture, rounds=1, iterations=1)
    save_table("fig1_generic_architecture", art)
    for unit in ("CPU", "memory interface", "configuration", "external comm", "dynamic"):
        assert unit in art


def test_fig2_lut_bus_macros(benchmark, save_table):
    macro = BusMacro("figure2", MacroKind.LUT, width=2)
    art = benchmark.pedantic(lambda: render_bus_macro(macro), rounds=1, iterations=1)
    save_table("fig2_bus_macros", art)
    # The figure's signals: In(0)/In(1) leave A, Out(0)/Out(1) enter B.
    assert "In(0)" in art and "In(1)" in art
    assert "Out(0)" in art and "Out(1)" in art
    assert "designed separately" in art


def test_fig3_system32_floorplan(benchmark, rig32, save_table):
    system, _ = rig32
    art = benchmark.pedantic(lambda: render_system_floorplan(system), rounds=1, iterations=1)
    save_table("fig3_system32_floorplan", art)
    assert "XC2VP7" in art
    assert "CPU 200 MHz" in art
    assert "OpbDock" in art
    assert "DYNAMIC AREA 28x11" in art


def test_fig4_system64_floorplan(benchmark, rig64, save_table):
    system, _ = rig64
    art = benchmark.pedantic(lambda: render_system_floorplan(system), rounds=1, iterations=1)
    save_table("fig4_system64_floorplan", art)
    assert "XC2VP30" in art
    assert "CPU 300 MHz" in art
    assert "PlbDock" in art
    assert "DYNAMIC AREA 32x24" in art

"""Figures 1-4 — architecture and floorplan diagrams.

The paper's figures are structural drawings; the reproduction renders them
from the live system models, so the diagrams always match the code's
actual topology, and records them next to the table outputs.  Thin
wrappers around the ``fig*`` scenarios, which expose the rendered art
through the ``text`` artifact field.
"""

from repro.scenarios import run_scenario


def test_fig1_generic_architecture(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("fig1_generic_architecture"), rounds=1, iterations=1
    )
    art = result.text
    save_table("fig1_generic_architecture", art)
    for unit in ("CPU", "memory interface", "configuration", "external comm", "dynamic"):
        assert unit in art


def test_fig2_lut_bus_macros(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("fig2_bus_macros"), rounds=1, iterations=1
    )
    art = result.text
    save_table("fig2_bus_macros", art)
    # The figure's signals: In(0)/In(1) leave A, Out(0)/Out(1) enter B.
    assert "In(0)" in art and "In(1)" in art
    assert "Out(0)" in art and "Out(1)" in art
    assert "designed separately" in art


def test_fig3_system32_floorplan(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("fig3_system32_floorplan"), rounds=1, iterations=1
    )
    art = result.text
    save_table("fig3_system32_floorplan", art)
    assert "XC2VP7" in art
    assert "CPU 200 MHz" in art
    assert "OpbDock" in art
    assert "DYNAMIC AREA 28x11" in art


def test_fig4_system64_floorplan(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("fig4_system64_floorplan"), rounds=1, iterations=1
    )
    art = result.text
    save_table("fig4_system64_floorplan", art)
    assert "XC2VP30" in art
    assert "CPU 300 MHz" in art
    assert "PlbDock" in art
    assert "DYNAMIC AREA 32x24" in art

"""Ablation — interrupt-driven vs polled DMA completion.

"To avoid the need for polling the PLB dock to determine the status of the
transfers, an interrupt generator was added to the dock."  With interrupts
the CPU overlaps useful work with the transfer (the overlap-efficiency
column); with polling it spends the whole transfer spinning on the status
register and gets nothing else done.  Thin wrapper around the
``ablation_irq_vs_poll`` scenario.
"""

from repro.scenarios import run_scenario


def test_ablation_interrupt_vs_polling(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("ablation_irq_vs_poll"), rounds=1, iterations=1
    )
    save_table("ablation_irq_vs_poll", result.table_text())

    h = result.headline
    # Interrupt mode hides the CPU work almost entirely behind the DMA.
    assert h["overlap_efficiency"] > 0.9
    assert h["irq_compute_ps"] > 0
    # Polling gets no useful work done during the transfer.
    assert h["polled_compute_ps"] == 0
    # Both finish in about the DMA time (the transfer itself is unchanged).
    assert abs(h["polled_dma_ps"] - h["irq_dma_ps"]) / h["irq_dma_ps"] < 0.1

"""Ablation — interrupt-driven vs polled DMA completion.

"To avoid the need for polling the PLB dock to determine the status of the
transfers, an interrupt generator was added to the dock."  With interrupts
the CPU overlaps useful work with the transfer (the overlap-efficiency
column); with polling it spends the whole transfer spinning on the status
register and gets nothing else done.
"""

from repro.core.transfer import TransferBench
from repro.reporting import format_table

WORDS = 4096
COMPUTE_CYCLES = 25_000


def run(system):
    bench = TransferBench(system)
    irq = bench.dma_write_overlapped(WORDS, compute_cycles=COMPUTE_CYCLES)
    polled = bench.dma_write_polled(WORDS)
    return irq, polled


def test_ablation_interrupt_vs_polling(benchmark, rig64, save_table):
    system, _ = rig64
    irq, polled = benchmark.pedantic(lambda: run(system), rounds=1, iterations=1)

    rows = [
        ["interrupt + overlapped compute", irq.total_ps / 1e6, irq.compute_ps / 1e6,
         f"{irq.overlap_efficiency:.2f}", irq.polls],
        ["polled status register", polled.total_ps / 1e6, polled.compute_ps / 1e6,
         "-", polled.polls],
    ]
    text = format_table(
        f"Ablation: DMA completion handling ({WORDS} x 64-bit words)",
        ["mode", "total (us)", "useful CPU work (us)", "overlap efficiency", "polls"],
        rows,
    )
    save_table("ablation_irq_vs_poll", text)

    # Interrupt mode hides the CPU work almost entirely behind the DMA.
    assert irq.overlap_efficiency > 0.9
    assert irq.compute_ps > 0
    # Polling gets no useful work done during the transfer.
    assert polled.compute_ps == 0
    # Both finish in about the DMA time (the transfer itself is unchanged).
    assert abs(polled.dma_ps - irq.dma_ps) / irq.dma_ps < 0.1

"""Ablation — posted vs non-posted dock writes.

The docks are attached with posted writes (the CPU is released after the
address phase).  This bench rebuilds the 64-bit dock rig both ways and
measures a sustained write sequence, quantifying how much of the PIO write
performance comes from posting.
"""

from repro.bus.plb import make_plb
from repro.bus.transaction import Op, Transaction
from repro.dock.plb_dock import PlbDock
from repro.engine.clock import ClockDomain, mhz
from repro.kernels.streams import SinkKernel
from repro.reporting import format_table

N = 2048
DOCK_BASE = 0x8000_0000


def measure(posted: bool) -> float:
    plb = make_plb(ClockDomain("bus", mhz(100)))
    dock = PlbDock(DOCK_BASE)
    plb.attach(dock, DOCK_BASE, 0x1_0000, name="dock", posted_writes=posted)
    dock.attach_kernel(SinkKernel())
    cursor = 0
    for i in range(N):
        completion = plb.request(cursor, Transaction(Op.WRITE, DOCK_BASE, data=i))
        cursor = completion.master_free_ps
    return cursor / N / 1000.0  # ns per write, as seen by the master


def test_ablation_posted_writes(benchmark, save_table):
    results = benchmark.pedantic(
        lambda: {"posted": measure(True), "non-posted": measure(False)},
        rounds=1,
        iterations=1,
    )
    text = format_table(
        "Ablation: posted vs non-posted dock writes (64-bit PLB dock)",
        ["mode", "ns per write (master-visible)"],
        [[k, v] for k, v in results.items()],
    )
    save_table("ablation_posted", text)
    assert results["posted"] < results["non-posted"]

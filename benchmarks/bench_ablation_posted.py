"""Ablation — posted vs non-posted dock writes.

The docks are attached with posted writes (the CPU is released after the
address phase).  This bench rebuilds the 64-bit dock rig both ways and
measures a sustained write sequence, quantifying how much of the PIO write
performance comes from posting.  Thin wrapper around the
``ablation_posted`` scenario.
"""

from repro.scenarios import run_scenario


def test_ablation_posted_writes(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("ablation_posted"), rounds=1, iterations=1
    )
    save_table("ablation_posted", result.table_text())

    assert result.headline["posted"] < result.headline["non-posted"]

"""Table 11 — SHA-1 (RFC 3174) on the 64-bit system.

The kernel does not fit the 32-bit system's dynamic area (the bench
verifies the rejection), so only 64-bit results exist — with 32-bit
CPU-controlled transfers, exactly as the paper ran it.  The RFC reference
software has a large per-call overhead that fades for larger data sets.
"""

import pytest

from repro.core.apps import HwSha1
from repro.core.reconfig import ReconfigManager
from repro.errors import ResourceError
from repro.kernels import Sha1Kernel
from repro.sw import SwSha1
from repro.reporting import format_table
from repro.workloads import random_key

MESSAGE_SIZES = (64, 512, 4096, 32768)


def run_sizes(system, manager):
    manager.load("sha1")
    rows = []
    for size in MESSAGE_SIZES:
        message = random_key(size, seed=size)
        hw = HwSha1().run(system, message)
        sw = SwSha1().run(system, message)
        assert hw.result == sw.result
        rows.append(
            [size, sw.elapsed_ps / 1e6, hw.elapsed_ps / 1e6, sw.elapsed_ps / hw.elapsed_ps]
        )
    return rows


def test_table11_sha1(benchmark, rig32, rig64, save_table):
    system32, _ = rig32
    system64, manager64 = rig64

    # "Our implementation does not fit into the dynamic area of the 32-bit
    #  system, so no comparison can be done."
    with pytest.raises(ResourceError):
        ReconfigManager(system32).register(Sha1Kernel())

    rows = benchmark.pedantic(lambda: run_sizes(system64, manager64), rounds=1, iterations=1)

    text = format_table(
        "Table 11: SHA-1 (64-bit system; kernel does not fit the 32-bit system)",
        ["message bytes", "software (us)", "hardware (us)", "speedup"],
        rows,
    )
    save_table("table11_sha1", text)

    for row in rows:
        assert row[-1] > 2  # "a considerable performance gain"
    # Software per-byte cost falls as the per-call overhead amortises.
    per_byte = [row[1] / row[0] for row in rows]
    assert per_byte[0] > per_byte[-1]

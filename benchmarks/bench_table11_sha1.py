"""Table 11 — SHA-1 (RFC 3174) on the 64-bit system.

The kernel does not fit the 32-bit system's dynamic area (the scenario
verifies the rejection), so only 64-bit results exist — with 32-bit
CPU-controlled transfers, exactly as the paper ran it.  The RFC reference
software has a large per-call overhead that fades for larger data sets.
Thin wrapper around the ``table11_sha1`` scenario.
"""

from repro.scenarios import run_scenario


def test_table11_sha1(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("table11_sha1"), rounds=1, iterations=1
    )
    save_table("table11_sha1", result.table_text())

    # "Our implementation does not fit into the dynamic area of the 32-bit
    #  system, so no comparison can be done."
    assert result.headline["sha1_rejected_on_32bit"] is True

    rows = result.rows
    for row in rows:
        assert row[-1] > 2  # "a considerable performance gain"
    # Software per-byte cost falls as the per-call overhead amortises.
    per_byte = [row[1] / row[0] for row in rows]
    assert per_byte[0] > per_byte[-1]

"""Table 3 — Pattern matching in binary images on the 32-bit system.

Software-only on the PPC405 vs the 8-stage matching pipeline in the
dynamic area.  The paper reports "speedup factors of more than 26".
"""

import numpy as np

from repro.core.apps import HwPatternMatch
from repro.sw import SwPatternMatch
from repro.reporting import format_table
from repro.workloads import binary_image

IMAGE_SIZES = ((16, 64), (24, 96), (32, 128))


def run_sizes(system, manager, pattern):
    manager.load("patmatch")
    rows = []
    for height, width in IMAGE_SIZES:
        image = binary_image(height, width, seed=height * width)
        hw = HwPatternMatch().run(system, image)
        sw = SwPatternMatch(pattern).run(system, image)
        assert np.array_equal(hw.result, sw.result)
        rows.append(
            [
                f"{height}x{width}",
                hw.result.size,
                sw.elapsed_ps / 1e6,
                hw.elapsed_ps / 1e6,
                sw.elapsed_ps / hw.elapsed_ps,
            ]
        )
    return rows


def test_table3_pattern_matching_32bit(benchmark, rig32, pattern, save_table):
    system, manager = rig32

    rows = benchmark.pedantic(
        lambda: run_sizes(system, manager, pattern), rounds=1, iterations=1
    )

    text = format_table(
        "Table 3: Pattern matching in binary images (32-bit system)",
        ["image", "positions", "software (us)", "hardware (us)", "speedup"],
        rows,
    )
    save_table("table03_patmatch32", text)

    for row in rows:
        assert row[-1] > 26  # "speedup factors of more than 26"

"""Table 3 — Pattern matching in binary images on the 32-bit system.

Software-only on the PPC405 vs the 8-stage matching pipeline in the
dynamic area.  The paper reports "speedup factors of more than 26".
Thin wrapper around the ``table03_patmatch32`` scenario, which also
cross-checks the hardware result against the software reference.
"""

from repro.scenarios import run_scenario


def test_table3_pattern_matching_32bit(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("table03_patmatch32"), rounds=1, iterations=1
    )
    save_table("table03_patmatch32", result.table_text())

    for row in result.rows:
        assert row[-1] > 26  # "speedup factors of more than 26"

"""Table 7 — Measured times for 32-bit CPU-controlled transfers on the
64-bit system.  Directly comparable with Table 2: the decrease must land
between 4x and 6x depending on the transfer type (bus clock x2, CPU clock
x1.5, no PLB-OPB bridge in the path).
"""

from repro.core import TransferBench
from repro.reporting import format_table

SEQUENCE_LENGTHS = (1024, 4096, 16384)


def run_both(system32, system64):
    bench32 = TransferBench(system32)
    bench64 = TransferBench(system64)
    rows = []
    for label, method in (
        ("write", "pio_write_sequence"),
        ("read", "pio_read_sequence"),
        ("write/read pair", "pio_interleaved_sequence"),
    ):
        t32 = getattr(bench32, method)(4096).per_transfer_ns
        t64 = getattr(bench64, method)(4096).per_transfer_ns
        rows.append([label, t64, t32, t32 / t64])
    return rows


def test_table7_transfer_times_64bit_pio(benchmark, rig32, rig64, save_table):
    system32, _ = rig32
    system64, _ = rig64

    rows = benchmark.pedantic(lambda: run_both(system32, system64), rounds=1, iterations=1)

    text = format_table(
        "Table 7: 32-bit CPU-controlled transfers on the 64-bit system "
        "(ns per transfer, vs Table 2)",
        ["transfer type", "64-bit system", "32-bit system", "improvement"],
        rows,
    )
    save_table("table07_transfers64_pio", text)

    # "A decrease in transfer time between 4 and 6 times, depending on the
    #  transfer type, can be observed."
    for label, t64, t32, ratio in rows:
        assert 4.0 <= ratio <= 6.0, label

"""Table 7 — Measured times for 32-bit CPU-controlled transfers on the
64-bit system.  Directly comparable with Table 2: the decrease must land
between 4x and 6x depending on the transfer type (bus clock x2, CPU clock
x1.5, no PLB-OPB bridge in the path).

Thin wrapper around the ``table07_transfers64_pio`` scenario.
"""

from repro.scenarios import run_scenario


def test_table7_transfer_times_64bit_pio(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("table07_transfers64_pio"), rounds=1, iterations=1
    )
    save_table("table07_transfers64_pio", result.table_text())

    # "A decrease in transfer time between 4 and 6 times, depending on the
    #  transfer type, can be observed."
    for label, t64, t32, ratio in result.rows:
        assert 4.0 <= ratio <= 6.0, label

"""Host-wall-clock perf bench for the batch-compiled engine core.

Times the ``perf_engine_e2e`` workload — the per-word PIO driver loops the
steady-state compiler (:mod:`repro.engine.batch`) compresses — on both
systems with the compiler on and off, verifies the two paths agree on
every simulated observable (timestamps, task results, aggregate stats),
and writes ``benchmarks/results/BENCH_engine.json``.

Run directly (report-only)::

    PYTHONPATH=src python benchmarks/bench_perf_sweep.py

or with ``--check`` to additionally enforce the speedup floors on the
batchable tasks (the reference path is the seed implementation's
event-by-event interpreter).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.engine import fastpath  # noqa: E402
from repro.engine.batch import reset_telemetry, telemetry  # noqa: E402
from repro.scenarios.perf import _checksum, engine_workload_tasks  # noqa: E402
from repro.scenarios.rigs import build_rig32, build_rig64  # noqa: E402

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results", "BENCH_engine.json")

#: Tasks checked/reported per system, with the --check speedup floors.
#: Floors apply to the batchable subset (per-word PIO driver loops); the
#: patmatch/lookup2 tasks interleave per-strip/per-block software work
#: with the streaming loops, so their floors sit lower than the pure
#: image-streaming tasks.
FLOORS = {
    "system32/brightness": 10.0,
    "system32/fade": 10.0,
    "system64/brightness": 10.0,
    "system64/fade": 10.0,
    "system32/patmatch": 1.5,
    "system32/lookup2": 3.0,
}


def _run_workload(fast: bool, height: int, width: int):
    """One timed run: per-task host seconds + simulated observables."""
    context = fastpath.forced_on() if fast else fastpath.disabled()
    with context:
        host = {}
        observables = {}
        reset_telemetry()
        for label, build in (("system32", build_rig32), ("system64", build_rig64)):
            system, manager = build()  # rig build stays outside the timers
            total = 0.0
            # Timers wrap exactly each driver loop; the kernel loads in
            # between (already fast-pathed elsewhere) stay untimed.
            for task, thunk in engine_workload_tasks(system, manager, height, width):
                start = time.perf_counter()
                run_result = thunk()
                elapsed = time.perf_counter() - start
                host[f"{label}/{task}"] = elapsed
                total += elapsed
                observables[f"{label}/{task}"] = (
                    run_result.elapsed_ps,
                    _checksum(run_result.result),
                )
            host[label] = total
            observables[f"{label}/now_ps"] = system.cpu.now_ps
            observables[f"{label}/stats"] = _stats_snapshot(system)
        compile_stats = telemetry().as_dict()
    return host, observables, compile_stats


def _stats_snapshot(system):
    groups = [system.cpu.stats, system.plb.stats, system.dock.stats]
    opb = getattr(system, "opb", None)
    if opb is not None:
        groups.append(opb.stats)
    fifo = getattr(system.dock, "fifo", None)
    if fifo is not None:
        groups.append(fifo.stats)
    return {g.name: g.snapshot() for g in groups}


def run(check: bool, height: int, width: int) -> int:
    fast_host, fast_obs, compile_stats = _run_workload(True, height, width)
    slow_host, slow_obs, _ = _run_workload(False, height, width)

    failures = []
    if fast_obs != slow_obs:
        for key in fast_obs:
            if fast_obs[key] != slow_obs[key]:
                failures.append(
                    f"observable {key!r} diverged between compiled and reference paths"
                )

    report = {
        "unit": "host seconds per task",
        "workload": f"perf_engine_e2e workload at {height}x{width} on both systems",
        "compiler_telemetry": compile_stats,
        "tasks": [],
        "speedups": {},
    }
    for key in sorted(k for k in fast_host if "/" in k):
        speedup = slow_host[key] / fast_host[key] if fast_host[key] else float("inf")
        report["tasks"].append(
            {
                "task": key,
                "host_s_fast": round(fast_host[key], 6),
                "host_s_reference": round(slow_host[key], 6),
                "speedup": round(speedup, 2),
            }
        )
        report["speedups"][key] = round(speedup, 2)
        print(
            f"{key:>22}: fast {fast_host[key] * 1e3:8.2f} ms  "
            f"reference {slow_host[key] * 1e3:8.2f} ms  speedup {speedup:6.1f}x"
        )
        floor = FLOORS.get(key)
        if check and floor is not None and speedup < floor:
            failures.append(f"{key} speedup {speedup:.1f}x < {floor:.0f}x floor")
    for label in ("system32", "system64"):
        total = slow_host[label] / fast_host[label] if fast_host[label] else float("inf")
        report["speedups"][label] = round(total, 2)
        print(
            f"{label + ' (all)':>22}: fast {fast_host[label] * 1e3:8.2f} ms  "
            f"reference {slow_host[label] * 1e3:8.2f} ms  speedup {total:6.1f}x"
        )

    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {RESULTS_PATH}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="enforce the speedup floors (default: report-only)",
    )
    parser.add_argument("--height", type=int, default=96)
    parser.add_argument("--width", type=int, default=96)
    args = parser.parse_args()
    return run(check=args.check, height=args.height, width=args.width)


if __name__ == "__main__":
    raise SystemExit(main())

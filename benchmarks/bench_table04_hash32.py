"""Table 4 — Results for the hash function (32-bit system).

Jenkins' lookup2 over variable-length keys.  The whole hash runs in
hardware, but the original C was optimised for 32-bit CPUs and transfer
time dominates, so the speedup is "much more modest" than pattern
matching's.  Thin wrapper around the ``table04_hash32`` scenario.
"""

from repro.scenarios import run_scenario


def test_table4_hash_32bit(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: run_scenario("table04_hash32"), rounds=1, iterations=1
    )
    save_table("table04_hash32", result.table_text())

    for row in result.rows[1:]:  # small keys dominated by per-call overheads
        assert 0.8 < row[-1] < 1.8  # much more modest than 26x

"""Table 4 — Results for the hash function (32-bit system).

Jenkins' lookup2 over variable-length keys.  The whole hash runs in
hardware, but the original C was optimised for 32-bit CPUs and transfer
time dominates, so the speedup is "much more modest" than pattern
matching's.
"""

from repro.core.apps import HwJenkinsHash
from repro.sw import SwJenkinsHash
from repro.reporting import format_table
from repro.workloads import random_key

KEY_LENGTHS = (256, 1024, 4096, 16384)


def run_lengths(system, manager):
    manager.load("lookup2")
    rows = []
    for length in KEY_LENGTHS:
        key = random_key(length, seed=length)
        hw = HwJenkinsHash().run(system, key)
        sw = SwJenkinsHash().run(system, key)
        assert hw.result == sw.result
        rows.append(
            [length, sw.elapsed_ps / 1e6, hw.elapsed_ps / 1e6, sw.elapsed_ps / hw.elapsed_ps]
        )
    return rows


def test_table4_hash_32bit(benchmark, rig32, save_table):
    system, manager = rig32

    rows = benchmark.pedantic(lambda: run_lengths(system, manager), rounds=1, iterations=1)

    text = format_table(
        "Table 4: Results for hash function lookup2 (32-bit system)",
        ["key bytes", "software (us)", "hardware (us)", "speedup"],
        rows,
    )
    save_table("table04_hash32", text)

    for row in rows[1:]:  # small keys dominated by per-call overheads
        assert 0.8 < row[-1] < 1.8  # much more modest than 26x

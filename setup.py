"""Legacy setup shim.

Allows ``pip install -e . --no-build-isolation`` (and ``python setup.py
develop``) to work on machines without the ``wheel`` package; all real
metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()

"""Statistics collection for simulation components.

Every bus, CPU and peripheral keeps a :class:`StatsGroup` of named counters
and accumulators.  The benchmark harness reads these to report utilisation
and per-operation averages next to simulated wall-clock times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple


@dataclass
class Counter:
    """A monotonically increasing event counter."""

    name: str
    value: int = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter.add amount must be non-negative")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another counter's events into this one.

        Equivalent to replaying every ``add`` the other counter saw;
        the sweep orchestrator uses this to aggregate statistics gathered
        in worker processes back into one group.
        """
        if other.name != self.name:
            raise ValueError(
                f"cannot merge counter {other.name!r} into {self.name!r}"
            )
        self.value += other.value

    def reset(self) -> None:
        self.value = 0


@dataclass
class Accumulator:
    """Accumulates a numeric quantity and tracks count/min/max for averages."""

    name: str
    total: float = 0.0
    count: int = 0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def add(self, amount: float) -> None:
        self.total += amount
        self.count += 1
        if amount < self.minimum:
            self.minimum = amount
        if amount > self.maximum:
            self.maximum = amount

    def add_aggregate(self, total: float, count: int, minimum: float, maximum: float) -> None:
        """Fold in ``count`` samples at once (pre-aggregated).

        Equivalent to ``count`` individual :meth:`add` calls whose sum,
        minimum and maximum are the given values — the batched fast paths
        use this to charge a whole burst in O(1).
        """
        if count < 0:
            raise ValueError("Accumulator.add_aggregate count must be non-negative")
        if count == 0:
            return
        self.total += total
        self.count += count
        if minimum < self.minimum:
            self.minimum = minimum
        if maximum > self.maximum:
            self.maximum = maximum

    def merge(self, other: "Accumulator") -> None:
        """Fold another accumulator's samples into this one.

        Equivalent to replaying every sample the other accumulator saw,
        so ``a.merge(b)`` after disjoint runs matches one accumulator
        that observed both sample streams.
        """
        if other.name != self.name:
            raise ValueError(
                f"cannot merge accumulator {other.name!r} into {self.name!r}"
            )
        self.add_aggregate(other.total, other.count, other.minimum, other.maximum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0
        self.minimum = float("inf")
        self.maximum = float("-inf")


class StatsGroup:
    """A named collection of counters and accumulators.

    Members are created on first use, so instrumentation sites can simply
    call ``stats.count("reads")`` without declaring anything up front.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._accumulators: Dict[str, Accumulator] = {}

    def counter(self, name: str) -> Counter:
        """Get (creating if needed) the counter called ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def accumulator(self, name: str) -> Accumulator:
        """Get (creating if needed) the accumulator called ``name``."""
        if name not in self._accumulators:
            self._accumulators[name] = Accumulator(name)
        return self._accumulators[name]

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name).add(amount)

    def record(self, name: str, amount: float) -> None:
        """Add a sample to accumulator ``name``."""
        self.accumulator(name).add(amount)

    def count_many(self, increments: Dict[str, int]) -> None:
        """Apply several counter increments at once (``{name: amount}``)."""
        for name, amount in increments.items():
            self.counter(name).add(amount)

    def record_many(
        self, name: str, total: float, count: int, minimum: float, maximum: float
    ) -> None:
        """Fold ``count`` pre-aggregated samples into accumulator ``name``.

        Aggregate-equivalent to ``count`` :meth:`record` calls; the burst
        fast paths use it to keep statistics identical to the per-beat
        path without per-beat Python calls.
        """
        self.accumulator(name).add_aggregate(total, count, minimum, maximum)

    def merge(self, other: "StatsGroup") -> "StatsGroup":
        """Fold another group's members into this one (member-wise merge).

        Members missing on either side are created on demand, so merging a
        group gathered in a worker process into a fresh parent-side group
        reproduces exactly the statistics the worker collected.  Group
        names need not match — a sweep aggregates same-named component
        groups from many independently built systems.
        """
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, acc in other._accumulators.items():
            self.accumulator(name).merge(acc)
        return self

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe structural snapshot (for cross-process transport).

        Min/max are omitted for empty accumulators (they are ±inf, which
        plain JSON cannot carry); :meth:`from_snapshot` restores them.
        """
        counters = {n: c.value for n, c in sorted(self._counters.items())}
        accumulators: Dict[str, Dict[str, float]] = {}
        for name, acc in sorted(self._accumulators.items()):
            entry: Dict[str, float] = {"total": acc.total, "count": acc.count}
            if acc.count:
                entry["min"] = acc.minimum
                entry["max"] = acc.maximum
            accumulators[name] = entry
        return {"name": self.name, "counters": counters, "accumulators": accumulators}

    @classmethod
    def from_snapshot(cls, data: Dict[str, object]) -> "StatsGroup":
        """Rebuild a group from :meth:`snapshot` output."""
        group = cls(str(data.get("name", "snapshot")))
        for name, value in dict(data.get("counters", {})).items():
            group.counter(name).add(int(value))
        for name, entry in dict(data.get("accumulators", {})).items():
            acc = group.accumulator(name)
            count = int(entry.get("count", 0))
            if count:
                acc.add_aggregate(
                    float(entry["total"]), count, float(entry["min"]), float(entry["max"])
                )
        return group

    def get(self, name: str) -> float:
        """Read a counter (or accumulator total) by name; 0 if absent."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._accumulators:
            return self._accumulators[name].total
        return 0

    def reset(self) -> None:
        """Reset every member to zero."""
        for counter in self._counters.values():
            counter.reset()
        for acc in self._accumulators.values():
            acc.reset()

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate ``(name, value)`` over counters then accumulator totals."""
        for name, counter in sorted(self._counters.items()):
            yield name, counter.value
        for name, acc in sorted(self._accumulators.items()):
            yield name, acc.total

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all members as a plain dict."""
        return dict(self.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<StatsGroup {self.name} {self.as_dict()}>"

"""Transaction tracing.

A :class:`TraceRecorder` collects timestamped events from instrumented
components (the buses hook in via their ``tracer`` attribute).  Traces can
be filtered, summarised, and exported as CSV or JSON-lines — the usual way
to debug *why* a transfer sequence costs what it costs.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence."""

    time_ps: int
    source: str
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"time_ps": self.time_ps, "source": self.source, "kind": self.kind}
        out.update(self.fields)
        return out


class TraceRecorder:
    """Bounded in-memory event recorder."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.enabled = True
        self._events: List[TraceEvent] = []
        self.dropped = 0

    # -- recording ---------------------------------------------------------
    def record(self, time_ps: int, source: str, kind: str, **fields: Any) -> None:
        """Append an event (drops and counts once capacity is reached)."""
        if not self.enabled:
            return
        if len(self._events) >= self.capacity:
            self.dropped += 1
            return
        self._events.append(TraceEvent(time_ps=time_ps, source=source, kind=kind, fields=fields))

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    # -- access ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def filter(
        self,
        source: Optional[str] = None,
        kind: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Events matching all given criteria."""
        out = []
        for event in self._events:
            if source is not None and event.source != source:
                continue
            if kind is not None and event.kind != kind:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def summary(self) -> Dict[str, int]:
        """Event counts per (source, kind)."""
        counts: Dict[str, int] = {}
        for event in self._events:
            key = f"{event.source}:{event.kind}"
            counts[key] = counts.get(key, 0) + 1
        return counts

    # -- export -----------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per line."""
        return "\n".join(json.dumps(event.as_dict(), sort_keys=True) for event in self._events)

    def to_csv(self) -> str:
        """CSV with the union of all field names as columns."""
        field_names: List[str] = []
        for event in self._events:
            for name in event.fields:
                if name not in field_names:
                    field_names.append(name)
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["time_ps", "source", "kind", *field_names])
        for event in self._events:
            writer.writerow(
                [event.time_ps, event.source, event.kind]
                + [event.fields.get(name, "") for name in field_names]
            )
        return buffer.getvalue()


def merge_traces(traces: Iterable[TraceRecorder]) -> List[TraceEvent]:
    """Time-ordered merge of several recorders' events."""
    merged: List[TraceEvent] = []
    for trace in traces:
        merged.extend(trace.events)
    merged.sort(key=lambda event: event.time_ps)
    return merged

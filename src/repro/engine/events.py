"""Discrete-event simulation kernel.

A deliberately small SimPy-style kernel:

* :class:`Simulator` owns the event queue and the notion of *now*
  (integer picoseconds, see :mod:`repro.engine.time`).
* :class:`Event` is a one-shot occurrence that callbacks and processes can
  wait on; it carries an optional value (or an exception).
* :class:`Process` wraps a Python generator.  The generator *yields* either
  an integer delay in picoseconds or an :class:`Event` (including another
  process, or combinators :class:`AllOf` / :class:`AnyOf`), and is resumed
  when the wait completes.

This is enough to express the concurrency in the paper's 64-bit system —
the CPU continuing to run while the scatter-gather DMA engine drains the
dock's output FIFO, with an interrupt delivered on completion.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import ScheduleInPastError, SimulationError

Callback = Callable[["Event"], None]


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, is *triggered* (scheduled to fire), and
    finally *processed*, at which point its callbacks run and waiting
    processes resume.  Events may succeed with a value or fail with an
    exception; a failing event re-raises inside any waiting process.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered", "_processed", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.callbacks: list[Callback] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only after processing)."""
        return self._processed and self._exception is None

    @property
    def value(self) -> Any:
        """The value the event succeeded with."""
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay_ps: int = 0) -> "Event":
        """Schedule this event to fire successfully after ``delay_ps``."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay_ps)
        return self

    def fail(self, exception: BaseException, delay_ps: int = 0) -> "Event":
        """Schedule this event to fire with an exception after ``delay_ps``."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._schedule(self, delay_ps)
        return self

    def _process(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "processed" if self._processed else "triggered" if self._triggered else "pending"
        return f"<Event {self.name or hex(id(self))} {state}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay_ps: int, value: Any = None) -> None:
        super().__init__(sim, name=f"timeout({delay_ps}ps)")
        self.succeed(value=value, delay_ps=delay_ps)


class AllOf(Event):
    """Fires when all constituent events have fired.

    Succeeds with the list of constituent values (in input order).  If any
    constituent fails, this fails with the first failure.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, name="all_of")
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._events:
            ev.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if child._exception is not None:
            self.fail(child._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(Event):
    """Fires when the first constituent event fires.

    Succeeds with ``(index, value)`` of the first event to complete.
    """

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, name="any_of")
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for idx, ev in enumerate(self._events):
            ev.callbacks.append(self._make_cb(idx))

    def _make_cb(self, idx: int) -> Callback:
        def _cb(child: Event) -> None:
            if self._triggered:
                return
            if child._exception is not None:
                self.fail(child._exception)
            else:
                self.succeed((idx, child._value))

        return _cb


ProcessGen = Generator[Any, Any, Any]


class Process(Event):
    """A generator-backed simulation process.

    The wrapped generator yields integers (delays in ps) or events.  The
    process itself is an event that fires when the generator returns; its
    value is the generator's return value.
    """

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        # Kick off via the same-timestamp deferral ring so creation order
        # does not matter (and no heap traffic is spent on the bounce).
        sim._defer(lambda: self._resume(None, None))

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # repro: noqa LINT007 (stored by fail, re-raised at join)
            self.fail(err)
            return

        if isinstance(target, int):
            if target < 0:
                self._resume(None, ScheduleInPastError(f"negative delay {target}"))
                return
            target = Timeout(self.sim, target)
        if not isinstance(target, Event):
            self._resume(None, SimulationError(f"process yielded {target!r}; expected int delay or Event"))
            return
        if target._processed:
            # Already done: resume immediately (but via the deferral ring,
            # to keep event ordering deterministic).
            done = target
            self.sim._defer(lambda: self._resume(done._value, done._exception))
        else:
            target.callbacks.append(lambda ev: self._resume(ev._value, ev._exception))


class Simulator:
    """Event queue and simulated clock.

    Typical use::

        sim = Simulator()
        def worker():
            yield 1_000          # wait 1 ns
            return 42
        proc = sim.process(worker())
        sim.run()
        assert proc.value == 42
    """

    def __init__(self) -> None:
        self._now = 0
        self._queue: list[tuple[int, int, Event]] = []
        #: Same-timestamp deferral ring: ``(when, counter, thunk)`` entries
        #: created *at* ``when == now`` that must run interleaved with heap
        #: events in counter order.  Process kick-off and already-processed
        #: resumes land here instead of bouncing through zero-delay
        #: ``Timeout``s (two heap ops each).
        self._deferred: deque[tuple[int, int, Callable[[], None]]] = deque()
        self._counter = itertools.count()
        self._processed_events = 0
        self._deferred_events = 0

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events processed (for engine statistics).

        Deferred same-timestamp resumes count one-for-one with the
        zero-delay ``Timeout`` events they replaced, so this figure is
        path-independent.
        """
        return self._processed_events

    @property
    def deferred_events(self) -> int:
        """How many of :attr:`processed_events` ran off the deferral ring."""
        return self._deferred_events

    @property
    def heap_events(self) -> int:
        """How many of :attr:`processed_events` came off the time heap."""
        return self._processed_events - self._deferred_events

    # -- construction helpers -------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay_ps: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay_ps`` from now."""
        if delay_ps < 0:
            raise ScheduleInPastError(f"negative delay {delay_ps}")
        return Timeout(self, delay_ps, value)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Register a generator as a simulation process."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when every input event has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first input event fires."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------
    def _schedule(self, event: Event, delay_ps: int) -> None:
        if delay_ps < 0:
            raise ScheduleInPastError(f"cannot schedule {delay_ps} ps in the past")
        heapq.heappush(self._queue, (self._now + delay_ps, next(self._counter), event))

    def _defer(self, thunk: Callable[[], None]) -> None:
        """Queue ``thunk`` to run at the current timestamp.

        The entry consumes a counter tick exactly like a zero-delay
        ``Timeout`` would, so its position relative to heap events at the
        same timestamp — and every later counter value — is unchanged.
        Entries arrive in (when, counter) order, so a deque stays sorted.
        """
        self._deferred.append((self._now, next(self._counter), thunk))

    def _deferral_ready(self) -> bool:
        """True when the deferral ring holds the globally next event."""
        deferred = self._deferred
        if not deferred:
            return False
        queue = self._queue
        return not queue or deferred[0][:2] <= queue[0][:2]

    def step(self) -> None:
        """Process the single next event (heap or deferral ring)."""
        if self._deferral_ready():
            when, _, thunk = self._deferred.popleft()
            self._now = when
            self._processed_events += 1
            self._deferred_events += 1
            thunk()
            return
        if not self._queue:
            raise SimulationError("event queue is empty")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        self._processed_events += 1
        event._process()

    def run(self, until: Optional[Event | int] = None) -> Any:
        """Run the simulation.

        ``until`` may be an :class:`Event` (run until it fires, return its
        value — exceptions propagate), an integer time in picoseconds, or
        ``None`` (run until the queue is empty).

        The loop bodies below are :meth:`step` folded inline with local
        bindings — this is the engine's hottest code; :meth:`step` stays
        public for single-stepping and tests.
        """
        queue = self._queue
        deferred = self._deferred
        heappop = heapq.heappop
        if isinstance(until, Event):
            while not until._processed and (queue or deferred):
                if deferred and (not queue or deferred[0][:2] <= queue[0][:2]):
                    when, _, thunk = deferred.popleft()
                    self._now = when
                    self._processed_events += 1
                    self._deferred_events += 1
                    thunk()
                else:
                    when, _, event = heappop(queue)
                    self._now = when
                    self._processed_events += 1
                    event._process()
            if not until._processed:
                raise SimulationError("simulation ended before the awaited event fired")
            return until.value
        if isinstance(until, int):
            while (deferred and deferred[0][0] <= until) or (queue and queue[0][0] <= until):
                if deferred and (not queue or deferred[0][:2] <= queue[0][:2]):
                    when, _, thunk = deferred.popleft()
                    self._now = when
                    self._processed_events += 1
                    self._deferred_events += 1
                    thunk()
                else:
                    when, _, event = heappop(queue)
                    self._now = when
                    self._processed_events += 1
                    event._process()
            self._now = max(self._now, until)
            return None
        while queue or deferred:
            if deferred and (not queue or deferred[0][:2] <= queue[0][:2]):
                when, _, thunk = deferred.popleft()
                self._now = when
                self._processed_events += 1
                self._deferred_events += 1
                thunk()
            else:
                when, _, event = heappop(queue)
                self._now = when
                self._processed_events += 1
                event._process()
        return None

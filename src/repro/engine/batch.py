"""Steady-state timeline compiler — whole phases at array speed.

The table scenarios spend most of their simulated activity in *steady
phases*: a PIO loop feeding the dock one word per iteration, a drain loop
reading results back, a polling interval.  Each iteration performs the
same operation sequence; only the data differs — and in this model, data
never influences timing (bus wait states, tenures and clock alignment are
all value-independent).  Interpreting such a phase event by event costs
thousands of Python-level bus transactions that all advance the timeline
by the same delta.

:func:`run_steady` replaces that interpretation with
*probe-and-extrapolate*:

1. run a few iterations through the untouched reference path, capturing a
   **timeline signature** at every iteration boundary — cursor deltas
   (CPU time, per-bus busy watermarks, the bridge's posted-write buffer
   relative to *now*), bus clock-phase offsets, and exact per-group
   statistics deltas (counters plus accumulator total/count with
   unchanged min/max);
2. once two consecutive signatures are identical, the phase is provably
   periodic: every further iteration is a time-shifted copy, so the
   remaining iterations are applied **closed-form** — one clock jump
   (``dt x remaining``), one :meth:`StatsGroup.count_many` /
   :meth:`StatsGroup.record_many` charge per group, shifted bridge
   buffer — plus one vectorized ``bulk`` callback for the functional
   effects (data movement only, never time or statistics);
3. anything irregular — a trace hook on a bus, the fast path disabled via
   ``REPRO_NO_FAST_PATH``, an undeclared phase, simulator-queue activity
   during the probe, or signatures that never converge — falls back to
   per-iteration reference execution, which is always correct.

Equivalence is exact, not approximate: the extrapolated samples repeat
the probe iteration's integer-valued figures, so the closed-form charges
reproduce the reference path's statistics bit for bit (sums of integers
below 2**53 are exact in doubles), and the cursor jumps reproduce its
timestamps exactly.  ``tests/test_batch_compile_equivalence.py`` holds
the contract under hypothesis.

**Division of labour** — the compiler owns simulated time and every
watched statistics group (CPU, buses, bridge, dock, DMA engine, HWICAP);
``bulk`` callbacks own data movement and the FIFO's functional
statistics (``push_many``/``pop_array`` charge those aggregates
themselves, matching the per-word reference exactly).  A ``bulk``
callback must therefore never touch engine state — LINT008 flags
violations (see ``docs/CHECKS.md``).

Phases are **declared, not guessed**: scenarios/rigs opt loops in with
:func:`declare_phases`, and :func:`run_steady` compiles only phases whose
name was declared on the target system.  Undeclared loops simply run the
reference path.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import fastpath

__all__ = [
    "declare_phases",
    "declared_phases",
    "phase_declared",
    "run_steady",
    "telemetry",
    "reset_telemetry",
    "BatchTelemetry",
    "MIN_PROBES",
    "MAX_PROBES",
    "EXTRAS_KEY",
]

#: Key under ``system.extras`` holding the declared batchable phase names.
EXTRAS_KEY = "batchable_phases"

#: Iterations that must run through the reference path before the
#: compiler may extrapolate: the first warms pipelines (bridge buffer,
#: packing remainders), then two consecutive identical signatures are
#: required — so a compiled phase always executes at least this many real
#: iterations.
MIN_PROBES = 3

#: Probe budget: if signatures have not converged after this many
#: iterations the phase is treated as irregular and the remainder runs
#: through the reference path.
MAX_PROBES = 8


class BatchTelemetry:
    """Counts of what the compiler did (observability, tests, benches)."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.compiled_phases = 0
        self.probe_iterations = 0
        self.extrapolated_iterations = 0
        self.reference_iterations = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "compiled_phases": self.compiled_phases,
            "probe_iterations": self.probe_iterations,
            "extrapolated_iterations": self.extrapolated_iterations,
            "reference_iterations": self.reference_iterations,
        }


_TELEMETRY = BatchTelemetry()


def telemetry() -> BatchTelemetry:
    """The process-wide compiler telemetry."""
    return _TELEMETRY


def reset_telemetry() -> None:
    _TELEMETRY.reset()


# -- phase declarations ----------------------------------------------------

def declare_phases(system, *names: str) -> None:
    """Mark phase ``names`` as batchable on ``system``.

    Declarations live in ``system.extras`` so they travel with the system
    object and never leak across rigs.  Declaring is a statement of
    intent, not a switch: the phase still only compiles when it proves
    steady under probing with the fast path enabled.
    """
    system.extras.setdefault(EXTRAS_KEY, set()).update(names)


def declared_phases(system) -> frozenset:
    """The batchable phase names declared on ``system``."""
    extras = getattr(system, "extras", None)
    if not extras:
        return frozenset()
    return frozenset(extras.get(EXTRAS_KEY, ()))


def phase_declared(system, name: str) -> bool:
    return name in declared_phases(system)


# -- the compiler ----------------------------------------------------------

class _Watch:
    """Snapshot/extrapolate view over everything timing-relevant.

    Watches the CPU cursor, each bus's busy watermark and clock phase, the
    bridge's posted-write buffer, the PLB dock's DMA watermark, the
    simulator queue, and the statistics groups of every timed component.
    The dock FIFO's group is deliberately *not* watched: its statistics
    are functional (charged by ``push_many``/``pop_array`` inside the
    reference path and the ``bulk`` callbacks alike).
    """

    def __init__(self, system) -> None:
        self.cpu = system.cpu
        self.sim = getattr(system, "sim", None)
        self.buses = [
            bus
            for bus in (getattr(system, "plb", None), getattr(system, "opb", None))
            if bus is not None
        ]
        self.bridge = getattr(system, "bridge", None)
        dock = getattr(system, "dock", None)
        self.cursors: List[Tuple[object, str]] = [(bus, "_busy_until") for bus in self.buses]
        if dock is not None and hasattr(dock, "dma_busy_until_ps"):
            self.cursors.append((dock, "dma_busy_until_ps"))
        groups = [self.cpu.stats] + [bus.stats for bus in self.buses]
        if self.bridge is not None:
            groups.append(self.bridge.stats)
        if dock is not None:
            groups.append(dock.stats)
            dma = getattr(dock, "dma", None)
            if dma is not None:
                groups.append(dma.stats)
        hwicap = getattr(system, "hwicap", None)
        if hwicap is not None and hasattr(hwicap, "stats"):
            groups.append(hwicap.stats)
        self.groups = groups

    def traced(self) -> bool:
        return any(getattr(bus, "tracer", None) is not None for bus in self.buses)

    def snapshot(self):
        """Absolute state at an iteration boundary (cheap, no copies of data)."""
        now = self.cpu.now_ps
        cursor_vals = tuple(getattr(obj, attr) for obj, attr in self.cursors)
        inflight = tuple(self.bridge._inflight) if self.bridge is not None else ()
        stats = []
        for group in self.groups:
            counters = {name: c.value for name, c in group._counters.items()}
            accs = {
                name: (a.total, a.count, a.minimum, a.maximum)
                for name, a in group._accumulators.items()
            }
            stats.append((counters, accs))
        sim_state = None
        if self.sim is not None:
            sim_state = (
                self.sim._now,
                len(self.sim._queue),
                len(self.sim._deferred),
                self.sim._processed_events,
            )
        return (now, cursor_vals, inflight, stats, sim_state)

    def sim_perturbed(self, prev, cur) -> bool:
        """Event-queue activity during the probe: not a pure steady phase."""
        return prev[4] != cur[4]

    def signature(self, prev, cur):
        """The iteration's timeline signature, or ``None`` if irregular.

        Two consecutive equal signatures prove periodicity: all relative
        cursor state is reproduced at the boundary, clock phases repeat,
        and the statistics deltas are constant with untouched accumulator
        extremes — so by induction every further iteration is the same
        iteration shifted by ``dt``.
        """
        pnow, pcursors, pinflight, pstats, _ = prev
        cnow, ccursors, cinflight, cstats, _ = cur
        dt = cnow - pnow
        if dt <= 0:
            return None

        cursor_kinds = []
        for (pval, cval) in zip(pcursors, ccursors):
            if cval - pval == dt:
                kind = "track"
            elif cval == pval and pval <= pnow and cval <= cnow:
                kind = "idle"
            else:
                return None
            cursor_kinds.append(kind)

        # Posted writes still pending at the boundary must form the same
        # pattern relative to *now*; drained entries are semantically gone.
        rel_prev = tuple(t - pnow for t in pinflight if t > pnow)
        rel_cur = tuple(t - cnow for t in cinflight if t > cnow)
        if rel_prev != rel_cur:
            return None

        phases = tuple(bus.clock.next_edge(cnow) - cnow for bus in self.buses)
        prev_phases = tuple(bus.clock.next_edge(pnow) - pnow for bus in self.buses)
        if phases != prev_phases:
            return None

        stat_sigs = []
        for (pcounters, paccs), (ccounters, caccs) in zip(pstats, cstats):
            counter_delta = tuple(
                sorted(
                    (name, ccounters[name] - pcounters.get(name, 0))
                    for name in ccounters
                )
            )
            acc_delta = []
            for name, (total, count, minimum, maximum) in sorted(caccs.items()):
                ptotal, pcount, _, _ = paccs.get(name, (0.0, 0, 0.0, 0.0))
                acc_delta.append((name, total - ptotal, count - pcount, minimum, maximum))
            stat_sigs.append((counter_delta, tuple(acc_delta)))

        return (dt, tuple(cursor_kinds), rel_cur, phases, tuple(stat_sigs))

    def extrapolate(self, sig, remaining: int) -> None:
        """Apply ``remaining`` iterations closed-form (time + statistics)."""
        dt, cursor_kinds, _, _, stat_sigs = sig
        shift = dt * remaining
        boundary_now = self.cpu.now_ps
        self.cpu.now_ps = boundary_now + shift
        for (obj, attr), kind in zip(self.cursors, cursor_kinds):
            if kind == "track":
                setattr(obj, attr, getattr(obj, attr) + shift)
        if self.bridge is not None:
            self.bridge._inflight = deque(
                t + shift for t in self.bridge._inflight if t > boundary_now
            )
        for group, (counter_delta, acc_delta) in zip(self.groups, stat_sigs):
            increments = {name: d * remaining for name, d in counter_delta if d}
            if increments:
                group.count_many(increments)
            for name, d_total, d_count, minimum, maximum in acc_delta:
                if d_count:
                    group.record_many(
                        name, d_total * remaining, d_count * remaining, minimum, maximum
                    )


def run_steady(
    system,
    count: int,
    step: Callable[[int], None],
    bulk: Optional[Callable[[int, int], None]] = None,
    *,
    phase: Optional[str] = None,
) -> None:
    """Run ``count`` iterations of a declared steady-state phase.

    ``step(i)`` executes iteration ``i`` through the reference path —
    timing, statistics and data.  ``bulk(start, n)`` applies the *purely
    functional* effects of iterations ``start .. start+n-1`` (data
    movement only; the compiler has already charged time and statistics).

    The phase compiles only when every gate passes: ``bulk`` provided,
    ``phase`` declared on ``system`` via :func:`declare_phases`, the
    fast path enabled, no trace hook installed, no simulator activity
    during the probe, and signatures that converge within
    :data:`MAX_PROBES`.  Otherwise every iteration runs ``step`` — the
    result is identical either way; only host time differs.
    """
    count = int(count)
    if count <= 0:
        return

    compilable = (
        bulk is not None
        and count > MIN_PROBES
        and phase is not None
        and phase_declared(system, phase)
        and fastpath.enabled()
    )
    watch = None
    if compilable:
        watch = _Watch(system)
        if watch.traced():
            compilable = False

    if not compilable:
        for i in range(count):
            step(i)
        _TELEMETRY.reference_iterations += count
        return

    prev_snap = watch.snapshot()
    prev_sig = None
    i = 0
    while i < count and i < MAX_PROBES:
        step(i)
        i += 1
        snap = watch.snapshot()
        if watch.sim_perturbed(prev_snap, snap):
            break  # event-queue activity: hand the rest to the interpreter
        sig = watch.signature(prev_snap, snap)
        prev_snap = snap
        if sig is not None and sig == prev_sig and i >= MIN_PROBES:
            remaining = count - i
            if remaining:
                bulk(i, remaining)
                watch.extrapolate(sig, remaining)
            _TELEMETRY.compiled_phases += 1
            _TELEMETRY.probe_iterations += i
            _TELEMETRY.extrapolated_iterations += remaining
            return
        prev_sig = sig

    # Irregular (or perturbed) phase: finish through the reference path.
    _TELEMETRY.reference_iterations += count
    while i < count:
        step(i)
        i += 1

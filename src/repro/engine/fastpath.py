"""Global switch for the vectorized burst fast path.

The transfer stack keeps two implementations of every hot loop: the
per-beat reference path (ground truth, traceable) and a closed-form
vectorized path that produces *identical* simulated timestamps, data and
aggregate statistics while doing O(1) Python work per burst instead of
O(beats).  This module is the single gate both consult:

* the ``REPRO_NO_FAST_PATH`` environment variable (any value other than
  ``""``/``"0"``/``"false"``) forces the reference path — used by the
  equivalence test-suite and available for debugging;
* :func:`force` overrides the environment from code (tests, benchmarks);
* components with a trace hook installed fall back on their own, because
  only the per-beat path emits the per-transaction trace events.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: Environment variable that disables the fast path when set truthy.
ENV_VAR = "REPRO_NO_FAST_PATH"

_FALSEY = ("", "0", "false", "False", "no")

_forced: Optional[bool] = None


def enabled() -> bool:
    """Whether the vectorized fast path may be used right now."""
    if _forced is not None:
        return _forced
    # CKEY002: the env var toggles host cost only — fast and reference
    # paths are pinned byte-identical (docs/MODELING.md §8), so cached
    # results are unaffected by its value.
    return os.environ.get(ENV_VAR, "") in _FALSEY  # repro: noqa CKEY002


def force(value: Optional[bool]) -> None:
    """Override the environment: ``True``/``False`` pin the fast path on or
    off; ``None`` restores environment control."""
    global _forced
    _forced = value


@contextmanager
def disabled() -> Iterator[None]:
    """Context manager running its body with the fast path off."""
    previous = _forced
    force(False)
    try:
        yield
    finally:
        force(previous)


@contextmanager
def forced_on() -> Iterator[None]:
    """Context manager running its body with the fast path pinned on."""
    previous = _forced
    force(True)
    try:
        yield
    finally:
        force(previous)

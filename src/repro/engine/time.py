"""Simulation time base.

All simulation time is kept as **integer picoseconds** so that mixed clock
domains (e.g. a 200 MHz CPU next to a 50 MHz OPB) never accumulate floating
point drift.  Helpers convert between human units and picoseconds.
"""

from __future__ import annotations

#: Picoseconds per unit, for conversion helpers.
PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000


def ps_from_ns(ns: float) -> int:
    """Convert nanoseconds to integer picoseconds (rounded)."""
    return round(ns * PS_PER_NS)


def ps_from_us(us: float) -> int:
    """Convert microseconds to integer picoseconds (rounded)."""
    return round(us * PS_PER_US)


def ps_from_s(seconds: float) -> int:
    """Convert seconds to integer picoseconds (rounded)."""
    return round(seconds * PS_PER_S)


def ns_from_ps(ps: int) -> float:
    """Convert picoseconds to (float) nanoseconds."""
    return ps / PS_PER_NS


def us_from_ps(ps: int) -> float:
    """Convert picoseconds to (float) microseconds."""
    return ps / PS_PER_US


def s_from_ps(ps: int) -> float:
    """Convert picoseconds to (float) seconds."""
    return ps / PS_PER_S


def format_time(ps: int) -> str:
    """Render a picosecond count with an auto-selected unit.

    >>> format_time(1_500)
    '1.500 ns'
    >>> format_time(2_000_000)
    '2.000 us'
    """
    if ps < PS_PER_NS:
        return f"{ps} ps"
    if ps < PS_PER_US:
        return f"{ps / PS_PER_NS:.3f} ns"
    if ps < PS_PER_MS:
        return f"{ps / PS_PER_US:.3f} us"
    if ps < PS_PER_S:
        return f"{ps / PS_PER_MS:.3f} ms"
    return f"{ps / PS_PER_S:.3f} s"

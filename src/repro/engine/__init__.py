"""Discrete-event simulation engine.

Integer-picosecond time base, clock domains, a small SimPy-style event
kernel, and statistics groups used by every simulated component.
"""

from .batch import declare_phases, declared_phases, phase_declared, run_steady
from .clock import ClockDomain, mhz
from .events import AllOf, AnyOf, Event, Process, Simulator, Timeout
from .stats import Accumulator, Counter, StatsGroup
from .time import (
    PS_PER_MS,
    PS_PER_NS,
    PS_PER_S,
    PS_PER_US,
    format_time,
    ns_from_ps,
    ps_from_ns,
    ps_from_s,
    ps_from_us,
    s_from_ps,
    us_from_ps,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Accumulator",
    "ClockDomain",
    "Counter",
    "Event",
    "PS_PER_MS",
    "PS_PER_NS",
    "PS_PER_S",
    "PS_PER_US",
    "Process",
    "Simulator",
    "StatsGroup",
    "Timeout",
    "declare_phases",
    "declared_phases",
    "format_time",
    "phase_declared",
    "run_steady",
    "mhz",
    "ns_from_ps",
    "ps_from_ns",
    "ps_from_s",
    "ps_from_us",
    "s_from_ps",
    "us_from_ps",
]

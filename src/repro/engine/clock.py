"""Clock domains.

A :class:`ClockDomain` converts between cycle counts and picoseconds for one
synchronous island of the design (CPU, PLB, OPB, ...).  The paper's two
systems differ precisely in these numbers (200/50/50 MHz vs 300/100/100 MHz),
so clock domains are first-class objects shared by every timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from .time import PS_PER_S


@dataclass(frozen=True)
class ClockDomain:
    """A fixed-frequency clock.

    Parameters
    ----------
    name:
        Human-readable identifier (``"cpu"``, ``"plb"``, ``"opb"``).
    freq_hz:
        Frequency in hertz.  Must divide 1e12 evenly enough that the period
        rounds to a positive integer picosecond count.
    """

    name: str
    freq_hz: int
    period_ps: int = field(init=False)

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise SimulationError(f"clock {self.name!r}: frequency must be positive")
        period = round(PS_PER_S / self.freq_hz)
        if period <= 0:
            raise SimulationError(f"clock {self.name!r}: frequency too high for ps time base")
        object.__setattr__(self, "period_ps", period)

    @property
    def freq_mhz(self) -> float:
        """Frequency in MHz (for reports)."""
        return self.freq_hz / 1e6

    def cycles_to_ps(self, cycles: float) -> int:
        """Duration of ``cycles`` clock cycles, in integer picoseconds.

        Fractional cycle counts are allowed (useful for average-rate models)
        and rounded to the nearest picosecond.
        """
        return round(cycles * self.period_ps)

    def ps_to_cycles(self, ps: int) -> float:
        """How many cycles of this clock fit in ``ps`` picoseconds."""
        return ps / self.period_ps

    def next_edge(self, now_ps: int) -> int:
        """Time of the first rising edge at or after ``now_ps``.

        Used to model synchronisation of a transaction into this domain:
        a request arriving mid-cycle waits for the next edge.
        """
        remainder = now_ps % self.period_ps
        if remainder == 0:
            return now_ps
        return now_ps + (self.period_ps - remainder)

    def sync_delay(self, now_ps: int) -> int:
        """Picoseconds until the next rising edge (0 if on an edge)."""
        return self.next_edge(now_ps) - now_ps

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}@{self.freq_mhz:g}MHz"


def mhz(value: float) -> int:
    """Convenience: ``mhz(50)`` -> 50_000_000 Hz."""
    return round(value * 1e6)

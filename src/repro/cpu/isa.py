"""PPC405 instruction-level cost model.

The PowerPC 405 is a scalar, in-order, 5-stage core: most integer ops
retire at 1 CPI, multiplies take longer, and taken branches pay a pipeline
refill (there is no branch predictor worth the name).  Software tasks are
described as :class:`InstructionMix` objects — counts of instructions per
iteration of their inner loop — from which the CPU model computes pure
execution time.  Memory-system time (cache misses, uncached I/O) is added
separately by the CPU model, so a mix's ``load``/``store`` entries cost
only their cache-hit pipeline slot here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Cycles per instruction class (PPC405 documented behaviour).
CPI_ALU = 1
CPI_MUL = 4
CPI_LOAD_HIT = 1
CPI_STORE_HIT = 1
CPI_BRANCH_NOT_TAKEN = 1
CPI_BRANCH_TAKEN = 3


@dataclass(frozen=True)
class InstructionMix:
    """Instruction counts for one iteration of a loop body.

    ``branches`` counts conditional/unconditional branches;
    ``taken_fraction`` is how many of them are taken (loop back-edges are
    essentially always taken).
    """

    alu: float = 0.0
    mul: float = 0.0
    load: float = 0.0
    store: float = 0.0
    branches: float = 0.0
    taken_fraction: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        for name in ("alu", "mul", "load", "store", "branches"):
            if getattr(self, name) < 0:
                raise ValueError(f"instruction count {name} must be non-negative")
        if not 0.0 <= self.taken_fraction <= 1.0:
            raise ValueError("taken_fraction must be in [0, 1]")

    # -- aggregate ---------------------------------------------------------
    @property
    def instructions(self) -> float:
        return self.alu + self.mul + self.load + self.store + self.branches

    def cycles(self) -> float:
        """Pipeline cycles for one iteration, all memory hits."""
        taken = self.branches * self.taken_fraction
        not_taken = self.branches - taken
        return (
            self.alu * CPI_ALU
            + self.mul * CPI_MUL
            + self.load * CPI_LOAD_HIT
            + self.store * CPI_STORE_HIT
            + taken * CPI_BRANCH_TAKEN
            + not_taken * CPI_BRANCH_NOT_TAKEN
        )

    # -- algebra ---------------------------------------------------------------
    def __add__(self, other: "InstructionMix") -> "InstructionMix":
        total_branches = self.branches + other.branches
        if total_branches:
            taken = self.branches * self.taken_fraction + other.branches * other.taken_fraction
            fraction = taken / total_branches
        else:
            fraction = 1.0
        return InstructionMix(
            alu=self.alu + other.alu,
            mul=self.mul + other.mul,
            load=self.load + other.load,
            store=self.store + other.store,
            branches=total_branches,
            taken_fraction=fraction,
            label=self.label or other.label,
        )

    def __mul__(self, factor: float) -> "InstructionMix":
        if factor < 0:
            raise ValueError("cannot scale a mix by a negative factor")
        return replace(
            self,
            alu=self.alu * factor,
            mul=self.mul * factor,
            load=self.load * factor,
            store=self.store * factor,
            branches=self.branches * factor,
        )

    __rmul__ = __mul__


#: The bookkeeping of a counted loop: index increment, compare, back-edge.
LOOP_OVERHEAD = InstructionMix(alu=2, branches=1, taken_fraction=1.0, label="loop-overhead")

#: A C function call/return pair (prologue + epilogue, save/restore).
CALL_OVERHEAD = InstructionMix(alu=6, load=2, store=2, branches=2, label="call-overhead")

"""PPC405 cache model.

16 KB, 2-way set-associative, 32-byte lines (8 words), write-back — for
both instruction and data sides.  The model keeps **tags only**: it decides
hit/miss and dirty evictions; functional data lives in the memory models.

Two interfaces:

* :meth:`access` — stateful, per-reference.  Used by the CPU's
  ``load_word``/``store_word`` and by the unit tests.
* :meth:`stream` — analytic batch for long sequential sweeps (the common
  pattern in all of the paper's workloads), returning miss/eviction counts
  without a per-line Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..engine.stats import StatsGroup
from ..errors import SimulationError


@dataclass
class _Line:
    tag: int
    dirty: bool


class Cache:
    """Tag-only set-associative cache."""

    def __init__(
        self,
        name: str = "dcache",
        size_bytes: int = 16 * 1024,
        line_bytes: int = 32,
        ways: int = 2,
    ) -> None:
        if size_bytes % (line_bytes * ways):
            raise SimulationError("cache geometry must divide evenly")
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.set_count = size_bytes // (line_bytes * ways)
        # Per-set list of lines in LRU order (front = most recent).
        self._sets: Dict[int, List[_Line]] = {}
        self.stats = StatsGroup(name)

    # -- address mapping ---------------------------------------------------
    def _index_tag(self, address: int) -> Tuple[int, int]:
        line = address // self.line_bytes
        return line % self.set_count, line // self.set_count

    def line_base(self, address: int) -> int:
        """Address of the first byte of the line containing ``address``."""
        return (address // self.line_bytes) * self.line_bytes

    # -- stateful access ---------------------------------------------------------
    def access(self, address: int, write: bool = False) -> Tuple[bool, Optional[int]]:
        """One reference.  Returns ``(hit, dirty_eviction_address)``.

        On a miss the line is allocated (read- and write-allocate, as on
        the 405); if the victim is dirty its base address is returned so
        the CPU can charge a write-back burst.
        """
        index, tag = self._index_tag(address)
        lines = self._sets.setdefault(index, [])
        for position, line in enumerate(lines):
            if line.tag == tag:
                lines.insert(0, lines.pop(position))
                if write:
                    line.dirty = True
                self.stats.count("hits")
                return True, None
        # Miss: allocate, possibly evicting the LRU way.
        self.stats.count("misses")
        evicted: Optional[int] = None
        if len(lines) >= self.ways:
            victim = lines.pop()
            if victim.dirty:
                victim_line = victim.tag * self.set_count + index
                evicted = victim_line * self.line_bytes
                self.stats.count("dirty_evictions")
        lines.insert(0, _Line(tag=tag, dirty=write))
        return False, evicted

    def contains(self, address: int) -> bool:
        """Tag probe without touching LRU state."""
        index, tag = self._index_tag(address)
        return any(line.tag == tag for line in self._sets.get(index, ()))

    def invalidate(self) -> None:
        """Drop every line (no write-backs — use flush accounting first)."""
        self._sets.clear()
        self.stats.count("invalidates")

    def dirty_line_count(self) -> int:
        return sum(1 for lines in self._sets.values() for line in lines if line.dirty)

    # -- analytic batch ------------------------------------------------------------
    def stream(self, start: int, nbytes: int, write: bool = False) -> Tuple[int, int]:
        """Sequential sweep over [start, start+nbytes).

        Returns ``(misses, dirty_evictions)`` and updates tag state to the
        post-sweep footprint (an approximation: the trailing
        ``size_bytes`` of the stream resident, which is exact for
        sweeps longer than the cache and for cold caches).
        """
        if nbytes <= 0:
            return 0, 0
        first_line = start // self.line_bytes
        last_line = (start + nbytes - 1) // self.line_bytes
        line_count = last_line - first_line + 1

        # Count how many of the touched lines are already resident.
        resident = 0
        probe_lines = min(line_count, self.set_count * self.ways)
        for line_number in range(first_line, first_line + probe_lines):
            if self.contains(line_number * self.line_bytes):
                resident += 1
        misses = line_count - resident if line_count <= probe_lines else line_count - resident

        # Evictions: a long write sweep through a write-back cache pushes
        # out whatever dirty lines were resident, then starts evicting its
        # own dirty lines once the sweep exceeds the cache capacity.
        dirty_before = self.dirty_line_count() if misses else 0
        own_dirty_evicted = 0
        if write:
            capacity_lines = self.set_count * self.ways
            if line_count > capacity_lines:
                own_dirty_evicted = line_count - capacity_lines
        evictions = min(dirty_before, misses) + own_dirty_evicted

        # Update state to the post-sweep footprint.  The per-line access()
        # calls below are bookkeeping, not extra references, so shield the
        # hit/miss statistics around them.
        saved = {name: self.stats.counter(name).value for name in ("hits", "misses", "dirty_evictions")}
        keep_lines = min(line_count, self.set_count * self.ways)
        for line_number in range(last_line - keep_lines + 1, last_line + 1):
            self.access(line_number * self.line_bytes, write=write)
        for name, value in saved.items():
            self.stats.counter(name).value = value
        self.stats.count("misses", misses)
        self.stats.count("dirty_evictions", evictions)
        self.stats.count("stream_bytes", nbytes)
        return misses, evictions

"""MiniPPC: a small PowerPC-flavoured interpreter over the timing model.

The software tasks charge time through counted instruction mixes; this
module provides the ground truth those counts abstract: a register-machine
interpreter for a PowerPC-like subset that executes *real* loops against
the simulated memory system, charging the same per-class cycle costs and
issuing real (cached or uncached) loads and stores through the
:class:`~repro.cpu.ppc405.Ppc405` core.

Tests assemble the reference inner loops (saturating pixel adds, word
sums), run them on a system, and check both the functional result in
memory and that the measured cycles agree with the corresponding
``InstructionMix`` — closing the loop between the abstract cost model and
executable code.

Supported syntax (one instruction per line, ``#`` comments, ``label:``)::

    li    rD, imm          addi  rD, rA, imm       add   rD, rA, rB
    sub   rD, rA, rB       mullw rD, rA, rB        and/or/xor rD, rA, rB
    slwi/srwi rD, rA, n    mr    rD, rA
    lwz   rD, off(rA)      stw   rS, off(rA)       lbz/stb likewise
    cmpwi rA, imm          blt/bgt/beq/bne/bge/ble label     b label
    halt
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError
from .isa import (
    CPI_ALU,
    CPI_BRANCH_NOT_TAKEN,
    CPI_BRANCH_TAKEN,
    CPI_LOAD_HIT,
    CPI_MUL,
    CPI_STORE_HIT,
)
from .ppc405 import Ppc405

_MASK = 0xFFFFFFFF

_REGISTER = re.compile(r"^r([0-9]|[12][0-9]|3[01])$")
_MEMREF = re.compile(r"^(-?\d+)\((r\d+)\)$")


class AssemblyError(SimulationError):
    """Raised for malformed MiniPPC source."""


@dataclass(frozen=True)
class Instruction:
    op: str
    args: Tuple[str, ...]
    line: int


@dataclass
class Program:
    """Parsed program: instructions + label table."""

    instructions: List[Instruction]
    labels: Dict[str, int]

    @classmethod
    def assemble(cls, source: str) -> "Program":
        instructions: List[Instruction] = []
        labels: Dict[str, int] = {}
        for line_no, raw in enumerate(source.splitlines(), start=1):
            text = raw.split("#", 1)[0].strip()
            if not text:
                continue
            while ":" in text:
                label, text = text.split(":", 1)
                label = label.strip()
                if not label.isidentifier():
                    raise AssemblyError(f"line {line_no}: bad label {label!r}")
                if label in labels:
                    raise AssemblyError(f"line {line_no}: duplicate label {label!r}")
                labels[label] = len(instructions)
                text = text.strip()
            if not text:
                continue
            parts = text.replace(",", " ").split()
            instructions.append(Instruction(op=parts[0].lower(), args=tuple(parts[1:]), line=line_no))
        return cls(instructions=instructions, labels=labels)


def _signed(value: int) -> int:
    value &= _MASK
    return value - (1 << 32) if value & 0x8000_0000 else value


@dataclass
class RunStats:
    """What one execution did."""

    instructions: int = 0
    cycles: float = 0.0
    loads: int = 0
    stores: int = 0
    branches_taken: int = 0
    branches_not_taken: int = 0
    by_op: Dict[str, int] = field(default_factory=dict)


class MiniPpc:
    """Interpreter bound to a :class:`Ppc405` core (and its memory map)."""

    def __init__(self, cpu: Ppc405, max_steps: int = 1_000_000) -> None:
        self.cpu = cpu
        self.max_steps = max_steps
        self.registers = [0] * 32
        self.cr_lt = self.cr_gt = self.cr_eq = False

    # -- operand helpers -----------------------------------------------------
    def _reg(self, token: str) -> int:
        match = _REGISTER.match(token)
        if not match:
            raise AssemblyError(f"expected register, got {token!r}")
        return int(match.group(1))

    def _imm(self, token: str) -> int:
        try:
            return int(token, 0)
        except ValueError as err:
            raise AssemblyError(f"expected immediate, got {token!r}") from err

    def _memref(self, token: str) -> Tuple[int, int]:
        match = _MEMREF.match(token)
        if not match:
            raise AssemblyError(f"expected off(rA), got {token!r}")
        return int(match.group(1)), self._reg(match.group(2))

    # -- execution ----------------------------------------------------------------
    def run(self, program: Program, registers: Optional[Dict[int, int]] = None) -> RunStats:
        """Execute until ``halt`` (or falling off the end); returns stats."""
        if registers:
            for index, value in registers.items():
                self.registers[index] = value & _MASK
        stats = RunStats()
        cycles_start = self.cpu.now_ps
        pc = 0
        steps = 0
        regs = self.registers
        while pc < len(program.instructions):
            steps += 1
            if steps > self.max_steps:
                raise SimulationError(f"MiniPPC exceeded {self.max_steps} steps (runaway loop?)")
            instr = program.instructions[pc]
            op, args = instr.op, instr.args
            stats.instructions += 1
            stats.by_op[op] = stats.by_op.get(op, 0) + 1
            pc += 1

            if op == "halt":
                break
            if op == "li":
                regs[self._reg(args[0])] = self._imm(args[1]) & _MASK
                self.cpu.elapse_cycles(CPI_ALU)
            elif op == "addi":
                regs[self._reg(args[0])] = (regs[self._reg(args[1])] + self._imm(args[2])) & _MASK
                self.cpu.elapse_cycles(CPI_ALU)
            elif op in ("add", "sub", "and", "or", "xor"):
                a = regs[self._reg(args[1])]
                b = regs[self._reg(args[2])]
                if op == "add":
                    value = a + b
                elif op == "sub":
                    value = a - b
                elif op == "and":
                    value = a & b
                elif op == "or":
                    value = a | b
                else:
                    value = a ^ b
                regs[self._reg(args[0])] = value & _MASK
                self.cpu.elapse_cycles(CPI_ALU)
            elif op == "mullw":
                value = _signed(regs[self._reg(args[1])]) * _signed(regs[self._reg(args[2])])
                regs[self._reg(args[0])] = value & _MASK
                self.cpu.elapse_cycles(CPI_MUL)
            elif op == "slwi":
                regs[self._reg(args[0])] = (regs[self._reg(args[1])] << self._imm(args[2])) & _MASK
                self.cpu.elapse_cycles(CPI_ALU)
            elif op == "srwi":
                regs[self._reg(args[0])] = (regs[self._reg(args[1])] & _MASK) >> self._imm(args[2])
                self.cpu.elapse_cycles(CPI_ALU)
            elif op == "mr":
                regs[self._reg(args[0])] = regs[self._reg(args[1])]
                self.cpu.elapse_cycles(CPI_ALU)
            elif op in ("lwz", "lbz"):
                offset, base = self._memref(args[1])
                address = (regs[base] + offset) & _MASK
                size = 4 if op == "lwz" else 1
                regs[self._reg(args[0])] = self.cpu.load_word(address, size=size) & _MASK
                stats.loads += 1
            elif op in ("stw", "stb"):
                offset, base = self._memref(args[1])
                address = (regs[base] + offset) & _MASK
                size = 4 if op == "stw" else 1
                self.cpu.store_word(address, regs[self._reg(args[0])], size=size)
                stats.stores += 1
            elif op == "cmpwi":
                value = _signed(regs[self._reg(args[0])])
                imm = self._imm(args[1])
                self.cr_lt, self.cr_gt, self.cr_eq = value < imm, value > imm, value == imm
                self.cpu.elapse_cycles(CPI_ALU)
            elif op in ("b", "blt", "bgt", "beq", "bne", "bge", "ble"):
                target = args[0]
                if target not in program.labels:
                    raise AssemblyError(f"line {instr.line}: unknown label {target!r}")
                taken = (
                    op == "b"
                    or (op == "blt" and self.cr_lt)
                    or (op == "bgt" and self.cr_gt)
                    or (op == "beq" and self.cr_eq)
                    or (op == "bne" and not self.cr_eq)
                    or (op == "bge" and not self.cr_lt)
                    or (op == "ble" and not self.cr_gt)
                )
                if taken:
                    pc = program.labels[target]
                    stats.branches_taken += 1
                    self.cpu.elapse_cycles(CPI_BRANCH_TAKEN)
                else:
                    stats.branches_not_taken += 1
                    self.cpu.elapse_cycles(CPI_BRANCH_NOT_TAKEN)
            else:
                raise AssemblyError(f"line {instr.line}: unknown instruction {op!r}")

        stats.cycles = self.cpu.clock.ps_to_cycles(self.cpu.now_ps - cycles_start)
        return stats

"""PowerPC 405 model: instruction costs, caches, core timing."""

from .cache import Cache
from .minippc import AssemblyError, MiniPpc, Program, RunStats
from .isa import (
    CALL_OVERHEAD,
    CPI_ALU,
    CPI_BRANCH_NOT_TAKEN,
    CPI_BRANCH_TAKEN,
    CPI_LOAD_HIT,
    CPI_MUL,
    CPI_STORE_HIT,
    LOOP_OVERHEAD,
    InstructionMix,
)
from .ppc405 import CacheableWindow, Ppc405

__all__ = [
    "CALL_OVERHEAD",
    "CPI_ALU",
    "CPI_BRANCH_NOT_TAKEN",
    "CPI_BRANCH_TAKEN",
    "CPI_LOAD_HIT",
    "CPI_MUL",
    "CPI_STORE_HIT",
    "AssemblyError",
    "Cache",
    "CacheableWindow",
    "InstructionMix",
    "LOOP_OVERHEAD",
    "MiniPpc",
    "Ppc405",
    "Program",
    "RunStats",
]

"""PowerPC 405 timing model.

The CPU is the "main thread" of a simulated program: it owns a time cursor
(:attr:`now_ps`) that advances as it executes instruction mixes, performs
cached loads/stores, or issues uncached I/O to the docks and peripherals.

Key properties carried over from the real core (and load-bearing for the
paper's conclusions):

* **Load/store width is at most 32 bits.**  ``io_read``/``io_write`` refuse
  8-byte accesses — programmatic transfers cannot use the 64-bit PLB width;
  only cache-line fills and DMA do ("only transfers that go through the
  caches use 64-bit transfers").
* **Posted writes release the CPU early.**  A store to a posted slave
  frees the CPU after the address phase; back-pressure appears naturally
  because the next transaction waits for the bus tenure to finish.
* **Caches are write-back, 32-byte lines.**  Line fills burst over the
  PLB (64-bit beats); through the bridge they degrade to 32-bit OPB beats.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..bus.arbiter import CPU_DATA
from ..bus.bus import Bus
from ..bus.transaction import AddressRange, Op, Transaction
from ..engine.clock import ClockDomain
from ..engine.stats import StatsGroup
from ..errors import BusWidthError, SimulationError
from ..mem.memory import MemoryArray
from .cache import Cache
from .isa import InstructionMix


class CacheableWindow:
    """A cacheable address range backed by a memory array."""

    def __init__(self, base: int, size: int, memory: MemoryArray, scratch_offset: Optional[int] = None) -> None:
        self.range = AddressRange(base, size)
        self.memory = memory
        #: Offset (within the memory) safe to use for timing calibration
        #: transactions; defaults to the last cache line of the window.
        self.scratch_offset = scratch_offset if scratch_offset is not None else size - 32


class Ppc405:
    """PPC405 core with I/D caches and a PLB master port."""

    #: Pipeline cost of issuing one uncached load/store (beyond bus time).
    IO_OVERHEAD_CYCLES = 2
    #: Interrupt entry/exit (vector fetch, context save/restore).
    INTERRUPT_ENTRY_CYCLES = 40
    INTERRUPT_EXIT_CYCLES = 40

    def __init__(self, clock: ClockDomain, plb: Bus, name: str = "ppc405") -> None:
        self.clock = clock
        self.plb = plb
        self.name = name
        self.now_ps = 0
        self.icache = Cache(name=f"{name}.icache")
        self.dcache = Cache(name=f"{name}.dcache")
        self.stats = StatsGroup(name)
        self._windows: List[CacheableWindow] = []
        self._line_fill_cost: Dict[Tuple[int, Op], int] = {}
        self.interrupts_taken = 0

    # -- configuration ------------------------------------------------------
    def add_cacheable(self, base: int, size: int, memory: MemoryArray) -> None:
        """Mark [base, base+size) as cacheable, backed by ``memory``."""
        self._windows.append(CacheableWindow(base, size, memory))

    def _window_for(self, address: int) -> Optional[CacheableWindow]:
        for window in self._windows:
            if window.range.contains(address):
                return window
        return None

    def reset(self) -> None:
        """Reset-block hook: cold caches, time keeps running."""
        self.icache.invalidate()
        self.dcache.invalidate()
        self.stats.count("resets")

    # -- time ----------------------------------------------------------------
    def elapse_cycles(self, cycles: float) -> None:
        self.now_ps += self.clock.cycles_to_ps(cycles)

    def elapse_ps(self, ps: int) -> None:
        if ps < 0:
            raise SimulationError("cannot elapse negative time")
        self.now_ps += ps

    def execute(self, mix: InstructionMix, iterations: float = 1.0) -> None:
        """Run ``iterations`` of an instruction mix (cache-hit timing)."""
        cycles = mix.cycles() * iterations
        self.elapse_cycles(cycles)
        self.stats.count("instructions", round(mix.instructions * iterations))

    def execute_cycles(self, cycles: float) -> None:
        """Charge raw pipeline cycles (for per-instruction footnotes)."""
        self.elapse_cycles(cycles)

    # -- uncached I/O ------------------------------------------------------------
    def _check_io_size(self, size: int) -> None:
        if size > 4:
            raise BusWidthError(
                f"{self.name}: load/store instructions handle items of size up to "
                f"32 bits; use the DMA engine for 64-bit transfers"
            )

    def io_write(self, address: int, value: int, size: int = 4) -> None:
        """Uncached store (a programmed-I/O transfer to a device)."""
        self._check_io_size(size)
        self.elapse_cycles(self.IO_OVERHEAD_CYCLES)
        completion = self.plb.request(
            self.now_ps,
            Transaction(op=Op.WRITE, address=address, size_bytes=size, data=value),
            master=CPU_DATA,
        )
        self.now_ps = max(self.now_ps, completion.master_free_ps)
        self.stats.count("io_writes")

    def io_read(self, address: int, size: int = 4) -> int:
        """Uncached load (stalls for the full round trip)."""
        self._check_io_size(size)
        self.elapse_cycles(self.IO_OVERHEAD_CYCLES)
        completion = self.plb.request(
            self.now_ps,
            Transaction(op=Op.READ, address=address, size_bytes=size),
            master=CPU_DATA,
        )
        self.now_ps = max(self.now_ps, completion.done_ps)
        self.stats.count("io_reads")
        return int(completion.value) if completion.value is not None else 0

    def io_read_batch(self, address: int, count: int, size: int = 4) -> None:
        """Timing-only batch of ``count`` uncached loads from one device.

        Issues a single real transaction to calibrate the steady-state cost
        and multiplies — valid because the bus timing is deterministic and
        the CPU is the only master during programmed I/O.  Use only for
        side-effect-free targets (memory); device reads that pop state must
        go through :meth:`io_read` word by word.
        """
        if count <= 0:
            return
        self.io_read(address, size)
        if count == 1:
            return
        # Use the second access as the steady-state sample (the first may
        # pay extra clock-domain synchronisation).
        start = self.now_ps
        self.io_read(address, size)
        cost = self.now_ps - start
        if count > 2:
            self.now_ps += cost * (count - 2)
            self.plb.stats.count("reads", count - 2)
            self.stats.count("io_reads", count - 2)

    def io_write_batch(self, address: int, count: int, size: int = 4, value: int = 0) -> None:
        """Timing-only batch of ``count`` uncached stores (see io_read_batch).

        Steady-state posted-write throughput is limited by the bus tenure,
        not the CPU release time, so the calibration uses two probe writes
        and takes their spacing.
        """
        if count <= 0:
            return
        self.io_write(address, value, size)
        if count == 1:
            return
        self.io_write(address, value, size)
        if count == 2:
            return
        # Third probe measures the steady state (the first may pay extra
        # clock-domain sync, the second still drains the pipeline).
        second_free = self.now_ps
        busy_second = self.plb.busy_until
        self.io_write(address, value, size)
        spacing = max(self.now_ps - second_free, self.plb.busy_until - busy_second)
        self.now_ps = max(self.now_ps, self.now_ps + spacing * (count - 3))
        if count > 3:
            self.plb.stats.count("writes", count - 3)
            self.stats.count("io_writes", count - 3)

    # -- cached loads/stores ----------------------------------------------------------
    def _line_fill(self, window: CacheableWindow, address: int, op: Op) -> None:
        """Charge a cache-line burst (fill or write-back) at ``address``."""
        line_base = self.dcache.line_base(address)
        beat = 8 if self.plb.width_bits >= 64 else 4
        beats = self.dcache.line_bytes // beat
        # Write-backs of evicted lines rewrite data that is already
        # functionally current (stores update memory immediately), so the
        # burst must carry the line's real contents, not zeros.
        data = None
        if op is Op.WRITE:
            offset = line_base - window.range.base
            line = window.memory.dump(offset, self.dcache.line_bytes)
            data = [int(v) for v in line.view("<u8" if beat == 8 else "<u4")]
        completion = self.plb.request(
            self.now_ps,
            Transaction(op=op, address=line_base, size_bytes=beat, beats=beats, data=data),
            master=CPU_DATA,
        )
        self.now_ps = max(self.now_ps, completion.done_ps)

    def load_word(self, address: int, size: int = 4) -> int:
        """Cached load (uncached addresses fall back to :meth:`io_read`)."""
        self._check_io_size(size)
        window = self._window_for(address)
        if window is None:
            return self.io_read(address, size)
        hit, evicted = self.dcache.access(address, write=False)
        self.elapse_cycles(1)
        if not hit:
            if evicted is not None:
                self._line_fill(window, evicted, Op.WRITE)
            self._line_fill(window, address, Op.READ)
        value = window.memory.read_word(address - window.range.base, size)
        self.stats.count("loads")
        return value

    def store_word(self, address: int, value: int, size: int = 4) -> None:
        """Cached store (write-back timing, immediate functional update)."""
        self._check_io_size(size)
        window = self._window_for(address)
        if window is None:
            self.io_write(address, value, size)
            return
        hit, evicted = self.dcache.access(address, write=True)
        self.elapse_cycles(1)
        if not hit:
            if evicted is not None:
                self._line_fill(window, evicted, Op.WRITE)
            self._line_fill(window, address, Op.READ)  # write-allocate
        window.memory.write_word(address - window.range.base, size, value)
        self.stats.count("stores")

    # -- batched streaming penalties --------------------------------------------------
    def _calibrated_line_cost(self, window: CacheableWindow, op: Op) -> int:
        """Measured bus time of one cache-line burst in this window."""
        key = (window.range.base, op)
        cached = self._line_fill_cost.get(key)
        if cached is not None:
            return cached
        beat = 8 if self.plb.width_bits >= 64 else 4
        beats = self.dcache.line_bytes // beat
        scratch = window.range.base + window.scratch_offset
        saved = window.memory.dump(window.scratch_offset, self.dcache.line_bytes)
        start = self.plb.clock.next_edge(max(self.now_ps, self.plb.busy_until))
        completion = self.plb.request(
            start,
            Transaction(
                op=op,
                address=scratch,
                size_bytes=beat,
                beats=beats,
                data=[0] * beats if op is Op.WRITE else None,
            ),
        )
        window.memory.load(window.scratch_offset, saved)
        cost = completion.done_ps - start
        self._line_fill_cost[key] = cost
        return cost

    def charge_stream_read(self, base: int, nbytes: int) -> None:
        """Account a long sequential read sweep of [base, base+nbytes).

        Uses the analytic cache model: cost = misses x line-fill +
        evictions x write-back.  Functional data is *not* moved — software
        task models compute results with NumPy and use this only for time.
        """
        window = self._window_for(base)
        if window is None:
            raise SimulationError(f"stream at {base:#x} is not in cacheable memory")
        misses, evictions = self.dcache.stream(base, nbytes, write=False)
        cost = misses * self._calibrated_line_cost(window, Op.READ)
        cost += evictions * self._calibrated_line_cost(window, Op.WRITE)
        self.now_ps += cost
        self.plb.stats.count("reads", misses)
        self.stats.count("stream_read_bytes", nbytes)

    def charge_stream_write(self, base: int, nbytes: int, allocate: bool = True) -> None:
        """Account a long sequential write sweep (write-allocate + write-back).

        ``allocate=False`` models a hand-tuned store loop that uses ``dcbz``
        (data-cache-block-zero) to claim whole lines without the
        write-allocate fill — the kind of adaptation work the paper notes
        the DMA transfer mode forces onto the programmer.
        """
        window = self._window_for(base)
        if window is None:
            raise SimulationError(f"stream at {base:#x} is not in cacheable memory")
        misses, evictions = self.dcache.stream(base, nbytes, write=True)
        cost = 0
        if allocate:
            cost += misses * self._calibrated_line_cost(window, Op.READ)
        cost += evictions * self._calibrated_line_cost(window, Op.WRITE)
        self.now_ps += cost
        self.plb.stats.count("writes", misses)
        self.stats.count("stream_write_bytes", nbytes)

    # -- interrupts --------------------------------------------------------------------
    def take_interrupt(self, when_ps: int) -> None:
        """Enter the interrupt handler raised at ``when_ps``."""
        self.now_ps = max(self.now_ps, when_ps)
        self.elapse_cycles(self.INTERRUPT_ENTRY_CYCLES)
        self.interrupts_taken += 1
        self.stats.count("interrupts")

    def return_from_interrupt(self) -> None:
        self.elapse_cycles(self.INTERRUPT_EXIT_CYCLES)

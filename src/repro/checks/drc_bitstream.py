"""Bitstream/placement design-rule checks (paper §3–§4 constraints).

A relocated partial bitstream is only safe when a stack of *static* rules
holds: components stay inside the dynamic region's columns (so static
logic above/below is untouched), bus macros sit at the exact edge
positions the dock's connection interface expects, and the produced
bitstream writes all — and only — the region's frames.  BitLinker raises
on some of these at link time; these pure functions report **all**
violations at once, without building anything, so bad configurations are
caught before a multi-second simulation or reconfiguration runs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bitstream.bitlinker import Placement
from ..bitstream.bitstream import Bitstream, BitstreamKind
from ..bitstream.busmacro import Port, Side
from ..fabric.geometry import Rect
from ..fabric.region import Region
from .diagnostics import CheckReport, Severity, register_rule

register_rule(
    "BITS001",
    "component-overlap",
    "Two components placed on the same CLB sites would merge their "
    "configuration bits; the assembled circuit is garbage.",
)
register_rule(
    "BITS002",
    "component-outside-region",
    "A component extending past the dynamic region's rectangle writes "
    "frames/rows owned by the static design — the paper's 'don't disturb "
    "static logic' rule.",
)
register_rule(
    "BITS003",
    "bus-macro-mismatch",
    "Connected ports must agree on macro kind, signal count, row offset, "
    "side and direction; anything else leaves signals floating or shorted.",
)
register_rule(
    "BITS004",
    "bus-macro-off-region-edge",
    "The dock's bus macros sit at the region's left edge; a component with "
    "left-edge ports placed away from column 0 cannot reach them.",
)
register_rule(
    "BITS005",
    "region-resources-exceeded",
    "The components' combined slice/BRAM/multiplier demand must fit the "
    "region, or placement and routing cannot succeed.",
)
register_rule(
    "BITS006",
    "frame-outside-region",
    "A partial bitstream writing frames of columns outside the dynamic "
    "region reconfigures static logic at run time.",
)
register_rule(
    "BITS007",
    "bitstream-not-complete",
    "A partial bitstream that skips region frames (or is differential) is "
    "only correct if the device is in the assumed baseline state — the "
    "consistency hazard the paper describes.",
    severity=Severity.WARNING,
)
register_rule(
    "BITS008",
    "bitstream-device-mismatch",
    "A bitstream's device must match the region's device; frame addresses "
    "do not translate between parts.",
)


def check_placements(
    region: Region,
    placements: Sequence[Placement],
    dock_ports: Sequence[Port] = (),
    report: Optional[CheckReport] = None,
) -> CheckReport:
    """DRC over a proposed component assembly for ``region``.

    Mirrors (and extends) BitLinker's link-time validation, but reports
    every violation instead of raising on the first.
    """
    report = report if report is not None else CheckReport()
    region_rect = Rect(0, 0, region.rect.width, region.rect.height)
    placed = []
    for placement in placements:
        rect = placement.footprint()
        name = placement.component.name
        if not region_rect.contains_rect(rect):
            report.add(
                "BITS002",
                f"component {name!r} at ({placement.col_offset},{placement.row_offset}) "
                f"extends past the {region.rect.width}x{region.rect.height} region",
                obj=f"{region.name}.{name}",
                hint="shrink the component or move it inside the region rectangle",
            )
        for other, other_rect in placed:
            if rect.overlaps(other_rect):
                report.add(
                    "BITS001",
                    f"components {name!r} and {other.component.name!r} overlap "
                    f"({rect} vs {other_rect})",
                    obj=f"{region.name}.{name}",
                    hint="separate the placements; BitLinker merges bits last-write-wins",
                )
        placed.append((placement, rect))

    if placements:
        demand = placements[0].component.total_resources
        for placement in placements[1:]:
            demand = demand + placement.component.total_resources
        capacity = region.resources
        if not demand.fits_within(capacity):
            report.add(
                "BITS005",
                f"assembly needs {demand} but region {region.name!r} provides {capacity} "
                f"(short by {demand.shortfall(capacity)})",
                obj=region.name,
                hint="use a smaller kernel variant or a larger region",
            )

    _check_connections(region, placements, dock_ports, report)
    return report


def _check_connections(
    region: Region,
    placements: Sequence[Placement],
    dock_ports: Sequence[Port],
    report: CheckReport,
) -> None:
    ordered = sorted(placements, key=lambda p: p.col_offset)
    if not ordered:
        return
    leftmost = ordered[0]
    left_ports = [p for p in leftmost.component.ports if p.side is Side.LEFT]
    if left_ports and leftmost.col_offset != 0:
        report.add(
            "BITS004",
            f"component {leftmost.component.name!r} has {len(left_ports)} left-edge "
            f"port(s) but sits at column {leftmost.col_offset}, away from the dock edge",
            obj=f"{region.name}.{leftmost.component.name}",
            hint="place the dock-facing component at column offset 0",
        )
    if left_ports and not dock_ports:
        report.add(
            "BITS003",
            f"component {leftmost.component.name!r} expects {len(left_ports)} dock "
            "connection(s) but the region edge exposes none",
            obj=f"{region.name}.{leftmost.component.name}",
            hint="link against a dock, or drop the component's left-edge ports",
        )
    elif left_ports:
        for port in left_ports:
            if not any(dock.mates_with(port) for dock in dock_ports):
                report.add(
                    "BITS003",
                    f"no dock port mates component {leftmost.component.name!r} port "
                    f"{port.macro.name} (shape {port.macro.shape_key()}, "
                    f"{port.direction.value}@{port.side.value})",
                    obj=f"{region.name}.{leftmost.component.name}.{port.macro.name}",
                    hint="regenerate the component against the dock's connection "
                    "interface (repro.dock.interface.kernel_ports)",
                )

    for left, right in zip(ordered, ordered[1:]):
        abutting = left.col_offset + left.component.width == right.col_offset
        right_ports = sorted(
            (p for p in left.component.ports if p.side is Side.RIGHT),
            key=lambda p: p.macro.row_offset,
        )
        expect_ports = sorted(
            (p for p in right.component.ports if p.side is Side.LEFT),
            key=lambda p: p.macro.row_offset,
        )
        if not abutting:
            if expect_ports:
                report.add(
                    "BITS004",
                    f"component {right.component.name!r} has left-edge ports but does "
                    f"not abut {left.component.name!r}",
                    obj=f"{region.name}.{right.component.name}",
                    hint="close the gap so the bus macros line up by abutment",
                )
            continue
        if len(right_ports) != len(expect_ports):
            report.add(
                "BITS003",
                f"{left.component.name!r} exposes {len(right_ports)} right-edge port(s) "
                f"but {right.component.name!r} expects {len(expect_ports)}",
                obj=f"{region.name}.{right.component.name}",
            )
            continue
        for a, b in zip(right_ports, expect_ports):
            if not a.mates_with(b):
                report.add(
                    "BITS003",
                    f"ports {left.component.name}.{a.macro.name} and "
                    f"{right.component.name}.{b.macro.name} do not mate "
                    f"({a.macro.shape_key()} {a.direction.value} vs "
                    f"{b.macro.shape_key()} {b.direction.value})",
                    obj=f"{region.name}.{right.component.name}.{b.macro.name}",
                )


def check_bitstream(
    region: Region, bitstream: Bitstream, report: Optional[CheckReport] = None
) -> CheckReport:
    """DRC over a produced bitstream against its target region."""
    report = report if report is not None else CheckReport()
    obj = f"{region.name}.bitstream"
    if bitstream.device_name != region.device.name:
        report.add(
            "BITS008",
            f"bitstream targets {bitstream.device_name} but region "
            f"{region.name!r} is on {region.device.name}",
            obj=obj,
            hint="relink the components for the region's device",
        )
        return report

    allowed = set(region.frame_addresses)
    outside = [address for address, _ in bitstream.frames if address not in allowed]
    if bitstream.kind is not BitstreamKind.FULL:
        for address in outside[:8]:
            report.add(
                "BITS006",
                f"partial bitstream writes frame {address}, outside region "
                f"{region.name!r} (columns {region.rect.col}..{region.rect.col_end - 1})",
                obj=obj,
                hint="a partial bitstream must stay within the region's frame set",
            )
        if len(outside) > 8:
            report.add(
                "BITS006",
                f"... and {len(outside) - 8} more frames outside the region",
                obj=obj,
            )

    written = {address for address, _ in bitstream.frames}
    missing = [address for address in region.frame_addresses if address not in written]
    if bitstream.kind is BitstreamKind.PARTIAL_DIFFERENTIAL:
        report.add(
            "BITS007",
            f"differential bitstream ({bitstream.frame_count} of "
            f"{region.frame_count} region frames): only safe if the device is "
            "known to be in the diff's baseline state",
            obj=obj,
            hint="use a complete partial bitstream unless the loader tracks state",
        )
    elif bitstream.kind is BitstreamKind.PARTIAL_COMPLETE and missing:
        report.add(
            "BITS007",
            f"bitstream is declared partial-complete but skips {len(missing)} of "
            f"{region.frame_count} region frames (first: {missing[0]})",
            obj=obj,
            severity=Severity.ERROR,
            hint="include every region frame, or declare the stream differential",
        )
    return report

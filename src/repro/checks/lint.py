"""Simulator-discipline linter for the :mod:`repro` codebase.

A small flake8-style pass over ``src/repro`` built on the stdlib ``ast``
module.  The rules encode the modelling contract documented in
``docs/MODELING.md`` §9 (determinism) and §8 (fast-path equivalence):

* **LINT001** — no wall-clock reads in the model.  Simulated time is the
  only clock; ``time.time()`` & friends make runs irreproducible.
* **LINT002** — no unseeded randomness.  Workload generators must thread
  an explicit seed so every run is bit-identical.
* **LINT003** — no bare ``assert`` for runtime invariants in library
  code.  Asserts vanish under ``python -O``; raise
  :class:`repro.errors.InvariantError` (or a sibling) instead.
* **LINT004** — no float arithmetic flowing into picosecond values.
  Timestamps are integer ps; an unrounded division assigned to a
  ``*_ps`` name (or passed as a ``*_ps`` argument) drifts simulated time.
* **LINT005** — fast-path discipline.  Code invoking the vectorized burst
  primitives must be guarded through :mod:`repro.engine.fastpath` (or a
  local predicate over it), and nothing outside that module may read the
  ``REPRO_NO_FAST_PATH`` environment variable directly.
* **LINT006** — scenario purity.  Functions registered with the
  ``@scenario(...)`` decorator are cached content-addressed by (source,
  params, version); wall-clock reads, ``global`` state, or mutation of
  module-level objects would make identical keys yield different
  results, so none may appear in a scenario body.
* **LINT007** — no swallowed broad excepts.  A ``except Exception``/
  ``except BaseException``/bare ``except:`` handler that never re-raises
  hides programming errors (the fault-injection subsystem exists to
  *exercise* error paths; silently eating them defeats it).  Catch the
  specific expected errors, or re-raise.
* **LINT008** — batch-phase purity.  The ``bulk`` callback handed to
  :func:`repro.engine.batch.run_steady` owns *data movement only*; the
  compiler charges time and statistics by extrapolation.  A bulk body
  that drives CPU/bus primitives or writes timing cursors double-charges
  the phase and silently breaks fast/slow equivalence.
* **LINT009** — serve-decision discipline.  ``decide_*`` admission
  kernels feed both scheduler paths and the result cache, so they must
  be pure functions of their cost arguments (no loops, RNG, clock or
  environment reads, no global state); and scenarios tagged ``serve``
  must not loop over per-request trace/outcome data in Python — that
  work belongs inside :mod:`repro.serve.engine`'s vectorized fast path.

Per-line suppression: append ``# repro: noqa RULE-ID[,RULE-ID...]`` to
silence named rules on that line, or ``# repro: noqa`` to silence all.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from .diagnostics import CheckReport, Diagnostic, Severity, register_rule

register_rule(
    "LINT000",
    "unparseable-module",
    "A module that does not parse cannot be linted (or imported).",
)
register_rule(
    "LINT001",
    "wall-clock-in-model",
    "The simulator's only clock is simulated picoseconds; host-time reads "
    "make results depend on the machine running them.",
)
register_rule(
    "LINT002",
    "unseeded-randomness",
    "Unseeded or hardwired RNGs (random.*, numpy legacy global, "
    "default_rng() without a seed threaded from a parameter or "
    "derive_seed) break run-to-run determinism and cache keying; thread "
    "an explicit seed.",
)
register_rule(
    "LINT003",
    "bare-assert-in-library",
    "assert statements disappear under python -O, silently disabling the "
    "invariant; raise repro.errors.InvariantError instead.",
)
register_rule(
    "LINT004",
    "float-into-picoseconds",
    "Simulated time is integer ps; float arithmetic assigned into *_ps "
    "values accumulates drift and breaks equality-based tests.",
)
register_rule(
    "LINT005",
    "unguarded-fastpath",
    "Vectorized burst primitives must stay behind the repro.engine.fastpath "
    "gate so traces and the reference path remain byte-identical.",
)
register_rule(
    "LINT006",
    "impure-scenario",
    "Registered sweep scenarios must be deterministic-pure: the result "
    "cache keys on (source, params, version) only, so wall-clock reads or "
    "module-level mutable state would make cached results wrong.",
)
register_rule(
    "LINT007",
    "swallowed-broad-except",
    "Catching Exception/BaseException (or a bare except) without "
    "re-raising hides programming errors behind fault-handling code; "
    "catch the expected error types instead.",
)
register_rule(
    "LINT008",
    "engine-mutation-in-bulk-phase",
    "A run_steady bulk callback moves data only; the phase compiler "
    "extrapolates time and statistics, so engine-state mutation inside it "
    "double-charges the phase and breaks fast/slow equivalence.",
)
register_rule(
    "LINT009",
    "serve-decision-discipline",
    "decide_* admission kernels must be pure functions of their cost "
    "arguments (no loops, RNG, clock or environment reads, no global "
    "state), and serve-tagged scenarios must not loop over per-request "
    "trace/outcome data in Python — per-request work belongs inside the "
    "vectorized engine.",
)

#: Calls that read the host clock: root module name -> attribute names.
_WALL_CLOCK = {
    "time": {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock",
    },
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

#: Names whose presence in a function counts as a fast-path guard.
_FASTPATH_GUARDS = {"fastpath", "fast_path_active", "_fast_ok", "fast_ok"}

#: Caller-side vectorized primitives that require a guard in scope.
_FASTPATH_PRIMITIVES = {"request_burst", "access_burst", "push_words"}

#: Wrappers that coerce a float expression back to an integer.
_INT_COERCIONS = {"int", "round", "floor", "ceil", "len", "max", "min", "divmod"}

#: Decorator names that mark a function as a registered sweep scenario.
_SCENARIO_DECORATORS = {"scenario"}

#: Callees whose result counts as a threaded seed (LINT002): the
#: registry's deterministic seed-derivation helpers.
_SEED_DERIVERS_PREFIX = "derive_"


def _seed_threaded(node: ast.AST, tainted: Set[str]) -> bool:
    """Is this seed expression threaded from a parameter or ``derive_*``?

    Threaded = it references a tainted name (a parameter, or a local
    computed from one), calls a ``derive_seed``/``derive_rng_seed``-style
    helper, or reads object state (an attribute like ``self.seed`` —
    whoever stored it owns the threading).  A literal (or ``None``, which
    asks the OS for entropy) is not threaded.
    """
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id in tainted:
            return True
        if isinstance(child, ast.Attribute):
            return True
        if isinstance(child, ast.Call):
            callee = child.func
            name = callee.attr if isinstance(callee, ast.Attribute) else getattr(
                callee, "id", None
            )
            if name and name.startswith(_SEED_DERIVERS_PREFIX):
                return True
    return False


def _tainted_names(node) -> Set[str]:
    """Parameter names plus locals assigned from already-tainted values.

    Two propagation passes over the subtree's assignments — enough for the
    ``s = seed + 1; rng = default_rng(s)`` shapes that occur in practice.
    """
    args = node.args
    tainted: Set[str] = set()
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        tainted.add(arg.arg)
    if args.vararg:
        tainted.add(args.vararg.arg)
    if args.kwarg:
        tainted.add(args.kwarg.arg)
    for _ in range(2):
        for child in ast.walk(node):
            value = None
            targets: List[ast.AST] = []
            if isinstance(child, ast.Assign):
                value, targets = child.value, list(child.targets)
            elif isinstance(child, (ast.AnnAssign, ast.NamedExpr)):
                value, targets = child.value, [child.target]
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                value, targets = child.iter, [child.target]
            if value is None:
                continue
            if _seed_threaded(value, tainted):
                for target in targets:
                    tainted.update(_bound_names(target))
    return tainted

#: Method names that mutate their receiver in place (LINT006).
_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
    "appendleft",
    "extendleft",
}

#: Engine primitives that advance time or charge statistics (LINT008).
#: The compiled fast path extrapolates both, so a ``bulk`` body calling
#: one of these charges the phase twice.  ``feed_words``/``drain_words``
#: are the sanctioned data-movement primitives and are deliberately
#: absent.
_ENGINE_MUTATORS = {
    "io_read",
    "io_write",
    "io_read_batch",
    "io_write_batch",
    "execute_cycles",
    "elapse_cycles",
    "elapse_ps",
    "request",
    "request_burst",
    "request_concurrent",
    "take_interrupt",
    "return_from_interrupt",
    "charge_stream_read",
    "charge_stream_write",
    "count",
    "record",
    "count_many",
    "record_many",
}

#: Attribute names whose assignment inside a bulk body rewrites a timing
#: cursor behind the compiler's back (LINT008).
_TIMING_CURSORS = {"now_ps"}
_TIMING_CURSOR_SUFFIX = "busy_until"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\s+(?P<rules>[A-Z0-9,\s-]+))?", re.IGNORECASE)


def _parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule IDs (``None`` = all rules)."""
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = None
        else:
            suppressions[lineno] = {r.strip().upper() for r in rules.split(",") if r.strip()}
    return suppressions


def _root_name(node: ast.AST) -> Optional[str]:
    """Leftmost name of an attribute chain (``np.random.default_rng`` -> np)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _attr_chain(node: ast.AST) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _base_name(node: ast.AST) -> Optional[str]:
    """Innermost name of an attribute/subscript chain (``a.b[0].c`` -> a)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _bound_names(target: ast.AST) -> Iterator[str]:
    """Names an assignment *target* binds.

    Only plain names and destructuring patterns bind; a subscript or
    attribute target mutates an existing object without binding anything.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _bound_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names bound by top-level assignments and imports (LINT006 targets)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                names.update(_bound_names(target))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


#: Exception names considered too broad to catch-and-drop (LINT007).
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _is_broad_handler(handler_type: Optional[ast.AST]) -> bool:
    """Is this ``except`` clause bare or catching Exception/BaseException?"""
    if handler_type is None:
        return True
    candidates = handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    for candidate in candidates:
        name = candidate.attr if isinstance(candidate, ast.Attribute) else getattr(
            candidate, "id", None
        )
        if name in _BROAD_EXCEPTIONS:
            return True
    return False


#: Callees whose result is per-request data (LINT009): the serve trace
#: generators, the engine entry point, and the scenarios' shared input
#: builder.  ``*_trace`` catches poisson_trace/bursty_trace/diurnal_trace
#: and future arrival models without enumeration.
_PER_REQUEST_SOURCES = {"simulate", "make_trace", "build_serve_inputs"}
_PER_REQUEST_SOURCE_SUFFIX = "_trace"

#: Function-name prefix marking an admission decision kernel (LINT009).
_DECISION_PREFIX = "decide_"


def _is_trace_source_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
    return bool(name) and (
        name in _PER_REQUEST_SOURCES or name.endswith(_PER_REQUEST_SOURCE_SUFFIX)
    )


def _per_request_tainted(node) -> Set[str]:
    """Locals holding per-request data: assigned from a trace source call,
    or aliased/projected (``lat = outcome.latency_ps``) from one.

    Deliberately does *not* propagate through other calls: a reducer like
    ``ServeReport.from_outcome(outcome)`` returns aggregates, and looping
    over those is fine.
    """
    tainted: Set[str] = set()
    for _ in range(2):
        for child in ast.walk(node):
            value = None
            targets: List[ast.AST] = []
            if isinstance(child, ast.Assign):
                value, targets = child.value, list(child.targets)
            elif isinstance(child, (ast.AnnAssign, ast.NamedExpr)):
                value, targets = child.value, [child.target]
            if value is None:
                continue
            if _is_trace_source_call(value) or _base_name(value) in tainted:
                for target in targets:
                    tainted.update(_bound_names(target))
    return tainted


def _scenario_tags(node) -> Set[str]:
    """Literal string tags in the function's ``@scenario(..., tags=(...))``."""
    tags: Set[str] = set()
    for dec in node.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        target = dec.func
        name = target.attr if isinstance(target, ast.Attribute) else getattr(
            target, "id", None
        )
        if name not in _SCENARIO_DECORATORS:
            continue
        for keyword in dec.keywords:
            if keyword.arg != "tags":
                continue
            for child in ast.walk(keyword.value):
                if isinstance(child, ast.Constant) and isinstance(child.value, str):
                    tags.add(child.value)
    return tags


def _is_scenario_decorated(node) -> bool:
    """Does the function carry the registry's ``@scenario(...)`` marker?"""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            name = target.attr
        else:
            name = getattr(target, "id", None)
        if name in _SCENARIO_DECORATORS:
            return True
    return False


def _local_bindings(node) -> Set[str]:
    """Every name the function binds locally (params, assigns, loops, ...)."""
    bound: Set[str] = set()
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        bound.add(arg.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    for child in ast.walk(node):
        if isinstance(child, ast.Assign):
            for target in child.targets:
                bound.update(_bound_names(target))
        elif isinstance(child, (ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
            if isinstance(child.target, ast.Name):
                bound.add(child.target.id)
        elif isinstance(child, (ast.For, ast.AsyncFor)):
            bound.update(_bound_names(child.target))
        elif isinstance(child, ast.withitem) and child.optional_vars is not None:
            bound.update(_bound_names(child.optional_vars))
        elif isinstance(child, ast.comprehension):
            bound.update(_bound_names(child.target))
        elif isinstance(child, ast.ExceptHandler) and child.name:
            bound.add(child.name)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if child is not node:
                bound.add(child.name)
    return bound


def _float_tainted(node: ast.AST) -> bool:
    """Does evaluating ``node`` plausibly produce a non-integer float?

    Conservative on purpose: true division and float literals taint; a
    call through an int-coercing wrapper (``round``, ``int``, ...) cleans;
    other calls are treated as clean (their return contract is theirs).
    """
    if isinstance(node, ast.Call):
        # Calls are black boxes: int coercions (round, int, ...) are clean
        # by contract, and other callees own their own return types.
        return False
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _float_tainted(node.left) or _float_tainted(node.right)
    if isinstance(node, ast.UnaryOp):
        return _float_tainted(node.operand)
    if isinstance(node, ast.IfExp):
        return _float_tainted(node.body) or _float_tainted(node.orelse)
    return False


def _bulk_callback_bodies(tree: ast.Module) -> List[ast.AST]:
    """Function bodies handed as the ``bulk`` argument to ``run_steady``.

    Collects inline lambdas directly, and resolves plain-name arguments to
    the module's def of that name (the overwhelmingly common shape: a
    nested ``def bulk(start, count)`` passed by name).
    """
    names: Set[str] = set()
    bodies: List[ast.AST] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        if callee != "run_steady":
            continue
        bulk_arg: Optional[ast.AST] = node.args[3] if len(node.args) >= 4 else None
        for keyword in node.keywords:
            if keyword.arg == "bulk":
                bulk_arg = keyword.value
        if isinstance(bulk_arg, ast.Lambda):
            bodies.append(bulk_arg)
        elif isinstance(bulk_arg, ast.Name):
            names.add(bulk_arg.id)
        elif isinstance(bulk_arg, ast.IfExp):
            # ``bulk if use_bulk else None`` — resolve both arms.
            for arm in (bulk_arg.body, bulk_arg.orelse):
                if isinstance(arm, ast.Name):
                    names.add(arm.id)
                elif isinstance(arm, ast.Lambda):
                    bodies.append(arm)
    if names:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in names:
                    bodies.append(node)
    return bodies


def _scan_bulk_purity(tree: ast.Module, report: CheckReport, path: str) -> None:
    """LINT008: no engine-state mutation inside a run_steady bulk body."""
    hint = (
        "bulk callbacks move data only (feed_words/drain_words); the phase "
        "compiler charges time and stats by extrapolation"
    )
    for body in _bulk_callback_bodies(tree):
        label = getattr(body, "name", "<lambda>")
        for child in ast.walk(body):
            if isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
                if child.func.attr in _ENGINE_MUTATORS:
                    report.add(
                        "LINT008",
                        f"bulk callback {label!r} calls engine mutator "
                        f".{child.func.attr}() inside a compiled phase",
                        file=path,
                        line=child.lineno,
                        hint=hint,
                    )
            elif isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    child.targets if isinstance(child, ast.Assign) else [child.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute) and (
                        target.attr in _TIMING_CURSORS
                        or target.attr.endswith(_TIMING_CURSOR_SUFFIX)
                    ):
                        report.add(
                            "LINT008",
                            f"bulk callback {label!r} writes timing cursor "
                            f".{target.attr} inside a compiled phase",
                            file=path,
                            line=child.lineno,
                            hint=hint,
                        )


class _Visitor(ast.NodeVisitor):
    def __init__(
        self, path: str, report: CheckReport, module_names: Optional[Set[str]] = None
    ) -> None:
        self.path = path
        self.report = report
        self.in_fastpath_module = path.replace("\\", "/").endswith("engine/fastpath.py")
        self.module_names = module_names or set()
        #: Stack of per-function tainted-name sets (LINT002 seed threading);
        #: nested defs see their enclosing functions' taints (closures).
        self._taint_stack: List[Set[str]] = []

    # -- helpers ----------------------------------------------------------
    def _flag(self, rule: str, node: ast.AST, message: str, hint: Optional[str] = None) -> None:
        self.report.add(
            rule, message, file=self.path, line=getattr(node, "lineno", None), hint=hint
        )

    # -- LINT007 ----------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if _is_broad_handler(node.type) and not any(
            isinstance(child, ast.Raise) for child in ast.walk(node)
        ):
            caught = "bare except" if node.type is None else "except Exception"
            self._flag(
                "LINT007",
                node,
                f"{caught} handler swallows the error (no raise in its body)",
                hint="catch the specific expected errors, or re-raise",
            )
        self.generic_visit(node)

    # -- LINT003 ----------------------------------------------------------
    def visit_Assert(self, node: ast.Assert) -> None:
        self._flag(
            "LINT003",
            node,
            "bare assert used for a runtime invariant",
            hint="raise repro.errors.InvariantError (asserts vanish under python -O)",
        )
        self.generic_visit(node)

    # -- LINT001 / LINT002 / LINT005(b) ----------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            chain = _attr_chain(node.func)
            root, attr = chain[0] if chain else None, node.func.attr
            if root in _WALL_CLOCK and attr in _WALL_CLOCK[root]:
                self._flag(
                    "LINT001",
                    node,
                    f"wall-clock read {'.'.join(chain)}()",
                    hint="use simulated time (Simulator.now / ClockDomain)",
                )
            if root == "random":
                self._flag(
                    "LINT002",
                    node,
                    f"call into the global random module ({'.'.join(chain)}())",
                    hint="use numpy.random.default_rng(seed) with an explicit seed",
                )
            if len(chain) >= 3 and chain[-2] == "random" and root in {"np", "numpy"}:
                if attr == "default_rng":
                    if not node.args and not node.keywords:
                        self._flag(
                            "LINT002",
                            node,
                            "default_rng() without a seed",
                            hint="pass an explicit seed for reproducible workloads",
                        )
                    else:
                        self._check_rng_seed(node)
                else:
                    self._flag(
                        "LINT002",
                        node,
                        f"legacy global numpy RNG ({'.'.join(chain)}())",
                        hint="use numpy.random.default_rng(seed)",
                    )
        # LINT002(b) on bare-name default_rng(...) (common `rng = default_rng(s)`
        # after `from numpy.random import default_rng`).
        if isinstance(node.func, ast.Name) and node.func.id == "default_rng":
            if not node.args and not node.keywords:
                self._flag(
                    "LINT002",
                    node,
                    "default_rng() without a seed",
                    hint="pass an explicit seed for reproducible workloads",
                )
            else:
                self._check_rng_seed(node)
        # LINT004 on keyword arguments named *_ps.
        for keyword in node.keywords:
            if keyword.arg and keyword.arg.endswith("_ps") and _float_tainted(keyword.value):
                self._flag(
                    "LINT004",
                    node,
                    f"float-valued expression passed as {keyword.arg}=",
                    hint="wrap in round() — simulated time is integer picoseconds",
                )
        self.generic_visit(node)

    def _check_rng_seed(self, node: ast.Call) -> None:
        """LINT002(c): a ``default_rng(seed)`` whose seed expression is not
        threaded from a parameter or a ``derive_*`` helper."""
        seed_expr: Optional[ast.AST] = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg in (None, "seed"):
                seed_expr = keyword.value
        if seed_expr is None:
            return
        tainted: Set[str] = set()
        for frame in self._taint_stack:
            tainted |= frame
        if not _seed_threaded(seed_expr, tainted):
            self._flag(
                "LINT002",
                node,
                "default_rng() seed is not threaded from a parameter or derive_seed",
                hint="pass the caller's seed (or derive_seed(base, label)) instead "
                "of a hardwired value",
            )

    def visit_Constant(self, node: ast.Constant) -> None:
        if (
            node.value == "REPRO_NO_FAST_PATH"  # repro: noqa LINT005
            and not self.in_fastpath_module
        ):
            self._flag(
                "LINT005",
                node,
                "direct reference to the REPRO_NO_FAST_PATH environment variable",
                hint="go through repro.engine.fastpath (enabled()/force()/disabled())",
            )

    # -- LINT004 on assignments ------------------------------------------
    def _check_ps_target(self, target: ast.AST, value: ast.AST) -> None:
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name and name.endswith("_ps") and _float_tainted(value):
            self._flag(
                "LINT004",
                value,
                f"float arithmetic assigned to picosecond value {name!r}",
                hint="wrap in round() — simulated time is integer picoseconds",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_ps_target(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_ps_target(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        name = None
        if isinstance(node.target, ast.Name):
            name = node.target.id
        elif isinstance(node.target, ast.Attribute):
            name = node.target.attr
        if name and name.endswith("_ps") and (
            isinstance(node.op, ast.Div) or _float_tainted(node.value)
        ):
            self._flag(
                "LINT004",
                node,
                f"float arithmetic folded into picosecond value {name!r}",
                hint="wrap in round() — simulated time is integer picoseconds",
            )
        self.generic_visit(node)

    # -- LINT005(a): guard discipline per function ------------------------
    def _visit_function(self, node) -> None:
        calls_primitive = None
        references_guard = False
        for child in ast.walk(node):
            if isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
                if child.func.attr in _FASTPATH_PRIMITIVES:
                    calls_primitive = calls_primitive or child
            if isinstance(child, ast.Attribute) and child.attr in _FASTPATH_GUARDS:
                references_guard = True
            if isinstance(child, ast.Name) and child.id in _FASTPATH_GUARDS:
                references_guard = True
        if calls_primitive is not None and not references_guard:
            self._flag(
                "LINT005",
                calls_primitive,
                f"function {node.name!r} invokes a vectorized burst primitive "
                "without a fast-path guard in scope",
                hint="gate the call on Bus.fast_path_active() / repro.engine.fastpath",
            )
        if _is_scenario_decorated(node):
            self._scan_scenario_purity(node)
            if "serve" in _scenario_tags(node):
                self._scan_serve_scenario(node)
        if node.name.startswith(_DECISION_PREFIX):
            self._scan_decision_purity(node)
        self._taint_stack.append(_tainted_names(node))
        try:
            self.generic_visit(node)
        finally:
            self._taint_stack.pop()

    # -- LINT006: scenario purity -----------------------------------------
    def _scan_scenario_purity(self, node) -> None:
        """Flag wall-clock reads and shared-state mutation in a scenario.

        Shared state = module-level bindings not shadowed by a local
        binding; reading them is fine, writing or mutating them is not.
        """
        shared = self.module_names - _local_bindings(node)
        hint = (
            "scenarios are cached by (source, params, version); keep all "
            "state local and all time simulated"
        )
        for child in ast.walk(node):
            if isinstance(child, ast.Global):
                self._flag(
                    "LINT006",
                    child,
                    f"scenario {node.name!r} declares global "
                    f"{', '.join(child.names)}",
                    hint=hint,
                )
            elif isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
                chain = _attr_chain(child.func)
                root, attr = chain[0] if chain else None, child.func.attr
                if root in _WALL_CLOCK and attr in _WALL_CLOCK[root]:
                    self._flag(
                        "LINT006",
                        child,
                        f"scenario {node.name!r} reads the wall clock "
                        f"({'.'.join(chain)}())",
                        hint=hint,
                    )
                elif attr in _MUTATING_METHODS and _base_name(child.func.value) in shared:
                    self._flag(
                        "LINT006",
                        child,
                        f"scenario {node.name!r} mutates module-level "
                        f"{_base_name(child.func.value)!r} via .{attr}()",
                        hint=hint,
                    )
            elif isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    child.targets if isinstance(child, ast.Assign) else [child.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        base = _base_name(target)
                        if base in shared:
                            self._flag(
                                "LINT006",
                                child,
                                f"scenario {node.name!r} writes into "
                                f"module-level {base!r}",
                                hint=hint,
                            )
            elif isinstance(child, ast.Delete):
                for target in child.targets:
                    base = _base_name(target)
                    if isinstance(target, (ast.Subscript, ast.Attribute)) and base in shared:
                        self._flag(
                            "LINT006",
                            child,
                            f"scenario {node.name!r} deletes from "
                            f"module-level {base!r}",
                            hint=hint,
                        )

    # -- LINT009: serve-decision discipline -------------------------------
    def _scan_decision_purity(self, node) -> None:
        """Flag state, loops, RNG and environment reads in a ``decide_*``
        kernel.  (Wall-clock reads are already LINT001 everywhere.)"""
        hint = (
            "decide_* kernels feed both scheduler paths and the result "
            "cache; keep them pure over their cost-table arguments"
        )
        for child in ast.walk(node):
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                kind = "while" if isinstance(child, ast.While) else "for"
                self._flag(
                    "LINT009",
                    child,
                    f"decision kernel {node.name!r} contains a {kind} loop",
                    hint=hint,
                )
            elif isinstance(child, (ast.Global, ast.Nonlocal)):
                self._flag(
                    "LINT009",
                    child,
                    f"decision kernel {node.name!r} declares "
                    f"{'global' if isinstance(child, ast.Global) else 'nonlocal'} "
                    f"{', '.join(child.names)}",
                    hint=hint,
                )
            elif isinstance(child, ast.Call):
                func = child.func
                name = func.attr if isinstance(func, ast.Attribute) else getattr(
                    func, "id", None
                )
                root = _root_name(func) if isinstance(func, ast.Attribute) else None
                if name == "default_rng" or root == "random":
                    self._flag(
                        "LINT009",
                        child,
                        f"decision kernel {node.name!r} draws randomness",
                        hint=hint,
                    )
                elif root == "os" and name == "getenv":
                    self._flag(
                        "LINT009",
                        child,
                        f"decision kernel {node.name!r} reads the environment",
                        hint=hint,
                    )
            elif isinstance(child, ast.Attribute) and child.attr == "environ":
                if _root_name(child) == "os":
                    self._flag(
                        "LINT009",
                        child,
                        f"decision kernel {node.name!r} reads os.environ",
                        hint=hint,
                    )

    def _scan_serve_scenario(self, node) -> None:
        """Flag Python loops over per-request data in a serve scenario."""
        tainted = _per_request_tainted(node)
        hint = (
            "per-request work belongs in repro.serve.engine's vectorized "
            "fast path; reduce outcome arrays with NumPy instead"
        )
        for child in ast.walk(node):
            if isinstance(child, (ast.For, ast.AsyncFor)):
                iters = [child.iter]
            elif isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters = [gen.iter for gen in child.generators]
            else:
                continue
            for it in iters:
                if _is_trace_source_call(it) or _base_name(it) in tainted:
                    self._flag(
                        "LINT009",
                        it,
                        f"serve scenario {node.name!r} iterates per-request "
                        "trace/outcome data in Python",
                        hint=hint,
                    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


def lint_source(source: str, path: str = "<string>") -> List[Diagnostic]:
    """Lint one module's source; returns the surviving diagnostics."""
    report = CheckReport()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        report.add(
            "LINT000",
            f"could not parse: {err}",
            file=path,
            line=err.lineno,
            severity=Severity.ERROR,
        )
        return report.diagnostics
    _Visitor(path, report, module_names=_module_level_names(tree)).visit(tree)
    _scan_bulk_purity(tree, report, path)
    suppressions = _parse_suppressions(source)
    _unsuppressed = object()
    kept: List[Diagnostic] = []
    for diag in report.diagnostics:
        rules = suppressions.get(diag.line or -1, _unsuppressed)
        if rules is None:  # blanket ``# repro: noqa``
            continue
        if isinstance(rules, set) and diag.rule.upper() in rules:
            continue
        kept.append(diag)
    return kept


def lint_file(path: Path, display_root: Optional[Path] = None) -> List[Diagnostic]:
    source = path.read_text(encoding="utf-8")
    display = str(path)
    if display_root is not None:
        try:
            display = str(path.relative_to(display_root))
        except ValueError:
            pass
    return lint_source(source, display)


def iter_python_files(root: Path) -> Iterable[Path]:
    return sorted(p for p in root.rglob("*.py") if "__pycache__" not in p.parts)


def lint_paths(
    paths: Sequence[Path], display_root: Optional[Path] = None, report: Optional[CheckReport] = None
) -> CheckReport:
    """Lint files and/or directory trees into one report."""
    report = report if report is not None else CheckReport()
    for path in paths:
        files = iter_python_files(path) if path.is_dir() else [path]
        for file_path in files:
            report.diagnostics.extend(lint_file(file_path, display_root=display_root))
    return report


def package_root() -> Path:
    """The installed ``repro`` package directory (self-lint target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def lint_package(report: Optional[CheckReport] = None) -> CheckReport:
    """Self-lint the whole :mod:`repro` package."""
    root = package_root()
    return lint_paths([root], display_root=root.parent, report=report)

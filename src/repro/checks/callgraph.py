"""Whole-program, AST-level call-graph analysis over the ``repro`` package.

Foundation of the dependency-precise cache keys (:mod:`repro.checks.depfp`):
the graph answers *"which modules can influence the result of running this
function?"* without importing or executing anything.  Per module it records
imports (with relative-import and ``as``-alias resolution), top-level
functions, classes with their methods and static bases, and module-level
constants; per function it records every call site.  :meth:`CallGraph.closure`
then walks call edges transitively from a root function.

Resolution is deliberately **conservative** — over-approximating the closure
only widens cache invalidation, while missing an edge would let a stale cache
entry survive a behaviour change:

* plain-name calls resolve through local defs, import aliases (following
  re-export chains through ``__init__`` modules) and ``*``-imports;
* attribute calls whose root is an imported module alias resolve precisely;
  every other attribute call (``obj.method(...)``, ``self.x.method(...)``)
  resolves class-hierarchy-analysis style to **every** method of that name
  in the package;
* instantiating a class reaches its constructor family (``__init__``,
  ``__post_init__``, ``__new__``, ``__call__``) including statically
  resolvable base classes; ``super().m(...)`` resolves through the static
  base chain of the enclosing class;
* when any function of a module is reached, the module's top-level code
  (imports, constant computation, registration side effects) is traversed
  too, and the module's **entire source** joins the fingerprint material —
  so edits to module constants invalidate dependants even though constants
  have no call edges.

Call sites that defeat static resolution (calling a local variable, a
subscript, or the result of another call) are recorded as *unresolved* and
counted against a budget by the CKEY rules rather than silently dropped.

Host-side orchestration layers (``repro.sweep``, ``repro.checks``,
``repro.cli``) are excluded from the default graph: they never influence a
*simulated* result (``docs/MODELING.md`` §9) and are fenced by the cache
schema number instead — including them would drag their file I/O into every
closure through the conservative attribute resolution.
"""

from __future__ import annotations

import ast
import builtins
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .lint import _parse_suppressions

#: Qualname of the pseudo-function holding a module's top-level code.
MODULE_BODY = "<module>"

#: (module dotted name, qualname) — one node of the function graph.
FuncKey = Tuple[str, str]

#: Subpackages excluded from the default ``repro`` graph: host-side
#: orchestration that cannot influence simulated results and is fenced by
#: the cache schema number (see module docstring).
DEFAULT_EXCLUDE: Tuple[str, ...] = (
    "repro.checks",
    "repro.sweep",
    "repro.dse",
    "repro.cli",
    "repro.__main__",
)

#: Constructor family traversed when a class is instantiated.
_CONSTRUCTOR_METHODS = ("__init__", "__post_init__", "__new__", "__call__")

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``chain`` is the dotted callee path: ``("foo",)`` for ``foo(...)``,
    ``("np", "random", "default_rng")`` for the attribute form,
    ``("super", "m")`` for ``super().m(...)``, ``("<dynamic>", "m")`` for an
    attribute call on a computed receiver, and ``None`` when the callee
    itself is computed (``handlers[k](...)``, ``getattr(o, n)(...)``).
    """

    chain: Optional[Tuple[str, ...]]
    lineno: int


@dataclass
class FunctionNode:
    """One analyzable function (or a module's top-level pseudo-function)."""

    module: str
    qualname: str
    lineno: int
    #: Enclosing class name for methods (``None`` for module-level code).
    owner: Optional[str]
    calls: Tuple[CallSite, ...]
    #: AST nodes owned by this function — scanned by the CKEY rules.
    scan_nodes: Tuple[ast.AST, ...]
    #: Names of defs nested inside this function.  Their call sites are
    #: already swept into ``calls`` (the collector walks the whole
    #: subtree), so calling one is covered, not unresolved.
    nested_defs: frozenset = frozenset()

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassNode:
    """One top-level class: its methods and statically written bases."""

    module: str
    name: str
    bases: Tuple[Tuple[str, ...], ...]
    methods: Tuple[str, ...]  # method names (not qualnames)


@dataclass
class ModuleInfo:
    """Everything the analyzer knows about one parsed module."""

    name: str
    path: Path
    display: str  # repo-style path used in diagnostics ("repro/engine/...")
    source: str
    source_hash: str
    functions: Dict[str, FunctionNode]
    classes: Dict[str, ClassNode]
    imports: Dict[str, str]  # local binding -> dotted target
    star_imports: Tuple[str, ...]
    toplevel_names: Set[str]
    suppressions: Dict[int, Optional[Set[str]]]
    parse_error: Optional[str] = None


@dataclass
class Resolution:
    """Outcome of resolving one call site."""

    functions: List[FuncKey] = field(default_factory=list)
    modules: List[str] = field(default_factory=list)
    external: Optional[str] = None  # dotted name outside the package
    unresolved: bool = False


@dataclass
class Closure:
    """Transitive dependency closure of one or more root functions."""

    roots: Tuple[FuncKey, ...]
    functions: Set[FuncKey]
    modules: Set[str]
    #: (module display path, lineno, description) per unresolvable edge.
    unresolved: List[Tuple[str, int, str]]
    externals: Set[str]


def _split_chain(func: ast.AST) -> Optional[Tuple[str, ...]]:
    """Callee path of a call expression (see :class:`CallSite`)."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    if (
        parts
        and isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "super"
    ):
        parts.append("super")
        return tuple(reversed(parts))
    if parts:
        parts.append("<dynamic>")
        return tuple(reversed(parts))
    return None


def _call_sites(nodes: Iterable[ast.AST]) -> Tuple[CallSite, ...]:
    sites: List[CallSite] = []
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                sites.append(CallSite(_split_chain(node.func), node.lineno))
    return tuple(sites)


def _toplevel_scan_nodes(tree: ast.Module) -> List[ast.AST]:
    """AST nodes executed at import time: everything except def bodies.

    Decorators of top-level functions/classes run at import, so they belong
    to the module pseudo-function; a class *body* also runs at import, so it
    is walked with the same def-pruning rule.
    """
    nodes: List[ast.AST] = []

    def decorators(stmt: ast.stmt) -> List[ast.AST]:
        # A bare ``@register`` is a Name, not a Call, yet it *is* called at
        # import time — wrap it so _call_sites sees the edge.
        out: List[ast.AST] = []
        for dec in stmt.decorator_list:
            if isinstance(dec, ast.Call):
                out.append(dec)
            else:
                out.append(ast.copy_location(
                    ast.Call(func=dec, args=[], keywords=[]), dec))
        return out

    def collect(body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nodes.extend(decorators(stmt))
            elif isinstance(stmt, ast.ClassDef):
                nodes.extend(decorators(stmt))
                nodes.extend(stmt.bases)
                nodes.extend(kw.value for kw in stmt.keywords)
                collect(stmt.body)
            else:
                nodes.append(stmt)

    collect(tree.body)
    return nodes


def _nested_def_names(fn: ast.AST) -> frozenset:
    """Names of function/class defs nested inside ``fn`` (excluding it)."""
    names = set()
    for node in ast.walk(fn):
        if node is fn:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return frozenset(names)


def _module_name(root: Path, path: Path, package: str) -> str:
    rel = path.relative_to(root)
    parts = list(rel.parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join([package, *parts]) if parts else package


def _resolve_relative(module_name: str, is_package: bool, level: int, target: Optional[str]) -> str:
    """Absolute dotted target of a ``from ...X import Y`` statement."""
    if level == 0:
        return target or ""
    anchor = module_name.split(".")
    if not is_package:
        anchor = anchor[:-1]
    drop = level - 1
    if drop:
        anchor = anchor[: len(anchor) - drop] if drop < len(anchor) else []
    base = ".".join(anchor)
    if target:
        return f"{base}.{target}" if base else target
    return base


class CallGraph:
    """Parsed module set + resolution machinery + closure computation."""

    def __init__(self, package: str, modules: Dict[str, ModuleInfo]) -> None:
        self.package = package
        self.modules = modules
        # CHA index: method name -> every (module, qualname) method bearing it.
        self._method_index: Dict[str, Tuple[FuncKey, ...]] = {}
        index: Dict[str, List[FuncKey]] = {}
        for info in modules.values():
            for qualname, fn in info.functions.items():
                if fn.owner is not None:
                    index.setdefault(fn.name, []).append((info.name, qualname))
        self._method_index = {name: tuple(keys) for name, keys in index.items()}
        #: Per-graph memo used by depfp (fingerprints, CKEY findings).
        self.memo: Dict[object, object] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        root: Path,
        package: str = "repro",
        exclude: Sequence[str] = DEFAULT_EXCLUDE,
    ) -> "CallGraph":
        """Parse every module under ``root`` (the package directory)."""
        root = Path(root)
        modules: Dict[str, ModuleInfo] = {}
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            name = _module_name(root, path, package)
            if any(name == ex or name.startswith(ex + ".") for ex in exclude):
                continue
            modules[name] = cls._parse_module(root, path, name, package)
        return cls(package, modules)

    @staticmethod
    def _parse_module(root: Path, path: Path, name: str, package: str) -> ModuleInfo:
        source = path.read_text(encoding="utf-8")
        display = "/".join([package, *path.relative_to(root).parts])
        source_hash = hashlib.sha256(source.encode("utf-8")).hexdigest()
        info = ModuleInfo(
            name=name,
            path=path,
            display=display,
            source=source,
            source_hash=source_hash,
            functions={},
            classes={},
            imports={},
            star_imports=(),
            toplevel_names=set(),
            suppressions=_parse_suppressions(source),
        )
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as err:
            info.parse_error = str(err)
            return info

        is_package = path.name == "__init__.py"
        stars: List[str] = []
        # Imports are collected from the *whole* tree, not just module
        # top level: function-local imports (cycle breakers like
        # ``from .packets import PacketWriter``) bind locals, but treating
        # them as module-wide aliases is a sound over-approximation and
        # lets their call sites resolve precisely.
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        info.imports[alias.asname] = alias.name
                    else:
                        # ``import x.y`` binds only the root name ``x``.
                        head = alias.name.split(".")[0]
                        info.imports[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_relative(name, is_package, node.level, node.module)
                for alias in node.names:
                    if alias.name == "*":
                        stars.append(base)
                    else:
                        info.imports[alias.asname or alias.name] = f"{base}.{alias.name}"

        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[stmt.name] = FunctionNode(
                    module=name,
                    qualname=stmt.name,
                    lineno=stmt.lineno,
                    owner=None,
                    calls=_call_sites([stmt]),
                    scan_nodes=(stmt,),
                    nested_defs=_nested_def_names(stmt),
                )
            elif isinstance(stmt, ast.ClassDef):
                methods: List[str] = []
                for child in stmt.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods.append(child.name)
                        qualname = f"{stmt.name}.{child.name}"
                        info.functions[qualname] = FunctionNode(
                            module=name,
                            qualname=qualname,
                            lineno=child.lineno,
                            owner=stmt.name,
                            calls=_call_sites([child]),
                            scan_nodes=(child,),
                            nested_defs=_nested_def_names(child),
                        )
                info.classes[stmt.name] = ClassNode(
                    module=name,
                    name=stmt.name,
                    bases=tuple(
                        chain
                        for chain in (_split_chain(base) for base in stmt.bases)
                        if chain is not None
                    ),
                    methods=tuple(methods),
                )
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    for child in ast.walk(target):
                        if isinstance(child, ast.Name):
                            info.toplevel_names.add(child.id)
        info.star_imports = tuple(stars)

        scan_nodes = tuple(_toplevel_scan_nodes(tree))
        info.functions[MODULE_BODY] = FunctionNode(
            module=name,
            qualname=MODULE_BODY,
            lineno=1,
            owner=None,
            calls=_call_sites(scan_nodes),
            scan_nodes=scan_nodes,
        )
        return info

    # -- resolution --------------------------------------------------------
    def methods_named(self, name: str) -> Tuple[FuncKey, ...]:
        """Every method in the package with this name (CHA lookup)."""
        return self._method_index.get(name, ())

    def _class_constructors(
        self, module: ModuleInfo, class_name: str, seen: Set[Tuple[str, str]]
    ) -> Resolution:
        """Constructor-family targets of instantiating ``class_name``."""
        result = Resolution(modules=[module.name])
        key = (module.name, class_name)
        if key in seen:
            return result
        seen.add(key)
        cls = module.classes.get(class_name)
        if cls is None:
            return result
        for method in _CONSTRUCTOR_METHODS:
            if method in cls.methods:
                result.functions.append((module.name, f"{class_name}.{method}"))
        for base_chain in cls.bases:
            base = self._resolve_chain_to_class(module, base_chain, seen)
            if base is not None:
                base_module, base_name = base
                sub = self._class_constructors(self.modules[base_module], base_name, seen)
                result.functions.extend(sub.functions)
                result.modules.extend(sub.modules)
        return result

    def _resolve_chain_to_class(
        self, module: ModuleInfo, chain: Tuple[str, ...], seen: Set[Tuple[str, str]]
    ) -> Optional[Tuple[str, str]]:
        """Resolve a base-class expression to a (module, class) if possible."""
        if len(chain) == 1:
            name = chain[0]
            if name in module.classes:
                return (module.name, name)
            if name in module.imports:
                return self._dotted_to_class(module.imports[name])
            for star in module.star_imports:
                target = self._dotted_to_class(f"{star}.{name}")
                if target is not None:
                    return target
            return None
        dotted = ".".join(chain)
        if chain[0] in module.imports:
            dotted = f"{module.imports[chain[0]]}.{'.'.join(chain[1:])}"
        return self._dotted_to_class(dotted)

    def _dotted_to_class(self, dotted: str, hops: int = 0) -> Optional[Tuple[str, str]]:
        if hops > 8:
            return None
        prefix, attr = self._split_dotted(dotted)
        if prefix is None or attr is None:
            return None
        module = self.modules[prefix]
        if attr in module.classes:
            return (prefix, attr)
        if attr in module.imports:
            return self._dotted_to_class(module.imports[attr], hops + 1)
        for star in module.star_imports:
            found = self._dotted_to_class(f"{star}.{attr}", hops + 1)
            if found is not None:
                return found
        return None

    def _split_dotted(self, dotted: str) -> Tuple[Optional[str], Optional[str]]:
        """Longest known-module prefix and the single trailing attribute.

        ``(None, None)`` when the path doesn't lead into the graph;
        ``(module, None)`` when the path *is* a module.
        """
        parts = dotted.split(".")
        if parts[0] != self.package.split(".")[0] and dotted not in self.modules:
            return (None, None)
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                rest = parts[cut:]
                if not rest:
                    return (prefix, None)
                if len(rest) == 1:
                    return (prefix, rest[0])
                # Deeper paths (module.Class.method): resolve the first hop.
                return (prefix, rest[0])
        return (None, None)

    def resolve_dotted(self, dotted: str, hops: int = 0) -> Resolution:
        """Resolve an absolute dotted target (import alias or module attr)."""
        if hops > 8:
            return Resolution(unresolved=True)
        head = dotted.split(".")[0]
        if head != self.package.split(".")[0]:
            return Resolution(external=dotted)
        prefix, attr = self._split_dotted(dotted)
        if prefix is None:
            # Inside the package namespace but not in the graph: an excluded
            # orchestration layer (fenced by the cache schema instead).
            return Resolution(external=dotted)
        if attr is None:
            return Resolution(modules=[prefix])
        return self.resolve_name(self.modules[prefix], attr, hops + 1)

    def resolve_name(self, module: ModuleInfo, name: str, hops: int = 0) -> Resolution:
        """Resolve a plain name referenced in ``module``."""
        if hops > 8:
            return Resolution(unresolved=True)
        if name in module.functions and module.functions[name].owner is None:
            return Resolution(functions=[(module.name, name)], modules=[module.name])
        if name in module.classes:
            return self._class_constructors(module, name, set())
        if name in module.imports:
            return self.resolve_dotted(module.imports[name], hops + 1)
        if name in module.toplevel_names:
            # A module constant: covered by the module's source hash.
            return Resolution(modules=[module.name])
        for star in module.star_imports:
            resolution = self.resolve_dotted(f"{star}.{name}", hops + 1)
            if resolution.functions or resolution.modules or resolution.external:
                return resolution
        if name in _BUILTIN_NAMES:
            return Resolution(external=f"builtins.{name}")
        return Resolution(unresolved=True)

    def resolve_call(
        self, module: ModuleInfo, site: CallSite, fn: Optional[FunctionNode] = None
    ) -> Resolution:
        """Resolve one call site in the context of its function and module."""
        chain = site.chain
        owner = fn.owner if fn is not None else None
        if chain is None:
            return Resolution(unresolved=True)
        if len(chain) == 1:
            if fn is not None and chain[0] in fn.nested_defs:
                # A nested def: its call sites are already part of ``fn``'s
                # own sweep, so the edge is covered in place.
                return Resolution(modules=[module.name])
            return self.resolve_name(module, chain[0])
        root, attr = chain[0], chain[-1]
        if root == "super":
            return self._resolve_super(module, owner, attr)
        if root == "<dynamic>":
            return self._resolve_cha(attr)
        if root in module.imports:
            dotted = module.imports[root]
            target = f"{dotted}.{'.'.join(chain[1:])}"
            head = dotted.split(".")[0]
            if head != self.package.split(".")[0]:
                return Resolution(external=target)
            prefix, _ = self._split_dotted(dotted)
            if prefix is not None and len(chain) == 2:
                # Attribute call through a module alias: precise lookup.
                if dotted in self.modules:
                    return self.resolve_name(self.modules[dotted], attr, 1)
                resolved = self.resolve_dotted(target, 1)
                if resolved.functions or resolved.modules:
                    return resolved
                return self._resolve_cha(attr)
            resolved = self.resolve_dotted(target, 1)
            if resolved.functions or resolved.modules or resolved.external:
                return resolved
            return self._resolve_cha(attr)
        if root in module.classes and len(chain) == 2:
            # ClassName.method(...) — direct static dispatch.
            qualname = f"{root}.{attr}"
            if qualname in module.functions:
                return Resolution(functions=[(module.name, qualname)], modules=[module.name])
        # Unknown receiver (self.x, parameter, local): conservative CHA.
        return self._resolve_cha(attr)

    def _resolve_cha(self, attr: str) -> Resolution:
        targets = self.methods_named(attr)
        if not targets:
            # No package method bears this name: receiver is external
            # (numpy arrays, stdlib containers, ...).
            return Resolution(external=f"<attr>.{attr}")
        return Resolution(
            functions=list(targets), modules=[mod for mod, _ in targets]
        )

    def _resolve_super(self, module: ModuleInfo, owner: Optional[str], attr: str) -> Resolution:
        """``super().attr(...)`` through the static base chain of ``owner``."""
        if owner is None:
            return self._resolve_cha(attr)
        result = Resolution()
        seen: Set[Tuple[str, str]] = set()
        stack: List[Tuple[ModuleInfo, str]] = [(module, owner)]
        while stack:
            mod, cls_name = stack.pop()
            cls = mod.classes.get(cls_name)
            if cls is None or (mod.name, cls_name) in seen:
                continue
            seen.add((mod.name, cls_name))
            for base_chain in cls.bases:
                base = self._resolve_chain_to_class(mod, base_chain, set())
                if base is None:
                    continue
                base_mod, base_cls = base
                qualname = f"{base_cls}.{attr}"
                base_info = self.modules[base_mod]
                if qualname in base_info.functions:
                    result.functions.append((base_mod, qualname))
                    result.modules.append(base_mod)
                else:
                    stack.append((base_info, base_cls))
        if not result.functions:
            return Resolution(external=f"super().{attr}")
        return result

    # -- closure -----------------------------------------------------------
    def closure(self, roots: Iterable[FuncKey]) -> Closure:
        """Transitive closure of functions/modules reachable from ``roots``."""
        roots = tuple(roots)
        functions: Set[FuncKey] = set()
        modules: Set[str] = set()
        unresolved: List[Tuple[str, int, str]] = []
        externals: Set[str] = set()
        work: List[FuncKey] = []

        def add_module(name: str) -> None:
            if name in modules or name not in self.modules:
                return
            modules.add(name)
            add_function((name, MODULE_BODY))

        def add_function(key: FuncKey) -> None:
            mod_name, qualname = key
            info = self.modules.get(mod_name)
            if info is None or qualname not in info.functions:
                return
            if key in functions:
                return
            functions.add(key)
            work.append(key)
            add_module(mod_name)

        for root in roots:
            add_function(root)

        while work:
            mod_name, qualname = work.pop()
            info = self.modules[mod_name]
            fn = info.functions[qualname]
            for site in fn.calls:
                resolution = self.resolve_call(info, site, fn)
                if resolution.unresolved:
                    callee = ".".join(site.chain) if site.chain else "<computed>"
                    unresolved.append((info.display, site.lineno, callee))
                if resolution.external:
                    externals.add(resolution.external)
                for target in resolution.functions:
                    add_function(target)
                for target_module in resolution.modules:
                    add_module(target_module)

        return Closure(
            roots=roots,
            functions=functions,
            modules=modules,
            unresolved=unresolved,
            externals=externals,
        )

    def fingerprint_material(self, closure: Closure) -> str:
        """Stable text the dependency fingerprint hashes: every reached
        module's name paired with the SHA-256 of its full source."""
        lines = [
            f"{name}:{self.modules[name].source_hash}"
            for name in sorted(closure.modules)
            if name in self.modules
        ]
        return "\n".join(lines)

"""Shared diagnostic core for the static-analysis subsystem.

Every rule in :mod:`repro.checks` — model DRC and codebase lint alike —
reports through the same vocabulary:

* a :class:`Rule` (stable identifier, title, rationale, default severity)
  registered in a process-wide registry so IDs stay unique and documented;
* a :class:`Diagnostic` (rule ID, severity, location, message, fix hint);
* a :class:`CheckReport` accumulating diagnostics, with plain-text and
  machine-readable JSON renderings.

Rule IDs are part of the tool's contract: tests, suppression comments
(``# repro: noqa RULE-ID``) and CI all key on them, so IDs are never
reused or renamed (see ``docs/CHECKS.md``).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` means the checked artefact is unsafe to use (a simulation or
    reconfiguration built on it would misbehave or die mid-run); CI and the
    CLI exit non-zero on any error.  ``WARNING`` marks hazards that are
    legitimate in controlled circumstances (e.g. a differential bitstream
    with a guaranteed baseline).  ``INFO`` is advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class Rule:
    """One check, stable across releases."""

    id: str
    title: str
    rationale: str
    severity: Severity = Severity.ERROR


#: Process-wide registry: rule ID -> Rule.
_REGISTRY: Dict[str, Rule] = {}


def register_rule(
    rule_id: str, title: str, rationale: str, severity: Severity = Severity.ERROR
) -> Rule:
    """Register a rule (module import time).  IDs must be unique."""
    if rule_id in _REGISTRY:
        existing = _REGISTRY[rule_id]
        if existing.title != title:
            raise ValueError(f"rule ID {rule_id!r} already registered as {existing.title!r}")
        return existing
    rule = Rule(id=rule_id, title=title, rationale=rationale, severity=severity)
    _REGISTRY[rule_id] = rule
    return rule


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule ID {rule_id!r}") from None


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by ID."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violated at a location."""

    rule: str
    severity: Severity
    message: str
    #: Source file (lint) — repo-relative where possible.
    file: Optional[str] = None
    #: 1-based source line (lint).
    line: Optional[int] = None
    #: Logical object path (DRC), e.g. ``"system64.plb"`` or ``"chain[2]"``.
    obj: Optional[str] = None
    #: Short actionable suggestion.
    hint: Optional[str] = None

    def location(self) -> str:
        if self.file is not None:
            where = self.file if self.line is None else f"{self.file}:{self.line}"
        else:
            where = self.obj or "<unknown>"
        return where

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        for key in ("file", "line", "obj", "hint"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data

    def render(self) -> str:
        text = f"{self.severity.value.upper():7s} {self.rule}  {self.location()}: {self.message}"
        if self.hint:
            text += f"\n        hint: {self.hint}"
        return text


class CheckReport:
    """Accumulator shared by every check pass."""

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []

    # -- collection -------------------------------------------------------
    def add(
        self,
        rule_id: str,
        message: str,
        *,
        file: Optional[str] = None,
        line: Optional[int] = None,
        obj: Optional[str] = None,
        hint: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        """Record one finding; severity defaults to the rule's."""
        rule = get_rule(rule_id)
        diag = Diagnostic(
            rule=rule.id,
            severity=severity or rule.severity,
            message=message,
            file=file,
            line=line,
            obj=obj,
            hint=hint,
        )
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "CheckReport") -> "CheckReport":
        self.diagnostics.extend(other.diagnostics)
        return self

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- queries ----------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def summary(self) -> Dict[str, int]:
        counts = {"error": 0, "warning": 0, "info": 0}
        for diag in self.diagnostics:
            counts[diag.severity.value] += 1
        return counts

    # -- rendering ---------------------------------------------------------
    def sorted(self) -> List[Diagnostic]:
        """Most severe first, then by location for stable output."""
        return sorted(
            self.diagnostics,
            key=lambda d: (-d.severity.rank, d.file or "", d.line or 0, d.obj or "", d.rule),
        )

    def format_text(self) -> str:
        if not self.diagnostics:
            return "no findings"
        lines = [diag.render() for diag in self.sorted()]
        counts = self.summary()
        lines.append(
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info"
        )
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        payload = {
            "version": 1,
            "summary": self.summary(),
            "diagnostics": [diag.as_dict() for diag in self.sorted()],
        }
        return json.dumps(payload, indent=indent)


def merge(reports: Iterable[CheckReport]) -> CheckReport:
    merged = CheckReport()
    for report in reports:
        merged.extend(report)
    return merged

"""Command-line front end for :mod:`repro.checks`.

Reached two ways with identical flags::

    python -m repro.checks [...]        # standalone
    python -m repro check [...]         # subcommand of the main CLI

Default behaviour runs **all three layers**: the simulator-discipline
self-lint over the installed ``repro`` package, the system/bitstream DRC
over the example systems (32, 64, dual), and the cache-soundness
dependency pass (CKEY rules over every registered scenario's call-graph
closure plus the rig builder).  Exit status is non-zero iff any
error-severity diagnostic was produced, so CI can gate on it directly.

``--deps NAME`` prints one scenario's dependency closure and cache
fingerprint (repeatable; ``all`` = every scenario, ``rig`` = the static
rig builder) and runs only the dependency pass.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .diagnostics import CheckReport, all_rules
from .drc_system import check_system
from .lint import lint_package, lint_paths, package_root

#: Example systems the DRC sweep covers.
_SYSTEMS = ("32", "64", "dual")


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared flag set on ``parser``."""
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of text"
    )
    parser.add_argument(
        "--lint-only", action="store_true", help="run only the codebase self-lint"
    )
    parser.add_argument(
        "--drc-only", action="store_true", help="run only the system/bitstream DRC"
    )
    parser.add_argument(
        "--deps",
        action="append",
        default=None,
        metavar="SCENARIO",
        help="print the dependency closure + cache fingerprint for SCENARIO "
        "and run only the dependency pass ('all' = every registered "
        "scenario, 'rig' = the static rig builder; repeatable)",
    )
    parser.add_argument(
        "--system",
        default="all",
        choices=["all", *_SYSTEMS],
        help="which example system(s) the DRC sweep builds (default: all)",
    )
    parser.add_argument(
        "--path",
        action="append",
        default=None,
        metavar="FILE_OR_DIR",
        help="lint these paths instead of the installed repro package "
        "(repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print every registered rule and exit"
    )


def _build_example(which: str):
    from ..core import build_system32, build_system64, build_system64_dual

    if which == "32":
        return build_system32()
    if which == "64":
        return build_system64()
    system, _slot = build_system64_dual()
    return system


def _run_deps(args: argparse.Namespace) -> int:
    """The ``--deps`` mode: dependency pass only, with closure output."""
    from . import depfp

    report = CheckReport()
    names = None if "all" in args.deps else list(args.deps)
    fingerprints = depfp.check_dependencies(report=report, names=names)
    if args.json:
        payload = json.loads(report.to_json())
        payload["closures"] = [fp.as_dict() for fp in fingerprints]
        print(json.dumps(payload, indent=2))
    else:
        print(depfp.closure_table(fingerprints))
        print(report.format_text())
    return 1 if report.has_errors else 0


def run(args: argparse.Namespace) -> int:
    """Execute the checks described by parsed ``args``; returns exit status."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.severity.value}]  {rule.title}")
            print(f"         {rule.rationale}")
        return 0

    if getattr(args, "deps", None):
        return _run_deps(args)

    report = CheckReport()
    ran: List[str] = []

    if not args.drc_only:
        if args.path:
            root = package_root().parent
            lint_paths([Path(p) for p in args.path], display_root=root, report=report)
            ran.append(f"lint({', '.join(args.path)})")
        else:
            lint_package(report=report)
            ran.append("self-lint(repro)")

    if not args.lint_only:
        systems = _SYSTEMS if args.system == "all" else (args.system,)
        for which in systems:
            check_system(_build_example(which), report=report)
            ran.append(f"drc(system{which})")

    if not args.lint_only and not args.drc_only and not args.path:
        # Cache-soundness pass: CKEY rules over every registered scenario's
        # dependency closure plus the rig builder.
        from . import depfp

        depfp.check_dependencies(report=report)
        ran.append("depfp(scenarios+rig)")

    if args.json:
        print(report.to_json())
    else:
        print(f"checks run: {', '.join(ran)}")
        print(report.format_text())
    return 1 if report.has_errors else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.checks",
        description="Static analysis for the repro library: system/bitstream "
        "DRC + simulator-discipline lint + cache-soundness dependency "
        "fingerprints.",
    )
    add_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

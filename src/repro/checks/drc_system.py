"""Whole-system DRC: one call validating a built :class:`repro.core.System`.

This is the cheap, on-by-default gate the CLI runs before ``demo`` and
``transfers`` simulations (opt out with ``--no-drc``): it walks the bus
maps, bridge windows, dock wiring and the static resource budget without
simulating a single cycle, so a bad configuration dies in milliseconds
instead of mid-benchmark.
"""

from __future__ import annotations

from typing import Optional

from .diagnostics import CheckReport, register_rule
from .drc_bus import check_bus_topology, check_master_binding

register_rule(
    "SYS001",
    "static-design-over-budget",
    "The static modules plus the dynamic region must fit the device; "
    "over-budget designs cannot be placed.",
)
register_rule(
    "SYS002",
    "dock-window-too-small",
    "The dock's decode window must cover its data window and control "
    "registers; a short window makes registers undecodable.",
)
register_rule(
    "SYS003",
    "dock-interface-drift",
    "The BitLinker's dock port set must equal the dock's actual connection "
    "interface, or link-time validation checks the wrong contract.",
)

#: Byte span of the PLB Dock's register map (data window + last register).
_DOCK_REGISTER_SPAN = 0x130


def check_system(system, report: Optional[CheckReport] = None) -> CheckReport:
    """Run every system-level DRC over one built system."""
    report = report if report is not None else CheckReport()
    name = system.name

    check_bus_topology(system.plb, system.opb, system.bridge, report=report)

    # Dock wiring: every dock-like attachment (object with ports) on either
    # bus gets its window and master binding checked.
    for bus in (system.plb, system.opb):
        for att in bus.attachments:
            slave = att.slave
            if not hasattr(slave, "ports") or not hasattr(slave, "attach_kernel"):
                continue
            if att.range.size < _DOCK_REGISTER_SPAN:
                report.add(
                    "SYS002",
                    f"dock {att.name!r} window {att.range} is smaller than the "
                    f"register map ({_DOCK_REGISTER_SPAN:#x} bytes)",
                    obj=f"{name}.{att.name}",
                    hint="attach the dock with at least its register span",
                )
            check_master_binding(bus, slave, report=report, obj=f"{name}.{att.name}")

    # Static resource budget (System.validate as a diagnostic, not a raise).
    static = system.static_resources()
    budget = system.device.capacity - system.region.resources
    if not static.fits_within(budget):
        report.add(
            "SYS001",
            f"static design needs {static} but only {budget} remains outside "
            f"the dynamic region",
            obj=name,
            hint="shrink the region or drop static modules",
        )

    # BitLinker vs dock interface drift.
    if tuple(system.bitlinker.dock_ports) != tuple(system.dock.ports):
        report.add(
            "SYS003",
            "BitLinker was constructed with a different dock port set than the "
            "dock currently exposes",
            obj=f"{name}.bitlinker",
            hint="rebuild the BitLinker from dock.ports after changing the dock",
        )
    return report

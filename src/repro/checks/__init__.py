"""Static-analysis subsystem: model DRC + simulator-discipline lint.

Three layers share one diagnostic vocabulary (:mod:`repro.checks.diagnostics`):

* **Layer 1 — model DRC**: pure functions that validate built objects
  without simulating — component placements and produced bitstreams
  (:mod:`~repro.checks.drc_bitstream`), bus address maps and bridge
  topology (:mod:`~repro.checks.drc_bus`), DMA descriptor programs
  (:mod:`~repro.checks.drc_dma`), and whole systems
  (:mod:`~repro.checks.drc_system`).
* **Layer 2 — codebase lint**: an AST pass enforcing the simulator's
  modelling contract on ``src/repro`` itself (:mod:`~repro.checks.lint`).
* **Layer 3 — cache soundness**: a whole-program call-graph analyzer
  (:mod:`~repro.checks.callgraph`) feeding per-scenario dependency
  fingerprints and the CKEY rule family (:mod:`~repro.checks.depfp`),
  which key the sweep and rig caches.

Run all three from the command line with ``python -m repro.checks`` or
``python -m repro check``; every rule is documented in ``docs/CHECKS.md``.
"""

from .diagnostics import CheckReport, Diagnostic, Rule, Severity, all_rules, get_rule
from .drc_bitstream import check_bitstream, check_placements
from .drc_bus import (
    check_address_map,
    check_bridge_map,
    check_bus,
    check_bus_topology,
    check_master_binding,
)
from .drc_dma import (
    ChainDescriptor,
    check_descriptor_chain,
    check_dma_program,
    program_from_descriptors,
)
from .drc_system import check_system
from .depfp import (
    DependencyFingerprint,
    check_dependencies,
    rig_fingerprint,
    scenario_fingerprint,
)
from .lint import lint_package, lint_paths, lint_source

__all__ = [
    "DependencyFingerprint",
    "check_dependencies",
    "rig_fingerprint",
    "scenario_fingerprint",
    "ChainDescriptor",
    "CheckReport",
    "Diagnostic",
    "Rule",
    "Severity",
    "all_rules",
    "check_address_map",
    "check_bitstream",
    "check_bridge_map",
    "check_bus",
    "check_bus_topology",
    "check_descriptor_chain",
    "check_dma_program",
    "check_master_binding",
    "check_placements",
    "check_system",
    "get_rule",
    "lint_package",
    "lint_paths",
    "lint_source",
    "program_from_descriptors",
]

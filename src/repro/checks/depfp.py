"""Dependency fingerprints: call-graph-derived cache-key components.

Built on :mod:`repro.checks.callgraph`.  For a root function — a registered
sweep scenario, or the rig builder ``initialize_static_configuration`` —
this module computes the transitive closure of package functions/modules the
root can reach and hashes the reached modules' source texts into one SHA-256
**dependency fingerprint**.  ``repro.sweep.cache`` and the rig cache key on
that fingerprint instead of the blanket ``repro.__version__`` fence, so:

* a release that does not touch a scenario's closure keeps the warm cache;
* editing any helper module invalidates exactly the scenarios whose closure
  contains it — no manual version bumps required for soundness.

The fingerprint is only sound when static resolution actually saw every
dependency.  The **CKEY rule family** reports constructs that defeat it;
any *error*-severity CKEY finding inside a closure makes that one root fall
back to the version fence (``fallback=True``) rather than claim unsound
precision:

* **CKEY001** — dynamic dispatch (``importlib``/``__import__``/``eval``/
  ``exec``, or calling a ``getattr(...)`` result directly): the callee is
  invisible to the graph.
* **CKEY002** — environment reads (``os.environ``/``os.getenv``): the value
  influences the result but is not part of the cache key.
* **CKEY003** — data-file reads (``open``, ``Path.read_*``, ``np.load`` &
  friends): file contents influence the result but are not fingerprinted.
* **CKEY004** — too many unresolvable call edges (computed callees,
  ``f()()``, subscripted handlers) in one closure: the over-approximation
  has lost its meaning.
* **CKEY005** — the closure imports a package that is neither ``repro``,
  the stdlib, nor a pinned trusted dependency; its version is not in the
  key.

Findings honour the lint suppression syntax (``# repro: noqa CKEY001``)
so individually audited sites — e.g. a bounded ``getattr`` dispatch over
methods of an already-fingerprinted class — can vouch for themselves.
"""

from __future__ import annotations

import ast
import hashlib
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .callgraph import MODULE_BODY, CallGraph, FuncKey, FunctionNode, ModuleInfo
from .diagnostics import CheckReport, Diagnostic, Severity, get_rule, register_rule
from .lint import package_root

register_rule(
    "CKEY001",
    "dynamic-dispatch-in-closure",
    "importlib/__import__/eval/exec or an immediately-called getattr() hide "
    "the real callee from the call graph, so the dependency fingerprint "
    "cannot cover it.",
)
register_rule(
    "CKEY002",
    "env-read-in-closure",
    "An os.environ/os.getenv read inside a cached closure lets the host "
    "environment change the result without changing the cache key.",
)
register_rule(
    "CKEY003",
    "unfingerprinted-file-read",
    "Reading a data file inside a cached closure lets file contents change "
    "the result without changing the cache key; hash the file into a "
    "parameter instead.",
)
register_rule(
    "CKEY004",
    "unresolved-call-budget-exceeded",
    "Too many call edges in this closure resolve to nothing statically; "
    "the over-approximated closure can no longer vouch for soundness.",
)
register_rule(
    "CKEY005",
    "closure-escapes-package",
    "The closure imports a third-party package whose version is not part "
    "of the cache key; pin it in the trusted set or fence by version.",
)

#: Maximum unresolvable call edges tolerated per closure (CKEY004).
UNRESOLVED_BUDGET = 25

#: Third-party roots whose behaviour the cache schema vouches for (their
#: version is pinned by the environment, and the simulation treats them as
#: part of the language substrate, like the stdlib).
TRUSTED_PACKAGES = frozenset({"numpy"})

_STDLIB = frozenset(sys.stdlib_module_names)

#: Attribute names that read file contents (CKEY003).
_FILE_READ_ATTRS = frozenset({"read_text", "read_bytes"})
_NUMPY_FILE_READERS = frozenset({"load", "loadtxt", "genfromtxt", "fromfile", "memmap"})
_NUMPY_ALIASES = frozenset({"np", "numpy"})


@dataclass(frozen=True)
class _Finding:
    rule: str
    qualname: str
    lineno: int
    message: str
    hint: str


@dataclass
class DependencyFingerprint:
    """One root's dependency closure, fingerprint and soundness verdict."""

    label: str  # scenario name, or "rig"
    root: str  # "module:qualname"
    fingerprint: str
    modules: Tuple[str, ...]
    function_count: int
    unresolved: Tuple[Tuple[str, int, str], ...]
    externals: Tuple[str, ...]
    findings: Tuple[Diagnostic, ...]
    #: True when an error-severity CKEY finding voids the fingerprint and
    #: the cache must fall back to the blanket version fence.
    fallback: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "root": self.root,
            "fingerprint": self.fingerprint,
            "fallback": self.fallback,
            "modules": list(self.modules),
            "function_count": self.function_count,
            "unresolved_count": len(self.unresolved),
            "externals": list(self.externals),
            "findings": [diag.as_dict() for diag in self.findings],
        }


# --------------------------------------------------------------------------
# Graph lifecycle
# --------------------------------------------------------------------------

_GRAPH: Optional[CallGraph] = None


def package_graph(refresh: bool = False) -> CallGraph:
    """The memoized call graph of the installed ``repro`` package."""
    global _GRAPH
    if _GRAPH is None or refresh:
        _GRAPH = CallGraph.build(package_root(), package="repro")
    return _GRAPH


def reset_graph() -> None:
    """Drop the memoized graph (tests that rewrite sources call this)."""
    global _GRAPH
    _GRAPH = None


# --------------------------------------------------------------------------
# CKEY scanning
# --------------------------------------------------------------------------


def _chain_of(node: ast.AST) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _scan_function(module: ModuleInfo, fn: FunctionNode) -> List[_Finding]:
    """CKEY001–003/005 findings inside one function's AST, pre-suppression."""
    findings: List[_Finding] = []

    def flag(rule: str, node: ast.AST, message: str, hint: str) -> None:
        findings.append(_Finding(rule, fn.qualname, getattr(node, "lineno", 0), message, hint))

    package_head = module.name.split(".")[0]

    def check_import_target(node: ast.AST, dotted: str) -> None:
        head = dotted.split(".")[0]
        if not head or head == package_head or head in _STDLIB or head in TRUSTED_PACKAGES:
            return
        flag(
            "CKEY005",
            node,
            f"import of untrusted package {head!r} inside a cached closure",
            "add it to depfp.TRUSTED_PACKAGES after pinning, or fence by version",
        )

    for root_node in fn.scan_nodes:
        for node in ast.walk(root_node):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Call):
                    inner = func.func
                    if isinstance(inner, ast.Name) and inner.id == "getattr":
                        flag(
                            "CKEY001",
                            node,
                            "calling a getattr() result — callee invisible to the call graph",
                            "dispatch through an explicit mapping, or suppress after auditing "
                            "that every candidate lives in an already-reached module",
                        )
                # Checked structurally (not via the dotted chain) so that a
                # call-expression base like Path(p).read_text() is caught too.
                if isinstance(func, ast.Attribute) and func.attr in _FILE_READ_ATTRS:
                    flag(
                        "CKEY003",
                        node,
                        f".{func.attr}() reads file contents the cache key does not cover",
                        "hash the file into a parameter, or fence by version",
                    )
                    continue
                chain = _chain_of(func)
                if not chain:
                    continue
                root, attr = chain[0], chain[-1]
                if root in {"__import__", "eval", "exec"} and len(chain) == 1:
                    flag(
                        "CKEY001",
                        node,
                        f"{root}() defeats static call resolution",
                        "import statically so the dependency is fingerprinted",
                    )
                elif root == "importlib":
                    flag(
                        "CKEY001",
                        node,
                        f"importlib call ({'.'.join(chain)}()) defeats static call resolution",
                        "import statically so the dependency is fingerprinted",
                    )
                elif chain[:2] == ["os", "environ"] or chain == ["os", "getenv"]:
                    flag(
                        "CKEY002",
                        node,
                        f"environment read ({'.'.join(chain)}()) not captured by the cache key",
                        "thread the value through a scenario parameter instead",
                    )
                elif root == "open" and len(chain) == 1:
                    flag(
                        "CKEY003",
                        node,
                        "open() reads file contents the cache key does not cover",
                        "hash the file into a parameter, or fence by version",
                    )
                elif root in _NUMPY_ALIASES and attr in _NUMPY_FILE_READERS and len(chain) == 2:
                    flag(
                        "CKEY003",
                        node,
                        f"{'.'.join(chain)}() reads file contents the cache key does not cover",
                        "hash the file into a parameter, or fence by version",
                    )
            elif isinstance(node, ast.Subscript):
                if _chain_of(node.value)[:2] == ["os", "environ"]:
                    flag(
                        "CKEY002",
                        node,
                        "os.environ[...] read not captured by the cache key",
                        "thread the value through a scenario parameter instead",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    check_import_target(node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    check_import_target(node, node.module)
    return findings


def _module_findings(graph: CallGraph, module: ModuleInfo) -> Dict[str, List[_Finding]]:
    """Per-qualname CKEY findings for one module, with noqa applied."""
    memo_key = ("findings", module.name)
    cached = graph.memo.get(memo_key)
    if cached is not None:
        return cached  # type: ignore[return-value]
    by_qualname: Dict[str, List[_Finding]] = {}
    for qualname, fn in module.functions.items():
        kept: List[_Finding] = []
        for finding in _scan_function(module, fn):
            rules = module.suppressions.get(finding.lineno, ())
            if rules is None:  # blanket ``# repro: noqa``
                continue
            if finding.rule in rules:
                continue
            kept.append(finding)
        if kept:
            by_qualname[qualname] = kept
    graph.memo[memo_key] = by_qualname
    return by_qualname


# --------------------------------------------------------------------------
# Fingerprints
# --------------------------------------------------------------------------


def fingerprint_root(
    module: str,
    qualname: str,
    label: Optional[str] = None,
    graph: Optional[CallGraph] = None,
) -> Optional[DependencyFingerprint]:
    """Closure + fingerprint of one in-graph function, or ``None`` when the
    function is not statically analyzable (defined outside the package, or
    dynamically)."""
    graph = graph if graph is not None else package_graph()
    info = graph.modules.get(module)
    if info is None or qualname not in info.functions:
        return None
    memo_key = ("fp", module, qualname)
    cached = graph.memo.get(memo_key)
    if cached is not None:
        fp: DependencyFingerprint = cached  # type: ignore[assignment]
        if label is not None and fp.label != label:
            fp = DependencyFingerprint(**{**fp.__dict__, "label": label})
        return fp

    closure = graph.closure([(module, qualname)])
    diagnostics: List[Diagnostic] = []
    for mod_name in sorted(closure.modules):
        mod = graph.modules[mod_name]
        if mod.parse_error is not None:
            diagnostics.append(
                Diagnostic(
                    rule="CKEY004",
                    severity=Severity.ERROR,
                    message=f"module {mod_name} does not parse: {mod.parse_error}",
                    file=mod.display,
                )
            )
            continue
        per_function = _module_findings(graph, mod)
        reached = {qn for m, qn in closure.functions if m == mod_name}
        for qn in sorted(reached):
            for finding in per_function.get(qn, ()):
                rule = get_rule(finding.rule)
                diagnostics.append(
                    Diagnostic(
                        rule=finding.rule,
                        severity=rule.severity,
                        message=f"{finding.message} (reached via {qn})",
                        file=mod.display,
                        line=finding.lineno,
                        hint=finding.hint,
                    )
                )
    if len(closure.unresolved) > UNRESOLVED_BUDGET:
        examples = ", ".join(
            f"{display}:{lineno} ({callee})"
            for display, lineno, callee in closure.unresolved[:3]
        )
        diagnostics.append(
            Diagnostic(
                rule="CKEY004",
                severity=Severity.ERROR,
                message=(
                    f"{len(closure.unresolved)} unresolvable call edges exceed the "
                    f"budget of {UNRESOLVED_BUDGET} (e.g. {examples})"
                ),
                file=graph.modules[module].display,
                hint="make the hot callees statically resolvable, or fence by version",
            )
        )

    material = graph.fingerprint_material(closure)
    fingerprint = hashlib.sha256(material.encode("utf-8")).hexdigest()
    result = DependencyFingerprint(
        label=label if label is not None else f"{module}:{qualname}",
        root=f"{module}:{qualname}",
        fingerprint=fingerprint,
        modules=tuple(sorted(closure.modules)),
        function_count=len(closure.functions),
        unresolved=tuple(closure.unresolved),
        externals=tuple(sorted(closure.externals)),
        findings=tuple(diagnostics),
        fallback=any(d.severity is Severity.ERROR for d in diagnostics),
    )
    graph.memo[memo_key] = result
    return result


def fingerprint_function(
    fn, label: Optional[str] = None, graph: Optional[CallGraph] = None
) -> Optional[DependencyFingerprint]:
    """Fingerprint a live function object by locating it in the graph."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        return None
    return fingerprint_root(module, qualname, label=label, graph=graph)


def scenario_fingerprint(scenario, graph: Optional[CallGraph] = None):
    """Fingerprint of a registered scenario's body, or ``None`` (fall back
    to the version fence) when the body is not statically analyzable."""
    return fingerprint_function(scenario.fn, label=scenario.name, graph=graph)


def rig_fingerprint(graph: Optional[CallGraph] = None) -> Optional[DependencyFingerprint]:
    """Fingerprint of the static-rig builder feeding the rig cache."""
    from ..bitstream.generator import initialize_static_configuration

    return fingerprint_function(initialize_static_configuration, label="rig", graph=graph)


# --------------------------------------------------------------------------
# Whole-tree pass (CLI / CI entry point)
# --------------------------------------------------------------------------


def check_dependencies(
    report: Optional[CheckReport] = None,
    graph: Optional[CallGraph] = None,
    names: Optional[Sequence[str]] = None,
    include_rig: bool = True,
) -> List[DependencyFingerprint]:
    """Fingerprint registered scenarios (and the rig builder), funnelling
    deduplicated CKEY findings into ``report``.

    ``names`` limits the pass to those scenario names (the rig is selected
    with the pseudo-name ``"rig"``).
    """
    from ..scenarios import all_scenarios, get_scenario

    graph = graph if graph is not None else package_graph()
    report = report if report is not None else CheckReport()

    roots: List[Tuple[str, object]] = []
    if names:
        for name in names:
            if name == "rig":
                roots.append(("rig", None))
            else:
                roots.append((name, get_scenario(name)))
    else:
        roots = [(sc.name, sc) for sc in all_scenarios()]
        if include_rig:
            roots.append(("rig", None))

    fingerprints: List[DependencyFingerprint] = []
    seen: Set[Tuple[object, ...]] = set()
    for label, scenario in roots:
        if scenario is None:
            fp = rig_fingerprint(graph=graph)
        else:
            fp = scenario_fingerprint(scenario, graph=graph)
        if fp is None:
            report.add(
                "CKEY004",
                f"{label}: body not statically analyzable (defined outside the "
                "package?); cache falls back to the version fence",
                severity=Severity.INFO,
            )
            continue
        fingerprints.append(fp)
        for diag in fp.findings:
            key = (diag.rule, diag.file, diag.line, diag.message)
            if key in seen:
                continue
            seen.add(key)
            report.diagnostics.append(diag)
    return fingerprints


def closure_table(fingerprints: Iterable[DependencyFingerprint]) -> str:
    """Human-readable summary used by ``repro check --deps``."""
    lines: List[str] = []
    for fp in fingerprints:
        mode = "version-fence fallback" if fp.fallback else "depfp"
        lines.append(f"{fp.label}  [{mode}]")
        lines.append(f"  root         {fp.root}")
        lines.append(f"  fingerprint  {fp.fingerprint}")
        lines.append(
            f"  closure      {fp.function_count} functions over "
            f"{len(fp.modules)} modules, {len(fp.unresolved)} unresolved edges"
        )
        for mod_name in fp.modules:
            lines.append(f"    {mod_name}")
        if fp.externals:
            shown = ", ".join(fp.externals[:8])
            more = f", +{len(fp.externals) - 8} more" if len(fp.externals) > 8 else ""
            lines.append(f"  externals    {shown}{more}")
    return "\n".join(lines)

"""DMA-program design-rule checks.

The scatter-gather engine of the PLB Dock executes *descriptor programs*:
linked lists of (source, destination, length) elements the host writes
into memory before starting the transfer.  A bad program does not fail at
programming time — it fails mid-transfer, after seconds of simulated (or
real) work, or silently corrupts the dock's register window.  These pure
functions validate a program up front.

:class:`ChainDescriptor` is the *raw* representation — deliberately
unvalidated (unlike :class:`repro.dock.dma.Descriptor`, whose constructor
raises), so the DRC can describe exactly what is wrong with a hostile or
hand-built program, including link cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..dock.dma import Descriptor
from .diagnostics import CheckReport, register_rule

register_rule(
    "DMA001",
    "descriptor-chain-cycle",
    "A cycle in the descriptor links makes the engine loop forever, "
    "holding the bus; the transfer never completes.",
)
register_rule(
    "DMA002",
    "descriptor-zero-length",
    "A descriptor moving zero (or negative) words stalls real engines and "
    "is always a programming error.",
)
register_rule(
    "DMA003",
    "descriptor-misaligned",
    "Burst beats must be naturally aligned to their size; misaligned "
    "addresses split beats and defeat the 64-bit data path.",
)
register_rule(
    "DMA004",
    "transfer-crosses-dock-window",
    "A memory-side transfer overlapping the dock's address window would "
    "hit the data port or clobber the DMA/STATUS registers mid-run.",
)
register_rule(
    "DMA005",
    "transfer-exceeds-fifo",
    "A FIFO-to-memory descriptor longer than the FIFO's depth can never "
    "be satisfied without interleaved draining; the engine underruns.",
)
register_rule(
    "DMA006",
    "beat-wider-than-bus",
    "Descriptor beats wider than the bus data path cannot be carried in "
    "one beat; the program assumes the wrong system.",
)

_BEAT_SIZES = (1, 2, 4, 8)


@dataclass(frozen=True)
class ChainDescriptor:
    """One raw scatter-gather element as the host would write it.

    ``src``/``dst`` are byte addresses; ``None`` designates the dock (write
    channel as destination, output FIFO as source).  ``next_index`` links
    to the next element of the program (``None`` terminates the chain).
    No validation happens here — that is the DRC's job.
    """

    src: Optional[int]
    dst: Optional[int]
    word_count: int
    size_bytes: int = 8
    next_index: Optional[int] = None


def program_from_descriptors(descriptors: Sequence[Descriptor]) -> list[ChainDescriptor]:
    """Lift a validated sequential chain into the raw program form."""
    program = []
    last = len(descriptors) - 1
    for index, d in enumerate(descriptors):
        program.append(
            ChainDescriptor(
                src=d.src,
                dst=d.dst,
                word_count=d.word_count,
                size_bytes=d.size_bytes,
                next_index=None if index == last else index + 1,
            )
        )
    return program


def check_dma_program(
    program: Sequence[ChainDescriptor],
    *,
    dock_base: int,
    dock_window_bytes: int = 0x130,
    fifo_depth: int = 2047,
    bus_width_bits: int = 64,
    start_index: int = 0,
    report: Optional[CheckReport] = None,
    obj: str = "dma",
) -> CheckReport:
    """Statically validate one descriptor program.

    ``dock_window_bytes`` is the dock's full decode span (data window plus
    control registers); memory-side address ranges must stay clear of it.
    """
    report = report if report is not None else CheckReport()
    if not program:
        return report

    # -- link structure ---------------------------------------------------
    visited: set[int] = set()
    index: Optional[int] = start_index
    order: list[int] = []
    while index is not None:
        if not 0 <= index < len(program):
            report.add(
                "DMA001",
                f"descriptor link points at index {index}, outside the "
                f"{len(program)}-element program",
                obj=f"{obj}.chain[{order[-1] if order else start_index}]",
                hint="terminate the chain with next_index=None",
            )
            break
        if index in visited:
            report.add(
                "DMA001",
                f"descriptor chain cycles back to element {index} "
                f"(walk: {' -> '.join(map(str, order + [index]))})",
                obj=f"{obj}.chain[{index}]",
                hint="break the link cycle; chains must be finite",
            )
            break
        visited.add(index)
        order.append(index)
        index = program[index].next_index

    # -- per-descriptor rules --------------------------------------------
    dock_lo, dock_hi = dock_base, dock_base + dock_window_bytes
    for position, element_index in enumerate(order):
        d = program[element_index]
        where = f"{obj}.chain[{element_index}]"
        if d.word_count <= 0:
            report.add(
                "DMA002",
                f"descriptor {element_index} moves {d.word_count} words",
                obj=where,
                hint="drop the element or give it a positive word count",
            )
        if d.size_bytes not in _BEAT_SIZES:
            report.add(
                "DMA003",
                f"descriptor {element_index} has unsupported beat size "
                f"{d.size_bytes} bytes",
                obj=where,
            )
        elif d.size_bytes * 8 > bus_width_bits:
            report.add(
                "DMA006",
                f"descriptor {element_index} uses {d.size_bytes * 8}-bit beats on a "
                f"{bus_width_bits}-bit bus",
                obj=where,
                hint="split each beat to the bus width",
            )
        span = max(d.word_count, 0) * d.size_bytes
        for label, address in (("src", d.src), ("dst", d.dst)):
            if address is None:
                continue
            if d.size_bytes in _BEAT_SIZES and address % d.size_bytes:
                report.add(
                    "DMA003",
                    f"descriptor {element_index} {label} {address:#010x} is not "
                    f"{d.size_bytes}-byte aligned",
                    obj=where,
                    hint="align buffers to the beat size",
                )
            if span and address < dock_hi and dock_lo < address + span:
                report.add(
                    "DMA004",
                    f"descriptor {element_index} {label} range "
                    f"[{address:#010x}, {address + span:#010x}) overlaps the dock "
                    f"window [{dock_lo:#010x}, {dock_hi:#010x})",
                    obj=where,
                    hint="address the dock with src=None/dst=None, never by raw range",
                )
        if d.src is None and d.dst is None:
            report.add(
                "DMA004",
                f"descriptor {element_index} is dock-to-dock (src and dst both None)",
                obj=where,
            )
        if d.src is None and d.dst is not None and d.word_count > fifo_depth:
            report.add(
                "DMA005",
                f"descriptor {element_index} drains {d.word_count} words but the "
                f"output FIFO holds at most {fifo_depth}",
                obj=where,
                hint="split the drain or interleave it with the producer",
            )
    return report


def check_descriptor_chain(
    descriptors: Sequence[Descriptor],
    *,
    dock_base: int,
    dock_window_bytes: int = 0x130,
    fifo_depth: int = 2047,
    bus_width_bits: int = 64,
    report: Optional[CheckReport] = None,
    obj: str = "dma",
) -> CheckReport:
    """Convenience wrapper: DRC a validated sequential descriptor chain."""
    return check_dma_program(
        program_from_descriptors(descriptors),
        dock_base=dock_base,
        dock_window_bytes=dock_window_bytes,
        fifo_depth=fifo_depth,
        bus_width_bits=bus_width_bits,
        report=report,
        obj=obj,
    )

"""Bus / address-map design-rule checks.

Checks run over either raw decode-window plans (``(name, base, size)``
tuples — useful before any hardware object exists) or over built
:class:`repro.bus.bus.Bus` instances and whole systems.  The rules catch
the address-map mistakes that otherwise surface mid-simulation as
:class:`repro.errors.AddressDecodeError` — or worse, not at all (an OPB
peripheral that no PLB bridge window reaches is simply dead to the CPU).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..bus.bus import Bus
from ..bus.transaction import AddressRange
from .diagnostics import CheckReport, Severity, register_rule

#: A raw decode-window plan entry.
Window = Tuple[str, int, int]  # (name, base, size)

register_rule(
    "BUS001",
    "decode-window-overlap",
    "Two slaves claiming the same addresses make decoding ambiguous; which "
    "one answers depends on attachment order.",
)
register_rule(
    "BUS002",
    "decode-window-misaligned",
    "A window base that is not aligned to the bus beat size splits single "
    "beats across slaves and breaks burst address arithmetic.",
    severity=Severity.WARNING,
)
register_rule(
    "BUS003",
    "peripheral-unreachable-from-plb",
    "An OPB slave outside every PLB bridge window cannot be addressed by "
    "the CPU or any PLB master — it is dead configuration.",
)
register_rule(
    "BUS004",
    "dead-bridge-window",
    "A PLB bridge window whose range no OPB slave decodes turns every "
    "access into a mid-simulation AddressDecodeError.",
    severity=Severity.WARNING,
)
register_rule(
    "BUS005",
    "clock-domain-mismatch",
    "A component's master/forwarding port must be wired to the bus that "
    "decodes it; crossing synchronous islands without a bridge gives "
    "wrong timing (and on hardware, metastability).",
)


def _ranges(windows: Sequence[Window]):
    return [(name, AddressRange(base, size)) for name, base, size in windows]


def check_address_map(
    windows: Sequence[Window],
    beat_bytes: int = 4,
    bus_name: str = "bus",
    report: Optional[CheckReport] = None,
) -> CheckReport:
    """DRC over a decode-window plan: overlap and alignment."""
    report = report if report is not None else CheckReport()
    ranges = _ranges(windows)
    for i, (name, rng) in enumerate(ranges):
        for other_name, other in ranges[i + 1 :]:
            if rng.overlaps(other):
                report.add(
                    "BUS001",
                    f"windows {name!r} {rng} and {other_name!r} {other} overlap",
                    obj=f"{bus_name}.{name}",
                    hint="give each slave a disjoint address range",
                )
        if rng.base % beat_bytes:
            report.add(
                "BUS002",
                f"window {name!r} base {rng.base:#010x} is not {beat_bytes}-byte aligned",
                obj=f"{bus_name}.{name}",
                hint=f"align the base to the bus beat size ({beat_bytes} bytes)",
            )
    return report


def check_bridge_map(
    bridge_windows: Sequence[Window],
    opb_windows: Sequence[Window],
    bus_name: str = "plb",
    report: Optional[CheckReport] = None,
) -> CheckReport:
    """Reachability between a PLB's bridge windows and the OPB map."""
    report = report if report is not None else CheckReport()
    bridges = _ranges(bridge_windows)
    peripherals = _ranges(opb_windows)
    for name, rng in peripherals:
        covered = any(
            bridge.contains(rng.base, rng.size) for _, bridge in bridges
        )
        if not covered:
            report.add(
                "BUS003",
                f"OPB slave {name!r} {rng} is not covered by any PLB bridge window",
                obj=f"{bus_name}.{name}",
                hint="extend a bridge window over the peripheral's range",
            )
    for name, rng in bridges:
        if not any(rng.overlaps(per) for _, per in peripherals):
            report.add(
                "BUS004",
                f"bridge window {name!r} {rng} decodes to no OPB slave",
                obj=f"{bus_name}.{name}",
                hint="remove the window or attach the missing peripheral",
            )
    return report


def _bus_windows(bus: Bus) -> Sequence[Window]:
    return [(att.name, att.range.base, att.range.size) for att in bus.attachments]


def check_bus(bus: Bus, report: Optional[CheckReport] = None) -> CheckReport:
    """DRC over one built bus (alignment; overlap is impossible post-attach
    but re-checked for defence in depth)."""
    return check_address_map(
        _bus_windows(bus), beat_bytes=bus.width_bits // 8, bus_name=bus.name, report=report
    )


def check_bus_topology(
    plb: Bus,
    opb: Bus,
    bridge: object,
    report: Optional[CheckReport] = None,
) -> CheckReport:
    """Cross-bus DRC: per-bus maps, bridge reachability, bridge binding."""
    report = report if report is not None else CheckReport()
    check_bus(plb, report=report)
    check_bus(opb, report=report)

    bridge_windows = [
        (att.name, att.range.base, att.range.size)
        for att in plb.attachments
        if att.slave is bridge
    ]
    check_bridge_map(bridge_windows, _bus_windows(opb), bus_name=plb.name, report=report)

    # The bridge object itself must forward from the PLB it is attached to
    # onto this very OPB — anything else crosses clock domains unmodelled.
    wired_plb = getattr(bridge, "plb", None)
    wired_opb = getattr(bridge, "opb", None)
    if bridge_windows and wired_plb is not None and wired_plb is not plb:
        report.add(
            "BUS005",
            f"bridge {getattr(bridge, 'name', 'bridge')!r} is attached to "
            f"{plb.name!r} but forwards from {wired_plb.name!r} "
            f"({wired_plb.clock} vs {plb.clock})",
            obj=f"{plb.name}.bridge",
            hint="construct the bridge with the bus it is attached to",
        )
    if bridge_windows and wired_opb is not None and wired_opb is not opb:
        report.add(
            "BUS005",
            f"bridge {getattr(bridge, 'name', 'bridge')!r} forwards onto "
            f"{wired_opb.name!r}, not this system's {opb.name!r}",
            obj=f"{plb.name}.bridge",
        )
    return report


def check_master_binding(
    bus: Bus, dock: object, report: Optional[CheckReport] = None, obj: str = "dock"
) -> CheckReport:
    """A dock's DMA master port must sit on the bus that decodes the dock."""
    report = report if report is not None else CheckReport()
    dma = getattr(dock, "dma", None)
    if dma is None:
        return report
    if dma.bus is not bus:
        report.add(
            "BUS005",
            f"{getattr(dock, 'name', obj)}: DMA engine masters {dma.bus.name!r} "
            f"({dma.bus.clock}) but the dock is decoded on {bus.name!r} ({bus.clock})",
            obj=obj,
            hint="call dock.connect_bus() with the bus the dock is attached to",
        )
    return report

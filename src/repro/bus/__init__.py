"""CoreConnect-style on-chip bus models: OPB, PLB, PLB-OPB bridge."""

from .arbiter import (
    CPU_DATA,
    CPU_INSTR,
    DMA_ENGINE,
    FixedPriorityArbiter,
    Master,
    RoundRobinArbiter,
)
from .bridge import PlbOpbBridge
from .bus import Attachment, Bus
from .opb import OPB_MAX_BURST_BEATS, OPB_WIDTH_BITS, make_opb
from .plb import PLB_MAX_BURST_BEATS, PLB_WIDTH_BITS, make_plb
from .transaction import AddressRange, Completion, Op, Slave, Transaction

__all__ = [
    "AddressRange",
    "Attachment",
    "Bus",
    "CPU_DATA",
    "CPU_INSTR",
    "Completion",
    "DMA_ENGINE",
    "FixedPriorityArbiter",
    "Master",
    "RoundRobinArbiter",
    "OPB_MAX_BURST_BEATS",
    "OPB_WIDTH_BITS",
    "Op",
    "PLB_MAX_BURST_BEATS",
    "PLB_WIDTH_BITS",
    "PlbOpbBridge",
    "Slave",
    "Transaction",
    "make_opb",
    "make_plb",
]

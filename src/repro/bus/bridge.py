"""PLB-to-OPB bridge.

A slave on the PLB that forwards transactions onto the OPB.

* **Reads** are store-and-forward round trips: the PLB master stalls for
  the conversion latency plus the full OPB transaction — this is why
  uncached loads from the 32-bit system's external SRAM are so expensive.
* **Writes** are *posted*: the bridge accepts the data into a small buffer
  and frees the PLB after the conversion latency while the OPB transaction
  proceeds on its own.  When the buffer is full, further writes stall
  until a slot drains — so sustained write streams run at the OPB's rate,
  but the CPU does not pay the full round trip per store.

In the paper's 32-bit system every access to external memory and to the
OPB Dock crosses this bridge; the 64-bit system removes it from the data
path, which is one of the three factors behind its 4-6x faster transfers
(the others being the doubled bus clock and the 1.5x CPU clock).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Tuple

from ..engine.stats import StatsGroup
from ..errors import BusWidthError
from .bus import Bus
from .transaction import Op, Transaction


class PlbOpbBridge:
    """CoreConnect PLB->OPB bridge (PLB slave, OPB master)."""

    #: Fixed request-conversion latency, in PLB cycles (decode + queue).
    FORWARD_CYCLES = 2
    #: Extra cycles to return read data through the bridge.
    RETURN_CYCLES = 1
    #: Posted-write buffer depth (transactions).
    WRITE_BUFFER_DEPTH = 4

    def __init__(self, plb: Bus, opb: Bus, name: str = "plb2opb") -> None:
        self.plb = plb
        self.opb = opb
        self.name = name
        self.stats = StatsGroup(name)
        #: Completion times of posted writes still in flight on the OPB.
        self._inflight: Deque[int] = deque()

    def access(self, txn: Transaction, when_ps: int) -> Tuple[int, Any]:
        """Forward one PLB transaction to the OPB; returns PLB wait states.

        64-bit PLB beats are split into two 32-bit OPB beats, so wide
        transfers gain nothing once they cross the bridge — the width
        bottleneck the paper's first system lives with.
        """
        if txn.size_bytes * 8 > self.plb.width_bits:
            raise BusWidthError(f"bridge {self.name}: beat wider than PLB")

        beats32 = txn.beats * math.ceil(txn.size_bytes / 4)
        downstream = Transaction(
            op=txn.op,
            address=txn.address,
            size_bytes=min(txn.size_bytes, 4),
            beats=beats32,
            data=self._split_data(txn, beats32),
        )

        # Drain bookkeeping for writes whose OPB leg already finished.
        while self._inflight and self._inflight[0] <= when_ps:
            self._inflight.popleft()

        if txn.op is Op.WRITE:
            stall_ps = 0
            if len(self._inflight) >= self.WRITE_BUFFER_DEPTH:
                stall_ps = self._inflight[0] - when_ps
                self._inflight.popleft()
            start = when_ps + stall_ps + self.plb.clock.cycles_to_ps(self.FORWARD_CYCLES)
            completion = self.opb.request(start, downstream)
            self._inflight.append(completion.done_ps)
            # The buffer accepts the data during the PLB data beat, so the
            # conversion latency does not hold the PLB; only buffer-full
            # stalls do.
            wait_cycles = math.ceil(self.plb.clock.ps_to_cycles(stall_ps))
            self.stats.count("forwarded_writes")
            if stall_ps:
                self.stats.count("write_buffer_stalls")
                self.stats.record("stall_ps", stall_ps)
            return wait_cycles, None

        start = when_ps + self.plb.clock.cycles_to_ps(self.FORWARD_CYCLES)
        completion = self.opb.request(start, downstream)
        opb_time_ps = completion.done_ps - start
        wait_cycles = (
            self.FORWARD_CYCLES
            + self.RETURN_CYCLES
            + math.ceil(self.plb.clock.ps_to_cycles(opb_time_ps))
        )
        self.stats.count("forwarded_reads")
        self.stats.record("opb_time_ps", opb_time_ps)
        return wait_cycles, self._merge_data(txn, completion.value)

    # -- width conversion helpers -------------------------------------------
    @staticmethod
    def _split_data(txn: Transaction, beats32: int) -> Any:
        """Split 64-bit write payloads into 32-bit words (little-endian)."""
        if txn.op is not Op.WRITE or txn.data is None or beats32 == txn.beats:
            return txn.data
        words = []
        payload = txn.data if isinstance(txn.data, (list, tuple)) else [txn.data]
        for value in payload:
            value = int(value)
            words.append(value & 0xFFFFFFFF)
            words.append((value >> 32) & 0xFFFFFFFF)
        return words

    @staticmethod
    def _merge_data(txn: Transaction, value: Any) -> Any:
        """Merge 32-bit read results back into 64-bit beats if needed."""
        if txn.op is not Op.READ or value is None or txn.size_bytes <= 4:
            return value
        words = value if isinstance(value, (list, tuple)) else [value]
        merged = [
            (int(words[i]) & 0xFFFFFFFF) | ((int(words[i + 1]) & 0xFFFFFFFF) << 32)
            for i in range(0, len(words) - 1, 2)
        ]
        if txn.beats == 1:
            return merged[0] if merged else None
        return merged

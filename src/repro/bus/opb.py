"""On-Chip Peripheral Bus (OPB).

The 32-bit, lower-performance, low-resource-cost member of the CoreConnect
family.  Single data beat per address phase, no burst pipelining, one cycle
of read turnaround.  The paper's 32-bit system hangs its external memory
controller, serial port, GPIO, HWICAP and the OPB Dock off this bus.
"""

from __future__ import annotations

from ..engine.clock import ClockDomain
from .bus import Bus

#: OPB data width in bits.
OPB_WIDTH_BITS = 32
#: Sequential (non-pipelined) bursts re-issue the address every beat.
OPB_MAX_BURST_BEATS = 16


def make_opb(clock: ClockDomain, name: str = "opb") -> Bus:
    """Build an OPB instance in the given clock domain."""
    return Bus(
        name=name,
        clock=clock,
        width_bits=OPB_WIDTH_BITS,
        arb_cycles=1,
        addr_cycles=1,
        beat_cycles=1,
        read_turnaround_cycles=1,
        pipelined_bursts=False,
        max_burst_beats=OPB_MAX_BURST_BEATS,
    )

"""Generic synchronous bus with CoreConnect-style phase timing.

One :class:`Bus` instance models either the OPB or the PLB (see
:mod:`repro.bus.opb` / :mod:`repro.bus.plb` for the concrete parameter
sets).  Timing per request::

    sync-to-clock + arbitration + address phase
        + beats * beat_cycles            (pipelined: overlapped with address)
        + slave wait states
        [+ read turnaround]

The bus serialises masters through a ``busy_until`` watermark: a request
arriving while the bus is occupied starts when it frees up.  Writes to
slaves that accept *posted* writes release the master after the address
phase while the bus itself stays busy — this is what makes dock writes
cheaper than dock reads in the paper's transfer tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..engine import fastpath
from ..engine.clock import ClockDomain
from ..engine.stats import StatsGroup
from ..errors import AddressDecodeError, BusError, BusWidthError
from .transaction import AddressRange, Completion, Op, Slave, Transaction


@dataclass
class Attachment:
    """One slave plugged into the bus."""

    slave: Slave
    range: AddressRange
    name: str
    #: Writes complete (from the master's view) after the address phase.
    posted_writes: bool = False


class Bus:
    """A synchronous, arbitrated, transaction-level bus."""

    def __init__(
        self,
        name: str,
        clock: ClockDomain,
        width_bits: int,
        arb_cycles: int = 1,
        addr_cycles: int = 1,
        beat_cycles: int = 1,
        read_turnaround_cycles: int = 1,
        pipelined_bursts: bool = False,
        max_burst_beats: int = 16,
    ) -> None:
        if width_bits not in (32, 64):
            raise BusError(f"bus width {width_bits} not supported")
        self.name = name
        self.clock = clock
        self.width_bits = width_bits
        self.arb_cycles = arb_cycles
        self.addr_cycles = addr_cycles
        self.beat_cycles = beat_cycles
        self.read_turnaround_cycles = read_turnaround_cycles
        self.pipelined_bursts = pipelined_bursts
        self.max_burst_beats = max_burst_beats
        self._attachments: List[Attachment] = []
        self._busy_until = 0
        self.stats = StatsGroup(name)
        #: Optional :class:`repro.engine.trace.TraceRecorder` hook.
        self.tracer = None

    # -- topology ---------------------------------------------------------
    def attach(self, slave: Slave, base: int, size: int, name: str = "", posted_writes: bool = False) -> Attachment:
        """Attach ``slave`` at address range [base, base+size)."""
        new_range = AddressRange(base, size)
        for existing in self._attachments:
            if existing.range.overlaps(new_range):
                raise BusError(
                    f"{self.name}: range {new_range} for {name or slave!r} overlaps "
                    f"{existing.name} at {existing.range}"
                )
        attachment = Attachment(
            slave=slave, range=new_range, name=name or type(slave).__name__, posted_writes=posted_writes
        )
        self._attachments.append(attachment)
        return attachment

    def decode(self, address: int, length: int = 1) -> Attachment:
        """Find the slave claiming ``address`` (raises if none)."""
        for attachment in self._attachments:
            if attachment.range.contains(address, length):
                return attachment
        raise AddressDecodeError(address)

    @property
    def attachments(self) -> Tuple[Attachment, ...]:
        return tuple(self._attachments)

    @property
    def busy_until(self) -> int:
        """Time the current bus tenure ends (for contention modelling)."""
        return self._busy_until

    # -- timing core ---------------------------------------------------------
    def _tenure_cycles(self, txn: Transaction, wait_cycles: int) -> int:
        """Bus-clock cycles the transaction occupies the bus."""
        beats = txn.beats
        if self.pipelined_bursts:
            data_cycles = beats * self.beat_cycles
            cycles = self.arb_cycles + max(self.addr_cycles, 0) + data_cycles
        else:
            cycles = self.arb_cycles + (self.addr_cycles + self.beat_cycles) * beats
        cycles += wait_cycles
        if txn.op is Op.READ:
            cycles += self.read_turnaround_cycles
        return cycles

    def request(self, when_ps: int, txn: Transaction, master=None) -> Completion:
        """Perform ``txn``, starting no earlier than ``when_ps``.

        Returns the completion; the bus's busy watermark advances.  Bursts
        longer than ``max_burst_beats`` are split into maximal sub-bursts
        (each re-arbitrated), like a real CoreConnect master would.
        ``master`` (a :class:`repro.bus.arbiter.Master`) attributes the
        tenure in the per-master statistics.
        """
        if txn.size_bytes * 8 > self.width_bits:
            raise BusWidthError(
                f"{self.name} is {self.width_bits}-bit; cannot carry "
                f"{txn.size_bytes * 8}-bit beats"
            )
        if txn.beats > self.max_burst_beats:
            return self._split_burst(when_ps, txn, master)

        attachment = self.decode(txn.address, txn.total_bytes)
        start = self.clock.next_edge(max(when_ps, self._busy_until))
        wait_cycles, value = attachment.slave.access(txn, start)
        if wait_cycles < 0:
            raise BusError(f"slave {attachment.name} returned negative wait states")
        tenure = self._tenure_cycles(txn, wait_cycles)
        done = start + self.clock.cycles_to_ps(tenure)
        self._busy_until = done

        released: Optional[int] = None
        if txn.op is Op.WRITE and attachment.posted_writes:
            released = start + self.clock.cycles_to_ps(self.arb_cycles + self.addr_cycles)

        self.stats.count(f"{txn.op.value}s")
        self.stats.count("beats", txn.beats)
        self.stats.record("busy_ps", done - start)
        if master is not None:
            self.stats.count(f"master[{master.name}].{txn.op.value}s")
            self.stats.record(f"master[{master.name}].busy_ps", done - start)
            wait_for_bus = start - self.clock.next_edge(when_ps)
            if wait_for_bus > 0:
                self.stats.record(f"master[{master.name}].contention_ps", wait_for_bus)
        if self.tracer is not None:
            self.tracer.record(
                start,
                self.name,
                txn.op.value,
                address=txn.address,
                beats=txn.beats,
                size=txn.size_bytes,
                slave=attachment.name,
                duration_ps=done - start,
                posted=released is not None,
            )
        return Completion(done_ps=done, value=value, released_ps=released)

    def fast_path_active(self) -> bool:
        """Whether the closed-form burst path may be used on this bus.

        A trace hook forces the per-request path, because only that path
        emits the per-transaction trace events (trace output must stay
        byte-identical whether or not the fast path exists).
        """
        return self.tracer is None and fastpath.enabled()

    def request_burst(
        self,
        when_ps: int,
        op: Op,
        address: int,
        size_bytes: int,
        beats: int,
        data: Any = None,
        master=None,
        fixed_address: bool = False,
    ) -> Completion:
        """Move ``beats`` homogeneous beats, in closed form when possible.

        Semantically identical to issuing the burst as max-burst-sized
        :meth:`request` calls (the reference path): same completion time,
        same aggregate statistics, same functional data movement.  When the
        fast path is active and the decoded slave implements
        ``access_burst``, arbitration + tenure timing for all sub-bursts is
        computed in one closed-form step and statistics are charged with
        pre-aggregated counts; otherwise it falls back to the per-request
        loop.  ``fixed_address`` keeps every sub-burst at ``address`` (dock
        data-window semantics) instead of walking the address upward.
        """
        if size_bytes * 8 > self.width_bits:
            raise BusWidthError(
                f"{self.name} is {self.width_bits}-bit; cannot carry "
                f"{size_bytes * 8}-bit beats"
            )
        if beats <= 0:
            raise BusError("burst must have at least one beat")
        chunk = self.max_burst_beats
        if beats <= chunk:
            txn = Transaction(op=op, address=address, size_bytes=size_bytes, beats=beats, data=data)
            return self.request(when_ps, txn, master=master)
        decode_len = chunk * size_bytes if fixed_address else beats * size_bytes
        attachment = self.decode(address, decode_len)
        access_burst = getattr(attachment.slave, "access_burst", None)
        if not self.fast_path_active() or access_burst is None:
            return self._chunked_requests(
                when_ps, op, address, size_bytes, beats, data, master, fixed_address
            )

        full, rem = divmod(beats, chunk)
        start = self.clock.next_edge(max(when_ps, self._busy_until))
        result = access_burst(op, address, size_bytes, beats, chunk, data, start)
        if result is None:  # slave cannot serve this burst as a block
            return self._chunked_requests(
                when_ps, op, address, size_bytes, beats, data, master, fixed_address
            )
        wait_full, wait_rem, values = result
        if wait_full < 0 or wait_rem < 0:
            raise BusError(f"slave {attachment.name} returned negative wait states")

        def tenure_ps(sub_beats: int, wait_cycles: int) -> int:
            if self.pipelined_bursts:
                cycles = self.arb_cycles + max(self.addr_cycles, 0) + sub_beats * self.beat_cycles
            else:
                cycles = self.arb_cycles + (self.addr_cycles + self.beat_cycles) * sub_beats
            cycles += wait_cycles
            if op is Op.READ:
                cycles += self.read_turnaround_cycles
            return self.clock.cycles_to_ps(cycles)

        t_full = tenure_ps(chunk, wait_full)
        total = full * t_full
        n_requests = full
        t_last = t_full
        tenures_min, tenures_max = t_full, t_full
        if rem:
            t_rem = tenure_ps(rem, wait_rem)
            total += t_rem
            n_requests += 1
            t_last = t_rem
            tenures_min = min(tenures_min, t_rem)
            tenures_max = max(tenures_max, t_rem)
        done = start + total
        self._busy_until = done

        released: Optional[int] = None
        if op is Op.WRITE and attachment.posted_writes:
            released = (done - t_last) + self.clock.cycles_to_ps(self.arb_cycles + self.addr_cycles)

        self.stats.count_many({f"{op.value}s": n_requests, "beats": beats})
        self.stats.record_many("busy_ps", total, n_requests, tenures_min, tenures_max)
        if master is not None:
            self.stats.count(f"master[{master.name}].{op.value}s", n_requests)
            self.stats.record_many(
                f"master[{master.name}].busy_ps", total, n_requests, tenures_min, tenures_max
            )
            wait_for_bus = start - self.clock.next_edge(when_ps)
            if wait_for_bus > 0:
                self.stats.record(f"master[{master.name}].contention_ps", wait_for_bus)
        return Completion(done_ps=done, value=values, released_ps=released)

    def _chunked_requests(
        self,
        when_ps: int,
        op: Op,
        address: int,
        size_bytes: int,
        beats: int,
        data: Any,
        master,
        fixed_address: bool,
    ) -> Completion:
        """Reference path for :meth:`request_burst`: one request per sub-burst."""
        remaining = beats
        cursor = when_ps
        addr = address
        offset = 0
        values: List[Any] = []
        released: Optional[int] = None
        while remaining > 0:
            sub_beats = min(remaining, self.max_burst_beats)
            sub_data = None
            if data is not None:
                sub_data = data[offset : offset + sub_beats]
            txn = Transaction(op=op, address=addr, size_bytes=size_bytes, beats=sub_beats, data=sub_data)
            completion = self.request(cursor, txn, master=master)
            if completion.value is not None:
                values.extend(
                    completion.value if isinstance(completion.value, (list, tuple)) else [completion.value]
                )
            cursor = completion.done_ps
            released = completion.released_ps
            if not fixed_address:
                addr += sub_beats * size_bytes
            offset += sub_beats
            remaining -= sub_beats
        return Completion(done_ps=cursor, value=values if values else None, released_ps=released)

    def request_concurrent(self, when_ps: int, requests, arbiter) -> List[Completion]:
        """Issue several same-edge requests in arbiter-granted order.

        ``requests`` is a sequence of ``(Master, Transaction)`` pairs that
        all want the bus at ``when_ps``; the arbiter decides the grant
        order and every loser naturally queues behind the winner's tenure.
        Completions are returned in the *input* order.
        """
        order = arbiter.order(requests)
        if sorted(order) != list(range(len(requests))):
            raise BusError("arbiter returned an invalid grant order")
        completions: List[Optional[Completion]] = [None] * len(requests)
        for index in order:
            master, txn = requests[index]
            completions[index] = self.request(when_ps, txn, master=master)
        return completions  # type: ignore[return-value]

    def _split_burst(self, when_ps: int, txn: Transaction, master=None) -> Completion:
        remaining = txn.beats
        address = txn.address
        offset = 0
        cursor = when_ps
        values: List[Any] = []
        released: Optional[int] = None
        while remaining > 0:
            chunk = min(remaining, self.max_burst_beats)
            data = None
            if txn.data is not None:
                data = txn.data[offset : offset + chunk]
            sub = Transaction(
                op=txn.op, address=address, size_bytes=txn.size_bytes, beats=chunk, data=data
            )
            completion = self.request(cursor, sub, master=master)
            if completion.value is not None:
                values.extend(
                    completion.value if isinstance(completion.value, (list, tuple)) else [completion.value]
                )
            cursor = completion.done_ps
            released = completion.released_ps
            address += chunk * txn.size_bytes
            offset += chunk
            remaining -= chunk
        value: Any = values if values else None
        return Completion(done_ps=cursor, value=value, released_ps=released)

    # -- bookkeeping -----------------------------------------------------------
    def reset_stats(self) -> None:
        self.stats.reset()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.width_bits}-bit @ {self.clock.freq_mhz:g} MHz)"

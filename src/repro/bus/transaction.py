"""Bus transactions and the slave interface.

The bus models are *transaction level*: a master asks the bus to perform a
read or write at a given simulated time and receives the completion time
back.  Timing comes from the bus's per-phase cycle costs plus the addressed
slave's wait states; data moves functionally (values in, values out) so that
every byte a benchmark pushes through a dock really reaches the kernel
models bit-exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional, Protocol, Tuple, runtime_checkable


class Op(enum.Enum):
    """Transfer direction, from the master's point of view."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Transaction:
    """One bus request.

    ``size_bytes`` is the width of each beat (4 on the OPB, 4 or 8 on the
    PLB); ``beats`` > 1 models a burst to consecutive addresses.
    ``data`` carries the write payload (int for a single beat, sequence for
    a burst); reads return data via :class:`Completion`.
    """

    op: Op
    address: int
    size_bytes: int = 4
    beats: int = 1
    data: Any = None

    def __post_init__(self) -> None:
        if self.size_bytes not in (1, 2, 4, 8):
            raise ValueError(f"unsupported beat size {self.size_bytes}")
        if self.beats < 1:
            raise ValueError("burst must have at least one beat")

    @property
    def total_bytes(self) -> int:
        return self.size_bytes * self.beats

    @property
    def end_address(self) -> int:
        return self.address + self.total_bytes


@dataclass(frozen=True)
class Completion:
    """Result of a bus request: when it finished and what a read returned."""

    done_ps: int
    value: Any = None
    #: For posted writes: when the master was released (<= done_ps).
    released_ps: Optional[int] = None

    @property
    def master_free_ps(self) -> int:
        """Time at which the issuing master may proceed."""
        return self.released_ps if self.released_ps is not None else self.done_ps


@runtime_checkable
class Slave(Protocol):
    """Anything attachable to a bus.

    ``access`` performs the functional side effect and returns the number of
    slave wait cycles (in the bus's clock domain) for this transaction.
    ``when_ps`` is the bus-side start time — most slaves ignore it, but
    time-aware ones (the PLB-OPB bridge, the ICAP) use it to keep their
    downstream activity aligned with simulation time.
    """

    def access(self, txn: Transaction, when_ps: int) -> Tuple[int, Any]:
        """Execute ``txn`` starting at ``when_ps``; return ``(wait_cycles, read_value)``."""
        ...


@dataclass(frozen=True)
class AddressRange:
    """A slave's claim on the address space."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("address range must have positive size")
        if self.base < 0:
            raise ValueError("address range base must be non-negative")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base <= address and address + length <= self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base < other.end and other.base < self.end

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.base:#010x}, {self.end:#010x})"

"""Bus arbitration between named masters.

The CoreConnect buses arbitrate among up to a handful of masters (the CPU's
instruction and data ports, the PLB Dock's DMA engine, the bridge).  The
transaction-level bus already serialises tenures through its busy
watermark; this module adds the *who*:

* :class:`Master` — an identity token carrying an arbitration priority;
* :class:`FixedPriorityArbiter` / :class:`RoundRobinArbiter` — policies
  ordering same-cycle requests;
* :meth:`repro.bus.bus.Bus.request_concurrent` — issue several requests
  that arrive on the same clock edge and let the arbiter decide who goes
  first (the loser's extra latency is the arbitration cost the paper's
  transfer numbers silently include).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Protocol, Sequence, Tuple

from ..errors import BusError
from .transaction import Transaction


@dataclass(frozen=True)
class Master:
    """A bus master identity.

    Lower ``priority`` values win arbitration (0 is highest, as in the
    PLB's request-priority encoding).
    """

    name: str
    priority: int = 2

    def __post_init__(self) -> None:
        if not 0 <= self.priority <= 3:
            raise BusError(f"master {self.name!r}: priority must be 0..3 (PLB encoding)")


#: Conventional identities used by the systems.
CPU_DATA = Master("cpu-data", priority=0)
CPU_INSTR = Master("cpu-instr", priority=1)
DMA_ENGINE = Master("dma", priority=2)


class Arbiter(Protocol):
    """Orders requests that arrive on the same clock edge."""

    def order(self, requests: Sequence[Tuple[Master, Transaction]]) -> List[int]:
        """Return the grant order as indices into ``requests``."""
        ...


class FixedPriorityArbiter:
    """Strict priority; ties broken by request position (daisy chain)."""

    def order(self, requests: Sequence[Tuple[Master, Transaction]]) -> List[int]:
        return sorted(range(len(requests)), key=lambda i: (requests[i][0].priority, i))


class RoundRobinArbiter:
    """Rotating fairness within equal priorities.

    The master granted last drops to the back of its priority class on the
    next conflict, so a streaming DMA cannot starve a same-priority peer.
    """

    def __init__(self) -> None:
        self._last_granted: Dict[int, str] = {}

    def order(self, requests: Sequence[Tuple[Master, Transaction]]) -> List[int]:
        def key(index: int) -> Tuple[int, int, int]:
            master = requests[index][0]
            demoted = 1 if self._last_granted.get(master.priority) == master.name else 0
            return (master.priority, demoted, index)

        granted = sorted(range(len(requests)), key=key)
        if granted:
            winner = requests[granted[0]][0]
            self._last_granted[winner.priority] = winner.name
        return granted

"""Processor Local Bus (PLB).

The 64-bit, high-performance CoreConnect bus.  Address and data phases are
decoupled, so bursts stream one beat per cycle after a single address
phase.  Both of the paper's systems use the PLB for the CPU's memory port;
only the 64-bit system also puts the external memory controller and the
(PLB) Dock on it.
"""

from __future__ import annotations

from ..engine.clock import ClockDomain
from .bus import Bus

#: PLB data width in bits.
PLB_WIDTH_BITS = 64
#: PLB-4-style maximum burst length in beats.
PLB_MAX_BURST_BEATS = 16


def make_plb(clock: ClockDomain, name: str = "plb") -> Bus:
    """Build a PLB instance in the given clock domain."""
    return Bus(
        name=name,
        clock=clock,
        width_bits=PLB_WIDTH_BITS,
        arb_cycles=1,
        addr_cycles=1,
        beat_cycles=1,
        read_turnaround_cycles=1,
        pipelined_bursts=True,
        max_burst_beats=PLB_MAX_BURST_BEATS,
    )

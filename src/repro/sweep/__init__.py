"""Parallel scenario-sweep orchestrator with content-addressed caching.

Turns the registry of pure scenarios (:mod:`repro.scenarios`) into a
schedulable job grid: fan-out over a process pool, per-result on-disk
caching keyed by scenario source + parameters + package version, and one
merged machine-readable report.  Orchestration never alters simulated
timing — it only changes how much *host* time a sweep costs.
"""

from .cache import CACHE_SCHEMA, CacheTelemetry, ResultCache, cache_key, canonical_params
from .report import REPORT_SCHEMA, build_report, render_report, write_report
from .results_io import (
    default_cache_dir,
    default_results_dir,
    ensure_dir,
    write_text_result,
)
from .runner import ScenarioOutcome, SweepOutcome, apply_seed_base, run_batch, run_sweep

__all__ = [
    "CACHE_SCHEMA",
    "CacheTelemetry",
    "REPORT_SCHEMA",
    "ResultCache",
    "ScenarioOutcome",
    "SweepOutcome",
    "apply_seed_base",
    "build_report",
    "cache_key",
    "canonical_params",
    "default_cache_dir",
    "default_results_dir",
    "ensure_dir",
    "render_report",
    "run_batch",
    "run_sweep",
    "write_report",
    "write_text_result",
]

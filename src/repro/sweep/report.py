"""The machine-readable sweep report (``BENCH_sweep.json``).

One merged document per orchestrated run: per-scenario host cost, cache
status and simulated headline numbers, sweep-level cache telemetry, and
the cross-process aggregate statistics.  Schema identifier:
``repro-sweep/1`` — consumers (CI, plotting) should key on it.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from .. import __version__
from .results_io import write_json
from .runner import SweepOutcome

#: Stable schema identifier for the report document.
REPORT_SCHEMA = "repro-sweep/1"


def build_report(
    outcome: SweepOutcome, cache_dir: Optional[str] = None
) -> Dict[str, object]:
    """Assemble the report dict for one sweep outcome."""
    scenarios = []
    for entry in outcome.outcomes:
        record: Dict[str, object] = {
            "name": entry.name,
            "tags": list(entry.tags),
            "status": entry.status,
            "cache": entry.cache,
            "host_seconds": round(entry.host_seconds, 6),
            "compute_seconds": round(entry.compute_seconds, 6),
        }
        if entry.job is not None and entry.job != entry.name:
            record["job"] = entry.job
        if entry.retried_serially:
            record["retried_serially"] = True
        if entry.error is not None:
            record["error"] = entry.error
            record["failed_seconds"] = round(entry.failed_seconds, 6)
        if entry.result is not None:
            record["title"] = entry.result.title
            record["headline"] = dict(entry.result.headline)
            record["headers"] = list(entry.result.headers)
            record["rows"] = [list(row) for row in entry.result.rows]
        scenarios.append(record)

    aggregate = {
        name: group.snapshot() for name, group in sorted(outcome.merged_stats().items())
    }
    cold_seconds = sum(e.compute_seconds for e in outcome.outcomes)
    failed_seconds = sum(e.failed_seconds for e in outcome.outcomes)
    report: Dict[str, object] = {
        "schema": REPORT_SCHEMA,
        "repro_version": __version__,
        "jobs": outcome.jobs,
        "smoke": outcome.smoke,
        "seed_base": outcome.seed_base,
        "ok": outcome.ok,
        "host_seconds": round(outcome.host_seconds, 6),
        #: What the same set cost (or would cost) computed cold and serially.
        #: Failed runs produced no result, so their time is excluded here
        #: and reported under ``failed_seconds`` instead.
        "serial_compute_seconds": round(cold_seconds, 6),
        "failed_seconds": round(failed_seconds, 6),
        "cache": {
            "enabled": outcome.cache_enabled,
            "dir": cache_dir,
            **outcome.cache_stats,
        },
        "pool_broken": outcome.pool_broken,
        "scenarios": scenarios,
        "aggregate_stats": aggregate,
    }
    return report


def render_report(outcome: SweepOutcome, cache_dir: Optional[str] = None) -> str:
    return json.dumps(build_report(outcome, cache_dir=cache_dir), indent=2, sort_keys=True)


def write_report(
    outcome: SweepOutcome, path: str, cache_dir: Optional[str] = None
) -> str:
    """Render and write the report; returns the JSON text."""
    payload = render_report(outcome, cache_dir=cache_dir)
    write_json(path, payload + "\n")
    return payload

"""``repro sweep`` — list and orchestrate the scenario registry.

Examples::

    repro sweep list                       # every scenario with tags
    repro sweep list --tag table           # filter by tag
    repro sweep run --jobs 4               # full sweep, process pool
    repro sweep --smoke --jobs 2 --json    # quick pass ("run" is implied)
    repro sweep run table04_hash32 --refresh
    repro sweep run --tag ablation --no-cache

The run writes one merged machine-readable report (``BENCH_sweep.json``,
schema ``repro-sweep/1``) plus, with ``--tables DIR``, the rendered
paper-style tables.  Exit status is non-zero iff any scenario failed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..scenarios import all_scenarios, get_scenario
from .cache import ResultCache
from .report import render_report, write_report
from .results_io import (
    REPORT_FILENAME,
    default_cache_dir,
    write_text_result,
)
from .runner import apply_seed_base, run_sweep


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "action_or_names",
        nargs="*",
        metavar="NAME",
        help="'list', 'run', or scenario names to run (default: run all)",
    )
    parser.add_argument("--tag", action="append", default=None, metavar="TAG",
                        help="only scenarios carrying TAG (repeatable)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1 = serial)")
    parser.add_argument("--smoke", action="store_true",
                        help="apply each scenario's reduced smoke parameters")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable report to stdout")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache entirely")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute even on cache hits (results are re-stored)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache directory (default benchmarks/results/cache)")
    parser.add_argument("--out", default=REPORT_FILENAME, metavar="FILE",
                        help=f"report path (default {REPORT_FILENAME})")
    parser.add_argument("--tables", default=None, metavar="DIR",
                        help="also write each rendered table under DIR")
    parser.add_argument("--seed-base", type=int, default=None, metavar="N",
                        help="derive per-scenario workload seeds from N "
                        "(default: the paper's seeds)")
    parser.add_argument("--set", dest="overrides", action="append", default=None,
                        metavar="NAME:KEY=VALUE",
                        help="override one scenario parameter (repeatable); "
                        "VALUE is parsed as JSON, falling back to a string "
                        "(e.g. --set mc_campaign:trials=5000)")
    parser.add_argument("--explain", action="store_true",
                        help="attribute every cache miss to the key "
                        "component(s) that changed vs the stored entries")
    parser.add_argument("--list", dest="list_only", action="store_true",
                        help="list matching scenarios instead of running")


def parse_overrides(entries: Optional[List[str]]) -> Optional[dict]:
    """``NAME:KEY=VALUE`` strings -> ``{name: {key: value}}``.

    Values parse as JSON first (``5000`` -> int, ``true`` -> bool,
    ``"seu,commit"`` needs no quoting — the fallback keeps it a string).
    Repeating the same ``NAME:KEY`` with the *same* value is harmless;
    repeating it with a conflicting value aborts — silently keeping the
    last entry would make long command lines lie about what ran.
    """
    if not entries:
        return None
    import json

    overrides: dict = {}
    for raw in entries:
        head, sep, value = raw.partition("=")
        name, colon, key = head.partition(":")
        if not sep or not colon or not name or not key:
            raise SystemExit(
                f"--set expects NAME:KEY=VALUE, got {raw!r}"
            )
        try:
            parsed = json.loads(value)
        except ValueError:
            parsed = value
        per_scenario = overrides.setdefault(name, {})
        if key in per_scenario and per_scenario[key] != parsed:
            raise SystemExit(
                f"--set expects one value per NAME:KEY, but {name}:{key} "
                f"was given both {per_scenario[key]!r} and {parsed!r}"
            )
        per_scenario[key] = parsed
    return overrides


def _select(args: argparse.Namespace):
    """Resolve the action and scenario set from positionals + flags."""
    names = list(args.action_or_names)
    action = "run"
    if names and names[0] in ("list", "run"):
        action = names.pop(0)
    if args.list_only:
        action = "list"
    if names:
        selected = [get_scenario(name) for name in names]
        if args.tag:
            wanted = set(args.tag)
            selected = [s for s in selected if wanted & set(s.tags)]
    else:
        selected = all_scenarios(tags=args.tag)
    return action, selected


def run(args: argparse.Namespace) -> int:
    action, selected = _select(args)
    overrides = parse_overrides(getattr(args, "overrides", None))

    if action == "list":
        if args.json:
            import json

            print(json.dumps(
                [
                    {
                        "name": s.name,
                        "title": s.title,
                        "tags": list(s.tags),
                        "params": dict(s.params),
                        "smoke_params": dict(s.smoke_params),
                    }
                    for s in selected
                ],
                indent=2,
            ))
        else:
            for s in selected:
                tags = ",".join(s.tags) or "-"
                print(f"{s.name:28s} [{tags}] {s.title}")
            print(f"{len(selected)} scenario(s)")
        return 0

    if not selected:
        print("no scenarios match the selection", file=sys.stderr)
        return 2

    cache = None
    cache_dir = None
    rig_cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or str(default_cache_dir())
        cache = ResultCache(cache_dir)
        # Rig-level memo rides in a sibling of the result cache: scenario
        # misses still skip regenerating static configurations they share.
        rig_cache_dir = str(Path(cache_dir) / "rigs")

    # --explain snapshots must be taken *before* the run stores fresh
    # entries (afterwards every key would trivially match its own entry).
    explanations = {}
    if args.explain and cache is not None:
        for entry in selected:
            per_scenario = overrides.get(entry.name) if overrides else None
            params = apply_seed_base(
                entry.name,
                entry.resolve_params(per_scenario, smoke=args.smoke),
                args.seed_base,
            )
            explanations[entry.name] = cache.explain(entry, params)

    def progress(outcome) -> None:
        if args.json:
            return  # keep stdout pure JSON
        mark = "ok " if outcome.status == "ok" else "FAIL"
        retry = " (serial retry)" if outcome.retried_serially else ""
        print(
            f"  {mark} {outcome.name:28s} cache={outcome.cache:7s} "
            f"{outcome.host_seconds:8.3f}s{retry}"
        )

    outcome = run_sweep(
        selected,
        jobs=max(1, args.jobs),
        cache=cache,
        refresh=args.refresh,
        smoke=args.smoke,
        seed_base=args.seed_base,
        progress=progress,
        rig_cache_dir=rig_cache_dir,
        overrides=overrides,
    )

    if args.tables:
        for entry in outcome.outcomes:
            if entry.result is not None:
                write_text_result(args.tables, entry.name, entry.result.table_text())

    if explanations and not args.json:
        missed = [o for o in outcome.outcomes if o.cache in ("miss", "refresh")]
        if missed:
            print("cache-miss attribution:")
            for entry in missed:
                for line in explanations.get(entry.name, []):
                    print(f"  {entry.name}: {line}")
        else:
            print("cache-miss attribution: every scenario hit the cache")

    payload = write_report(outcome, args.out, cache_dir=cache_dir)
    if args.json:
        print(payload)
    else:
        stats = outcome.cache_stats
        hits = stats.get("hits", 0)
        misses = stats.get("misses", 0)
        print(
            f"{len(outcome.outcomes)} scenario(s), jobs={outcome.jobs}: "
            f"{hits} cache hit(s), {misses} miss(es), "
            f"{outcome.host_seconds:.3f}s wall-clock "
            f"(serial compute {sum(e.compute_seconds for e in outcome.outcomes):.3f}s)"
        )
        for failure in outcome.failures:
            print(f"FAILED {failure.name}: {failure.error}", file=sys.stderr)
        print(f"report: {args.out}")
    return 0 if outcome.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Parallel scenario-sweep orchestrator with result caching.",
    )
    add_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

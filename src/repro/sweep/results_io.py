"""Result-file plumbing shared by the sweep CLI and the pytest benches.

Centralises "where do rendered tables and reports go" so nothing else
assumes the results directory exists: every writer creates it on demand,
which keeps a fresh clone working (the old ``benchmarks/conftest.py``
assumed ``benchmarks/results/`` was present).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

PathLike = Union[str, Path]

#: Conventional results root, relative to the invoking directory.
DEFAULT_RESULTS_DIR = Path("benchmarks") / "results"

#: Conventional cache root under the results directory.
CACHE_SUBDIR = "cache"

#: Conventional sweep-report filename.
REPORT_FILENAME = "BENCH_sweep.json"


def ensure_dir(path: PathLike) -> Path:
    """Create ``path`` (and parents) if missing; return it as a Path."""
    resolved = Path(path)
    resolved.mkdir(parents=True, exist_ok=True)
    return resolved


def default_results_dir() -> Path:
    """``benchmarks/results`` under the current working directory."""
    return DEFAULT_RESULTS_DIR


def default_cache_dir(results_dir: PathLike = None) -> Path:
    """The result cache root (``<results>/cache``)."""
    root = Path(results_dir) if results_dir is not None else default_results_dir()
    return root / CACHE_SUBDIR


def write_text_result(results_dir: PathLike, name: str, text: str) -> Path:
    """Write one rendered table/figure as ``<results_dir>/<name>.txt``."""
    root = ensure_dir(results_dir)
    path = root / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def write_json(path: PathLike, payload: str) -> Path:
    """Write a rendered JSON document, creating parent directories."""
    target = Path(path)
    if target.parent != Path("."):
        ensure_dir(target.parent)
    target.write_text(payload, encoding="utf-8")
    return target

"""Process-pool orchestrator for the scenario sweep.

Fans registered scenarios out over a ``ProcessPoolExecutor`` and merges
their results into one :class:`SweepOutcome`:

* **Determinism** — scenarios are pure and carry their own seeds, so
  results are independent of worker assignment, completion order and
  job count; the parallel path is asserted byte-identical to the serial
  one by ``tests/test_sweep_runner.py``.
* **Caching** — each scenario consults the content-addressed
  :class:`~repro.sweep.cache.ResultCache` first; hits skip simulation
  entirely and keep the cold run's host cost for the report.
* **Robustness** — a scenario failure (``CheckError`` et al.) marks that
  scenario failed without sinking the sweep; a *worker crash* (broken
  pool) triggers a serial in-process retry of everything still pending.
* **Aggregation** — per-scenario ``StatsGroup`` snapshots are merged
  across processes via :meth:`StatsGroup.merge`.

Only the orchestrator reads the host clock (to report wall-clock cost);
simulated timing never depends on it — see ``docs/MODELING.md``.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..engine.stats import StatsGroup
from ..scenarios.registry import Scenario, derive_seed, get_scenario
from ..scenarios.result import ScenarioResult


def _now() -> float:
    """Host wall-clock, for telemetry only (never simulated timing)."""
    return time.perf_counter()  # repro: noqa LINT001


def apply_seed_base(name: str, params: Dict[str, object], seed_base: Optional[int]) -> Dict[str, object]:
    """Derive deterministic per-scenario seeds from a sweep-wide base.

    Every parameter named ``seed`` or ``*_seed`` is replaced by
    ``derive_seed(seed_base, "<scenario>:<param>")`` — stable across
    processes and runs, unique per (scenario, parameter).  With
    ``seed_base=None`` (the default) the paper's seeds are kept.
    """
    if seed_base is None:
        return params
    derived = dict(params)
    for key in params:
        if key == "seed" or key.endswith("_seed"):
            derived[key] = derive_seed(seed_base, f"{name}:{key}")
    return derived


def _install_rig_cache(rig_cache_dir: Optional[str], dep_fence: Optional[str] = None) -> None:
    """Attach the disk-backed rig memo (worker initializer; no-op if None).

    ``dep_fence`` — the rig builder's dependency fingerprint, computed once
    in the parent (workers inherit it through the initializer rather than
    re-running the static analysis per process).
    """
    if rig_cache_dir is None:
        return
    from ..bitstream import generator
    from .rigcache import RigCache

    generator.set_rig_cache(RigCache(rig_cache_dir))
    generator.set_dependency_fence(dep_fence)


def _rig_dependency_fence() -> Optional[str]:
    """The rig builder's dependency fingerprint, or ``None`` (version
    fence) when the closure is not statically sound."""
    from ..checks import depfp

    fingerprint = depfp.rig_fingerprint()
    if fingerprint is None or fingerprint.fallback:
        return None
    return fingerprint.fingerprint


def _execute_scenario(name: str, params: Mapping[str, object]) -> Dict[str, object]:
    """Worker entry point: run one scenario, returning a transport dict.

    Must stay module-level (picklable) and must not raise — errors are
    returned as data so exotic exception types never poison the pool.
    """
    started = _now()
    try:
        result = get_scenario(name).run(params)
    except BaseException as err:  # repro: noqa LINT007 (worker boundary: error returned as data)
        return {
            "name": name,
            "error": f"{type(err).__name__}: {err}",
            "traceback": traceback.format_exc(),
            "host_seconds": _now() - started,
        }
    return {
        "name": name,
        "result": result.to_dict(),
        "host_seconds": _now() - started,
    }


@dataclass
class ScenarioOutcome:
    """What happened to one scenario inside a sweep."""

    name: str
    tags: Tuple[str, ...]
    status: str  # "ok" | "failed"
    cache: str  # "hit" | "miss" | "refresh" | "off"
    #: Host seconds this run actually spent on the scenario (≈0 for hits).
    host_seconds: float
    #: Host seconds the simulation cost when it was (re)computed.  A
    #: *failed* run produced no result, so it contributes 0.0 here — its
    #: time is reported separately as :attr:`failed_seconds`.
    compute_seconds: float
    result: Optional[ScenarioResult] = None
    error: Optional[str] = None
    #: True when a broken pool forced an in-process serial retry.
    retried_serially: bool = False
    #: Host seconds burned by a failed run (0.0 for successful runs).
    failed_seconds: float = 0.0
    #: Batch-evaluation label; distinguishes multiple parameterisations of
    #: the same scenario inside one :func:`run_batch` (defaults to ``name``).
    job: Optional[str] = None

    @property
    def label(self) -> str:
        return self.job if self.job is not None else self.name


@dataclass
class SweepOutcome:
    """Merged outcome of one orchestrated sweep."""

    outcomes: List[ScenarioOutcome]
    jobs: int
    host_seconds: float
    smoke: bool = False
    seed_base: Optional[int] = None
    cache_enabled: bool = True
    cache_stats: Dict[str, int] = field(default_factory=dict)
    pool_broken: bool = False

    @property
    def ok(self) -> bool:
        return all(o.status == "ok" for o in self.outcomes)

    @property
    def failures(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if o.status != "ok"]

    def merged_stats(self) -> Dict[str, StatsGroup]:
        """Cross-process aggregate of every scenario's stats snapshots."""
        merged: Dict[str, StatsGroup] = {}
        for outcome in self.outcomes:
            if outcome.result is None:
                continue
            for group_name, live in outcome.result.merged_stats().items():
                if group_name in merged:
                    merged[group_name].merge(live)
                else:
                    merged[group_name] = live
        return merged


def _resolve(
    scenarios: Sequence[Scenario],
    smoke: bool,
    seed_base: Optional[int],
    overrides: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> List[Tuple[Scenario, Dict[str, object]]]:
    jobs = []
    for entry in scenarios:
        per_scenario = overrides.get(entry.name) if overrides else None
        params = entry.resolve_params(per_scenario, smoke=smoke)
        jobs.append((entry, apply_seed_base(entry.name, params, seed_base)))
    return jobs


def run_batch(
    items: Sequence[Tuple[Scenario, Mapping[str, object]]],
    *,
    jobs: int = 1,
    cache=None,
    refresh: bool = False,
    smoke: bool = False,
    seed_base: Optional[int] = None,
    progress: Optional[Callable[[ScenarioOutcome], None]] = None,
    rig_cache_dir: Optional[str] = None,
    labels: Optional[Sequence[str]] = None,
) -> SweepOutcome:
    """Run explicit ``(scenario, params)`` pairs with up to ``jobs`` workers.

    The generic batch-evaluation entry point underneath :func:`run_sweep`:
    unlike the sweep (which runs each registered scenario once, keyed by
    name), a batch may evaluate the *same* scenario under many different
    parameterisations — the shape the design-space explorer
    (:mod:`repro.dse`) fans out, one evaluation per candidate platform.
    Each pair consults the content-addressed result cache independently,
    so revisited candidates (later search generations, reruns) cost a
    cache lookup instead of a simulation.  ``labels`` (parallel to
    ``items``) names each job in outcomes/progress; defaults to the
    scenario name.
    """
    started = _now()
    rig_fence = _rig_dependency_fence() if rig_cache_dir is not None else None
    _install_rig_cache(rig_cache_dir, rig_fence)
    if labels is None:
        labels = [entry.name for entry, _ in items]
    if len(labels) != len(items):
        raise ValueError(f"{len(labels)} label(s) for {len(items)} item(s)")
    work = [
        (index, label, entry, dict(params))
        for index, (label, (entry, params)) in enumerate(zip(labels, items))
    ]
    outcomes: Dict[int, ScenarioOutcome] = {}
    pool_broken = False

    # -- phase 1: cache lookups -------------------------------------------
    pending: List[Tuple[int, str, Scenario, Dict[str, object]]] = []
    for index, label, entry, params in work:
        if cache is not None and not refresh:
            t0 = _now()
            found = cache.load(entry, params)
            if found is not None:
                result, cold_seconds = found
                outcome = ScenarioOutcome(
                    name=entry.name,
                    tags=entry.tags,
                    status="ok",
                    cache="hit",
                    host_seconds=_now() - t0,
                    compute_seconds=cold_seconds,
                    result=result,
                    job=label,
                )
                outcomes[index] = outcome
                if progress:
                    progress(outcome)
                continue
        pending.append((index, label, entry, params))

    # -- phase 2: execute misses ------------------------------------------
    def finish(index: int, label: str, entry: Scenario, params,
               payload: Dict[str, object], *, retried: bool) -> None:
        cache_state = "off" if cache is None else ("refresh" if refresh else "miss")
        if "error" in payload:
            # A failed run produced nothing, so it must not count toward
            # "what this batch would cost computed cold" — its host time
            # is accounted separately in ``failed_seconds``.
            outcome = ScenarioOutcome(
                name=entry.name,
                tags=entry.tags,
                status="failed",
                cache=cache_state,
                host_seconds=float(payload.get("host_seconds", 0.0)),
                compute_seconds=0.0,
                error=str(payload["error"]),
                retried_serially=retried,
                failed_seconds=float(payload.get("host_seconds", 0.0)),
                job=label,
            )
        else:
            result = ScenarioResult.from_dict(payload["result"])
            seconds = float(payload["host_seconds"])
            if cache is not None:
                cache.store(entry, params, result, seconds)
            outcome = ScenarioOutcome(
                name=entry.name,
                tags=entry.tags,
                status="ok",
                cache=cache_state,
                host_seconds=seconds,
                compute_seconds=seconds,
                result=result,
                retried_serially=retried,
                job=label,
            )
        outcomes[index] = outcome
        if progress:
            progress(outcome)

    crashed: List[Tuple[int, str, Scenario, Dict[str, object]]] = []
    if pending and jobs > 1:
        # Fork keeps dynamically registered scenarios (tests) visible to
        # workers; fall back to the platform default elsewhere.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = None
        with ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=context,
            initializer=_install_rig_cache,
            initargs=(rig_cache_dir, rig_fence),
        ) as pool:
            futures = {
                pool.submit(_execute_scenario, entry.name, params): (index, label, entry, params)
                for index, label, entry, params in pending
            }
            for future, (index, label, entry, params) in futures.items():
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    crashed.append((index, label, entry, params))
                    continue
                finish(index, label, entry, params, payload, retried=False)
    else:
        for index, label, entry, params in pending:
            finish(index, label, entry, params,
                   _execute_scenario(entry.name, params), retried=False)

    # -- phase 3: serial retry after a worker crash ------------------------
    for index, label, entry, params in crashed:
        finish(index, label, entry, params,
               _execute_scenario(entry.name, params), retried=True)

    ordered = [outcomes[index] for index, _, _, _ in work]
    return SweepOutcome(
        outcomes=ordered,
        jobs=jobs,
        host_seconds=_now() - started,
        smoke=smoke,
        seed_base=seed_base,
        cache_enabled=cache is not None,
        cache_stats=cache.telemetry.as_dict() if cache is not None else {},
        pool_broken=pool_broken,
    )


def run_sweep(
    scenarios: Sequence[Scenario],
    *,
    jobs: int = 1,
    cache=None,
    refresh: bool = False,
    smoke: bool = False,
    seed_base: Optional[int] = None,
    progress: Optional[Callable[[ScenarioOutcome], None]] = None,
    rig_cache_dir: Optional[str] = None,
    overrides: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> SweepOutcome:
    """Run ``scenarios`` with up to ``jobs`` worker processes.

    ``cache=None`` disables caching entirely; ``refresh=True`` bypasses
    lookups but still stores fresh results.  ``progress`` (if given) is
    called once per finished scenario, in completion order.
    ``rig_cache_dir`` (if given) shares memoized rig configurations across
    worker processes and sweep invocations via :mod:`repro.sweep.rigcache`.
    ``overrides`` maps scenario name -> parameter overrides (the CLI's
    ``--set NAME:KEY=VALUE``); overridden parameters feed the cache key
    like any other, so overridden runs never collide with defaults.
    """
    work = _resolve(scenarios, smoke, seed_base, overrides)
    return run_batch(
        work,
        jobs=jobs,
        cache=cache,
        refresh=refresh,
        smoke=smoke,
        seed_base=seed_base,
        progress=progress,
        rig_cache_dir=rig_cache_dir,
    )

"""Disk-backed second level for the rig-level static-configuration memo.

The in-process memo in :mod:`repro.bitstream.generator` makes repeated rig
builds free *within* one process; sweep workers are separate processes, so
each would regenerate the same static image from scratch.  This cache
persists the memoized entries as ``.npz`` files keyed by the same content
address (device, region, seed, and the rig builder's call-graph dependency
fingerprint — see :func:`repro.checks.depfp.rig_fingerprint`), letting a
cold worker restore a rig's configuration memory with one array load.

Same recovery policy as the result cache: a corrupted, truncated or
schema-mismatched entry is deleted and treated as a miss — the cache is
always rebuildable, so loading never raises.

Install on the generator with::

    from repro.bitstream import generator
    from repro.sweep.rigcache import RigCache

    generator.set_rig_cache(RigCache(cache_dir / "rigs"))

The setter indirection keeps the dependency pointing sweep -> bitstream,
never the other way around.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from .results_io import ensure_dir

#: Bump when the npz layout (or the keying discipline) changes; old
#: entries become misses.  2 = dependency-fingerprint fence.
RIG_CACHE_SCHEMA = 2


class RigCache:
    """``key -> (frame data, written mask, write count)`` on disk."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.loads = 0
        self.stores = 0
        self.invalidations = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def load(self, key: str) -> Optional[Tuple[np.ndarray, np.ndarray, int]]:
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with np.load(path) as bundle:
                if int(bundle["schema"]) != RIG_CACHE_SCHEMA:
                    raise ValueError("schema mismatch")
                data = np.asarray(bundle["data"], dtype=np.uint32)
                written = np.asarray(bundle["written"], dtype=bool)
                writes = int(bundle["writes"])
        except Exception:  # repro: noqa LINT007 (any corruption flavour means miss)
            # Corruption-as-miss: drop the entry and regenerate.
            self.invalidations += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.loads += 1
        return data, written, writes

    def store(self, key: str, data: np.ndarray, written: np.ndarray, writes: int) -> None:
        ensure_dir(self.root)
        path = self._path(key)
        tmp = path.with_suffix(".tmp.npz")
        try:
            np.savez_compressed(
                tmp,
                schema=np.int64(RIG_CACHE_SCHEMA),
                data=data,
                written=written,
                writes=np.int64(writes),
            )
            tmp.replace(path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.stores += 1

"""Content-addressed, on-disk cache for scenario results.

A scenario is pure (LINT006-enforced), so its result is fully determined
by its inputs — and those inputs are exactly the cache key:

1. the scenario function's **source fingerprint** (SHA-256 of its source
   text, via the registry) — editing a scenario invalidates its entries;
2. the **resolved parameters** (canonical JSON) — every distinct
   parameterisation caches separately (smoke and full runs never mix);
3. the **dependency fence**: by default the scenario's call-graph
   **dependency fingerprint** (:mod:`repro.checks.depfp` — SHA-256 over
   the source of every module its body can transitively reach), so
   editing any helper invalidates exactly the dependent scenarios while
   a release that does not touch the closure keeps the warm cache.  When
   static analysis cannot vouch for the closure (a CKEY finding, or a
   dynamically defined scenario), that scenario falls back to the old
   blanket ``repro.__version__`` fence — sound, just coarser;
4. the cache schema number — envelope-format and orchestration-layer
   changes are fenced here (see ``docs/SWEEP.md`` for the policy).

Entries are versioned JSON envelopes under ``benchmarks/results/cache/``
by default.  A corrupted or mismatched entry is deleted and treated as a
miss — the cache can always be rebuilt from scratch, so recovery never
raises.  Telemetry (hits/misses/stores/invalidations) feeds the sweep
report, and :meth:`ResultCache.explain` diffs the current key components
against the stored envelopes to attribute a miss (``repro sweep
--explain``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from ..scenarios.registry import Scenario
from ..scenarios.result import ScenarioResult, _canon
from .results_io import ensure_dir

#: Bump when the envelope layout — or anything in the orchestration layer
#: excluded from dependency fingerprints — changes; old entries become
#: misses.
CACHE_SCHEMA = 3


def _repro_version() -> str:
    """The package version, read at call time so test fixtures that
    simulate a release bump (monkeypatching ``repro.__version__``) are
    observed."""
    from .. import __version__

    return __version__


def canonical_params(params: Mapping[str, object]) -> str:
    """Stable JSON for hashing: sorted keys, tuples already canonicalised."""
    return json.dumps({k: _canon(v) for k, v in params.items()}, sort_keys=True)


def dependency_fence(scenario: Scenario) -> Dict[str, str]:
    """The key components fencing library changes for this scenario.

    ``key_mode == "depfp"`` carries the call-graph dependency fingerprint;
    ``key_mode == "version"`` is the blanket fallback used when the body is
    not statically analyzable or a CKEY finding voids the fingerprint.
    """
    from ..checks import depfp

    fp = depfp.scenario_fingerprint(scenario)
    if fp is None or fp.fallback:
        return {"key_mode": "version", "repro_version": _repro_version()}
    return {"key_mode": "depfp", "dep_fingerprint": fp.fingerprint}


def key_components(scenario: Scenario, params: Mapping[str, object]) -> Dict[str, object]:
    """Every component of the content address, by name — hashed into the
    key, stored in the envelope, and diffed by :meth:`ResultCache.explain`."""
    components: Dict[str, object] = {
        "source": scenario.source_fingerprint(),
        "params": json.loads(canonical_params(params)),
        "cache_schema": CACHE_SCHEMA,
    }
    components.update(dependency_fence(scenario))
    return components


def cache_key(scenario: Scenario, params: Mapping[str, object]) -> str:
    """The content address of one (scenario, params) result."""
    material = json.dumps(key_components(scenario, params), sort_keys=True)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _summarize(value: object) -> str:
    text = value if isinstance(value, str) else json.dumps(value, sort_keys=True)
    return text[:16] + "…" if len(text) > 17 else text


@dataclass
class CacheTelemetry:
    """Hit/miss accounting for one sweep run."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
        }


@dataclass
class ResultCache:
    """Directory-backed content-addressed store of scenario results."""

    root: Path
    telemetry: CacheTelemetry = field(default_factory=CacheTelemetry)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- addressing --------------------------------------------------------
    def entry_path(self, scenario: Scenario, params: Mapping[str, object]) -> Path:
        key = cache_key(scenario, params)
        # Scenario name in the filename keeps the directory human-navigable;
        # the key suffix is the actual content address.
        return self.root / f"{scenario.name}-{key[:20]}.json"

    # -- read --------------------------------------------------------------
    def load(
        self, scenario: Scenario, params: Mapping[str, object]
    ) -> Optional[Tuple[ScenarioResult, float]]:
        """Cached ``(result, original_host_seconds)`` or ``None`` (miss).

        Any malformed entry — unreadable file, bad JSON, schema or key
        mismatch, unparseable result — is deleted and reported as a miss.
        """
        path = self.entry_path(scenario, params)
        if not path.exists():
            self.telemetry.misses += 1
            return None
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            if envelope.get("schema") != CACHE_SCHEMA:
                raise ValueError(f"cache schema {envelope.get('schema')!r}")
            if envelope.get("key") != cache_key(scenario, params):
                raise ValueError("cache key mismatch")
            result = ScenarioResult.from_dict(envelope["result"])
            host_seconds = float(envelope.get("host_seconds", 0.0))
        except Exception:  # repro: noqa LINT007 (any corruption flavour means miss)
            # Corrupted entry: drop it so the next run regenerates cleanly.
            try:
                path.unlink()
            except OSError:
                pass
            self.telemetry.invalidated += 1
            self.telemetry.misses += 1
            return None
        self.telemetry.hits += 1
        return result, host_seconds

    # -- write -------------------------------------------------------------
    def store(
        self,
        scenario: Scenario,
        params: Mapping[str, object],
        result: ScenarioResult,
        host_seconds: float,
    ) -> Path:
        """Persist one result; atomic enough for concurrent same-key writers
        (both write identical bytes, last rename wins)."""
        ensure_dir(self.root)
        path = self.entry_path(scenario, params)
        envelope = {
            "schema": CACHE_SCHEMA,
            "key": cache_key(scenario, params),
            "scenario": scenario.name,
            "params": json.loads(canonical_params(params)),
            "key_components": key_components(scenario, params),
            "repro_version": _repro_version(),
            "host_seconds": host_seconds,
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(envelope, indent=2, sort_keys=True), encoding="utf-8")
        tmp.replace(path)
        self.telemetry.stores += 1
        return path

    # -- explain -----------------------------------------------------------
    def explain(self, scenario: Scenario, params: Mapping[str, object]) -> List[str]:
        """Attribute a miss: diff the current key components against every
        stored entry for this scenario (``repro sweep --explain``)."""
        current = key_components(scenario, params)
        entries = sorted(self.root.glob(f"{scenario.name}-*.json")) if self.root.exists() else []
        if not entries:
            return ["no cached entry (cold cache for this scenario)"]
        lines: List[str] = []
        for path in entries:
            try:
                envelope = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                lines.append(f"{path.name}: unreadable entry")
                continue
            if envelope.get("schema") != CACHE_SCHEMA:
                lines.append(
                    f"{path.name}: schema {envelope.get('schema')!r} != {CACHE_SCHEMA} "
                    "(stale envelope format)"
                )
                continue
            stored = envelope.get("key_components")
            if not isinstance(stored, dict):
                lines.append(f"{path.name}: entry predates key_components (re-stored on next run)")
                continue
            changed = [
                key
                for key in sorted(set(stored) | set(current))
                if stored.get(key) != current.get(key)
            ]
            if not changed:
                lines.append(f"{path.name}: key components identical (this entry hits)")
                continue
            for key in changed:
                lines.append(
                    f"{path.name}: {key} changed "
                    f"({_summarize(stored.get(key))} -> {_summarize(current.get(key))})"
                )
        return lines

    # -- maintenance -------------------------------------------------------
    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        if not self.root.exists():
            return 0
        removed = 0
        for entry in self.root.glob("*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

"""Content-addressed, on-disk cache for scenario results.

A scenario is pure (LINT006-enforced), so its result is fully determined
by three inputs — and those three inputs are exactly the cache key:

1. the scenario function's **source fingerprint** (SHA-256 of its source
   text, via the registry) — editing a scenario invalidates its entries;
2. the **resolved parameters** (canonical JSON) — every distinct
   parameterisation caches separately (smoke and full runs never mix);
3. the **repro package version** plus the result/cache schema numbers —
   library changes that could shift simulated numbers are fenced by the
   release version (see ``docs/SWEEP.md`` for the policy).

Entries are versioned JSON envelopes under ``benchmarks/results/cache/``
by default.  A corrupted or mismatched entry is deleted and treated as a
miss — the cache can always be rebuilt from scratch, so recovery never
raises.  Telemetry (hits/misses/stores/invalidations) feeds the sweep
report.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

from .. import __version__
from ..scenarios.registry import Scenario
from ..scenarios.result import ScenarioResult, _canon
from .results_io import ensure_dir

#: Bump when the envelope layout changes; old entries become misses.
CACHE_SCHEMA = 2


def canonical_params(params: Mapping[str, object]) -> str:
    """Stable JSON for hashing: sorted keys, tuples already canonicalised."""
    return json.dumps({k: _canon(v) for k, v in params.items()}, sort_keys=True)


def cache_key(scenario: Scenario, params: Mapping[str, object]) -> str:
    """The content address of one (scenario, params) result."""
    material = json.dumps(
        {
            "source": scenario.source_fingerprint(),
            "params": json.loads(canonical_params(params)),
            "repro_version": __version__,
            "cache_schema": CACHE_SCHEMA,
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass
class CacheTelemetry:
    """Hit/miss accounting for one sweep run."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
        }


@dataclass
class ResultCache:
    """Directory-backed content-addressed store of scenario results."""

    root: Path
    telemetry: CacheTelemetry = field(default_factory=CacheTelemetry)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- addressing --------------------------------------------------------
    def entry_path(self, scenario: Scenario, params: Mapping[str, object]) -> Path:
        key = cache_key(scenario, params)
        # Scenario name in the filename keeps the directory human-navigable;
        # the key suffix is the actual content address.
        return self.root / f"{scenario.name}-{key[:20]}.json"

    # -- read --------------------------------------------------------------
    def load(
        self, scenario: Scenario, params: Mapping[str, object]
    ) -> Optional[Tuple[ScenarioResult, float]]:
        """Cached ``(result, original_host_seconds)`` or ``None`` (miss).

        Any malformed entry — unreadable file, bad JSON, schema or key
        mismatch, unparseable result — is deleted and reported as a miss.
        """
        path = self.entry_path(scenario, params)
        if not path.exists():
            self.telemetry.misses += 1
            return None
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            if envelope.get("schema") != CACHE_SCHEMA:
                raise ValueError(f"cache schema {envelope.get('schema')!r}")
            if envelope.get("key") != cache_key(scenario, params):
                raise ValueError("cache key mismatch")
            result = ScenarioResult.from_dict(envelope["result"])
            host_seconds = float(envelope.get("host_seconds", 0.0))
        except Exception:  # repro: noqa LINT007 (any corruption flavour means miss)
            # Corrupted entry: drop it so the next run regenerates cleanly.
            try:
                path.unlink()
            except OSError:
                pass
            self.telemetry.invalidated += 1
            self.telemetry.misses += 1
            return None
        self.telemetry.hits += 1
        return result, host_seconds

    # -- write -------------------------------------------------------------
    def store(
        self,
        scenario: Scenario,
        params: Mapping[str, object],
        result: ScenarioResult,
        host_seconds: float,
    ) -> Path:
        """Persist one result; atomic enough for concurrent same-key writers
        (both write identical bytes, last rename wins)."""
        ensure_dir(self.root)
        path = self.entry_path(scenario, params)
        envelope = {
            "schema": CACHE_SCHEMA,
            "key": cache_key(scenario, params),
            "scenario": scenario.name,
            "params": json.loads(canonical_params(params)),
            "repro_version": __version__,
            "source_fingerprint": scenario.source_fingerprint(),
            "host_seconds": host_seconds,
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(envelope, indent=2, sort_keys=True), encoding="utf-8")
        tmp.replace(path)
        self.telemetry.stores += 1
        return path

    # -- maintenance -------------------------------------------------------
    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        if not self.root.exists():
            return 0
        removed = 0
        for entry in self.root.glob("*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

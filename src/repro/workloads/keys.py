"""Synthetic keys/messages for the hashing workloads."""

from __future__ import annotations

import numpy as np

from ..errors import KernelError


def random_key(length: int, seed: int = 7) -> bytes:
    """A random byte string of the given length."""
    if length < 0:
        raise KernelError("key length must be non-negative")
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()


def key_batch(count: int, length: int, seed: int = 8) -> list[bytes]:
    """``count`` distinct random keys of the same length."""
    return [random_key(length, seed=seed + i) for i in range(count)]


def ascii_key(length: int, seed: int = 9) -> bytes:
    """A printable-ASCII key (more realistic for hash-table workloads)."""
    rng = np.random.default_rng(seed)
    return bytes(int(v) for v in rng.integers(0x20, 0x7F, size=length))


def zipf_key_batch(count: int, max_length: int = 256, a: float = 1.3, seed: int = 10) -> list[bytes]:
    """Keys with a Zipf-like length distribution.

    Hash-table workloads (the context lookup2 was published for) are
    dominated by short keys with a long tail; this generates that shape
    for throughput studies.
    """
    if count <= 0:
        raise KernelError("batch must contain at least one key")
    rng = np.random.default_rng(seed)
    lengths = np.minimum(rng.zipf(a, size=count) + 3, max_length)
    return [random_key(int(n), seed=seed + 1 + i) for i, n in enumerate(lengths)]

"""Request-trace generators for the multi-tenant reconfiguration service.

A *trace* is the columnar input of :mod:`repro.serve`: one structured
NumPy array row per kernel-invocation request, sorted by arrival time.
Columns (see :data:`TRACE_DTYPE`):

* ``arrival_ps``  — absolute arrival time (integer picoseconds);
* ``kernel``      — kernel id, an index into the serve cost table;
* ``size``        — workload size class, an index into the cost table's
  size axis (payload magnitude, not bytes);
* ``deadline_ps`` — absolute deadline (EDF scheduling / miss accounting);
* ``tenant``      — tenant (session) id;
* ``priority``    — tenant class, higher is more urgent.

Three arrival models cover the paper's service regimes: a stationary
Poisson stream, an on/off bursty stream, and a diurnally modulated
stream.  Every generator is fully vectorized and fully seeded — the seed
is threaded from the caller (scenario parameters) per LINT002, and
:func:`derive_trace_seed` derives stable per-field sub-seeds from it so
adding a field never perturbs the others.

Kernel and tenant choices are *sticky* (first-order Markov): real
hash/image services show strong temporal locality, and run length is
exactly the quantity the reconfiguration break-even math amortises over.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import KernelError

#: Columnar request-trace layout (one row per request).
TRACE_DTYPE = np.dtype(
    [
        ("arrival_ps", np.int64),
        ("kernel", np.int16),
        ("size", np.int16),
        ("deadline_ps", np.int64),
        ("tenant", np.int16),
        ("priority", np.int8),
    ]
)

#: Arrival models :func:`make_trace` understands.
ARRIVAL_MODELS = ("poisson", "bursty", "diurnal")


def derive_trace_seed(base: int, label: str) -> int:
    """Stable per-stream sub-seed (SHA-256; process-independent)."""
    digest = hashlib.sha256(f"trace:{base}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def _sticky_ids(count: int, values: int, stickiness: float, rng) -> np.ndarray:
    """A first-order Markov id stream: stay with prob ``stickiness``.

    Vectorized: switch points -> run ids -> one draw per run, repeated.
    """
    if values <= 0:
        raise KernelError("need at least one id value")
    switch = rng.random(count) < (1.0 - stickiness)
    if count:
        switch[0] = True
    run_id = np.cumsum(switch) - 1
    run_values = rng.integers(0, values, size=int(run_id[-1]) + 1 if count else 0)
    return run_values[run_id].astype(np.int64)


def _size_weights(size_classes: int, skew: float = 0.55) -> np.ndarray:
    """Geometric size-class mix: small requests dominate, long tail."""
    weights = skew ** np.arange(size_classes, dtype=np.float64)
    return weights / weights.sum()


def _assemble(
    gaps: np.ndarray,
    count: int,
    seed: int,
    kernels: int,
    tenants: int,
    size_classes: int,
    stickiness: float,
    deadline_slack_ps: Sequence[int],
    priority_levels: int,
) -> np.ndarray:
    """Common tail: turn a float gap vector into a finished trace."""
    lo, hi = int(deadline_slack_ps[0]), int(deadline_slack_ps[1])
    if lo <= 0 or hi <= lo:
        raise KernelError("deadline_slack_ps must be an increasing positive pair")
    arrival = np.rint(np.cumsum(np.maximum(gaps, 1.0))).astype(np.int64)
    kernel_rng = np.random.default_rng(derive_trace_seed(seed, "kernel"))
    tenant_rng = np.random.default_rng(derive_trace_seed(seed, "tenant"))
    size_rng = np.random.default_rng(derive_trace_seed(seed, "size"))
    slack_rng = np.random.default_rng(derive_trace_seed(seed, "deadline"))
    trace = np.zeros(count, dtype=TRACE_DTYPE)
    trace["arrival_ps"] = arrival
    trace["kernel"] = _sticky_ids(count, kernels, stickiness, kernel_rng)
    trace["tenant"] = _sticky_ids(count, tenants, stickiness, tenant_rng)
    trace["priority"] = trace["tenant"] % priority_levels
    trace["size"] = size_rng.choice(
        size_classes, size=count, p=_size_weights(size_classes)
    )
    trace["deadline_ps"] = arrival + slack_rng.integers(
        lo, hi, size=count, dtype=np.int64
    )
    return trace


def poisson_trace(
    count: int,
    mean_gap_ps: int,
    seed: int,
    kernels: int = 4,
    tenants: int = 8,
    size_classes: int = 3,
    stickiness: float = 0.9,
    deadline_slack_ps: Sequence[int] = (20_000_000_000, 200_000_000_000),
    priority_levels: int = 4,
) -> np.ndarray:
    """Stationary Poisson arrivals with mean inter-arrival ``mean_gap_ps``."""
    if count <= 0:
        raise KernelError("trace must contain at least one request")
    if mean_gap_ps <= 0:
        raise KernelError("mean_gap_ps must be positive")
    rng = np.random.default_rng(derive_trace_seed(seed, "poisson-gaps"))
    gaps = rng.exponential(float(mean_gap_ps), size=count)
    return _assemble(
        gaps, count, seed, kernels, tenants, size_classes, stickiness,
        deadline_slack_ps, priority_levels,
    )


def bursty_trace(
    count: int,
    mean_gap_ps: int,
    seed: int,
    burst_len: int = 64,
    idle_factor: float = 20.0,
    kernels: int = 4,
    tenants: int = 8,
    size_classes: int = 3,
    stickiness: float = 0.9,
    deadline_slack_ps: Sequence[int] = (20_000_000_000, 200_000_000_000),
    priority_levels: int = 4,
) -> np.ndarray:
    """On/off arrivals: dense bursts separated by long idle gaps.

    Bursts have geometric length (mean ``burst_len``); within a burst the
    stream runs ``idle_factor`` times faster than the stationary rate and
    each burst opens with one idle gap that restores the overall mean.
    """
    if count <= 0:
        raise KernelError("trace must contain at least one request")
    if mean_gap_ps <= 0:
        raise KernelError("mean_gap_ps must be positive")
    if burst_len <= 0 or idle_factor <= 1.0:
        raise KernelError("burst_len must be positive and idle_factor > 1")
    rng = np.random.default_rng(derive_trace_seed(seed, "bursty-gaps"))
    start_rng = np.random.default_rng(derive_trace_seed(seed, "bursty-starts"))
    dense = rng.exponential(float(mean_gap_ps) / idle_factor, size=count)
    starts = start_rng.random(count) < (1.0 / burst_len)
    if count:
        starts[0] = True
    # One long off-gap per burst keeps the long-run rate near the mean.
    idle = rng.exponential(float(mean_gap_ps) * burst_len * (1.0 - 1.0 / idle_factor),
                           size=count)
    gaps = np.where(starts, dense + idle, dense)
    return _assemble(
        gaps, count, seed, kernels, tenants, size_classes, stickiness,
        deadline_slack_ps, priority_levels,
    )


def diurnal_trace(
    count: int,
    mean_gap_ps: int,
    seed: int,
    cycles: float = 4.0,
    depth: float = 0.8,
    kernels: int = 4,
    tenants: int = 8,
    size_classes: int = 3,
    stickiness: float = 0.9,
    deadline_slack_ps: Sequence[int] = (20_000_000_000, 200_000_000_000),
    priority_levels: int = 4,
) -> np.ndarray:
    """Sinusoidally modulated arrivals: ``cycles`` load waves over the trace.

    ``depth`` in [0, 1) scales the swing between peak and trough rate.
    """
    if count <= 0:
        raise KernelError("trace must contain at least one request")
    if mean_gap_ps <= 0:
        raise KernelError("mean_gap_ps must be positive")
    if not 0.0 <= depth < 1.0:
        raise KernelError("depth must be in [0, 1)")
    rng = np.random.default_rng(derive_trace_seed(seed, "diurnal-gaps"))
    base = rng.exponential(float(mean_gap_ps), size=count)
    phase = 2.0 * np.pi * cycles * np.arange(count, dtype=np.float64) / max(1, count)
    gaps = base * (1.0 + depth * np.sin(phase))
    return _assemble(
        gaps, count, seed, kernels, tenants, size_classes, stickiness,
        deadline_slack_ps, priority_levels,
    )


def make_trace(model: str, count: int, mean_gap_ps: int, seed: int,
               **kwargs) -> np.ndarray:
    """Dispatch on the arrival-model name (static, cache-key friendly)."""
    if model == "poisson":
        return poisson_trace(count, mean_gap_ps, seed, **kwargs)
    if model == "bursty":
        return bursty_trace(count, mean_gap_ps, seed, **kwargs)
    if model == "diurnal":
        return diurnal_trace(count, mean_gap_ps, seed, **kwargs)
    raise KernelError(f"unknown arrival model {model!r}; known: {ARRIVAL_MODELS}")


def validate_trace(trace: np.ndarray, kernels: Optional[int] = None) -> None:
    """Raise :class:`~repro.errors.KernelError` unless ``trace`` is well-formed."""
    if trace.dtype != TRACE_DTYPE:
        raise KernelError(f"trace dtype {trace.dtype} != TRACE_DTYPE")
    if trace.size == 0:
        raise KernelError("trace is empty")
    arrivals = trace["arrival_ps"]
    if np.any(np.diff(arrivals) < 0):
        raise KernelError("trace arrivals must be sorted non-decreasing")
    if np.any(arrivals < 0):
        raise KernelError("trace arrivals must be non-negative")
    if np.any(trace["deadline_ps"] <= arrivals):
        raise KernelError("every deadline must fall after its arrival")
    if np.any(trace["size"] < 0):
        raise KernelError("size classes must be non-negative")
    if kernels is not None and (
        np.any(trace["kernel"] < 0) or np.any(trace["kernel"] >= kernels)
    ):
        raise KernelError(f"kernel ids must lie in [0, {kernels})")


def trace_summary(trace: np.ndarray) -> Dict[str, object]:
    """Small descriptive dict (used by the CLI and reports)."""
    arrivals = trace["arrival_ps"]
    span = int(arrivals[-1] - arrivals[0]) if trace.size > 1 else 0
    return {
        "requests": int(trace.size),
        "span_ps": span,
        "mean_gap_ps": int(span // max(1, trace.size - 1)),
        "kernels": int(trace["kernel"].max()) + 1,
        "tenants": int(trace["tenant"].max()) + 1,
        "size_classes": int(trace["size"].max()) + 1,
    }

"""Synthetic workload generators (images, patterns, keys, request traces)."""

from .images import (
    binary_image,
    binary_pattern,
    gradient_image,
    grayscale_image,
    planted_pattern_image,
)
from .keys import ascii_key, key_batch, random_key

__all__ = [
    "ascii_key",
    "binary_image",
    "binary_pattern",
    "gradient_image",
    "grayscale_image",
    "key_batch",
    "planted_pattern_image",
    "random_key",
]

from .keys import zipf_key_batch  # noqa: E402

__all__.append("zipf_key_batch")

from .traces import (  # noqa: E402
    ARRIVAL_MODELS,
    TRACE_DTYPE,
    bursty_trace,
    derive_trace_seed,
    diurnal_trace,
    make_trace,
    poisson_trace,
    trace_summary,
    validate_trace,
)

__all__ += [
    "ARRIVAL_MODELS",
    "TRACE_DTYPE",
    "bursty_trace",
    "derive_trace_seed",
    "diurnal_trace",
    "make_trace",
    "poisson_trace",
    "trace_summary",
    "validate_trace",
]

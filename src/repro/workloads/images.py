"""Synthetic image generators for the evaluation workloads."""

from __future__ import annotations

import numpy as np

from ..errors import KernelError


def binary_image(height: int, width: int, density: float = 0.5, seed: int = 1) -> np.ndarray:
    """A random bilevel image (bool array)."""
    if not 0.0 <= density <= 1.0:
        raise KernelError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    return rng.random((height, width)) < density


def binary_pattern(seed: int = 2) -> np.ndarray:
    """A random 8x8 bilevel pattern."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(8, 8)).astype(bool)


def planted_pattern_image(
    height: int, width: int, pattern: np.ndarray, plants: int = 3, seed: int = 3
) -> np.ndarray:
    """A random image with ``plants`` exact copies of ``pattern`` planted.

    Handy for examples: the best match count is then exactly 64 at the
    planted positions.
    """
    img = binary_image(height, width, seed=seed)
    rng = np.random.default_rng(seed + 1)
    for _ in range(plants):
        y = int(rng.integers(0, height - 8 + 1))
        x = int(rng.integers(0, width - 8 + 1))
        img[y : y + 8, x : x + 8] = pattern
    return img


def grayscale_image(height: int, width: int, seed: int = 4) -> np.ndarray:
    """A random 8-bit grayscale image."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(height, width), dtype=np.uint8)


def gradient_image(height: int, width: int) -> np.ndarray:
    """A deterministic horizontal gradient (nice for fade demos)."""
    row = np.linspace(0, 255, width, dtype=np.uint8)
    return np.tile(row, (height, 1))

"""Software image operations on the PPC405.

Plain byte-wise C (``unsigned char`` arrays) with inline saturation — the
natural implementation when the CPU has no packed-SIMD extension, which the
paper notes is exactly the PPC405's situation.  On the 32-bit system every
pixel access is an uncached OPB transaction through the bridge; on the
64-bit system the same code enjoys cacheable DDR, which is why its software
numbers improve so much (Tables 5 vs 12).
"""

from __future__ import annotations

import numpy as np

from ..cpu.isa import InstructionMix
from ..errors import KernelError
from .costmodel import (
    RunResult,
    SystemFacade,
    charge_byte_reads,
    charge_byte_writes,
)

#: Per pixel: load-use, sign-extend, add, two-sided clamp with branches,
#: store, index arithmetic.
BRIGHTNESS_MIX = InstructionMix(
    alu=9, load=1, store=1, branches=2.5, taken_fraction=0.4, label="bright-px"
)
#: Per pixel: two loads, saturating add (one-sided clamp), store.
BLEND_MIX = InstructionMix(alu=6, load=2, store=1, branches=1.5, taken_fraction=0.4, label="blend-px")
#: Per pixel: two loads, subtract, 8.8 multiply, shift, add, clamp, store.
FADE_MIX = InstructionMix(
    alu=11, mul=1, load=2, store=1, branches=2, taken_fraction=0.4, label="fade-px"
)
#: Per call: pointer setup and the (single) loop prologue.
SETUP_MIX = InstructionMix(alu=24, load=6, store=4, branches=4, label="image-setup")


def brightness_ref(image: np.ndarray, constant: int) -> np.ndarray:
    """Saturating add of a signed constant (matches the hardware kernel)."""
    img = np.asarray(image, dtype=np.int32)
    return np.clip(img + constant, 0, 255).astype(np.uint8)


def blend_ref(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Saturating add of two images."""
    if a.shape != b.shape:
        raise KernelError("images must have the same shape")
    return np.clip(a.astype(np.int32) + b.astype(np.int32), 0, 255).astype(np.uint8)


def fade_ref(a: np.ndarray, b: np.ndarray, factor: float) -> np.ndarray:
    """(A - B) * f + B with the kernel's 8.8 fixed-point arithmetic."""
    if a.shape != b.shape:
        raise KernelError("images must have the same shape")
    f_fx = round(factor * 256)
    av = a.astype(np.int64)
    bv = b.astype(np.int64)
    return np.clip(((av - bv) * f_fx >> 8) + bv, 0, 255).astype(np.uint8)


class _SwImageTask:
    """Shared driver: charge per-pixel mix + byte traffic."""

    mix: InstructionMix
    sources = 1
    name = "image/sw"

    def _charge(self, system: SystemFacade, pixels: int, base: int) -> None:
        cpu = system.cpu
        cpu.execute(SETUP_MIX)
        cpu.execute(self.mix, pixels)
        for source in range(self.sources):
            charge_byte_reads(system, base + source * pixels, pixels)
        charge_byte_writes(system, base + self.sources * pixels, pixels)


class SwBrightness(_SwImageTask):
    """Brightness adjustment task."""

    mix = BRIGHTNESS_MIX
    sources = 1
    name = "brightness/sw"

    def __init__(self, constant: int) -> None:
        if not -255 <= constant <= 255:
            raise KernelError(f"brightness constant {constant} out of range")
        self.constant = constant

    def run(self, system: SystemFacade, image: np.ndarray, base: int = 0x0040_0000) -> RunResult:
        out = brightness_ref(image, self.constant)
        start = system.cpu.now_ps
        self._charge(system, int(np.asarray(image).size), base)
        return RunResult(result=out, elapsed_ps=system.cpu.now_ps - start, label=self.name)


class SwBlend(_SwImageTask):
    """Additive blending task."""

    mix = BLEND_MIX
    sources = 2
    name = "blend/sw"

    def run(
        self, system: SystemFacade, a: np.ndarray, b: np.ndarray, base: int = 0x0040_0000
    ) -> RunResult:
        out = blend_ref(a, b)
        start = system.cpu.now_ps
        self._charge(system, int(np.asarray(a).size), base)
        return RunResult(result=out, elapsed_ps=system.cpu.now_ps - start, label=self.name)


class SwFade(_SwImageTask):
    """Fade-effect task (single factor value)."""

    mix = FADE_MIX
    sources = 2
    name = "fade/sw"

    def __init__(self, factor: float) -> None:
        if not 0.0 <= factor <= 1.0:
            raise KernelError(f"fade factor {factor} outside [0, 1]")
        self.factor = factor

    def run(
        self, system: SystemFacade, a: np.ndarray, b: np.ndarray, base: int = 0x0040_0000
    ) -> RunResult:
        out = fade_ref(a, b, self.factor)
        start = system.cpu.now_ps
        self._charge(system, int(np.asarray(a).size), base)
        return RunResult(result=out, elapsed_ps=system.cpu.now_ps - start, label=self.name)

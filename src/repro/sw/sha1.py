"""Software SHA-1 on the PPC405 (the RFC 3174 reference code).

Each 512-bit block costs the 80-round compression plus the message-schedule
expansion; every call additionally pays context init, input copying into
the block buffer and padding — "a large overhead for smaller data sets"
whose relative importance decreases as the input grows (Table 11).
"""

from __future__ import annotations

from ..cpu.isa import CALL_OVERHEAD, InstructionMix
from ..kernels.sha1_core import sha1
from .costmodel import RunResult, SystemFacade, charge_repeated_word_reads

#: Per 64-byte block: 80 rounds x ~11 ops + the W[t] expansion with its
#: loads/stores to the (cached) schedule array on the stack.
BLOCK_MIX = InstructionMix(
    alu=960, load=176, store=96, branches=84, taken_fraction=0.95, label="sha1-block"
)
#: Per call: SHA1Reset/SHA1Input bookkeeping, buffer copies, SHA1Result
#: byte-order fixups — the RFC code copies every input byte once more.
CALL_MIX = CALL_OVERHEAD + InstructionMix(
    alu=420, load=140, store=160, branches=60, taken_fraction=0.7, label="sha1-call"
)
#: The RFC code's per-input-byte copy into the internal block buffer.
COPY_BYTE_MIX = InstructionMix(alu=3, load=1, store=1, branches=1, label="sha1-copy")


class SwSha1:
    """Software SHA-1 task (compute + PPC405 cost model)."""

    name = "sha1/sw"

    def run(self, system: SystemFacade, message: bytes, base: int = 0x0030_0000) -> RunResult:
        """Digest ``message`` on ``system``; returns digest and time."""
        digest = sha1(message)
        padded_len = len(message) + 1 + ((56 - (len(message) + 1) % 64) % 64) + 8
        blocks = padded_len // 64

        cpu = system.cpu
        start = cpu.now_ps
        cpu.execute(CALL_MIX)
        cpu.execute(COPY_BYTE_MIX, len(message))
        cpu.execute(BLOCK_MIX, blocks)
        charge_repeated_word_reads(
            system, base, total_loads=(len(message) + 3) // 4, unique_bytes=max(4, len(message))
        )
        return RunResult(result=digest, elapsed_ps=cpu.now_ps - start, label=self.name)

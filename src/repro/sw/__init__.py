"""Software reference implementations with PPC405 cost models."""

from .costmodel import (
    RunResult,
    SystemFacade,
    charge_byte_reads,
    charge_byte_writes,
    charge_repeated_word_reads,
    charge_word_reads,
    charge_word_writes,
)
from .image_ops import (
    SwBlend,
    SwBrightness,
    SwFade,
    blend_ref,
    brightness_ref,
    fade_ref,
)
from .jenkins_hash import SwJenkinsHash
from .pattern_match import SwPatternMatch, match_counts
from .sha1 import SwSha1

__all__ = [
    "RunResult",
    "SwBlend",
    "SwBrightness",
    "SwFade",
    "SwJenkinsHash",
    "SwPatternMatch",
    "SwSha1",
    "SystemFacade",
    "blend_ref",
    "brightness_ref",
    "charge_byte_reads",
    "charge_byte_writes",
    "charge_repeated_word_reads",
    "charge_word_reads",
    "charge_word_writes",
    "fade_ref",
    "match_counts",
]

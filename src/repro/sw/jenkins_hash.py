"""Software lookup2 hash on the PPC405.

The "public domain implementation of a hashing function" of the paper's
second example (Jenkins, Dr. Dobb's Journal 1997), compiled with aligned
32-bit word loads.  The code was *optimised for 32-bit CPUs* — three loads
and one 27-operation mix per 12-byte block — so its software time is small
and the hardware version's gain is limited by transfer time (Tables 4/10).
"""

from __future__ import annotations

from ..cpu.isa import CALL_OVERHEAD, InstructionMix
from ..kernels.jenkins_hash import lookup2
from .costmodel import RunResult, SystemFacade, charge_repeated_word_reads

#: Per 12-byte block: the 27-op mix (each line is a sub + sub/xor + shift),
#: three a/b/c additions, pointer arithmetic and the length test.  Word
#: loads are charged separately.
BLOCK_MIX = InstructionMix(alu=48, load=3, branches=2, taken_fraction=1.0, label="lookup2-block")
#: Tail handling: the final switch ladder plus the closing mix.
TAIL_MIX = InstructionMix(alu=40, load=3, branches=6, taken_fraction=0.5, label="lookup2-tail")
#: Per-call overhead: prologue/epilogue and initialisation.
CALL_MIX = CALL_OVERHEAD + InstructionMix(alu=8, label="lookup2-call")


class SwJenkinsHash:
    """Software lookup2 task (compute + PPC405 cost model)."""

    name = "lookup2/sw"

    def __init__(self, initval: int = 0) -> None:
        self.initval = initval

    def run(self, system: SystemFacade, key: bytes, key_base: int = 0x0020_0000) -> RunResult:
        """Hash ``key`` on ``system``; returns digest and simulated time."""
        digest = lookup2(key, self.initval)
        blocks = len(key) // 12
        word_loads = blocks * 3 + ((len(key) % 12) + 3) // 4

        cpu = system.cpu
        start = cpu.now_ps
        cpu.execute(CALL_MIX)
        cpu.execute(BLOCK_MIX, blocks)
        cpu.execute(TAIL_MIX)
        charge_repeated_word_reads(system, key_base, word_loads, unique_bytes=len(key))
        return RunResult(result=digest, elapsed_ps=cpu.now_ps - start, label=self.name)

"""Shared cost-model helpers for the software task implementations.

A software task charges time in three parts:

* **compute** — an :class:`InstructionMix` per inner-loop iteration,
  derived from the reference C code compiled for the PPC405;
* **memory** — data movement, which depends on the *system*: the 32-bit
  system's external SRAM sits behind the PLB-OPB bridge and is accessed
  uncached (the small OPB controller does not support the burst reads a
  line fill needs), while the 64-bit system's DDR is cacheable;
* **call overhead** — per-invocation setup (prologue, padding, buffer
  initialisation), which the paper highlights for SHA-1 on small inputs.

Tasks receive the *system facade* (anything with ``cpu``, ``ext_mem``,
``ext_mem_base`` and ``ext_mem_cacheable``) so the same task code runs on
both systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Protocol, runtime_checkable

from ..cpu.ppc405 import Ppc405
from ..errors import TransferError
from ..mem.memory import MemoryArray


def _require_count(count: int, what: str) -> bool:
    """Validate a transfer count; True when there is anything to charge.

    Zero is a legal no-op (empty batch); a negative count is always a
    caller bug and used to be swallowed silently — the scheduler's batch
    cost tables lean on these helpers, so it now fails loudly.
    """
    if count < 0:
        raise TransferError(f"negative {what} count: {count}")
    return count > 0


@runtime_checkable
class SystemFacade(Protocol):
    """The slice of a System the task models need."""

    cpu: Ppc405
    ext_mem: MemoryArray
    ext_mem_base: int
    ext_mem_cacheable: bool


@dataclass
class RunResult:
    """Outcome of one task execution on a system."""

    result: Any
    elapsed_ps: int
    label: str = ""
    #: Optional phase breakdown (e.g. the 64-bit image tasks report their
    #: "data preparation" time separately, as the paper's Table 12 does).
    breakdown: Dict[str, int] = field(default_factory=dict)

    @property
    def elapsed_us(self) -> float:
        return self.elapsed_ps / 1e6

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_ps / 1e9


def charge_word_reads(system: SystemFacade, address: int, count: int) -> None:
    """Time for ``count`` sequential 32-bit loads from external memory."""
    if not _require_count(count, "word-read"):
        return
    if system.ext_mem_cacheable:
        system.cpu.charge_stream_read(address, count * 4)
        system.cpu.execute_cycles(count)  # the load instructions themselves
    else:
        system.cpu.io_read_batch(address, count)


def charge_word_writes(
    system: SystemFacade, address: int, count: int, allocate: bool = True
) -> None:
    """Time for ``count`` sequential 32-bit stores to external memory.

    ``allocate=False`` passes through to the dcbz-style streaming-store
    optimisation (cacheable systems only; harmless elsewhere).
    """
    if not _require_count(count, "word-write"):
        return
    if system.ext_mem_cacheable:
        system.cpu.charge_stream_write(address, count * 4, allocate=allocate)
        system.cpu.execute_cycles(count)
    else:
        system.cpu.io_write_batch(address, count)


def charge_repeated_word_reads(
    system: SystemFacade, address: int, total_loads: int, unique_bytes: int
) -> None:
    """Time for ``total_loads`` word loads over a ``unique_bytes`` window.

    Uncached: every load is a full bus transaction.  Cached: the window is
    fetched once (stream) and the loads themselves are pipeline slots.
    Models sliding-window code that revisits the same data (pattern
    matching reads each strip word ~8 times).
    """
    if unique_bytes < 0:
        raise TransferError(f"negative repeated-read window: {unique_bytes}")
    if not _require_count(total_loads, "repeated-read"):
        return
    if system.ext_mem_cacheable:
        system.cpu.charge_stream_read(address, unique_bytes)
        system.cpu.execute_cycles(total_loads)
    else:
        system.cpu.io_read_batch(address, total_loads)


def charge_byte_reads(system: SystemFacade, address: int, count: int) -> None:
    """Time for ``count`` sequential byte loads (lbz) from external memory.

    Uncached, every byte is a full bus transaction — the pattern that
    makes naive byte-wise C so expensive on the 32-bit system.
    """
    if not _require_count(count, "byte-read"):
        return
    if system.ext_mem_cacheable:
        system.cpu.charge_stream_read(address, count)
        system.cpu.execute_cycles(count)
    else:
        system.cpu.io_read_batch(address, count, size=1)


def charge_byte_writes(system: SystemFacade, address: int, count: int) -> None:
    """Time for ``count`` sequential byte stores (stb) to external memory."""
    if not _require_count(count, "byte-write"):
        return
    if system.ext_mem_cacheable:
        system.cpu.charge_stream_write(address, count)
        system.cpu.execute_cycles(count)
    else:
        system.cpu.io_write_batch(address, count, size=1)

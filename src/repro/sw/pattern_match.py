"""Software pattern matching on the PPC405.

The reference C implementation works row-wise: for each window position it
extracts the 8-bit window slice of each of the 8 strip rows (two word loads
when the window straddles a word boundary), XORs it with the pattern row,
inverts, and accumulates a table-driven popcount.  The per-position cost is
therefore ~16 external-memory word loads plus ~100 pipeline cycles — which
is exactly why the 32-bit system, whose external SRAM is accessed uncached
through the PLB-OPB bridge, is so much slower in software than the 64-bit
system with its cacheable DDR (Tables 3 vs 9).
"""

from __future__ import annotations

import numpy as np

from ..cpu.isa import InstructionMix
from ..errors import KernelError
from .costmodel import RunResult, SystemFacade, charge_repeated_word_reads, charge_word_writes

#: Per strip row, per position: window extract (shift/or/mask), xor with the
#: pattern byte, invert, popcount-table lookup (the table lives in on-chip
#: BRAM), accumulate.  The two external word loads are charged separately.
ROW_MIX = InstructionMix(alu=10, load=2, branches=1, taken_fraction=1.0, label="pm-row")
#: Per position: count finalisation, result packing (one store per 4
#: positions), loop bookkeeping.
POSITION_MIX = InstructionMix(alu=8, store=0.25, branches=2, taken_fraction=1.0, label="pm-pos")
#: External-memory word loads per row of one position (unaligned straddle).
LOADS_PER_ROW = 2
#: The reference C re-reads the pattern row (``pat[row]``) from memory on
#: every iteration — one more external load per row of each position.
PATTERN_LOADS_PER_POSITION = 8
#: One-time setup: pattern row registers, table pointer, strip pointers.
SETUP_MIX = InstructionMix(alu=60, load=20, store=10, branches=10, label="pm-setup")


def match_counts(image: np.ndarray, pattern: np.ndarray) -> np.ndarray:
    """Reference result: match counts for every window position.

    Returns an ``(H-7, W-7)`` int array; entry ``(y, x)`` is the number of
    pixels of the 8x8 ``pattern`` equal to ``image[y:y+8, x:x+8]``.
    """
    img = np.asarray(image).astype(bool)
    pat = np.asarray(pattern).astype(bool)
    if pat.shape != (8, 8):
        raise KernelError(f"pattern must be 8x8, got {pat.shape}")
    if img.shape[0] < 8 or img.shape[1] < 8:
        raise KernelError(f"image {img.shape} smaller than the pattern")
    windows = np.lib.stride_tricks.sliding_window_view(img, (8, 8))
    return (windows == pat).sum(axis=(2, 3)).astype(np.int32)


class SwPatternMatch:
    """Software pattern-matching task (compute + PPC405 cost model)."""

    name = "pattern-match/sw"

    def __init__(self, pattern: np.ndarray) -> None:
        self.pattern = np.asarray(pattern).astype(bool)
        if self.pattern.shape != (8, 8):
            raise KernelError(f"pattern must be 8x8, got {self.pattern.shape}")

    def run(self, system: SystemFacade, image: np.ndarray, image_base: int = 0x0010_0000) -> RunResult:
        """Execute on ``system``; returns counts and simulated time."""
        img = np.asarray(image).astype(bool)
        counts = match_counts(img, self.pattern)
        positions = counts.size
        strips = counts.shape[0]
        row_words = (img.shape[1] + 31) // 32

        cpu = system.cpu
        start = cpu.now_ps
        cpu.execute(SETUP_MIX)
        for strip in range(strips):
            per_strip_positions = counts.shape[1]
            cpu.execute(ROW_MIX, 8 * per_strip_positions)
            cpu.execute(POSITION_MIX, per_strip_positions)
            charge_repeated_word_reads(
                system,
                image_base + strip * row_words * 4,
                total_loads=(LOADS_PER_ROW * 8 + PATTERN_LOADS_PER_POSITION) * per_strip_positions,
                unique_bytes=8 * row_words * 4 + 8,
            )
        # Result counts packed four-per-word and written back.
        charge_word_writes(system, image_base + 0x40_0000, (positions + 3) // 4)
        return RunResult(result=counts, elapsed_ps=cpu.now_ps - start, label=self.name)

"""The PLB Dock's output FIFO.

Results produced by the dynamic area are buffered here before a DMA burst
moves them to main memory.  The paper's implementation stores up to
**2047 64-bit values**; block-interleaved transfers run the write channel
until the FIFO fills, then pause while it drains.

Storage is a fixed NumPy ring buffer so whole bursts move as array slice
copies (:meth:`OutputFifo.push_many` / :meth:`OutputFifo.pop_array`); the
scalar :meth:`push` / :meth:`pop` remain as thin wrappers with identical
semantics, including overflow/underflow behaviour.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

import numpy as np

from ..engine.stats import StatsGroup
from ..errors import TransferError

#: Depth of the paper's output FIFO (in 64-bit entries).
PAPER_FIFO_DEPTH = 2047


class OutputFifo:
    """Bounded FIFO of ``width_bits``-wide words (NumPy ring buffer)."""

    def __init__(self, depth: int = PAPER_FIFO_DEPTH, width_bits: int = 64, name: str = "out_fifo") -> None:
        if depth <= 0:
            raise TransferError("FIFO depth must be positive")
        if width_bits not in (32, 64):
            raise TransferError(f"unsupported FIFO width {width_bits}")
        self.depth = depth
        self.width_bits = width_bits
        self.name = name
        self._mask = (1 << width_bits) - 1
        self._np_mask = np.uint64(self._mask)
        self._buf = np.zeros(depth, dtype=np.uint64)
        self._head = 0  # index of the oldest word
        self._count = 0
        self.stats = StatsGroup(name)
        self.overflows = 0

    # -- state -------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def free(self) -> int:
        return self.depth - self._count

    @property
    def full(self) -> bool:
        return self._count >= self.depth

    @property
    def empty(self) -> bool:
        return self._count == 0

    # -- data ----------------------------------------------------------------
    def push(self, value: int) -> None:
        """Append one word; raises on overflow (and counts it — a real
        design would drop data, which is always a bug worth surfacing)."""
        if self.full:
            self.overflows += 1
            raise TransferError(f"{self.name}: overflow at depth {self.depth}")
        tail = self._head + self._count
        if tail >= self.depth:
            tail -= self.depth
        self._buf[tail] = int(value) & self._mask
        self._count += 1
        self.stats.count("pushes")

    def push_many(self, values: Union[Sequence[int], np.ndarray, Iterable[int]]) -> None:
        """Append a block of words as one ring-buffer copy.

        Matches the scalar loop exactly: on overflow the words that fit are
        kept, one overflow is counted, and :class:`TransferError` raises.
        """
        if isinstance(values, np.ndarray):
            arr = values.astype(np.uint64, copy=False)
        else:
            arr = np.fromiter((int(v) & self._mask for v in values), dtype=np.uint64)
        if self.width_bits < 64:
            arr = arr & self._np_mask
        n = int(arr.size)
        if n == 0:
            return
        overflowed = n > self.free
        accepted = min(n, self.free)
        if accepted:
            block = arr[:accepted]
            tail = self._head + self._count
            if tail >= self.depth:
                tail -= self.depth
            first = min(accepted, self.depth - tail)
            self._buf[tail : tail + first] = block[:first]
            if accepted > first:
                self._buf[: accepted - first] = block[first:]
            self._count += accepted
            self.stats.count("pushes", accepted)
        if overflowed:
            self.overflows += 1
            raise TransferError(f"{self.name}: overflow at depth {self.depth}")

    def pop(self) -> int:
        if self._count == 0:
            raise TransferError(f"{self.name}: pop from empty FIFO")
        self.stats.count("pops")
        value = int(self._buf[self._head])
        self._head += 1
        if self._head >= self.depth:
            self._head = 0
        self._count -= 1
        return value

    def pop_array(self, count: int) -> np.ndarray:
        """Remove ``count`` words as one contiguous ``uint64`` array."""
        if count > self._count:
            raise TransferError(
                f"{self.name}: requested {count} words, only {self._count} present"
            )
        if count < 0:
            raise TransferError(f"{self.name}: cannot pop {count} words")
        out = np.empty(count, dtype=np.uint64)
        first = min(count, self.depth - self._head)
        out[:first] = self._buf[self._head : self._head + first]
        if count > first:
            out[first:] = self._buf[: count - first]
        self._head += count
        if self._head >= self.depth:
            self._head -= self.depth
        self._count -= count
        if count:
            self.stats.count("pops", count)
        return out

    def pop_many(self, count: int) -> List[int]:
        return [int(v) for v in self.pop_array(count)]

    def clear(self) -> None:
        self._head = 0
        self._count = 0

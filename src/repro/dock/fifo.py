"""The PLB Dock's output FIFO.

Results produced by the dynamic area are buffered here before a DMA burst
moves them to main memory.  The paper's implementation stores up to
**2047 64-bit values**; block-interleaved transfers run the write channel
until the FIFO fills, then pause while it drains.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List

from ..engine.stats import StatsGroup
from ..errors import TransferError

#: Depth of the paper's output FIFO (in 64-bit entries).
PAPER_FIFO_DEPTH = 2047


class OutputFifo:
    """Bounded FIFO of ``width_bits``-wide words."""

    def __init__(self, depth: int = PAPER_FIFO_DEPTH, width_bits: int = 64, name: str = "out_fifo") -> None:
        if depth <= 0:
            raise TransferError("FIFO depth must be positive")
        if width_bits not in (32, 64):
            raise TransferError(f"unsupported FIFO width {width_bits}")
        self.depth = depth
        self.width_bits = width_bits
        self.name = name
        self._mask = (1 << width_bits) - 1
        self._entries: deque[int] = deque()
        self.stats = StatsGroup(name)
        self.overflows = 0

    # -- state -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def free(self) -> int:
        return self.depth - len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._entries

    # -- data ----------------------------------------------------------------
    def push(self, value: int) -> None:
        """Append one word; raises on overflow (and counts it — a real
        design would drop data, which is always a bug worth surfacing)."""
        if self.full:
            self.overflows += 1
            raise TransferError(f"{self.name}: overflow at depth {self.depth}")
        self._entries.append(int(value) & self._mask)
        self.stats.count("pushes")

    def push_many(self, values: Iterable[int]) -> None:
        for value in values:
            self.push(value)

    def pop(self) -> int:
        if not self._entries:
            raise TransferError(f"{self.name}: pop from empty FIFO")
        self.stats.count("pops")
        return self._entries.popleft()

    def pop_many(self, count: int) -> List[int]:
        if count > len(self._entries):
            raise TransferError(
                f"{self.name}: requested {count} words, only {len(self._entries)} present"
            )
        return [self.pop() for _ in range(count)]

    def clear(self) -> None:
        self._entries.clear()

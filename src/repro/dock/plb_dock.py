"""PLB Dock: the 64-bit system's dynamic-region wrapper.

A PLB **master/slave** peripheral.  Beyond the OPB Dock's address decoding
and data latching it adds the three capabilities the paper lists:

1. a scatter-gather **DMA controller** (:class:`repro.dock.dma.SgDmaEngine`)
   for direct memory <-> dock transfers without CPU intervention;
2. an **output FIFO** (2047 x 64 bit) buffering the dynamic area's results
   for subsequent DMA transfer to memory;
3. an **interrupt generator** so the CPU need not poll transfer status.

Register map (byte offsets inside the dock window):

========  =============================================
0x000+    data window (write channel / read channel)
0x100     STATUS  (bit0 = DMA busy, bit1 = FIFO full)
0x104     FIFO occupancy (words)
0x110     DMA SRC address
0x118     DMA DST address
0x120     DMA LEN (64-bit words)
0x128     DMA CTRL (bit0 write-to-dock, bit1 fifo-to-memory; writing starts)
========  =============================================
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

import numpy as np

from ..bus.bus import Bus
from ..bus.transaction import Op, Transaction
from ..engine.stats import StatsGroup
from ..errors import KernelError, TransferError
from ..fabric.resources import ResourceVector
from ..periph.intc import InterruptController
from .dma import Descriptor, SgDmaEngine
from .fifo import PAPER_FIFO_DEPTH, OutputFifo
from .interface import StreamingKernel, dock_ports

REG_DATA = 0x000
REG_STATUS = 0x100
REG_FIFO_COUNT = 0x104
REG_DMA_SRC = 0x110
REG_DMA_DST = 0x118
REG_DMA_LEN = 0x120
REG_DMA_CTRL = 0x128

STATUS_DMA_BUSY = 0x1
STATUS_FIFO_FULL = 0x2

CTRL_MEM_TO_DOCK = 0x1
CTRL_FIFO_TO_MEM = 0x2

#: Size of the data window (region below the control registers).
DATA_WINDOW = 0x100


class PlbDock:
    """Wrapper module connecting the dynamic region to the PLB."""

    WIDTH_BITS = 64
    WRITE_WAIT = 0
    READ_WAIT = 1
    #: Fabric cost (Table 6 line item): larger than the OPB Dock because of
    #: the DMA controller, FIFO and interrupt generator.
    RESOURCES = ResourceVector(slices=487, bram_blocks=4)

    def __init__(
        self,
        base: int,
        fifo_depth: int = PAPER_FIFO_DEPTH,
        name: str = "plb_dock",
    ) -> None:
        self.base = base
        self.name = name
        self.stats = StatsGroup(name)
        self.kernel: Optional[StreamingKernel] = None
        self.write_latch = 0
        self.fifo = OutputFifo(depth=fifo_depth, width_bits=64, name=f"{name}.fifo")
        self._pio_output: Deque[int] = deque()
        self.dma: Optional[SgDmaEngine] = None
        self.intc: Optional[InterruptController] = None
        self.irq_source = 0
        self.dma_busy_until_ps = 0
        self._dma_src = 0
        self._dma_dst = 0
        self._dma_len = 0

    # -- wiring ----------------------------------------------------------
    def connect_bus(self, plb: Bus) -> None:
        """Give the dock its master port (creates the DMA engine)."""
        self.dma = SgDmaEngine(plb, self, self.base + REG_DATA, name=f"{self.name}.dma")

    def connect_interrupts(self, intc: InterruptController, source: int) -> None:
        self.intc = intc
        self.irq_source = source

    @property
    def ports(self):
        """Dock-side bus-macro ports (for BitLinker validation)."""
        return dock_ports(self.WIDTH_BITS)

    def attach_kernel(self, kernel: StreamingKernel) -> None:
        self.kernel = kernel
        self.fifo.clear()
        self._pio_output.clear()
        kernel.reset()
        self.stats.count("kernels_attached")

    def detach_kernel(self) -> None:
        self.kernel = None
        self.fifo.clear()
        self._pio_output.clear()

    def collect_outputs(self) -> int:
        """Pull spontaneously produced kernel output into the FIFO.

        Models the region-side handshake for source-style kernels; returns
        the number of words collected.
        """
        if self.kernel is None:
            return 0
        words = self.kernel.produce_array() if hasattr(self.kernel, "produce_array") else None
        if words is None:
            scalar_words = self.kernel.produce()
            self.fifo.push_many(scalar_words)
            return len(scalar_words)
        self.fifo.push_many(words)
        return len(words)

    # -- data path ---------------------------------------------------------
    def _deliver(self, value: int, width_bits: int, offset: int = 0) -> None:
        self.write_latch = value & ((1 << width_bits) - 1)
        self.stats.count("words_in")
        if self.kernel is None:
            return
        self.kernel.consume(self.write_latch, width_bits, offset)
        for word in self.kernel.produce():
            self.fifo.push(word)

    def _deliver_block(self, values: np.ndarray, width_bits: int, offset: int = 0) -> None:
        """Vectorized :meth:`_deliver`: one kernel call, one FIFO append.

        Produces the same dock/kernel/FIFO state and aggregate statistics
        as delivering the words one at a time.
        """
        n = len(values)
        if n == 0:
            return
        masked = values.astype(np.uint64, copy=False)
        if width_bits < 64:
            masked = masked & np.uint64((1 << width_bits) - 1)
        self.write_latch = int(masked[-1])
        self.stats.count("words_in", n)
        if self.kernel is None:
            return
        produced = self.kernel.consume_block(masked, width_bits, offset)
        if len(produced):
            self.fifo.push_many(produced)

    def _fetch(self, offset: int) -> int:
        self.stats.count("words_out")
        if not self.fifo.empty:
            return self.fifo.pop()
        if self._pio_output:
            return self._pio_output.popleft()
        if self.kernel is not None:
            return self.kernel.read_register(offset)
        return 0xDEADC0DE

    def _fetch_block(self, count: int, width_bits: int) -> np.ndarray:
        """Vectorized :meth:`_fetch` for the case the FIFO covers the whole
        burst (the caller checks); one ring-buffer copy."""
        self.stats.count("words_out", count)
        values = self.fifo.pop_array(count)
        if width_bits < 64:
            values = values & np.uint64((1 << width_bits) - 1)
        return values

    # -- batch-compiler functional layer ----------------------------------
    # Bulk replays of the `_deliver`/`_fetch` data paths that charge no
    # dock statistics and no time: the steady-state compiler
    # (`repro.engine.batch`) extrapolates those from its probes.  FIFO
    # statistics ARE charged (push_many/pop_array) — they belong to the
    # functional layer in both paths.

    def feed_words(self, values, width_bits: Optional[int] = None, offset: int = 0) -> None:
        """Bulk ``_deliver`` data path: latch, consume, FIFO append."""
        width = self.WIDTH_BITS if width_bits is None else width_bits
        masked = np.asarray(values).astype(np.uint64, copy=False)
        if len(masked) == 0:
            return
        if width < 64:
            masked = masked & np.uint64((1 << width) - 1)
        self.write_latch = int(masked[-1])
        if self.kernel is None:
            return
        produced = self.kernel.consume_block(masked, width, offset)
        if len(produced):
            self.fifo.push_many(produced)

    def drain_words(self, count: int, width_bits: Optional[int] = None, offset: int = 0) -> list:
        """Bulk ``_fetch`` data path: FIFO, then PIO output, then registers."""
        width = self.WIDTH_BITS if width_bits is None else width_bits
        mask = (1 << width) - 1
        out: list = []
        take = min(count, len(self.fifo))
        if take:
            out.extend(int(v) & mask for v in self.fifo.pop_array(take))
        for _ in range(count - take):
            if self._pio_output:
                out.append(self._pio_output.popleft() & mask)
            elif self.kernel is not None:
                out.append(self.kernel.read_register(offset) & mask)
            else:
                out.append(0xDEADC0DE & mask)
        return out

    # -- bus slave -----------------------------------------------------------
    def access(self, txn: Transaction, when_ps: int) -> Tuple[int, Any]:
        offset = txn.address - self.base
        if offset < DATA_WINDOW:
            return self._data_access(txn, offset)
        return self._register_access(txn, offset, when_ps)

    def _data_access(self, txn: Transaction, offset: int) -> Tuple[int, Any]:
        width = txn.size_bytes * 8
        if width > self.WIDTH_BITS:
            raise KernelError(f"{self.name}: beat wider than the dock channel")
        if txn.op is Op.WRITE:
            payload = txn.data if isinstance(txn.data, (list, tuple, np.ndarray)) else [txn.data]
            for value in payload:
                self._deliver(int(value) if value is not None else 0, width, offset)
            return self.WRITE_WAIT * txn.beats, None
        mask = (1 << width) - 1
        values = [self._fetch(offset) & mask for _ in range(txn.beats)]
        return self.READ_WAIT * txn.beats, values[0] if txn.beats == 1 else values

    def access_burst(
        self,
        op: Op,
        address: int,
        size_bytes: int,
        beats: int,
        chunk_beats: int,
        data: Any,
        when_ps: int,
    ) -> Optional[Tuple[int, int, Any]]:
        """Block variant of the data-window access for the burst fast path.

        Returns ``(wait_full_chunk, wait_tail_chunk, values)`` or ``None``
        when this burst cannot be served as one block (register window, or
        a read that would fall through to PIO-output/register sources —
        the per-beat reference path handles those).
        """
        offset = address - self.base
        if offset >= DATA_WINDOW:
            return None
        width = size_bytes * 8
        if width > self.WIDTH_BITS:
            raise KernelError(f"{self.name}: beat wider than the dock channel")
        tail = beats % chunk_beats
        if op is Op.WRITE:
            if data is None:
                block = np.zeros(beats, dtype=np.uint64)
            else:
                block = np.asarray(data).astype(np.uint64, copy=False)
            self._deliver_block(block[:beats], width, offset)
            return self.WRITE_WAIT * chunk_beats, self.WRITE_WAIT * tail, None
        if len(self.fifo) < beats:
            return None
        values = self._fetch_block(beats, width)
        return self.READ_WAIT * chunk_beats, self.READ_WAIT * tail, values

    def _register_access(self, txn: Transaction, offset: int, when_ps: int) -> Tuple[int, Any]:
        if txn.op is Op.WRITE:
            payload = txn.data if isinstance(txn.data, (list, tuple)) else [txn.data]
            value = int(payload[-1])
            if offset == REG_DMA_SRC:
                self._dma_src = value
            elif offset == REG_DMA_DST:
                self._dma_dst = value
            elif offset == REG_DMA_LEN:
                self._dma_len = value
            elif offset == REG_DMA_CTRL:
                self._start_dma(value, when_ps)
            else:
                raise TransferError(f"{self.name}: write to unknown register {offset:#x}")
            return self.WRITE_WAIT, None
        if offset == REG_STATUS:
            status = 0
            if when_ps < self.dma_busy_until_ps:
                status |= STATUS_DMA_BUSY
            if self.fifo.full:
                status |= STATUS_FIFO_FULL
            return self.READ_WAIT, status
        if offset == REG_FIFO_COUNT:
            return self.READ_WAIT, len(self.fifo)
        raise TransferError(f"{self.name}: read from unknown register {offset:#x}")

    # -- DMA control ----------------------------------------------------------
    def _start_dma(self, ctrl: int, when_ps: int) -> None:
        if self.dma is None:
            raise TransferError(f"{self.name}: DMA engine not connected to a bus")
        if self._dma_len <= 0:
            raise TransferError(f"{self.name}: DMA started with LEN=0")
        start = max(when_ps, self.dma_busy_until_ps)
        if ctrl & CTRL_MEM_TO_DOCK:
            descriptor = Descriptor(src=self._dma_src, dst=None, word_count=self._dma_len)
        elif ctrl & CTRL_FIFO_TO_MEM:
            descriptor = Descriptor(src=None, dst=self._dma_dst, word_count=self._dma_len)
        else:
            raise TransferError(f"{self.name}: DMA CTRL {ctrl:#x} selects no direction")
        done = self.dma.run_chain(start, [descriptor])
        self.dma_busy_until_ps = done
        self.stats.count("dma_runs")
        if self.intc is not None:
            self.intc.raise_irq(self.irq_source, done)

    # -- convenience for the transfer methods -----------------------------------
    def dma_write_block(self, when_ps: int, src: int, word_count: int) -> int:
        """Memory -> dock, ``word_count`` 64-bit words.  Returns done time."""
        if self.dma is None:
            raise TransferError(f"{self.name}: DMA engine not connected")
        done = self.dma.run_chain(when_ps, [Descriptor(src=src, dst=None, word_count=word_count)])
        self.dma_busy_until_ps = done
        if self.intc is not None:
            self.intc.raise_irq(self.irq_source, done)
        return done

    def dma_drain_fifo(self, when_ps: int, dst: int, word_count: Optional[int] = None) -> Tuple[int, int]:
        """Dock FIFO -> memory.  Returns (done time, words drained)."""
        if self.dma is None:
            raise TransferError(f"{self.name}: DMA engine not connected")
        count = len(self.fifo) if word_count is None else word_count
        if count == 0:
            return when_ps, 0
        done = self.dma.run_chain(when_ps, [Descriptor(src=None, dst=dst, word_count=count)])
        self.dma_busy_until_ps = done
        if self.intc is not None:
            self.intc.raise_irq(self.irq_source, done)
        return done, count

"""Scatter-gather DMA engine of the PLB Dock.

Moves blocks between main memory and the dock without CPU intervention,
using full-width 64-bit PLB bursts — the only way either system can
actually exploit the 64-bit data path, since the CPU's load/store
instructions top out at 32 bits.

The engine is store-and-forward: each chunk is one burst read into the
engine's buffer and one burst write out of it, so a memory-to-dock word
costs two bus tenures (amortised over up to 16-beat bursts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

from ..bus.arbiter import DMA_ENGINE
from ..bus.bus import Bus
from ..bus.transaction import Op, Transaction
from ..engine.events import Process, Simulator
from ..engine.stats import StatsGroup
from ..errors import InvariantError, TransferError


@dataclass(frozen=True)
class Descriptor:
    """One scatter-gather element.

    ``src`` / ``dst`` are byte addresses; ``None`` designates the dock
    (write channel as destination, output FIFO as source).
    """

    src: Optional[int]
    dst: Optional[int]
    word_count: int
    size_bytes: int = 8

    def __post_init__(self) -> None:
        if self.word_count <= 0:
            raise TransferError("descriptor must move at least one word")
        if self.src is None and self.dst is None:
            raise TransferError("descriptor cannot be dock-to-dock")
        if self.src is not None and self.dst is not None and self.src == self.dst:
            raise TransferError("descriptor source and destination coincide")


class SgDmaEngine:
    """Burst-mover attached to one bus and one dock."""

    #: Engine cycles to fetch/decode one descriptor.
    DESCRIPTOR_FETCH_CYCLES = 4

    def __init__(self, bus: Bus, dock: "object", dock_base: int, name: str = "sgdma") -> None:
        self.bus = bus
        self.dock = dock
        self.dock_base = dock_base
        self.name = name
        self.stats = StatsGroup(name)
        #: Armed :class:`~repro.faults.plan.FaultPlan`, or None (no cost).
        self.fault_plan = None

    def _check_descriptor_fault(self) -> None:
        plan = self.fault_plan
        if plan is not None and plan.take_dma_fault(self.name):
            self.stats.count("descriptor_faults")
            raise TransferError(f"{self.name}: injected transfer error on descriptor")

    def _chunk(self) -> int:
        return self.bus.max_burst_beats

    def _fast_ok(self) -> bool:
        """Use the closed-form burst path?  Never when a trace hook is
        installed (only the per-chunk path emits trace events) or the fast
        path is globally disabled."""
        return self.bus.fast_path_active()

    def run_chain(self, when_ps: int, descriptors: Sequence[Descriptor]) -> int:
        """Execute a descriptor chain starting at ``when_ps``.

        Returns the completion time.  Data moves for real: memory reads
        feed the dock's write channel (and thus the kernel); FIFO drains
        land in memory.
        """
        cursor = when_ps
        for descriptor in descriptors:
            self._check_descriptor_fault()
            cursor += self.bus.clock.cycles_to_ps(self.DESCRIPTOR_FETCH_CYCLES)
            if descriptor.dst is None:
                cursor = self._memory_to_dock(cursor, descriptor)
            elif descriptor.src is None:
                cursor = self._fifo_to_memory(cursor, descriptor)
            else:
                cursor = self._memory_to_memory(cursor, descriptor)
            self.stats.count("descriptors")
        return cursor

    def run_chain_process(
        self, sim: Simulator, when_ps: int, descriptors: Sequence[Descriptor]
    ) -> Process:
        """Event-driven variant of :meth:`run_chain`.

        Returns a :class:`Process` that completes (with the finish time as
        its value) when the chain is done.  Chunk boundaries become real
        simulation events, so other processes — notably a CPU model doing
        useful work, "since the CPU is free during DMA transfers" — can
        interleave with the transfer in simulated time.
        """

        def _runner() -> Generator[int, None, int]:
            cursor = max(when_ps, sim.now)
            for descriptor in descriptors:
                self._check_descriptor_fault()
                cursor += self.bus.clock.cycles_to_ps(self.DESCRIPTOR_FETCH_CYCLES)
                remaining = descriptor.word_count
                address_src = descriptor.src
                address_dst = descriptor.dst
                while remaining:
                    chunk = min(remaining, self._chunk())
                    before = cursor
                    one = Descriptor(
                        src=address_src,
                        dst=address_dst,
                        word_count=chunk,
                        size_bytes=descriptor.size_bytes,
                    )
                    if one.dst is None:
                        cursor = self._memory_to_dock(cursor, one)
                        address_src += chunk * descriptor.size_bytes
                    elif one.src is None:
                        cursor = self._fifo_to_memory(cursor, one)
                        address_dst += chunk * descriptor.size_bytes
                    else:
                        cursor = self._memory_to_memory(cursor, one)
                        address_src += chunk * descriptor.size_bytes
                        address_dst += chunk * descriptor.size_bytes
                    remaining -= chunk
                    # Yield until the chunk's bus activity completes, making
                    # the chunk boundary visible to concurrent processes.
                    if cursor > sim.now:
                        yield cursor - sim.now
                self.stats.count("descriptors")
            return cursor

        return sim.process(_runner(), name=f"{self.name}.chain")

    # -- movement primitives ------------------------------------------------
    #
    # Each primitive has two implementations producing identical simulated
    # timestamps, data movement and aggregate statistics: the per-chunk
    # reference loop (ground truth, emits trace events) and a vectorized
    # variant moving the whole descriptor as NumPy blocks through
    # ``Bus.request_burst``.  The bus serialises this engine's tenures, so
    # the read->write interleaving of the reference loop and the
    # read-all-then-write-all order of the block variant sum to the same
    # completion time (every sub-tenure starts exactly when the previous
    # one ends, on a clock edge).

    def _memory_to_dock(self, cursor: int, d: Descriptor) -> int:
        if self._fast_ok():
            read = self.bus.request_burst(
                cursor, Op.READ, d.src, d.size_bytes, d.word_count, master=DMA_ENGINE
            )
            write = self.bus.request_burst(
                read.done_ps,
                Op.WRITE,
                self.dock_base,
                d.size_bytes,
                d.word_count,
                data=read.value,
                master=DMA_ENGINE,
                fixed_address=True,
            )
            self.stats.count("words_to_dock", d.word_count)
            return write.done_ps
        remaining = d.word_count
        address = d.src
        if address is None:
            raise InvariantError(f"{self.name}: memory-to-dock descriptor without a source")
        while remaining:
            chunk = min(remaining, self._chunk())
            read = self.bus.request(
                cursor,
                Transaction(op=Op.READ, address=address, size_bytes=d.size_bytes, beats=chunk),
                master=DMA_ENGINE,
            )
            values = read.value if isinstance(read.value, list) else [read.value]
            write = self.bus.request(
                read.done_ps,
                Transaction(
                    op=Op.WRITE,
                    address=self.dock_base,
                    size_bytes=d.size_bytes,
                    beats=chunk,
                    data=values,
                ),
                master=DMA_ENGINE,
            )
            cursor = write.done_ps
            address += chunk * d.size_bytes
            remaining -= chunk
            self.stats.count("words_to_dock", chunk)
        return cursor

    def _fifo_to_memory(self, cursor: int, d: Descriptor) -> int:
        if self._fast_ok():
            read = self.bus.request_burst(
                cursor,
                Op.READ,
                self.dock_base,
                d.size_bytes,
                d.word_count,
                master=DMA_ENGINE,
                fixed_address=True,
            )
            write = self.bus.request_burst(
                read.done_ps,
                Op.WRITE,
                d.dst,
                d.size_bytes,
                d.word_count,
                data=read.value,
                master=DMA_ENGINE,
            )
            self.stats.count("words_from_fifo", d.word_count)
            return write.done_ps
        remaining = d.word_count
        address = d.dst
        if address is None:
            raise InvariantError(f"{self.name}: fifo-to-memory descriptor without a destination")
        while remaining:
            chunk = min(remaining, self._chunk())
            read = self.bus.request(
                cursor,
                Transaction(op=Op.READ, address=self.dock_base, size_bytes=d.size_bytes, beats=chunk),
                master=DMA_ENGINE,
            )
            values = read.value if isinstance(read.value, list) else [read.value]
            write = self.bus.request(
                read.done_ps,
                Transaction(op=Op.WRITE, address=address, size_bytes=d.size_bytes, beats=chunk, data=values),
                master=DMA_ENGINE,
            )
            cursor = write.done_ps
            address += chunk * d.size_bytes
            remaining -= chunk
            self.stats.count("words_from_fifo", chunk)
        return cursor

    def _memory_to_memory(self, cursor: int, d: Descriptor) -> int:
        if self._fast_ok():
            read = self.bus.request_burst(
                cursor, Op.READ, d.src, d.size_bytes, d.word_count, master=DMA_ENGINE
            )
            write = self.bus.request_burst(
                read.done_ps,
                Op.WRITE,
                d.dst,
                d.size_bytes,
                d.word_count,
                data=read.value,
                master=DMA_ENGINE,
            )
            self.stats.count("words_copied", d.word_count)
            return write.done_ps
        remaining = d.word_count
        src, dst = d.src, d.dst
        if src is None or dst is None:
            raise InvariantError(f"{self.name}: memory-to-memory descriptor missing an address")
        while remaining:
            chunk = min(remaining, self._chunk())
            read = self.bus.request(
                cursor,
                Transaction(op=Op.READ, address=src, size_bytes=d.size_bytes, beats=chunk),
                master=DMA_ENGINE,
            )
            values = read.value if isinstance(read.value, list) else [read.value]
            write = self.bus.request(
                read.done_ps,
                Transaction(op=Op.WRITE, address=dst, size_bytes=d.size_bytes, beats=chunk, data=values),
                master=DMA_ENGINE,
            )
            cursor = write.done_ps
            src += chunk * d.size_bytes
            dst += chunk * d.size_bytes
            remaining -= chunk
            self.stats.count("words_copied", chunk)
        return cursor

"""Dock wrappers connecting the dynamic region to the bus system."""

from .dma import Descriptor, SgDmaEngine
from .fifo import PAPER_FIFO_DEPTH, OutputFifo
from .interface import StreamingKernel, dock_ports, kernel_ports
from .opb_dock import EMPTY_READ_VALUE, OpbDock
from .plb_dock import (
    CTRL_FIFO_TO_MEM,
    CTRL_MEM_TO_DOCK,
    REG_DATA,
    REG_DMA_CTRL,
    REG_DMA_DST,
    REG_DMA_LEN,
    REG_DMA_SRC,
    REG_FIFO_COUNT,
    REG_STATUS,
    STATUS_DMA_BUSY,
    STATUS_FIFO_FULL,
    PlbDock,
)

__all__ = [
    "CTRL_FIFO_TO_MEM",
    "CTRL_MEM_TO_DOCK",
    "Descriptor",
    "EMPTY_READ_VALUE",
    "OpbDock",
    "OutputFifo",
    "PAPER_FIFO_DEPTH",
    "PlbDock",
    "REG_DATA",
    "REG_DMA_CTRL",
    "REG_DMA_DST",
    "REG_DMA_LEN",
    "REG_DMA_SRC",
    "REG_FIFO_COUNT",
    "REG_STATUS",
    "STATUS_DMA_BUSY",
    "STATUS_FIFO_FULL",
    "SgDmaEngine",
    "StreamingKernel",
    "dock_ports",
    "kernel_ports",
]

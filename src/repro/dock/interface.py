"""The dock <-> dynamic-region connection interface.

Both docks talk to the dynamic region through two unidirectional channels
(write and read), each as wide as the dock's bus, plus a write-strobe
signal that modules in the region can use as a clock enable — implemented
physically with the LUT-based bus macros of
:mod:`repro.bitstream.busmacro`.

This module defines the dock-side port set (for BitLinker validation) and
the :class:`StreamingKernel` protocol every hardware-kernel model
implements so a dock can drive it.
"""

from __future__ import annotations

from typing import List, Protocol, Tuple, runtime_checkable

from ..bitstream.busmacro import Direction, Port, Side, standard_data_macros


def dock_ports(bus_width: int) -> Tuple[Port, ...]:
    """Ports the dock exposes at the dynamic region's left edge.

    The dock sits in the static area to the region's left, so its ports
    face RIGHT; directions are from the dock's point of view (it *drives*
    the write channel and the control strobe, and *receives* the read
    channel).
    """
    write, read, ctrl = standard_data_macros(bus_width)
    return (
        Port(macro=write, side=Side.RIGHT, direction=Direction.OUT),
        Port(macro=read, side=Side.RIGHT, direction=Direction.IN),
        Port(macro=ctrl, side=Side.RIGHT, direction=Direction.OUT),
    )


def kernel_ports(bus_width: int) -> Tuple[Port, ...]:
    """The matching component-side ports (left edge of the component)."""
    write, read, ctrl = standard_data_macros(bus_width)
    return (
        Port(macro=write, side=Side.LEFT, direction=Direction.IN),
        Port(macro=read, side=Side.LEFT, direction=Direction.OUT),
        Port(macro=ctrl, side=Side.LEFT, direction=Direction.IN),
    )


@runtime_checkable
class StreamingKernel(Protocol):
    """Functional model of a module loaded into the dynamic region.

    The dock delivers each bus write via :meth:`consume` (the write-strobe
    clock-enable pattern from the paper), then collects any completed
    output words via :meth:`produce`.  Register-style results (hash
    digests, status words) are fetched with :meth:`read_register`.
    """

    #: Human-readable kernel name.
    name: str

    def reset(self) -> None:
        """Return to the post-configuration state."""
        ...

    def consume(self, value: int, width_bits: int, offset: int = 0) -> None:
        """One write-channel word arrives (width = dock bus width).

        ``offset`` is the byte offset within the dock's data window, letting
        kernels expose control registers next to the data port.
        """
        ...

    def produce(self) -> List[int]:
        """Drain output words completed since the last call."""
        ...

    def read_register(self, offset: int) -> int:
        """Read a result/status register (byte offset within the window)."""
        ...

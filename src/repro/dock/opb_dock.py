"""OPB Dock: the 32-bit system's dynamic-region wrapper.

An OPB slave owning a fixed address window.  It decodes addresses, stores
incoming data (so it stays available to the region between writes), pulses
the write-strobe clock-enable into the region, and returns region outputs
on reads — all through the two 32-bit unidirectional channels of the
connection interface.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

import numpy as np

from ..bus.transaction import Op, Transaction
from ..engine.stats import StatsGroup
from ..errors import KernelError
from ..fabric.resources import ResourceVector
from .interface import StreamingKernel, dock_ports

#: Value returned when reading with no kernel configured (floating bus).
EMPTY_READ_VALUE = 0xDEADC0DE


class OpbDock:
    """Wrapper module connecting the dynamic region to the OPB."""

    WIDTH_BITS = 32
    #: Slave wait states: writes latch immediately, reads are registered in
    #: the wrapper and muxed through the connection interface.
    WRITE_WAIT = 0
    READ_WAIT = 3
    #: Fabric cost (Table 1 line item).
    RESOURCES = ResourceVector(slices=143)

    def __init__(self, base: int, name: str = "opb_dock") -> None:
        self.base = base
        self.name = name
        self.stats = StatsGroup(name)
        self.kernel: Optional[StreamingKernel] = None
        #: Last word written, held for the region between write strobes.
        self.write_latch = 0
        #: Output words produced by the kernel awaiting PIO reads.
        self._output: Deque[int] = deque()

    # -- region management ------------------------------------------------
    @property
    def ports(self):
        """Dock-side bus-macro ports (for BitLinker validation)."""
        return dock_ports(self.WIDTH_BITS)

    def attach_kernel(self, kernel: StreamingKernel) -> None:
        """Connect the module just configured into the region."""
        self.kernel = kernel
        self._output.clear()
        kernel.reset()
        self.stats.count("kernels_attached")

    def detach_kernel(self) -> None:
        self.kernel = None
        self._output.clear()

    @property
    def pending_outputs(self) -> int:
        return len(self._output)

    def collect_outputs(self) -> int:
        """Pull any spontaneously produced kernel output into the read path.

        Models the region-side handshake for source-style kernels that emit
        data without a preceding write strobe; returns words collected.
        """
        if self.kernel is None:
            return 0
        words = self.kernel.produce()
        for word in words:
            self._output.append(word & 0xFFFFFFFF)
        return len(words)

    # -- bus slave ------------------------------------------------------------
    def access(self, txn: Transaction, when_ps: int) -> Tuple[int, Any]:
        if txn.size_bytes * 8 > self.WIDTH_BITS:
            raise KernelError(f"{self.name}: {txn.size_bytes * 8}-bit beat on a 32-bit dock")
        offset = txn.address - self.base
        if txn.op is Op.WRITE:
            payload = txn.data if isinstance(txn.data, (list, tuple, np.ndarray)) else [txn.data]
            for value in payload:
                self._write_word(offset, int(value) if value is not None else 0)
            return self.WRITE_WAIT * txn.beats, None
        values = [self._read_word(offset) for _ in range(txn.beats)]
        return self.READ_WAIT * txn.beats, values[0] if txn.beats == 1 else values

    def _write_word(self, offset: int, value: int) -> None:
        self.write_latch = value & 0xFFFFFFFF
        self.stats.count("words_in")
        if self.kernel is None:
            return
        self.kernel.consume(self.write_latch, self.WIDTH_BITS, offset)
        for word in self.kernel.produce():
            self._output.append(word & 0xFFFFFFFF)

    def _read_word(self, offset: int) -> int:
        self.stats.count("words_out")
        if self._output:
            return self._output.popleft()
        if self.kernel is not None:
            return self.kernel.read_register(offset) & 0xFFFFFFFF
        return EMPTY_READ_VALUE

    # -- batch-compiler functional layer ----------------------------------
    # These replay the data path of `_write_word`/`_read_word` for a whole
    # block WITHOUT touching statistics or time: the steady-state compiler
    # (`repro.engine.batch`) extrapolates those from its probe iterations,
    # so charging here would double-count.

    def feed_words(self, values, width_bits: Optional[int] = None, offset: int = 0) -> None:
        """Bulk ``_write_word`` data path: latch, consume, collect output.

        ``width_bits`` is accepted for signature parity with the PLB dock;
        this dock's channel is always 32 bits wide.
        """
        values = np.asarray(values, dtype=np.uint64)
        if values.size == 0:
            return
        masked = values & np.uint64(0xFFFFFFFF)
        self.write_latch = int(masked[-1])
        if self.kernel is None:
            return
        produced = self.kernel.consume_block(masked, self.WIDTH_BITS, offset)
        if produced is not None and len(produced):
            self._output.extend(int(word) & 0xFFFFFFFF for word in produced)

    def drain_words(self, count: int, width_bits: Optional[int] = None, offset: int = 0) -> list:
        """Bulk ``_read_word`` data path: pending output, then registers."""
        out = []
        output = self._output
        kernel = self.kernel
        for _ in range(count):
            if output:
                out.append(output.popleft())
            elif kernel is not None:
                out.append(kernel.read_register(offset) & 0xFFFFFFFF)
            else:
                out.append(EMPTY_READ_VALUE)
        return out

"""The device's configuration memory.

Holds the current contents of every configuration frame.  The ICAP
controller writes frames here; :class:`ConfigMemory` also supports
snapshot/diff, which is how *differential* partial bitstreams are derived
and how tests verify that reconfiguring the dynamic area leaves static
frames untouched.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

import numpy as np

from ..errors import BitstreamError
from .device import DeviceSpec
from .frames import FrameAddress, FrameGeometry


class ConfigMemory:
    """Frame-addressed configuration store for one device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device
        self.geometry = FrameGeometry(device)
        self._frames: Dict[FrameAddress, np.ndarray] = {}
        #: number of frame-write operations performed (ICAP statistics)
        self.writes = 0
        self.reads = 0

    # -- frame access ----------------------------------------------------
    def read_frame(self, address: FrameAddress) -> np.ndarray:
        """Current contents of a frame (zeros if never written).

        A *copy* is returned; mutating it does not change the memory.
        """
        self.reads += 1
        frame = self._frames.get(address)
        if frame is None:
            return self.geometry.empty_frame()
        return frame.copy()

    def write_frame(self, address: FrameAddress, data: np.ndarray) -> None:
        """Replace a frame's contents."""
        data = np.asarray(data, dtype=np.uint32)
        if data.shape != (self.geometry.words_per_frame,):
            raise BitstreamError(
                f"frame data for {address} has {data.shape} words; "
                f"expected ({self.geometry.words_per_frame},)"
            )
        self.writes += 1
        self._frames[address] = data.copy()

    def merge_frame(self, address: FrameAddress, data: np.ndarray, mask: np.ndarray) -> None:
        """Write only the bits selected by ``mask``, keeping the rest.

        This is the read-modify-write a height-limited dynamic region
        requires: ``mask`` selects the region's rows within the frame.
        """
        data = np.asarray(data, dtype=np.uint32)
        mask = np.asarray(mask, dtype=np.uint32)
        current = self.read_frame(address)
        merged = (current & ~mask) | (data & mask)
        self.write_frame(address, merged)

    # -- bulk helpers ----------------------------------------------------
    def frames_equal(self, address: FrameAddress, other: "ConfigMemory") -> bool:
        """True when both memories hold identical data for ``address``."""
        return bool(np.array_equal(self.read_frame(address), other.read_frame(address)))

    def snapshot(self) -> Mapping[FrameAddress, np.ndarray]:
        """Immutable-ish copy of all written frames."""
        return {addr: frame.copy() for addr, frame in self._frames.items()}

    def restore(self, snapshot: Mapping[FrameAddress, np.ndarray]) -> None:
        """Reset the memory to a previous :meth:`snapshot`."""
        self._frames = {addr: np.array(frame, dtype=np.uint32) for addr, frame in snapshot.items()}

    def diff(
        self, baseline: Mapping[FrameAddress, np.ndarray]
    ) -> Iterator[Tuple[FrameAddress, np.ndarray]]:
        """Yield (address, data) for frames that differ from ``baseline``.

        This is the content of a *differential* partial bitstream relative
        to the baseline configuration.
        """
        empty = self.geometry.empty_frame()
        addresses = set(self._frames) | set(baseline)
        for address in sorted(addresses):
            mine = self._frames.get(address, empty)
            theirs = baseline.get(address, empty)
            if not np.array_equal(mine, theirs):
                yield address, mine.copy()

    def written_addresses(self) -> Iterable[FrameAddress]:
        """Addresses of frames that have been written at least once."""
        return sorted(self._frames)

    def __len__(self) -> int:
        return len(self._frames)

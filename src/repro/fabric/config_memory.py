"""The device's configuration memory.

Holds the current contents of every configuration frame.  The ICAP
controller writes frames here; :class:`ConfigMemory` also supports
snapshot/diff, which is how *differential* partial bitstreams are derived
and how tests verify that reconfiguring the dynamic area leaves static
frames untouched.

Storage is one contiguous ``(total_frames, words_per_frame)`` uint32 array
plus a written-mask, with :class:`~repro.fabric.frames.FrameGeometry`
providing the FAR-order address-to-row mapping.  ``snapshot``/``restore``
are single array copies and ``diff`` is a vectorized row comparison, which
is what makes repeated reconfiguration cycles cheap at XC2VP30 scale.  The
historical dict-facing API is preserved: :meth:`snapshot` returns a
:class:`ConfigSnapshot`, a read-only mapping of ``FrameAddress -> frame``
that only exposes written frames, exactly like the dict it replaces.
Addresses outside the device's frame catalogue (e.g. synthetic test
addresses) fall back to a small dict side-store.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import BitstreamError
from .device import DeviceSpec
from .frames import FrameAddress, FrameGeometry


class ConfigSnapshot(MappingABC):
    """Immutable-ish array-backed copy of a :class:`ConfigMemory`.

    Behaves like the ``{address: frame}`` dict older code expects (only
    *written* frames are members), while bulk consumers (BitLinker, diff,
    restore) use the underlying arrays directly.
    """

    __slots__ = ("geometry", "_data", "_written", "_extra")

    def __init__(
        self,
        geometry: FrameGeometry,
        data: np.ndarray,
        written: np.ndarray,
        extra: Dict[FrameAddress, np.ndarray],
    ) -> None:
        self.geometry = geometry
        self._data = data
        self._written = written
        self._extra = extra

    def __getitem__(self, address: FrameAddress) -> np.ndarray:
        row = self.geometry.frame_index(address)
        if row is None:
            if address in self._extra:
                return self._extra[address].copy()
            raise KeyError(address)
        if not self._written[row]:
            raise KeyError(address)
        return self._data[row].copy()

    def __iter__(self) -> Iterator[FrameAddress]:
        order = self.geometry.frame_order()
        for row in np.flatnonzero(self._written):
            yield order[row]
        yield from self._extra

    def __len__(self) -> int:
        return int(self._written.sum()) + len(self._extra)

    # -- bulk access (fast paths) ----------------------------------------
    def rows_for(self, addresses: Sequence[FrameAddress]) -> np.ndarray:
        """Stacked ``(len(addresses), words_per_frame)`` copy of frames.

        Unwritten frames come back as zeros, matching ``get(addr, empty)``
        over the mapping interface.
        """
        rows = self.geometry.frame_rows(addresses)
        return self._data[rows]


class ConfigMemory:
    """Frame-addressed configuration store for one device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device
        self.geometry = FrameGeometry(device)
        shape = (device.total_frames, self.geometry.words_per_frame)
        self._data = np.zeros(shape, dtype=np.uint32)
        self._written = np.zeros(device.total_frames, dtype=bool)
        #: Frames addressed outside the device catalogue (rare; tests).
        self._extra: Dict[FrameAddress, np.ndarray] = {}
        #: number of frame-write operations performed (ICAP statistics)
        self.writes = 0
        self.reads = 0

    # -- frame access ----------------------------------------------------
    def read_frame(self, address: FrameAddress) -> np.ndarray:
        """Current contents of a frame (zeros if never written).

        A *copy* is returned; mutating it does not change the memory.
        """
        self.reads += 1
        row = self.geometry.frame_index(address)
        if row is None:
            frame = self._extra.get(address)
            if frame is None:
                return self.geometry.empty_frame()
            return frame.copy()
        return self._data[row].copy()

    def write_frame(self, address: FrameAddress, data: np.ndarray) -> None:
        """Replace a frame's contents."""
        data = np.asarray(data, dtype=np.uint32)
        if data.shape != (self.geometry.words_per_frame,):
            raise BitstreamError(
                f"frame data for {address} has {data.shape} words; "
                f"expected ({self.geometry.words_per_frame},)"
            )
        self.writes += 1
        row = self.geometry.frame_index(address)
        if row is None:
            self._extra[address] = data.copy()
        else:
            self._data[row] = data
            self._written[row] = True

    def write_frames(self, frames: Sequence[Tuple[FrameAddress, np.ndarray]]) -> None:
        """Bulk frame write: one fancy-indexed assignment for the lot.

        Equivalent to calling :meth:`write_frame` per entry (last write to
        a repeated address wins, counters advance by ``len(frames)``), but
        O(frames) numpy work instead of O(frames) Python round-trips.
        Falls back to the scalar path when any address is uncatalogued.
        """
        if not frames:
            return
        expected = self.geometry.words_per_frame
        for address, data in frames:
            if len(data) != expected:
                raise BitstreamError(
                    f"frame data for {address} has ({len(data)},) words; "
                    f"expected ({expected},)"
                )
        try:
            rows = self.geometry.frame_rows([address for address, _ in frames])
        except BitstreamError:
            for address, data in frames:
                self.write_frame(address, data)
            return
        block = np.stack([np.asarray(data, dtype=np.uint32) for _, data in frames])
        self._data[rows] = block
        self._written[rows] = True
        self.writes += len(frames)

    def merge_frame(self, address: FrameAddress, data: np.ndarray, mask: np.ndarray) -> None:
        """Write only the bits selected by ``mask``, keeping the rest.

        This is the read-modify-write a height-limited dynamic region
        requires: ``mask`` selects the region's rows within the frame.
        """
        data = np.asarray(data, dtype=np.uint32)
        mask = np.asarray(mask, dtype=np.uint32)
        current = self.read_frame(address)
        merged = (current & ~mask) | (data & mask)
        self.write_frame(address, merged)

    # -- bulk helpers ----------------------------------------------------
    def rows_for(self, addresses: Sequence[FrameAddress]) -> np.ndarray:
        """Stacked copy of ``addresses``' frames (zeros when unwritten).

        Counts one read per frame, mirroring a :meth:`read_frame` loop.
        """
        rows = self.geometry.frame_rows(addresses)
        self.reads += len(addresses)
        return self._data[rows]

    def has_extra_frames(self) -> bool:
        """True when any frame outside the device catalogue was written."""
        return bool(self._extra)

    def written_mask(self) -> np.ndarray:
        """Boolean per-row written flags (read-only view; catalogued rows)."""
        return self._written

    def data_rows(self, rows: np.ndarray) -> np.ndarray:
        """Stacked copy of the given catalogued rows, *without* touching the
        read counters — bulk consumers that mirror a reference loop's
        accounting (e.g. the static-preservation check) add the counts
        explicitly."""
        return self._data[rows]

    def flip_bit(self, row: int, word: int, bit: int) -> FrameAddress:
        """Flip one configuration bit by dense-row coordinates (fault
        injection only).

        Like :meth:`inject_upset` this models radiation, not a bus
        access: counters stay untouched, no timing is charged, and the
        frame's *written* flag is deliberately left alone — a strike on a
        never-configured frame must not promote it into the written set,
        or scrubbing would start "repairing" frames the design never
        owned.  Returns the struck frame's address.
        """
        total, words = self._data.shape
        if not 0 <= int(row) < total:
            raise BitstreamError(f"flip_bit: row {row} outside 0..{total - 1}")
        if not (0 <= int(word) < words and 0 <= int(bit) < 32):
            raise BitstreamError(
                f"flip_bit: word {word} bit {bit} outside frame geometry"
            )
        self._data[int(row), int(word)] ^= np.uint32(1 << int(bit))
        return self.geometry.frame_order()[int(row)]

    def inject_upset(
        self,
        rng: np.random.Generator,
        flips: int = 1,
        addresses: Sequence[FrameAddress] = None,
        include_unwritten: bool = False,
    ) -> List[Tuple[FrameAddress, int, int]]:
        """Flip random bits in written frames (fault injection only).

        Models a radiation upset, not a bus access: the read/write
        counters do *not* advance and no timing is charged.  ``addresses``
        restricts the strike to specific frames (e.g. the frames a commit
        just wrote); by default any written catalogued frame is fair game.
        ``include_unwritten=True`` widens the target set to the *whole*
        frame catalogue — the Monte-Carlo campaigns sample the full
        configuration space, where strikes on never-written frames are
        benign by construction.  Written flags are never changed.
        Returns ``(address, word_index, bit)`` per flip; empty when the
        memory holds nothing to corrupt.
        """
        order = self.geometry.frame_order()
        if addresses is None:
            if include_unwritten:
                rows = np.arange(self._written.size, dtype=np.int64)
            else:
                rows = np.flatnonzero(self._written)
        else:
            rows = np.array(
                [
                    row
                    for row in (self.geometry.frame_index(a) for a in addresses)
                    if row is not None
                    and (include_unwritten or self._written[row])
                ],
                dtype=np.int64,
            )
        if rows.size == 0:
            return []
        flipped: List[Tuple[FrameAddress, int, int]] = []
        for _ in range(int(flips)):
            row = int(rows[int(rng.integers(rows.size))])
            word = int(rng.integers(self.geometry.words_per_frame))
            bit = int(rng.integers(32))
            self._data[row, word] ^= np.uint32(1 << bit)
            flipped.append((order[row], word, bit))
        return flipped

    def frames_equal(self, address: FrameAddress, other: "ConfigMemory") -> bool:
        """True when both memories hold identical data for ``address``."""
        return bool(np.array_equal(self.read_frame(address), other.read_frame(address)))

    def snapshot(self) -> ConfigSnapshot:
        """Immutable-ish copy of all written frames (single array copy)."""
        return ConfigSnapshot(
            self.geometry,
            self._data.copy(),
            self._written.copy(),
            {addr: frame.copy() for addr, frame in self._extra.items()},
        )

    def restore(self, snapshot: Mapping[FrameAddress, np.ndarray]) -> None:
        """Reset the memory to a previous :meth:`snapshot`."""
        if isinstance(snapshot, ConfigSnapshot) and snapshot.geometry.device is self.device:
            self._data = snapshot._data.copy()
            self._written = snapshot._written.copy()
            self._extra = {addr: frame.copy() for addr, frame in snapshot._extra.items()}
            return
        self._data = np.zeros_like(self._data)
        self._written = np.zeros_like(self._written)
        self._extra = {}
        for address, data in snapshot.items():
            data = np.asarray(data, dtype=np.uint32)
            row = self.geometry.frame_index(address)
            if row is None:
                self._extra[address] = data.copy()
            else:
                self._data[row] = data
                self._written[row] = True

    def diff(
        self, baseline: Mapping[FrameAddress, np.ndarray]
    ) -> Iterator[Tuple[FrameAddress, np.ndarray]]:
        """Yield (address, data) for frames that differ from ``baseline``.

        This is the content of a *differential* partial bitstream relative
        to the baseline configuration.
        """
        if (
            isinstance(baseline, ConfigSnapshot)
            and baseline.geometry.device is self.device
            and not self._extra
            and not baseline._extra
        ):
            # Catalogued rows sit in FAR order, which is sorted order, so a
            # row-wise comparison yields addresses exactly as the dict-based
            # reference loop did.
            order = self.geometry.frame_order()
            changed = np.flatnonzero((self._data != baseline._data).any(axis=1))
            for row in changed:
                yield order[row], self._data[row].copy()
            return
        empty = self.geometry.empty_frame()
        mine_map = dict(self.items_view())
        addresses = set(mine_map) | set(baseline)
        for address in sorted(addresses):
            mine = mine_map.get(address, empty)
            theirs = baseline.get(address, empty)
            if not np.array_equal(mine, theirs):
                yield address, mine.copy()

    def items_view(self) -> Iterator[Tuple[FrameAddress, np.ndarray]]:
        """(address, live frame view) pairs for all written frames."""
        order = self.geometry.frame_order()
        for row in np.flatnonzero(self._written):
            yield order[row], self._data[row]
        yield from self._extra.items()

    def written_addresses(self) -> Iterable[FrameAddress]:
        """Addresses of frames that have been written at least once."""
        order = self.geometry.frame_order()
        catalogued: List[FrameAddress] = [order[row] for row in np.flatnonzero(self._written)]
        if not self._extra:
            return catalogued
        return sorted(catalogued + list(self._extra))

    def __len__(self) -> int:
        return int(self._written.sum()) + len(self._extra)
